"""Invariant-checker unit tests: corrupt state, assert precise firing."""

import pytest

from repro.core.mecc import MeccController
from repro.core.smd import SelectiveMemoryDowngrade
from repro.obs import (
    InvariantContext,
    InvariantSuite,
    InvariantViolation,
    MdtCoherenceCheck,
    RefreshModeCheck,
    SmdGatingCheck,
    UpgradeCompletenessCheck,
    default_invariant_suite,
)
from repro.types import SystemState


@pytest.fixture
def mecc():
    controller = MeccController()
    controller.wake()
    return controller


def line_address(controller, line):
    return line * controller.device.org.line_bytes


def run_check(check, controller, smd=None, event="", cycle=0):
    """Run one checker directly, bypassing the suite."""
    return check.check(
        InvariantContext(controller=controller, smd=smd, event=event, cycle=cycle)
    )


class TestMdtCoherence:
    def test_clean_controller_passes(self, mecc):
        assert run_check(MdtCoherenceCheck(), mecc) == []

    def test_weak_line_with_cleared_mdt_fires(self, mecc):
        mecc.on_read(line_address(mecc, 7))
        mecc.mdt.reset()  # corrupt: line 7 stays weak but its bit is gone
        suite = InvariantSuite(checks=[MdtCoherenceCheck()])
        with pytest.raises(InvariantViolation) as excinfo:
            suite.check(mecc, event="quantum", cycle=500)
        message = str(excinfo.value)
        assert "line 7 is downgraded" in message
        assert "region 0 is not marked" in message
        assert excinfo.value.check == "mdt-coherence"
        assert excinfo.value.event == "quantum"
        assert excinfo.value.cycle == 500

    def test_marked_region_without_weak_line_fires(self, mecc):
        mecc.mdt.record_downgrade(line_address(mecc, 3))  # bit without line
        suite = InvariantSuite(checks=[MdtCoherenceCheck()])
        with pytest.raises(InvariantViolation, match="region 0 is marked but contains no downgraded line"):
            suite.check(mecc)

    def test_mdt_disabled_controller_skips(self):
        controller = MeccController(use_mdt=False)
        controller.wake()
        controller.on_read(0)
        assert run_check(MdtCoherenceCheck(), controller) == []


class TestRefreshMode:
    def test_weak_line_under_slow_refresh_fires(self, mecc):
        mecc.on_read(line_address(mecc, 1))
        mecc.device.enter_self_refresh(slow=True)  # corrupt: skipped upgrade
        suite = InvariantSuite(checks=[RefreshModeCheck()])
        with pytest.raises(InvariantViolation, match=r"1 weak line\(s\) under a 1.024 s refresh period"):
            suite.check(mecc)

    def test_idle_state_with_fast_refresh_fires(self, mecc):
        mecc.state = SystemState.IDLE  # corrupt: idle without slow SR
        suite = InvariantSuite(checks=[RefreshModeCheck()])
        with pytest.raises(InvariantViolation, match="idle state with a 0.064 s refresh period"):
            suite.check(mecc)

    def test_active_weak_lines_at_base_period_pass(self, mecc):
        mecc.on_read(line_address(mecc, 1))
        assert run_check(RefreshModeCheck(), mecc) == []


class TestUpgradeCompleteness:
    def test_only_evaluates_on_idle_entry(self, mecc):
        mecc.on_read(line_address(mecc, 2))
        check = UpgradeCompletenessCheck()
        assert run_check(check, mecc, event="quantum") == []
        problems = run_check(check, mecc, event="idle-entry")
        assert any("1 line(s) still downgraded" in p for p in problems)

    def test_mdt_residue_after_upgrade_fires(self, mecc):
        report = mecc.enter_idle()
        assert report.lines_converted == 0
        mecc.mdt.record_downgrade(0)  # corrupt: stale bit after the pass
        suite = InvariantSuite(checks=[UpgradeCompletenessCheck()])
        with pytest.raises(InvariantViolation, match=r"1 MDT region\(s\) still marked"):
            suite.check(mecc, event="idle-entry")

    def test_clean_idle_entry_passes(self, mecc):
        mecc.on_read(line_address(mecc, 2))
        mecc.enter_idle()
        assert run_check(UpgradeCompletenessCheck(), mecc, event="idle-entry") == []


class TestSmdGating:
    def test_downgrade_while_gated_fires(self, mecc):
        smd = SelectiveMemoryDowngrade(quantum_cycles=1000)
        mecc.on_read(line_address(mecc, 4))  # corrupt: gate never tripped
        suite = InvariantSuite(checks=[SmdGatingCheck()])
        with pytest.raises(InvariantViolation) as excinfo:
            suite.check(mecc, smd=smd, event="quantum")
        assert "downgrade(s) recorded while SMD keeps ECC-Downgrade disabled" in str(
            excinfo.value
        )

    def test_enabled_without_cycle_fires(self, mecc):
        smd = SelectiveMemoryDowngrade()
        smd.enabled = True  # corrupt: no enable cycle recorded
        suite = InvariantSuite(checks=[SmdGatingCheck()])
        with pytest.raises(InvariantViolation, match="enabled without a recorded enable cycle"):
            suite.check(mecc, smd=smd)

    def test_disabled_with_stale_enable_cycle_fires(self, mecc):
        smd = SelectiveMemoryDowngrade()
        smd.enabled_at_cycle = 777  # corrupt: disabled but cycle set
        suite = InvariantSuite(checks=[SmdGatingCheck()])
        with pytest.raises(InvariantViolation, match="enable cycle \\(777\\) while still disabled"):
            suite.check(mecc, smd=smd)

    def test_no_smd_skips(self, mecc):
        mecc.on_read(line_address(mecc, 4))
        assert run_check(SmdGatingCheck(), mecc) == []


class TestSuiteBehavior:
    def test_tolerant_mode_records_instead_of_raising(self, mecc):
        mecc.on_read(line_address(mecc, 7))
        mecc.mdt.reset()
        mecc.device.enter_self_refresh(slow=True)
        suite = default_invariant_suite(tolerant=True)
        found = suite.check(mecc, event="quantum", cycle=9)
        # Both the MDT-coherence and refresh-mode checkers fire.
        assert {r.check for r in found} == {"mdt-coherence", "refresh-mode"}
        assert suite.violation_count == len(found)
        summary = suite.summary()
        assert summary["evaluations"] == 1
        assert summary["by_check"]["mdt-coherence"] == 1
        assert summary["by_check"]["smd-gating"] == 0

    def test_strict_mode_raises_typed_violation(self, mecc):
        mecc.mdt.record_downgrade(0)
        suite = default_invariant_suite()
        with pytest.raises(InvariantViolation):
            suite.check(mecc)
        # The violation is also recorded before raising.
        assert suite.violation_count == 1

    def test_violations_are_traced_when_tracer_attached(self, mecc):
        from repro.obs import EventTracer

        tracer = EventTracer()
        mecc.mdt.record_downgrade(0)
        suite = default_invariant_suite(tolerant=True)
        suite.tracer = tracer
        suite.check(mecc, event="quantum", cycle=3)
        events = tracer.select(source="invariants", kind="violation")
        assert len(events) == 1
        assert events[0].data["check"] == "mdt-coherence"
        assert events[0].cycle == 3

    def test_clean_mecc_run_passes_default_suite(self):
        from repro.sim.engine import simulate
        from repro.sim.system import ScaledRun, SystemConfig
        from repro.workloads.spec import ALL_BENCHMARKS

        config = SystemConfig()
        run = ScaledRun(instructions=20_000)
        for spec in ALL_BENCHMARKS[:3]:
            trace = spec.trace(run.instructions)
            for policy_name in ("mecc", "mecc+smd"):
                suite = default_invariant_suite()  # strict: raises on breakage
                kwargs = (
                    {"quantum_cycles": run.quantum_cycles}
                    if policy_name == "mecc+smd"
                    else {}
                )
                policy = config.policy_by_name(policy_name, **kwargs)
                simulate(trace, policy, invariants=suite)
                policy.controller.enter_idle()
                assert suite.violation_count == 0
                assert suite.evaluations > 0


class TestDataPlaneModeAgreement:
    def coupled_world(self):
        from repro.functional.faults import FaultProcess, SoftErrorModel
        from repro.functional.memory import FunctionalMemory
        from repro.obs import DataPlaneModeAgreementCheck
        from repro.reliability.retention import RetentionModel

        controller = MeccController()
        controller.wake()
        faults = FaultProcess(
            retention=RetentionModel(anchor_ber=1e-30),
            soft_errors=SoftErrorModel(rate_per_bit_s=0.0),
            seed=0,
        )
        memory = FunctionalMemory(faults=faults)
        return controller, memory, DataPlaneModeAgreementCheck()

    def run_with_memory(self, check, controller, memory):
        return check.check(
            InvariantContext(controller=controller, memory=memory)
        )

    def test_skips_without_a_data_plane(self, mecc):
        from repro.obs import DataPlaneModeAgreementCheck

        assert run_check(DataPlaneModeAgreementCheck(), mecc) == []

    def test_agreeing_planes_pass(self):
        from repro.types import EccMode

        controller, memory, check = self.coupled_world()
        memory.write(0, 0xABC, EccMode.STRONG)
        assert self.run_with_memory(check, controller, memory) == []

    def test_mismatch_fires_with_the_line_named(self):
        from repro.types import EccMode

        controller, memory, check = self.coupled_world()
        memory.write(0, 0xABC, EccMode.STRONG)
        memory.rewrite_mode(0, EccMode.WEAK)  # data plane diverges
        problems = self.run_with_memory(check, controller, memory)
        assert len(problems) == 1
        assert "line 0" in problems[0]

    def test_suite_data_plane_attribute_couples_the_check(self):
        from repro.types import EccMode

        controller, memory, _ = self.coupled_world()
        suite = default_invariant_suite(tolerant=True)
        suite.data_plane = memory
        memory.write(0, 0xABC, EccMode.STRONG)
        suite.check(controller)
        assert suite.violation_count == 0
        memory.rewrite_mode(0, EccMode.WEAK)
        suite.check(controller)
        assert any(
            r.check == "data-plane-mode-agreement" for r in suite.violations
        )
