"""CSV export of exhibit data (for external plotting).

The benches print text tables; researchers replotting the figures want
machine-readable series.  ``export_exhibit`` runs one exhibit and writes
a tidy CSV; ``export_all`` sweeps the set.
"""

from __future__ import annotations

import csv
import io
from typing import Callable

from repro.analysis import experiments as X
from repro.errors import ConfigurationError
from repro.sim.system import ScaledRun


def _rows_fig2(run: ScaledRun) -> tuple[list[str], list[list]]:
    curve = X.fig2_retention_curve()
    return ["retention_time_s", "bit_failure_probability"], [list(p) for p in curve]


def _rows_table1(run: ScaledRun) -> tuple[list[str], list[list]]:
    rows = X.table1_failure()
    return (
        ["ecc_t", "line_failure", "system_failure"],
        [[r.ecc_t, r.line_failure, r.system_failure] for r in rows],
    )


def _rows_fig7(run: ScaledRun) -> tuple[list[str], list[list]]:
    perf = X.fig7_performance(run)
    header = ["benchmark", "secded", "ecc6", "mecc"]
    rows = [
        [name,
         perf.normalized(name, "secded"),
         perf.normalized(name, "ecc6"),
         perf.normalized(name, "mecc")]
        for name in perf.per_benchmark
    ]
    return header, rows


def _rows_fig8(run: ScaledRun) -> tuple[list[str], list[list]]:
    out = X.fig8_idle_power()
    return (
        ["scheme", "refresh_w", "background_w", "total_w", "total_norm"],
        [[k, v["refresh_w"], v["background_w"], v["total_w"], v["total_norm"]]
         for k, v in out.items()],
    )


def _rows_fig12(run: ScaledRun) -> tuple[list[str], list[list]]:
    out = X.fig12_latency_sensitivity(run=run)
    return (
        ["decode_cycles", "ecc6", "mecc"],
        [[lat, v["ecc6"], v["mecc"]] for lat, v in out.items()],
    )


def _rows_fig14(run: ScaledRun) -> tuple[list[str], list[list]]:
    out = X.fig14_smd_disabled(run)
    return ["benchmark", "disabled_fraction"], [[k, v] for k, v in out.items()]


EXPORTERS: dict[str, Callable[[ScaledRun], tuple[list[str], list[list]]]] = {
    "fig2": _rows_fig2,
    "table1": _rows_table1,
    "fig7": _rows_fig7,
    "fig8": _rows_fig8,
    "fig12": _rows_fig12,
    "fig14": _rows_fig14,
}


def exhibit_csv(name: str, run: ScaledRun | None = None) -> str:
    """Render one exhibit's data as a CSV string."""
    if name not in EXPORTERS:
        raise ConfigurationError(
            f"no CSV exporter for {name!r}; choices: {sorted(EXPORTERS)}"
        )
    run = run or ScaledRun()
    header, rows = EXPORTERS[name](run)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(header)
    writer.writerows(rows)
    return buffer.getvalue()


def export_exhibit(name: str, path: str, run: ScaledRun | None = None) -> None:
    """Write one exhibit's CSV to ``path``."""
    text = exhibit_csv(name, run)
    with open(path, "w", encoding="utf-8", newline="") as stream:
        stream.write(text)


def export_all(directory: str, run: ScaledRun | None = None) -> list[str]:
    """Write every exportable exhibit into ``directory``; returns paths."""
    import os

    os.makedirs(directory, exist_ok=True)
    run = run or ScaledRun()
    paths = []
    for name in EXPORTERS:
        path = os.path.join(directory, f"{name}.csv")
        export_exhibit(name, path, run)
        paths.append(path)
    return paths
