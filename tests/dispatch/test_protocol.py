"""Wire protocol: message framing, spec transport, failure modes."""

from __future__ import annotations

import json

import pytest

from repro.analysis.runner import JobSpec
from repro.dispatch import protocol
from repro.errors import DispatchProtocolError
from repro.sim.system import ScaledRun
from repro.workloads.spec import BENCHMARKS_BY_NAME


def _spec() -> JobSpec:
    return JobSpec.build(
        BENCHMARKS_BY_NAME["libq"], ScaledRun(instructions=10_000), "mecc"
    )


class TestMessages:
    def test_encode_decode_round_trip(self):
        line = protocol.encode_message(type="lease", job_id=3, key="abc")
        assert line.endswith(b"\n")
        assert protocol.decode_message(line) == {
            "type": "lease", "job_id": 3, "key": "abc",
        }

    def test_canonical_encoding_is_stable(self):
        a = protocol.encode_message(type="x", b=1, a=2)
        b = protocol.encode_message(a=2, b=1, type="x")
        assert a == b  # sorted keys: field order never changes the bytes

    def test_type_field_required(self):
        with pytest.raises(DispatchProtocolError):
            protocol.encode_message(job_id=1)

    def test_decode_rejects_garbage(self):
        with pytest.raises(DispatchProtocolError):
            protocol.decode_message(b"{torn\n")
        with pytest.raises(DispatchProtocolError):
            protocol.decode_message(json.dumps([1, 2]).encode() + b"\n")
        with pytest.raises(DispatchProtocolError):
            protocol.decode_message(json.dumps({"no_type": 1}).encode() + b"\n")


class TestSpecTransport:
    def test_spec_round_trips_bit_identically(self):
        spec = _spec()
        encoded = protocol.encode_spec(spec)
        assert isinstance(encoded, str)  # JSON-safe base64 text
        decoded = protocol.decode_spec(encoded)
        assert decoded == spec
        assert decoded.key("v1") == spec.key("v1")

    def test_decode_spec_rejects_garbage(self):
        with pytest.raises(DispatchProtocolError):
            protocol.decode_spec("not base64 pickle!")
        with pytest.raises(DispatchProtocolError):
            protocol.decode_spec("aGVsbG8=")  # valid base64, not a pickle


class TestConstants:
    def test_fault_modes_cover_the_chaos_campaign(self):
        assert set(protocol.FAULT_MODES) >= {
            "none", "kill", "silent", "slow", "partition", "duplicate",
            "flaky",
        }

    def test_stream_limit_fits_large_specs(self):
        # A spec with phases still fits far under the frame limit.
        assert len(protocol.encode_spec(_spec())) < protocol.STREAM_LIMIT / 100
