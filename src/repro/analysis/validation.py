"""Cross-validation: analytic models vs. Monte-Carlo ground truth.

The reproduction leans on three closed-form models — the binomial
failure analysis (Table I), the retention power law (Fig. 2), and the
linear refresh-power relation (Fig. 8).  Each function here checks one
of them against independent sampling so a silent modeling bug cannot
survive: if the closed form and the simulation ever disagree, these
fail loudly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.power.calculator import DramPowerCalculator
from repro.reliability.failure import line_failure_probability
from repro.reliability.retention import RetentionModel


@dataclass(frozen=True)
class ValidationResult:
    """One analytic-vs-empirical comparison."""

    what: str
    analytic: float
    empirical: float
    trials: int

    @property
    def relative_error(self) -> float:
        if self.analytic == 0:
            return abs(self.empirical)
        return abs(self.empirical - self.analytic) / self.analytic

    def agrees(self, tolerance: float, sigmas: float = 4.0) -> bool:
        """Within tolerance, or within ``sigmas``-sigma counting noise.

        ``sigmas=0`` disables the noise fallback, so a deliberately
        impossible tolerance is guaranteed to disagree — the CLI's
        ``--sigma 0`` uses this to audit its own failure path.
        """
        import math

        if self.relative_error <= tolerance:
            return True
        if sigmas <= 0:
            return False
        expected = self.analytic * self.trials
        noise = sigmas * math.sqrt(max(expected, 1.0)) / self.trials
        return abs(self.empirical - self.analytic) <= noise


def validate_line_failure(
    ber: float = 0.004,
    ecc_t: int = 6,
    line_bits: int = 576,
    trials: int = 40_000,
    seed: int = 0,
) -> ValidationResult:
    """Table I's binomial tail vs. per-bit sampling.

    The default BER is exaggerated so the tail event (> 6 errors) is
    observable within the trial budget; the binomial math is identical
    at the paper's 10^-4.5.
    """
    if trials < 1:
        raise ConfigurationError("trials must be >= 1")
    rng = random.Random(seed)
    analytic = line_failure_probability(ber, ecc_t, line_bits)
    failures = 0
    for _ in range(trials):
        # Sample the error count directly (sum of Bernoulli draws).
        count = 0
        for _ in range(line_bits):
            if rng.random() < ber:
                count += 1
                if count > ecc_t:
                    break
        if count > ecc_t:
            failures += 1
    return ValidationResult(
        what=f"P(line failure) at BER {ber:g}, ECC-{ecc_t}",
        analytic=analytic,
        empirical=failures / trials,
        trials=trials,
    )


def validate_retention_inverse(
    samples: int = 50_000,
    test_time_s: float = 5.0,
    seed: int = 1,
) -> ValidationResult:
    """Fig. 2's CDF vs. inverse-transform sampling of cell retention."""
    if samples < 1:
        raise ConfigurationError("samples must be >= 1")
    model = RetentionModel()
    rng = random.Random(seed)
    drawn = model.sample_retention_times(samples, rng)
    empirical = sum(1 for t in drawn if t < test_time_s) / samples
    return ValidationResult(
        what=f"P(retention < {test_time_s:g} s)",
        analytic=model.bit_failure_probability(test_time_s),
        empirical=empirical,
        trials=samples,
    )


def validate_refresh_linearity(
    periods_s: tuple[float, ...] = (0.064, 0.128, 0.256, 0.512, 1.024),
) -> ValidationResult:
    """Fig. 8's premise: refresh power scales exactly with refresh rate.

    Checks that P_refresh(k * T) * k == P_refresh(T) across the sweep;
    the 'empirical' value is the worst-case deviation factor.
    """
    if len(periods_s) < 2:
        raise ConfigurationError("need at least two periods")
    calc = DramPowerCalculator()
    base = calc.refresh_power_idle(periods_s[0]) * periods_s[0]
    worst = 1.0
    for period in periods_s[1:]:
        product = calc.refresh_power_idle(period) * period
        worst = max(worst, product / base, base / product)
    return ValidationResult(
        what="refresh power x period invariance",
        analytic=1.0,
        empirical=worst,
        trials=len(periods_s),
    )


def run_all_validations(
    trials: int = 40_000, samples: int = 50_000
) -> list[ValidationResult]:
    """The full cross-check battery (validation bench + ``repro validate``)."""
    return [
        validate_line_failure(trials=trials),
        validate_retention_inverse(samples=samples),
        validate_refresh_linearity(),
    ]
