"""Tests for the RAPID and RAIDR baseline models."""

import pytest

from repro.baselines.raidr import RaidrModel, RetentionBin
from repro.baselines.rapid import RapidModel
from repro.errors import ConfigurationError


class TestRapid:
    @pytest.fixture(scope="class")
    def model(self):
        # Small memory keeps profiling fast.
        return RapidModel(capacity_bytes=64 << 20, seed=3)

    def test_low_utilization_allows_long_periods(self, model):
        sparse = model.achievable_refresh_period(0.05)
        full = model.achievable_refresh_period(1.0)
        assert sparse > full

    def test_period_monotone_in_utilization(self, model):
        periods = [model.achievable_refresh_period(u) for u in (0.1, 0.4, 0.7, 1.0)]
        assert all(a >= b for a, b in zip(periods, periods[1:]))

    def test_full_memory_barely_beats_jedec(self, model):
        """With every page allocated, the worst page dictates the period —
        the weakest pages have cells failing below ~1 s."""
        period = model.achievable_refresh_period(1.0)
        assert period < 1.0

    def test_usable_fraction_shrinks_with_period(self, model):
        near_full = model.usable_fraction_at_period(0.25)
        half = model.usable_fraction_at_period(1.0)
        assert near_full > half
        assert 0.0 <= half <= 1.0

    def test_mecc_contrast_capacity(self, model):
        """At a 1 s period, RAPID must drop a sizeable fraction of pages
        from the OS pool (its 32K-cell pages see failures at BER 10^-4.5);
        MECC keeps 100% of capacity."""
        usable = model.usable_fraction_at_period(1.0)
        assert usable < 0.75

    def test_refresh_rate_relative(self, model):
        rate = model.refresh_rate_relative(0.5)
        assert 0.0 < rate

    def test_validation(self, model):
        with pytest.raises(ConfigurationError):
            model.achievable_refresh_period(0.0)
        with pytest.raises(ConfigurationError):
            model.usable_fraction_at_period(-1.0)
        with pytest.raises(ConfigurationError):
            RapidModel(capacity_bytes=100, page_bytes=4096)


class TestRaidr:
    @pytest.fixture(scope="class")
    def model(self):
        return RaidrModel(rows=8192, seed=5)

    def test_bins_partition_rows(self, model):
        bins = model.bins()
        assert sum(b.row_fraction for b in bins) == pytest.approx(1.0)
        assert [b.period_s for b in bins] == [0.064, 0.256, 1.024]

    def test_slow_bin_is_nearly_empty_under_paper_retention(self, model):
        """A key quantitative insight: under the paper's Fig. 2 retention
        curve, a 16 KB row almost always contains a cell that fails below
        1 s, so barely any row qualifies for RAIDR's 1 s bin — retention-
        aware refresh alone cannot reach MECC's 16x (you need ECC)."""
        bins = model.bins()
        assert bins[-1].row_fraction < 0.05  # ~1% qualify for 1.024 s
        assert bins[1].row_fraction > 0.85  # the 256 ms bin dominates

    def test_refresh_reduction(self, model):
        rate = model.refresh_rate_relative()
        assert rate < 0.5  # a real reduction (~4x)...
        # ...but far from MECC's full-memory 1/16.
        assert rate > 2 * (1 / 16)

    def test_combined_with_ecc(self, model):
        """Paper: multi-rate refresh and MECC are orthogonal/combinable."""
        assert model.combined_with_ecc_rate(16) == pytest.approx(
            model.refresh_rate_relative() / 16
        )

    def test_bloom_storage(self, model):
        assert model.bloom_filter_storage_bytes() == 8192 * 2 // 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RaidrModel(bin_periods_s=(1.0, 0.064))
        with pytest.raises(ConfigurationError):
            RaidrModel(rows=0)
        with pytest.raises(ConfigurationError):
            RetentionBin(period_s=-1, row_fraction=0.5)
        with pytest.raises(ConfigurationError):
            RaidrModel(rows=16).combined_with_ecc_rate(0)


class TestCombinedWithMecc:
    def test_naive_combination_divides(self):
        model = RaidrModel(rows=4096, seed=5)
        assert model.combined_with_ecc_rate(16) == pytest.approx(
            model.refresh_rate_relative() / 16
        )

    def test_honest_combination_collapses_to_mecc(self):
        """Reproduction finding: conditioning on the profile does not
        license stretching any bin past the ECC-safe ~1 s period, so the
        combined scheme equals MECC alone under the paper's i.i.d. tail."""
        model = RaidrModel(rows=4096, seed=5)
        assert model.safe_combined_rate(1.024) == pytest.approx(1 / 16, rel=0.01)

    def test_honest_combination_with_stronger_ecc(self):
        """A hypothetical ECC safe to 4 s would let the combination win."""
        model = RaidrModel(rows=4096, seed=5)
        assert model.safe_combined_rate(4.096) < model.safe_combined_rate(1.024)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RaidrModel(rows=16).safe_combined_rate(0.0)
