"""Declarative sweep grids for design-space exploration.

The paper fixes one MECC operating point — ECC-6, a 1.024 s idle
refresh period, and an SMD threshold of ~1 MPKC — but the mechanism
defines a whole family of operating points.  A :class:`GridSpec` names
the four tunable axes:

* ``ecc_strength`` — strong-code correction strength ``t`` (Sec. IV-A);
  flows into :class:`repro.sim.system.SystemConfig` as ``strong_t``.
* ``refresh_period_s`` — idle self-refresh period; only the energy and
  failure-probability objectives depend on it (the active burst runs at
  the base 64 ms period either way).
* ``threshold_mpkc`` — SMD morph threshold (misses per kilo-cycle).
* ``mdt_entries`` — Memory Downgrade Tracker geometry (entry count;
  region size follows as capacity / entries).

``GridSpec.points()`` expands the Cartesian product into frozen
:class:`OperatingPoint` values in a canonical order, so every consumer
(frontier JSON, golden fixtures, the tuner) sees points in the same
sequence regardless of how the axes were written down.

Only distinct ``(policy, ecc_strength, threshold_mpkc)`` triples need
cycle simulation; refresh period and MDT geometry reshape the analytic
energy/failure terms.  A 64-point grid therefore usually costs a
handful of simulator jobs (see :mod:`repro.dse.engine`).
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field

from repro.dram.config import DramOrganization
from repro.errors import ConfigurationError

#: Policies a grid may sweep.  Both morphable variants exercise the
#: strong/weak ECC machinery; ``mecc+smd`` additionally uses the
#: threshold axis (plain ``mecc`` ignores it for simulation but keeps
#: it in the point key so grids stay rectangular).
GRID_POLICIES = ("mecc", "mecc+smd")

#: Axis spellings accepted by :func:`parse_grid` (CLI shorthand).
AXIS_ALIASES = {
    "ecc": "ecc_strength",
    "ecc_strength": "ecc_strength",
    "t": "ecc_strength",
    "period": "refresh_period_s",
    "refresh": "refresh_period_s",
    "refresh_period_s": "refresh_period_s",
    "threshold": "threshold_mpkc",
    "threshold_mpkc": "threshold_mpkc",
    "smd": "threshold_mpkc",
    "mdt": "mdt_entries",
    "entries": "mdt_entries",
    "mdt_entries": "mdt_entries",
    "policy": "policy",
}

#: Axis names in canonical order (also the sensitivity-report order).
AXES = ("ecc_strength", "refresh_period_s", "threshold_mpkc", "mdt_entries")


@dataclass(frozen=True)
class OperatingPoint:
    """One candidate configuration: a single cell of the sweep grid."""

    ecc_t: int
    refresh_period_s: float
    threshold_mpkc: float
    mdt_entries: int
    policy: str = "mecc+smd"

    def key(self) -> str:
        """Stable human-readable identity (sort key, JSON map key)."""
        return (
            f"{self.policy}/t{self.ecc_t}/p{self.refresh_period_s:g}"
            f"/th{self.threshold_mpkc:g}/mdt{self.mdt_entries}"
        )

    def axis_value(self, axis: str) -> float:
        """The point's coordinate along one named grid axis."""
        if axis == "ecc_strength":
            return self.ecc_t
        if axis == "refresh_period_s":
            return self.refresh_period_s
        if axis == "threshold_mpkc":
            return self.threshold_mpkc
        if axis == "mdt_entries":
            return self.mdt_entries
        raise ConfigurationError(
            f"unknown grid axis {axis!r}; choose from {', '.join(AXES)}"
        )

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class GridSpec:
    """A rectangular sweep grid over the four MECC design axes.

    Axis values are deduplicated and sorted at construction, so two
    grids written in different orders are the same grid (equal specs,
    identical ``points()`` expansion, identical cache behavior).
    """

    ecc_strength: tuple[int, ...] = (2, 4, 6, 8)
    refresh_period_s: tuple[float, ...] = (0.128, 0.256, 0.512, 1.024)
    threshold_mpkc: tuple[float, ...] = (1.0, 2.0)
    mdt_entries: tuple[int, ...] = (512, 1024)
    policy: str = "mecc+smd"
    org: DramOrganization = field(default_factory=DramOrganization)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "ecc_strength", _canon_axis("ecc_strength", self.ecc_strength)
        )
        object.__setattr__(
            self,
            "refresh_period_s",
            _canon_axis("refresh_period_s", self.refresh_period_s),
        )
        object.__setattr__(
            self,
            "threshold_mpkc",
            _canon_axis("threshold_mpkc", self.threshold_mpkc),
        )
        object.__setattr__(
            self, "mdt_entries", _canon_axis("mdt_entries", self.mdt_entries)
        )
        for t in self.ecc_strength:
            if not isinstance(t, int) or t < 1:
                raise ConfigurationError(
                    f"ecc_strength values must be integers >= 1, got {t!r}"
                )
        for period in self.refresh_period_s:
            if period <= 0.0:
                raise ConfigurationError(
                    f"refresh_period_s values must be positive, got {period!r}"
                )
        for threshold in self.threshold_mpkc:
            if threshold <= 0.0:
                raise ConfigurationError(
                    f"threshold_mpkc values must be positive, got {threshold!r}"
                )
        for entries in self.mdt_entries:
            if not isinstance(entries, int) or entries < 1:
                raise ConfigurationError(
                    f"mdt_entries values must be integers >= 1, got {entries!r}"
                )
            if self.org.capacity_bytes % entries:
                raise ConfigurationError(
                    f"mdt_entries {entries} must divide capacity "
                    f"({self.org.capacity_bytes} B)"
                )
            if self.org.capacity_bytes // entries < self.org.line_bytes:
                raise ConfigurationError(
                    f"mdt_entries {entries} gives regions smaller than one "
                    f"{self.org.line_bytes} B line"
                )
        if self.policy not in GRID_POLICIES:
            raise ConfigurationError(
                f"unknown policy {self.policy!r}; choose from "
                f"{', '.join(GRID_POLICIES)}"
            )

    # -- expansion -------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of operating points in the Cartesian expansion."""
        return (
            len(self.ecc_strength)
            * len(self.refresh_period_s)
            * len(self.threshold_mpkc)
            * len(self.mdt_entries)
        )

    def axis_values(self, axis: str) -> tuple:
        """The sorted values along one named axis."""
        if axis not in AXES:
            raise ConfigurationError(
                f"unknown grid axis {axis!r}; choose from {', '.join(AXES)}"
            )
        return getattr(self, axis)

    def points(self) -> tuple[OperatingPoint, ...]:
        """Every operating point, in canonical (sorted-axes) order."""
        return tuple(
            OperatingPoint(
                ecc_t=t,
                refresh_period_s=period,
                threshold_mpkc=threshold,
                mdt_entries=entries,
                policy=self.policy,
            )
            for t, period, threshold, entries in itertools.product(
                self.ecc_strength,
                self.refresh_period_s,
                self.threshold_mpkc,
                self.mdt_entries,
            )
        )

    def sim_pairs(self) -> tuple[tuple[int, float], ...]:
        """Distinct ``(ecc_t, threshold_mpkc)`` pairs needing simulation."""
        if self.policy == "mecc":
            # Plain MECC has no SMD threshold; one sim per strength.
            return tuple((t, self.threshold_mpkc[0]) for t in self.ecc_strength)
        return tuple(itertools.product(self.ecc_strength, self.threshold_mpkc))

    # -- serialization ---------------------------------------------------------

    def describe(self) -> dict:
        """Plain-dict form (frontier-report provenance, golden fixtures)."""
        return {
            "ecc_strength": list(self.ecc_strength),
            "refresh_period_s": list(self.refresh_period_s),
            "threshold_mpkc": list(self.threshold_mpkc),
            "mdt_entries": list(self.mdt_entries),
            "policy": self.policy,
            "size": self.size,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GridSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {}
        for key, value in payload.items():
            if key == "size":
                continue
            if key not in known:
                raise ConfigurationError(
                    f"unknown grid field {key!r}; choose from "
                    f"{', '.join(sorted(known - {'org'}))}"
                )
            kwargs[key] = tuple(value) if isinstance(value, list) else value
        return cls(**kwargs)


def _canon_axis(name: str, values) -> tuple:
    """Dedup + sort one axis; empty axes are configuration errors."""
    if isinstance(values, (str, bytes)):
        raise ConfigurationError(f"grid axis {name} must be a sequence of values")
    try:
        canon = tuple(sorted(set(values)))
    except TypeError as exc:
        raise ConfigurationError(f"grid axis {name}: {exc}") from None
    if not canon:
        raise ConfigurationError(
            f"grid axis {name} is empty; every axis needs at least one value"
        )
    return canon


def parse_grid(text: str, policy: str | None = None) -> GridSpec:
    """Parse the CLI grid shorthand into a :class:`GridSpec`.

    The shorthand is ``axis=v1,v2;axis=v1,...`` (``:`` also accepted as
    the axis separator), e.g.::

        ecc=4,6;period=0.256,1.024;threshold=1,2;mdt=1024

    Unlisted axes keep the :class:`GridSpec` defaults.  Axis names may
    use the short aliases in :data:`AXIS_ALIASES`.
    """
    kwargs: dict[str, object] = {}
    if policy is not None:
        kwargs["policy"] = policy
    for clause in filter(None, (part.strip() for part in text.split(";"))):
        sep = "=" if "=" in clause else ":"
        name, _, body = clause.partition(sep)
        axis = AXIS_ALIASES.get(name.strip().lower())
        if axis is None:
            raise ConfigurationError(
                f"unknown grid axis {name.strip()!r}; choose from "
                f"{', '.join(sorted(set(AXIS_ALIASES)))}"
            )
        if axis == "policy":
            kwargs["policy"] = body.strip()
            continue
        raw = [item.strip() for item in body.split(",") if item.strip()]
        if not raw:
            raise ConfigurationError(
                f"grid axis {axis} is empty; every axis needs at least one value"
            )
        caster = int if axis in ("ecc_strength", "mdt_entries") else float
        try:
            kwargs[axis] = tuple(caster(item) for item in raw)
        except ValueError:
            raise ConfigurationError(
                f"grid axis {axis}: could not parse {body.strip()!r} as "
                f"{caster.__name__} values"
            ) from None
    return GridSpec(**kwargs)
