"""Backend selection: env/CLI resolution, numpy-missing fallback, cache keys.

The contract under test: requesting ``REPRO_CODEC_BACKEND=numpy`` on a
machine without numpy must *never* crash — it falls back to the
bitsliced engine, warns exactly once per process, and counts the
fallback where :meth:`repro.obs.metrics.MetricsRegistry.record_codec_backend`
exports it.  numpy is simulated missing by poisoning ``sys.modules``
(the stdlib-sanctioned way to make ``import numpy`` raise ImportError).
"""

import random
import sys
import warnings

import pytest

from repro.ecc import backend as backend_mod
from repro.ecc import matrix
from repro.ecc.backend import (
    available_backends,
    engine_for,
    get_engine,
    requested_backend,
    reset_backend,
    selected_backend,
    selection_info,
    set_backend,
)
from repro.ecc.bch import BchCode
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_selection(monkeypatch):
    """Every test starts from an unresolved, unwarned selection state."""
    monkeypatch.delenv(backend_mod.ENV_VAR, raising=False)
    reset_backend()
    yield
    reset_backend()


@pytest.fixture
def no_numpy(monkeypatch):
    """Make ``import numpy`` raise ImportError for the duration of a test."""
    monkeypatch.setitem(sys.modules, "numpy", None)


class TestResolution:
    def test_default_is_auto(self):
        assert requested_backend() == "auto"
        assert selected_backend() in ("numpy", "bitsliced")

    def test_auto_prefers_bitsliced_over_numpy(self):
        """Regression: auto used to pick numpy whenever it imported, but
        bench_codec_micro measures bitsliced ~5.5-6x vs numpy ~2-3x over
        the matrix fold — auto must pick the faster engine even on a
        machine where numpy is available."""
        if "numpy" not in available_backends():
            pytest.skip("numpy not importable; preference is untestable")
        assert selected_backend() == "bitsliced"
        assert get_engine().name == "bitsliced"
        assert selection_info() == {
            "requested": "auto",
            "selected": "bitsliced",
            "fallbacks": 0,
        }

    def test_numpy_still_selectable_explicitly(self):
        if "numpy" not in available_backends():
            pytest.skip("numpy not importable")
        set_backend("numpy")
        assert selected_backend() == "numpy"
        assert get_engine().name == "numpy"

    def test_env_variable_selects(self, monkeypatch):
        monkeypatch.setenv(backend_mod.ENV_VAR, "matrix")
        assert selected_backend() == "matrix"
        assert get_engine() is None

    def test_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv(backend_mod.ENV_VAR, "matrix")
        set_backend("bitsliced")
        assert selected_backend() == "bitsliced"
        assert get_engine().name == "bitsliced"

    def test_unknown_names_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError):
            set_backend("cuda")
        monkeypatch.setenv(backend_mod.ENV_VAR, "cuda")
        with pytest.raises(ConfigurationError):
            selected_backend()
        with pytest.raises(ConfigurationError):
            engine_for("cuda")

    def test_matrix_and_bitsliced_always_available(self):
        names = available_backends()
        assert "matrix" in names and "bitsliced" in names


class TestNumpyFallback:
    def test_numpy_request_falls_back_to_bitsliced(self, no_numpy):
        set_backend("numpy")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine = get_engine()
        assert engine is not None and engine.name == "bitsliced"
        runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert "falling back" in str(runtime[0].message)
        assert selection_info()["fallbacks"] == 1

    def test_warning_fires_once_per_process(self, no_numpy, monkeypatch):
        set_backend("numpy")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            get_engine()
            # Second resolution of a *fresh* request string must stay silent.
            backend_mod._resolved.clear()
            get_engine()
        runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1

    def test_auto_without_numpy_is_silent(self, no_numpy):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine = get_engine()
        assert engine.name == "bitsliced"
        assert not [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert selection_info()["fallbacks"] == 0

    def test_codec_still_decodes_after_fallback(self, no_numpy):
        """End to end: numpy requested, numpy missing, batches still work."""
        set_backend("numpy")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            code = BchCode(t=2, data_bits=40)
            rng = random.Random(5)
            datas = [rng.getrandbits(40) for _ in range(64)]
            words = code.encode_batch(datas)
            assert [r.data for r in code.decode_batch(words)] == datas
        assert "bitsliced" in code.counters.backend_ops

    def test_engine_for_does_not_fall_back(self, no_numpy):
        with pytest.raises(ConfigurationError):
            engine_for("numpy")

    def test_available_backends_drops_numpy(self, no_numpy):
        assert available_backends() == ["matrix", "bitsliced"]

    def test_metrics_export_carries_fallback_count(self, no_numpy):
        set_backend("numpy")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            get_engine()
        registry = MetricsRegistry()
        registry.record_codec_backend()
        snap = registry.namespace("ecc.backend")
        assert snap["requested"] == "numpy"
        assert snap["selected"] == "bitsliced"
        assert snap["fallbacks"] == 1


class TestCacheKeying:
    """Regression: compiled tables must be keyed by (backend, code params).

    Before the fix, ``cached_tables`` keyed on code parameters alone, so
    switching backends mid-process handed the bitsliced fold a numpy map
    (or vice versa).  The effective key now leads with the backend name.
    """

    def test_same_params_distinct_backends_distinct_entries(self):
        built = []

        def builder_for(tag):
            def build():
                built.append(tag)
                return tag
            return build

        key = ("regression-code", 6, 516)
        a = matrix.cached_tables(key, builder_for("matrix-tables"))
        b = matrix.cached_tables(
            key, builder_for("bitsliced-maps"), backend="bitsliced"
        )
        c = matrix.cached_tables(
            key, builder_for("numpy-maps"), backend="numpy"
        )
        assert (a, b, c) == ("matrix-tables", "bitsliced-maps", "numpy-maps")
        assert built == ["matrix-tables", "bitsliced-maps", "numpy-maps"]
        # Second lookups hit, never cross-talk.
        assert matrix.cached_tables(key, builder_for("X")) == "matrix-tables"
        assert matrix.cached_tables(
            key, builder_for("X"), backend="bitsliced"
        ) == "bitsliced-maps"

    def test_codec_batches_never_share_maps_across_backends(self):
        """Driving one code through two engines builds two map entries."""
        code = BchCode(t=1, data_bits=24)
        rng = random.Random(8)
        datas = [rng.getrandbits(24) for _ in range(40)]
        set_backend("bitsliced")
        words = code.encode_batch(datas)
        entries_after_bitsliced = matrix.table_cache_info()["entries"]
        if "numpy" in available_backends():
            set_backend("numpy")
            assert code.encode_batch(datas) == words
            assert matrix.table_cache_info()["entries"] > entries_after_bitsliced
        set_backend("matrix")
        assert code.encode_batch(datas) == words
