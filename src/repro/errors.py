"""Exception hierarchy for the MECC reproduction library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Decode failures carry enough context (syndrome weight,
estimated error count) to be useful in fault-injection studies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of supported range."""


class EccError(ReproError):
    """Base class for ECC encode/decode errors."""


class EncodingError(EccError):
    """The data block cannot be encoded (e.g. wrong length)."""


class DecodingError(EccError):
    """The codeword could not be decoded.

    Raised when the decoder *detects* an uncorrectable pattern.  Note that,
    as with real BCH/Hamming hardware, error patterns beyond the code's
    guaranteed detection capability may be silently miscorrected instead.
    """

    def __init__(self, message: str, *, detected_errors: int | None = None):
        super().__init__(message)
        self.detected_errors = detected_errors


class UncorrectableError(DecodingError):
    """A detected-but-uncorrectable error pattern (e.g. DED in SEC-DED)."""


class ModeBitError(ReproError):
    """The replicated ECC-mode bits could not be resolved to a valid mode."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class JobExecutionError(ReproError):
    """One or more experiment-runner jobs failed after exhausting retries.

    Raised *after* every other job of the sweep has completed (and been
    cached/checkpointed), so a partial sweep is resumable.

    Attributes:
        failures: list of ``(job_label, exception)`` pairs.
    """

    def __init__(self, message: str, *, failures: list | None = None):
        super().__init__(message)
        self.failures = failures or []


class JobTimeoutError(JobExecutionError):
    """An experiment-runner job exceeded its wall-clock timeout."""


class TraceError(ReproError):
    """A trace file or trace record is malformed."""


class DispatchError(ReproError):
    """Base class for distributed-dispatch (``repro.dispatch``) errors."""


class DispatchProtocolError(DispatchError):
    """A malformed or out-of-order message on the dispatch wire."""


class DispatchUnavailableError(DispatchError):
    """The dispatch backend cannot serve this sweep (cannot bind, no
    workers arrived, or every worker died before any work started).

    The experiment runner catches this and degrades gracefully to the
    local process pool with a single warning and a counted metric.
    """


class DispatchJobError(DispatchError):
    """A dispatched job failed on a worker after exhausting its retries."""
