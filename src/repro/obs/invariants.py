"""Runtime invariant checkers for the MECC state machine.

The paper's correctness story rests on a handful of coherence properties
between the per-line ECC-mode store, the MDT bit table, the device's
refresh mode, and the SMD gate.  Each property is a pluggable
:class:`InvariantCheck`; an :class:`InvariantSuite` evaluates them at SMD
quantum boundaries and on idle entry/exit (the call sites live in
:class:`repro.core.policy.MeccPolicy` and
:class:`repro.core.mecc.MeccController`) and raises a typed
:class:`InvariantViolation` — or, in tolerant mode, records the
violation and keeps running so a campaign can report every breakage at
the end.

The default suite (:func:`default_invariant_suite`) covers:

* **MDT coherence** — an MDT bit is set *iff* its region contains at
  least one downgraded line.
* **Refresh mode** — the device refresh period is consistent with the
  per-line ECC modes (weak lines require the fast 64 ms refresh) and
  with the activity state (idle means slow self-refresh).
* **Upgrade completeness** — after an ECC-Upgrade pass every line is
  back at the strong code and the MDT is clear.
* **SMD gating** — downgrades happen only after the MPKC threshold
  tripped, and the gate's bookkeeping is self-consistent.
* **Data-plane mode agreement** — when a functional memory is coupled
  to the run, the mode the controller tracks for each line matches the
  mode the stored codeword is actually encoded in (inert otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.refresh import BASE_REFRESH_PERIOD_S
from repro.errors import SimulationError
from repro.types import SystemState


class InvariantViolation(SimulationError):
    """A runtime invariant of the MECC state machine was broken.

    Attributes:
        check: name of the checker that fired.
        event: evaluation point (``"quantum"``, ``"idle-entry"``,
            ``"idle-exit"``, ``"run-end"``, or a caller-defined label).
        cycle: simulated processor cycle of the evaluation.
    """

    def __init__(self, message: str, *, check: str, event: str = "", cycle: int = 0):
        super().__init__(message)
        self.check = check
        self.event = event
        self.cycle = cycle


@dataclass
class InvariantContext:
    """Everything a checker may inspect at one evaluation point.

    Attributes:
        controller: the :class:`repro.core.mecc.MeccController` under
            check (line store, MDT, device, counters).
        smd: the :class:`repro.core.smd.SelectiveMemoryDowngrade` gate,
            or None when the policy runs ungated (SMD checks then skip).
        memory: the :class:`repro.functional.memory.FunctionalMemory`
            data plane coupled to the controller, or None when the run
            is control-plane-only (data-plane checks then skip).
        event: evaluation point label.
        cycle: simulated processor cycle.
    """

    controller: object
    smd: object | None = None
    memory: object | None = None
    event: str = ""
    cycle: int = 0


class InvariantCheck:
    """Base checker: subclasses return a list of violation messages."""

    name = "invariant"

    def check(self, ctx: InvariantContext) -> list[str]:
        raise NotImplementedError


class MdtCoherenceCheck(InvariantCheck):
    """MDT bit set ⇔ the region contains ≥ 1 downgraded line."""

    name = "mdt-coherence"

    def check(self, ctx: InvariantContext) -> list[str]:
        mecc = ctx.controller
        mdt = mecc.mdt
        if mdt is None:
            return []
        problems = []
        line_bytes = mecc.device.org.line_bytes
        marked = mdt.marked_regions
        weak_regions = set()
        for line in mecc.line_store.weak_lines:
            region = mdt.region_of(line * line_bytes)
            weak_regions.add(region)
            if region not in marked:
                problems.append(
                    f"line {line} is downgraded but MDT region {region} is not marked"
                )
        for region in sorted(marked - weak_regions):
            problems.append(
                f"MDT region {region} is marked but contains no downgraded line"
            )
        return problems


class RefreshModeCheck(InvariantCheck):
    """Refresh period consistent with per-line ECC modes and state."""

    name = "refresh-mode"

    def check(self, ctx: InvariantContext) -> list[str]:
        mecc = ctx.controller
        period = mecc.refresh_period_s
        problems = []
        weak = mecc.line_store.weak_count
        if weak and period > BASE_REFRESH_PERIOD_S:
            problems.append(
                f"{weak} weak line(s) under a {period:.3f} s refresh period "
                f"(must refresh at {BASE_REFRESH_PERIOD_S:.3f} s while any "
                "line is SECDED-protected)"
            )
        if mecc.state is SystemState.IDLE and period <= BASE_REFRESH_PERIOD_S:
            problems.append(
                f"idle state with a {period:.3f} s refresh period (idle must "
                "use the divided self-refresh)"
            )
        if mecc.state is SystemState.ACTIVE and period > BASE_REFRESH_PERIOD_S:
            problems.append(
                f"active state with a {period:.3f} s refresh period (wake-up "
                "must restore the 64 ms auto refresh)"
            )
        return problems


class UpgradeCompletenessCheck(InvariantCheck):
    """After ECC-Upgrade (idle entry) every line is strong, MDT clear."""

    name = "upgrade-completeness"

    def check(self, ctx: InvariantContext) -> list[str]:
        if ctx.event != "idle-entry":
            return []
        mecc = ctx.controller
        problems = []
        weak = mecc.line_store.weak_count
        if weak:
            problems.append(
                f"ECC-Upgrade completed with {weak} line(s) still downgraded"
            )
        if mecc.mdt is not None and mecc.mdt.marked_count:
            problems.append(
                f"ECC-Upgrade completed with {mecc.mdt.marked_count} MDT "
                "region(s) still marked"
            )
        return problems


class SmdGatingCheck(InvariantCheck):
    """Downgrades occur only after the SMD MPKC threshold tripped."""

    name = "smd-gating"

    def check(self, ctx: InvariantContext) -> list[str]:
        smd = ctx.smd
        if smd is None:
            return []
        mecc = ctx.controller
        problems = []
        if not smd.enabled:
            downgrades = mecc.downgrades - getattr(
                smd, "downgrades_baseline", 0
            )
            if downgrades > 0:
                problems.append(
                    f"{downgrades} downgrade(s) recorded while SMD keeps "
                    "ECC-Downgrade disabled"
                )
            if mecc.line_store.weak_count:
                problems.append(
                    f"{mecc.line_store.weak_count} weak line(s) while SMD "
                    "keeps ECC-Downgrade disabled"
                )
            if smd.enabled_at_cycle is not None:
                problems.append(
                    "SMD reports an enable cycle "
                    f"({smd.enabled_at_cycle}) while still disabled"
                )
        elif smd.enabled_at_cycle is None:
            problems.append("SMD is enabled without a recorded enable cycle")
        return problems


class DataPlaneModeAgreementCheck(InvariantCheck):
    """Control-plane line modes agree with the stored codeword modes.

    The strongest safety property the chaos harness relies on: if the
    controller believes a line is strong while the stored word is
    SECDED-encoded, a 1 s refresh window silently over-decays the line.
    Skips when no functional memory is coupled to the run.
    """

    name = "data-plane-mode-agreement"

    def check(self, ctx: InvariantContext) -> list[str]:
        memory = ctx.memory
        if memory is None:
            return []
        mecc = ctx.controller
        problems = []
        for line, stored_mode in sorted(memory.stored_modes().items()):
            control_mode = mecc.line_store.mode_of(line)
            if stored_mode is not control_mode:
                problems.append(
                    f"line {line} stored as {stored_mode.value} but the "
                    f"control plane tracks it as {control_mode.value}"
                )
        return problems


@dataclass
class ViolationRecord:
    """One tolerated violation (tolerant-mode bookkeeping)."""

    check: str
    event: str
    cycle: int
    message: str


class InvariantSuite:
    """Evaluate a set of checkers; raise or record on violation.

    Args:
        checks: the checkers to run (default: the full default suite).
        tolerant: when True, violations are appended to
            :attr:`violations` instead of raising, so long campaigns can
            surface every breakage.
    """

    def __init__(
        self,
        checks: list[InvariantCheck] | None = None,
        tolerant: bool = False,
    ):
        self.checks = list(checks) if checks is not None else _default_checks()
        self.tolerant = tolerant
        self.evaluations = 0
        self.violations: list[ViolationRecord] = []
        self.tracer = None
        #: Optional functional-memory data plane; when set, every
        #: :meth:`check` call without an explicit ``memory`` sees it
        #: (lets MeccController call sites stay data-plane-agnostic).
        self.data_plane = None

    def run(self, ctx: InvariantContext) -> list[ViolationRecord]:
        """Run every checker against ``ctx``.

        Returns the violations found at this evaluation point (empty in
        the common all-good case).  In strict mode the first violation
        raises :class:`InvariantViolation`; the tracer (when attached)
        sees every violation either way.
        """
        self.evaluations += 1
        found: list[ViolationRecord] = []
        for checker in self.checks:
            for message in checker.check(ctx):
                record = ViolationRecord(
                    check=checker.name,
                    event=ctx.event,
                    cycle=ctx.cycle,
                    message=message,
                )
                found.append(record)
                if self.tracer is not None:
                    self.tracer.emit(
                        "invariants",
                        "violation",
                        cycle=ctx.cycle,
                        check=checker.name,
                        event=ctx.event,
                        message=message,
                    )
        self.violations.extend(found)
        if found and not self.tolerant:
            first = found[0]
            raise InvariantViolation(
                f"[{first.check} @ {first.event or 'check'}] {first.message}",
                check=first.check,
                event=first.event,
                cycle=first.cycle,
            )
        return found

    def check(
        self,
        controller,
        smd=None,
        event: str = "",
        cycle: int = 0,
        memory=None,
    ) -> list[ViolationRecord]:
        """Convenience wrapper building the context inline."""
        return self.run(
            InvariantContext(
                controller=controller,
                smd=smd,
                memory=memory if memory is not None else self.data_plane,
                event=event,
                cycle=cycle,
            )
        )

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def summary(self) -> dict:
        """Per-checker violation counts plus evaluation totals."""
        by_check: dict[str, int] = {c.name: 0 for c in self.checks}
        for record in self.violations:
            by_check[record.check] = by_check.get(record.check, 0) + 1
        return {
            "evaluations": self.evaluations,
            "violations": len(self.violations),
            "by_check": by_check,
        }


def _default_checks() -> list[InvariantCheck]:
    return [
        MdtCoherenceCheck(),
        RefreshModeCheck(),
        UpgradeCompletenessCheck(),
        SmdGatingCheck(),
        DataPlaneModeAgreementCheck(),
    ]


def default_invariant_suite(tolerant: bool = False) -> InvariantSuite:
    """The five-checker suite from the module docstring.

    The data-plane check is inert unless a functional memory is attached
    (``suite.data_plane`` or an explicit ``memory`` argument).
    """
    return InvariantSuite(checks=_default_checks(), tolerant=tolerant)
