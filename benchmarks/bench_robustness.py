"""Seed-robustness of the headline reproduction (extension).

Reruns Fig. 7's geomeans with re-seeded trace generators and asserts the
spread is a small fraction of the effects being reported (the ~10% ECC-6
gap and the ~2% MECC gap), i.e. the reproduction's conclusions do not
hinge on lucky seeds.
"""

from repro.analysis.robustness import seed_sweep_normalized_ipc
from repro.analysis.tables import format_table
from repro.sim.system import ScaledRun
from repro.workloads.spec import BENCHMARKS_BY_NAME

SUBSET = tuple(
    BENCHMARKS_BY_NAME[n]
    for n in ("povray", "hmmer", "gobmk", "dealII", "sphinx", "milc", "libq", "lbm")
)


def test_seed_robustness(benchmark, run, show):
    sweep_run = ScaledRun(instructions=min(run.instructions, 150_000))
    out = benchmark.pedantic(
        seed_sweep_normalized_ipc,
        kwargs={"run": sweep_run, "seeds": (0, 1, 2), "benchmarks": SUBSET},
        rounds=1, iterations=1,
    )
    show(format_table(
        ["policy", "geomean (mean)", "std", "spread", "per-seed values"],
        [
            [p, r.mean, r.std, r.spread, ", ".join(f"{v:.3f}" for v in r.values)]
            for p, r in out.items()
        ],
        title="Seed robustness — Fig. 7 geomeans across 3 trace seeds",
    ))
    # Spread must be far below the measured effects.
    assert out["ecc6"].spread < 0.02  # effect size ~0.10
    assert out["mecc"].spread < 0.015  # effect size ~0.02
    assert out["secded"].spread < 0.01
    # Ordering invariant under every seed.
    for i in range(3):
        assert out["ecc6"].values[i] < out["mecc"].values[i] < out["secded"].values[i]
