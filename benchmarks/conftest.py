"""Shared configuration for the reproduction benchmarks.

Each bench file regenerates one paper exhibit (see DESIGN.md's experiment
index), prints it as a paper-vs-measured table, and asserts the *shape*
of the paper's result.  Simulation results are memoized process-wide, so
exhibits sharing the same runs (Figs. 3/7/9/10) pay for them once.

``REPRO_BENCH_INSTRUCTIONS`` scales the per-benchmark slice length
(default 400,000 — about 10,000x smaller than the paper's 4 billion, with
SMD quanta and working sets scaled accordingly; see repro.sim.system).

The bench suite routes all simulations through the parallel cached
experiment runner (see repro.analysis.runner): set ``REPRO_JOBS=4`` to
fan independent (benchmark, policy) jobs over 4 worker processes, and
``REPRO_CACHE_DIR=.repro-cache`` to reuse results across bench runs —
results are bit-identical either way.  A runner summary (per-policy job
counts, cache hit rate, simulated wall time) prints at session end when
either option is active.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.runner import configure_runner
from repro.ecc.backend import available_backends, reset_backend, set_backend
from repro.fidelity.properties import install_hypothesis_profiles
from repro.sim.system import ScaledRun

# Benchmarks share the suite-wide seed-pinned hypothesis profiles so a
# bench that uses property-based assertions reproduces deterministically.
install_hypothesis_profiles()

BENCH_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "400000"))
BENCH_JOBS = max(1, int(os.environ.get("REPRO_JOBS", "1") or "1"))
BENCH_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR") or None


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        default="auto",
        choices=("auto", "matrix", "bitsliced", "numpy", "all"),
        help="codec backend for the bench session ('all': the per-backend "
        "microbenchmarks in bench_codec_micro compare every available one)",
    )


@pytest.fixture(autouse=True, scope="session")
def _session_backend(request):
    """Apply ``--backend`` to the whole bench session (``all`` = auto)."""
    choice = request.config.getoption("--backend")
    if choice not in ("auto", "all"):
        set_backend(choice)
    yield
    reset_backend()


@pytest.fixture
def backend_matrix_request(request):
    """Concrete backends the per-backend microbenchmarks should cover."""
    choice = request.config.getoption("--backend")
    if choice in ("auto", "all"):
        return [n for n in ("matrix", "bitsliced", "numpy")
                if n in available_backends()]
    return [choice] if choice in available_backends() else []


@pytest.fixture(autouse=True, scope="session")
def _bench_runner():
    """Configure the shared experiment runner for the whole bench session."""
    runner = configure_runner(jobs=BENCH_JOBS, cache_dir=BENCH_CACHE_DIR)
    yield runner
    if runner.records and (BENCH_JOBS > 1 or BENCH_CACHE_DIR):
        from repro.analysis.report import render_runner_summary

        summary = render_runner_summary(runner)
        if summary:
            print("\n" + summary)


@pytest.fixture(scope="session")
def run():
    return ScaledRun(instructions=BENCH_INSTRUCTIONS)


@pytest.fixture
def show(capsys):
    """Print an exhibit table to the real terminal, bypassing capture."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _show
