"""Smoke-import every bench script and check its registry wiring.

The exhibit benches are thin shims over the ``repro.report`` registry:
each declares a module-level ``EXHIBIT_ID`` that must resolve.  This
test catches a bench drifting from the registry (renamed exhibit,
deleted spec, import error) without running any simulation.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.report.spec import exhibit_ids, get_exhibit

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"
BENCH_FILES = sorted(BENCH_DIR.glob("bench_*.py"))

#: Benches that drive subsystems directly rather than reproducing one
#: registered exhibit.
NON_EXHIBIT_BENCHES = {
    "bench_ablations",
    "bench_chaos",
    "bench_codec_micro",
    "bench_dispatch",
    "bench_fleet",
    "bench_mlp_sensitivity",
    "bench_model_validation",
    "bench_obs_overhead",
    "bench_robustness",
    "bench_scheduler",
    "bench_serve",
}


def _load(path: Path):
    # benchmarks/ is intentionally not a package; load by file location.
    spec = importlib.util.spec_from_file_location(f"bench_smoke.{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_directory_found():
    assert BENCH_FILES, f"no bench scripts under {BENCH_DIR}"


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.stem)
def test_bench_imports_and_resolves_its_exhibit(path):
    module = _load(path)
    if path.stem in NON_EXHIBIT_BENCHES:
        assert not hasattr(module, "EXHIBIT_ID"), (
            f"{path.stem} grew an EXHIBIT_ID; drop it from "
            "NON_EXHIBIT_BENCHES"
        )
        return
    exhibit_id = getattr(module, "EXHIBIT_ID", None)
    assert exhibit_id, f"{path.stem} must declare EXHIBIT_ID"
    spec = get_exhibit(exhibit_id)
    assert spec.id == exhibit_id


def test_every_figure_and_table_exhibit_has_a_bench():
    covered = set()
    for path in BENCH_FILES:
        if path.stem in NON_EXHIBIT_BENCHES:
            continue
        covered.add(_load(path).EXHIBIT_ID)
    registered = set(exhibit_ids())
    assert covered == registered, (
        f"benches and registry disagree: missing {registered - covered}, "
        f"stale {covered - registered}"
    )
