"""Tests for traffic recording and open-loop replay."""

import pytest

from repro.core.policy import MeccPolicy, NoEccPolicy
from repro.dram.scheduler import FcfsPolicy, FrFcfsPolicy, OpenLoopMemorySystem
from repro.errors import ConfigurationError
from repro.sim.record import RecordingController, record_requests
from repro.types import MemoryOp
from repro.workloads.spec import BENCHMARKS_BY_NAME
from repro.workloads.trace import Trace


class TestRecording:
    def test_records_reads_and_writes(self, hand_trace):
        trace = hand_trace([(100, "R", 0), (0, "W", 4096), (50, "R", 64)])
        requests = record_requests(trace, NoEccPolicy())
        ops = [r.op for r in requests]
        assert ops.count(MemoryOp.READ) == 2
        assert ops.count(MemoryOp.WRITE) == 1

    def test_arrivals_monotone(self):
        trace = BENCHMARKS_BY_NAME["sphinx"].trace(30_000, calibrate=False)
        requests = record_requests(trace, NoEccPolicy())
        reads = [r for r in requests if r.op is MemoryOp.READ]
        arrivals = [r.arrival for r in reads]
        assert arrivals == sorted(arrivals)

    def test_mecc_traffic_includes_downgrade_writebacks(self, hand_trace):
        trace = hand_trace([(100, "R", 0), (100, "R", 64)])
        plain = record_requests(trace, NoEccPolicy())
        mecc = record_requests(trace, MeccPolicy())
        assert len(mecc) > len(plain)
        writes = [r for r in mecc if r.op is MemoryOp.WRITE]
        assert {w.address for w in writes} == {0, 64}

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            record_requests(Trace(name="empty"), NoEccPolicy())

    def test_recording_controller_standalone(self):
        controller = RecordingController()
        controller.read(0, 10)
        controller.write(64, 20)
        assert len(controller.recorded) == 2
        assert controller.recorded[0].arrival == 10


class TestReplay:
    def test_replay_completes_all_requests(self):
        trace = BENCHMARKS_BY_NAME["sphinx"].trace(30_000, calibrate=False)
        requests = record_requests(trace, MeccPolicy())
        stats = OpenLoopMemorySystem(policy=FrFcfsPolicy()).run(requests)
        assert stats.issued == len(requests)
        assert all(r.completion is not None for r in requests)

    def test_policy_comparison_on_recorded_traffic(self):
        """FR-FCFS never loses to FCFS on makespan for recorded traffic
        (it degenerates to FCFS when there is nothing to reorder)."""
        trace = BENCHMARKS_BY_NAME["omnetpp"].trace(30_000, calibrate=False)
        base_requests = record_requests(trace, NoEccPolicy())

        def replay(policy):
            fresh = [
                type(r)(op=r.op, address=r.address, arrival=r.arrival,
                        request_id=r.request_id)
                for r in base_requests
            ]
            return OpenLoopMemorySystem(policy=policy).run(fresh)

        fcfs = replay(FcfsPolicy())
        frfcfs = replay(FrFcfsPolicy())
        assert frfcfs.row_hit_rate >= fcfs.row_hit_rate - 0.02
