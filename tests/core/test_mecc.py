"""Tests for the MECC controller state machine."""

import pytest

from repro.core.mdt import MemoryDowngradeTracker
from repro.core.mecc import MeccController
from repro.dram.config import DramOrganization
from repro.dram.device import DramDevice
from repro.ecc.codes import make_scheme
from repro.errors import ConfigurationError
from repro.types import EccMode, SystemState


def small_controller(use_mdt=True):
    org = DramOrganization(capacity_bytes=16 << 20)  # 16 MB for fast tests
    mdt = MemoryDowngradeTracker(org, entries=16) if use_mdt else None
    return MeccController(device=DramDevice(org=org), mdt=mdt, use_mdt=use_mdt)


class TestStateMachine:
    def test_starts_idle_with_slow_refresh(self):
        mecc = small_controller()
        assert mecc.state is SystemState.IDLE
        assert mecc.refresh_period_s == pytest.approx(1.024)

    def test_wake_restores_fast_refresh(self):
        mecc = small_controller()
        mecc.wake()
        assert mecc.state is SystemState.ACTIVE
        assert mecc.refresh_period_s == pytest.approx(0.064)

    def test_idle_entry_restores_slow_refresh(self):
        mecc = small_controller()
        mecc.wake()
        mecc.enter_idle()
        assert mecc.refresh_period_s == pytest.approx(1.024)


class TestDowngradePath:
    def test_first_read_pays_strong_then_weak(self):
        mecc = small_controller()
        mecc.wake()
        cycles1, writeback1 = mecc.on_read(0)
        assert cycles1 == 30
        assert writeback1 is True
        cycles2, writeback2 = mecc.on_read(0)
        assert cycles2 == 2
        assert writeback2 is False
        assert mecc.downgrades == 1
        assert mecc.strong_decodes == 1
        assert mecc.weak_decodes == 1

    def test_downgrade_disabled_keeps_strong(self):
        """SMD path: reads pay strong latency but lines stay strong."""
        mecc = small_controller()
        mecc.wake()
        for _ in range(3):
            cycles, writeback = mecc.on_read(0, downgrade_enabled=False)
            assert cycles == 30
            assert not writeback
        assert mecc.downgrades == 0
        assert mecc.line_store.all_strong()

    def test_write_downgrades_line(self):
        mecc = small_controller()
        mecc.wake()
        mecc.on_write(4096)
        assert mecc.line_store.mode_of(64) is EccMode.WEAK
        cycles, _ = mecc.on_read(4096)
        assert cycles == 2

    def test_write_with_downgrade_disabled_stays_strong(self):
        mecc = small_controller()
        mecc.wake()
        mecc.on_write(4096, downgrade_enabled=False)
        assert mecc.line_store.all_strong()

    def test_mdt_records_regions(self):
        mecc = small_controller()
        mecc.wake()
        mecc.on_read(0)
        mecc.on_read(5 << 20)
        assert mecc.mdt.marked_count == 2


class TestUpgradePath:
    def test_mdt_guided_upgrade_scans_only_marked(self):
        mecc = small_controller()
        mecc.wake()
        mecc.on_read(0)
        mecc.on_read(100)
        report = mecc.enter_idle()
        assert report.used_mdt
        assert report.lines_scanned == mecc.mdt.lines_per_region  # one region
        assert report.lines_converted == 2
        assert mecc.line_store.all_strong()
        assert mecc.mdt.marked_count == 0  # table reset

    def test_full_scan_without_mdt(self):
        mecc = small_controller(use_mdt=False)
        mecc.wake()
        mecc.on_read(0)
        report = mecc.enter_idle()
        assert not report.used_mdt
        assert report.lines_scanned == mecc.device.org.total_lines
        assert report.lines_converted == 1

    def test_full_memory_upgrade_seconds(self):
        """The 1 GB controller's full scan costs ~400 ms (paper Sec. VI-A)."""
        mecc = MeccController(use_mdt=False)
        mecc.wake()
        mecc.on_read(0)
        report = mecc.enter_idle()
        assert report.seconds == pytest.approx(0.4, rel=0.1)

    def test_mdt_upgrade_much_faster(self):
        """MDT cuts upgrade latency ~8x for a 128 MB footprint."""
        full = MeccController(use_mdt=False)
        full.wake()
        full.on_read(0)
        t_full = full.enter_idle().seconds

        tracked = MeccController()
        tracked.wake()
        for mb in range(128):
            tracked.on_read(mb << 20)
        t_mdt = tracked.enter_idle().seconds
        assert t_full / t_mdt == pytest.approx(8.0, rel=0.05)

    def test_upgrade_energy_scales_with_scan(self):
        mecc = small_controller()
        mecc.wake()
        mecc.on_read(0)
        report = mecc.enter_idle()
        expected = report.lines_scanned * mecc.strong.encode_energy_pj * 1e-12
        assert report.encode_energy_j == pytest.approx(expected)

    def test_repeated_idle_entries_are_idempotent(self):
        mecc = small_controller()
        mecc.wake()
        mecc.on_read(0)
        first = mecc.enter_idle()
        second = mecc.enter_idle()
        assert first.lines_converted == 1
        assert second.lines_converted == 0
        assert second.lines_scanned == 0


class TestValidation:
    def test_strong_must_beat_weak(self):
        with pytest.raises(ConfigurationError):
            MeccController(weak=make_scheme(3), strong=make_scheme(2))
