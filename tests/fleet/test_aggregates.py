"""Mergeable streaming aggregates: the fleet layer's numerical core.

The contract under test: aggregating a stream in any sharding, any
order, yields the same result — exactly for counts/histograms, to
float-rounding for the Welford/Chan moments.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.fleet.aggregates import (
    FixedBinHistogram,
    FleetAggregate,
    StreamingMoments,
    merge_aggregates,
)

RNG = random.Random(4242)
VALUES = [RNG.gauss(100.0, 25.0) for _ in range(5_000)]


def _chunks(values, size):
    for start in range(0, len(values), size):
        yield values[start : start + size]


class TestStreamingMoments:
    def test_matches_direct_computation(self):
        moments = StreamingMoments()
        for value in VALUES:
            moments.add(value)
        mean = sum(VALUES) / len(VALUES)
        var = sum((v - mean) ** 2 for v in VALUES) / len(VALUES)
        assert moments.count == len(VALUES)
        assert moments.mean == pytest.approx(mean, rel=1e-12)
        assert moments.variance == pytest.approx(var, rel=1e-9)
        assert moments.stddev == pytest.approx(math.sqrt(var), rel=1e-9)

    @pytest.mark.parametrize("size", [1, 7, 100, 1_000, 5_000])
    def test_chunk_size_invariance(self, size):
        merged = StreamingMoments()
        for chunk in _chunks(VALUES, size):
            part = StreamingMoments()
            for value in chunk:
                part.add(value)
            merged.merge(part)
        whole = StreamingMoments()
        for value in VALUES:
            whole.add(value)
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean, rel=1e-12)
        assert merged.variance == pytest.approx(whole.variance, rel=1e-9)

    def test_merge_order_invariance(self):
        parts = []
        for chunk in _chunks(VALUES, 250):
            part = StreamingMoments()
            for value in chunk:
                part.add(value)
            parts.append(part)
        forward = StreamingMoments()
        for part in parts:
            forward.merge(part)
        backward = StreamingMoments()
        for part in reversed(parts):
            backward.merge(part)
        assert forward.count == backward.count
        assert forward.mean == pytest.approx(backward.mean, rel=1e-12)
        assert forward.variance == pytest.approx(backward.variance, rel=1e-9)

    def test_merge_with_empty_is_identity(self):
        full = StreamingMoments()
        for value in VALUES[:100]:
            full.add(value)
        before = (full.count, full.mean, full.variance)
        full.merge(StreamingMoments())
        assert (full.count, full.mean, full.variance) == before


class TestFixedBinHistogram:
    def test_counts_and_gutters(self):
        hist = FixedBinHistogram(0.0, 10.0, bins=10)
        for value in (-5.0, 0.0, 0.5, 5.0, 9.99, 10.0, 25.0):
            hist.add(value)
        assert hist.total == 7
        assert hist.underflow == 1  # -5.0
        assert hist.overflow == 2  # 10.0 (right edge) and 25.0

    def test_merge_is_exact(self):
        shard_a = FixedBinHistogram(0.0, 200.0, bins=64)
        shard_b = FixedBinHistogram(0.0, 200.0, bins=64)
        whole = FixedBinHistogram(0.0, 200.0, bins=64)
        for i, value in enumerate(VALUES):
            (shard_a if i % 2 else shard_b).add(value)
            whole.add(value)
        shard_a.merge(shard_b)
        assert shard_a.counts == whole.counts
        assert shard_a.underflow == whole.underflow
        assert shard_a.overflow == whole.overflow

    def test_percentiles_close_to_exact(self):
        hist = FixedBinHistogram(0.0, 200.0, bins=400)
        for value in VALUES:
            hist.add(value)
        exact = sorted(VALUES)
        for q in (0.5, 0.9, 0.95, 0.99):
            want = exact[int(q * (len(exact) - 1))]
            # Interpolated sketch error is bounded by one bin width.
            assert hist.percentile(q) == pytest.approx(want, abs=0.5 + 1e-9)

    def test_mismatched_binning_refuses_merge(self):
        with pytest.raises(ConfigurationError):
            FixedBinHistogram(0.0, 1.0, 10).merge(FixedBinHistogram(0.0, 1.0, 20))
        with pytest.raises(ConfigurationError):
            FixedBinHistogram(0.0, 1.0, 10).merge(FixedBinHistogram(0.0, 2.0, 10))

    def test_bad_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedBinHistogram(1.0, 1.0, 10)
        with pytest.raises(ConfigurationError):
            FixedBinHistogram(0.0, 1.0, 0)


class TestFleetAggregate:
    def _fill(self, values):
        agg = FleetAggregate()
        metric = agg.metric("energy", 0.0, 200.0, 64)
        for value in values:
            metric.add(value)
            agg.count_device("light" if value < 120.0 else "heavy")
            agg.count_best_policy("mecc" if value > 100.0 else "baseline")
        return agg

    @pytest.mark.parametrize("size", [1, 37, 500, 5_000])
    def test_sharded_equals_whole(self, size):
        whole = self._fill(VALUES)
        shards = [self._fill(chunk) for chunk in _chunks(VALUES, size)]
        merged = merge_aggregates(shards)
        assert merged.devices == whole.devices
        assert merged.persona_counts == whole.persona_counts
        assert merged.best_policy_counts == whole.best_policy_counts
        ours, theirs = merged.metrics["energy"], whole.metrics["energy"]
        assert ours.histogram.counts == theirs.histogram.counts
        assert ours.moments.mean == pytest.approx(theirs.moments.mean, rel=1e-12)

    def test_merge_order_invariance(self):
        shards = [self._fill(chunk) for chunk in _chunks(VALUES, 250)]
        forward = merge_aggregates(shards)
        backward = merge_aggregates(list(reversed(shards)))
        assert forward.devices == backward.devices
        a, b = forward.metrics["energy"], backward.metrics["energy"]
        assert a.histogram.counts == b.histogram.counts
        assert a.moments.mean == pytest.approx(b.moments.mean, rel=1e-12)
        assert a.moments.variance == pytest.approx(b.moments.variance, rel=1e-9)

    def test_as_dict_shape(self):
        payload = self._fill(VALUES[:100]).as_dict()
        assert payload["devices"] == 100
        assert "energy" in payload["metrics"]
        assert set(payload["metrics"]["energy"]["percentiles"]) == {
            "p50", "p90", "p95", "p99",
        }

    def test_metric_rebinding_conflict_rejected(self):
        agg = FleetAggregate()
        agg.metric("energy", 0.0, 200.0, 64)
        with pytest.raises(ConfigurationError):
            agg.metric("energy", 0.0, 100.0, 64)


class TestShardEdges:
    """Degenerate shardings: no shards, empty shards, one device each."""

    def _fill(self, values):
        agg = FleetAggregate()
        metric = agg.metric("energy", 0.0, 200.0, 64)
        for value in values:
            metric.add(value)
            agg.count_device("light" if value < 120.0 else "heavy")
        return agg

    def test_merge_no_shards_yields_empty_total(self):
        total = merge_aggregates([])
        assert total.devices == 0
        assert total.metrics == {}
        payload = total.as_dict()
        assert payload["devices"] == 0
        assert payload["metrics"] == {}
        assert payload["persona_counts"] == {}

    def test_empty_shards_are_identity(self):
        filled = self._fill(VALUES[:200])
        merged = merge_aggregates(
            [FleetAggregate(), self._fill(VALUES[:200]), FleetAggregate()]
        )
        assert merged.devices == filled.devices
        assert merged.persona_counts == filled.persona_counts
        ours, theirs = merged.metrics["energy"], filled.metrics["energy"]
        assert ours.histogram.counts == theirs.histogram.counts
        assert ours.moments.mean == pytest.approx(theirs.moments.mean, rel=1e-12)
        assert ours.moments.variance == pytest.approx(
            theirs.moments.variance, rel=1e-9
        )

    def test_single_device_shards_equal_whole(self):
        values = VALUES[:200]
        whole = self._fill(values)
        merged = merge_aggregates(self._fill([v]) for v in values)
        assert merged.devices == whole.devices
        assert merged.persona_counts == whole.persona_counts
        ours, theirs = merged.metrics["energy"], whole.metrics["energy"]
        assert ours.histogram.counts == theirs.histogram.counts
        assert ours.moments.mean == pytest.approx(theirs.moments.mean, rel=1e-12)
        assert ours.moments.variance == pytest.approx(
            theirs.moments.variance, rel=1e-9
        )

    def test_unsampled_metric_serializes_without_percentiles(self):
        agg = FleetAggregate()
        agg.metric("energy", 0.0, 200.0, 64)
        payload = agg.as_dict()["metrics"]["energy"]
        assert payload["count"] == 0
        assert payload["mean"] is None
        assert "percentiles" not in payload
