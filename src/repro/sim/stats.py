"""Small statistics helpers shared by the analysis harness."""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.errors import ConfigurationError


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's 'ALL' bar in Fig. 7)."""
    values = list(values)
    if not values:
        raise ConfigurationError("geometric mean of zero values")
    if any(v <= 0 for v in values):
        raise ConfigurationError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize(values: Mapping[str, float], baseline_key: str) -> dict[str, float]:
    """Divide every value by the baseline entry's value."""
    if baseline_key not in values:
        raise ConfigurationError(f"baseline key {baseline_key!r} missing")
    base = values[baseline_key]
    if base == 0:
        raise ConfigurationError("baseline value is zero")
    return {k: v / base for k, v in values.items()}


def arithmetic_mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        raise ConfigurationError("mean of zero values")
    return sum(values) / len(values)
