"""Unit and property tests for GF(2^m) arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.gf import (
    GF2m,
    get_field,
    gf2_poly_degree,
    gf2_poly_gcd,
    gf2_poly_lcm,
    gf2_poly_mod,
    gf2_poly_mul,
)
from repro.errors import ConfigurationError

FIELD = get_field(10)  # the ECC-6 field


class TestConstruction:
    def test_size_and_order(self):
        field = GF2m(4)
        assert field.size == 16
        assert field.order == 15

    def test_rejects_small_m(self):
        with pytest.raises(ConfigurationError):
            GF2m(2)

    def test_rejects_large_m(self):
        with pytest.raises(ConfigurationError):
            GF2m(17)

    def test_rejects_wrong_degree_poly(self):
        with pytest.raises(ConfigurationError):
            GF2m(4, primitive_poly=0b1011)  # degree 3, not 4

    def test_rejects_non_primitive_poly(self):
        # x^4 + x^3 + x^2 + x + 1 is irreducible but NOT primitive
        # (its roots have order 5, not 15).
        with pytest.raises(ConfigurationError):
            GF2m(4, primitive_poly=0b11111)

    def test_rejects_reducible_poly(self):
        # x^4 + x^2 + 1 = (x^2 + x + 1)^2 is reducible; the orbit of
        # alpha revisits earlier elements (including ones whose log is
        # 0) well before covering all 15 nonzero field elements.
        with pytest.raises(ConfigurationError):
            GF2m(4, primitive_poly=0b10101)

    def test_rejects_zero_constant_term_poly(self):
        # x^4 + x^3 + x^2 + x = x * (x^3 + x^2 + x + 1) has x as a
        # factor, so reducing by it maps the orbit onto 0 — the
        # degenerate case where a 0-initialized log table would never
        # flag a duplicate.
        with pytest.raises(ConfigurationError):
            GF2m(4, primitive_poly=0b11110)

    @pytest.mark.parametrize("poly", [0b11111, 0b10101, 0b11110])
    def test_rejection_names_polynomial(self, poly):
        with pytest.raises(ConfigurationError, match="not primitive"):
            GF2m(4, primitive_poly=poly)

    def test_get_field_is_cached(self):
        assert get_field(8) is get_field(8)

    @pytest.mark.parametrize("m", range(3, 17))
    def test_all_default_polynomials_are_primitive(self, m):
        field = GF2m(m)
        assert field.alpha_pow(field.order) == 1


class TestArithmetic:
    def test_add_is_xor(self):
        assert FIELD.add(0b1010, 0b0110) == 0b1100

    def test_mul_by_zero(self):
        assert FIELD.mul(0, 123) == 0
        assert FIELD.mul(123, 0) == 0

    def test_mul_by_one(self):
        assert FIELD.mul(1, 123) == 123

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            FIELD.inv(0)

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            FIELD.div(5, 0)

    def test_pow_zero_base(self):
        assert FIELD.pow(0, 0) == 1
        assert FIELD.pow(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            FIELD.pow(0, -1)

    def test_pow_negative_exponent(self):
        a = 37
        assert FIELD.mul(FIELD.pow(a, -1), a) == 1

    def test_log_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            FIELD.log_alpha(0)

    def test_alpha_log_roundtrip(self):
        for e in (0, 1, 7, 500, 1022):
            assert FIELD.log_alpha(FIELD.alpha_pow(e)) == e % FIELD.order


nonzero = st.integers(min_value=1, max_value=FIELD.order)
element = st.integers(min_value=0, max_value=FIELD.order)


class TestFieldAxioms:
    @given(element, element, element)
    @settings(max_examples=200)
    def test_mul_associative(self, a, b, c):
        assert FIELD.mul(FIELD.mul(a, b), c) == FIELD.mul(a, FIELD.mul(b, c))

    @given(element, element)
    @settings(max_examples=200)
    def test_mul_commutative(self, a, b):
        assert FIELD.mul(a, b) == FIELD.mul(b, a)

    @given(element, element, element)
    @settings(max_examples=200)
    def test_distributive(self, a, b, c):
        left = FIELD.mul(a, FIELD.add(b, c))
        right = FIELD.add(FIELD.mul(a, b), FIELD.mul(a, c))
        assert left == right

    @given(nonzero)
    @settings(max_examples=200)
    def test_inverse(self, a):
        assert FIELD.mul(a, FIELD.inv(a)) == 1

    @given(nonzero, nonzero)
    @settings(max_examples=200)
    def test_div_is_mul_by_inverse(self, a, b):
        assert FIELD.div(a, b) == FIELD.mul(a, FIELD.inv(b))

    @given(element)
    @settings(max_examples=100)
    def test_characteristic_two(self, a):
        assert FIELD.add(a, a) == 0


class TestPolynomials:
    def test_poly_eval_constant(self):
        assert FIELD.poly_eval([7], 3) == 7

    def test_poly_eval_linear(self):
        # p(x) = 2 + 3x at x=5: 2 XOR mul(3, 5)
        assert FIELD.poly_eval([2, 3], 5) == 2 ^ FIELD.mul(3, 5)

    def test_poly_mul_identity(self):
        assert FIELD.poly_mul([1], [4, 5, 6]) == [4, 5, 6]

    def test_poly_mul_empty(self):
        assert FIELD.poly_mul([], [1, 2]) == []

    def test_minimal_polynomial_of_alpha(self):
        # The minimal polynomial of alpha is the primitive polynomial.
        assert FIELD.minimal_polynomial(1) == FIELD.primitive_poly

    def test_minimal_polynomial_has_element_as_root(self):
        field = get_field(6)
        for e in (1, 3, 5, 9):
            mask = field.minimal_polynomial(e)
            coeffs = [(mask >> i) & 1 for i in range(mask.bit_length())]
            assert field.poly_eval(coeffs, field.alpha_pow(e)) == 0


class TestGf2PolyHelpers:
    def test_degree(self):
        assert gf2_poly_degree(0) == -1
        assert gf2_poly_degree(1) == 0
        assert gf2_poly_degree(0b1011) == 3

    def test_mul_known(self):
        # (x + 1)(x + 1) = x^2 + 1 over GF(2)
        assert gf2_poly_mul(0b11, 0b11) == 0b101

    def test_mod(self):
        # x^2 + 1 mod (x + 1) = 0  since x=1 is a root
        assert gf2_poly_mod(0b101, 0b11) == 0

    def test_mod_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf2_poly_mod(0b101, 0)

    def test_gcd(self):
        # gcd((x+1)(x^2+x+1), (x+1)) = x+1
        a = gf2_poly_mul(0b11, 0b111)
        assert gf2_poly_gcd(a, 0b11) == 0b11

    def test_lcm(self):
        a, b = 0b11, 0b111  # coprime
        assert gf2_poly_lcm(a, b) == gf2_poly_mul(a, b)

    def test_lcm_with_common_factor(self):
        a = gf2_poly_mul(0b11, 0b111)
        assert gf2_poly_lcm(a, 0b11) == a

    @given(st.integers(1, 1 << 12), st.integers(1, 1 << 12))
    @settings(max_examples=100)
    def test_lcm_divisible_by_both(self, a, b):
        lcm = gf2_poly_lcm(a, b)
        assert gf2_poly_mod(lcm, a) == 0
        assert gf2_poly_mod(lcm, b) == 0
