"""Tests for the command-line interface."""

import pytest

from repro.cli import EXHIBITS, build_parser, main


@pytest.fixture(autouse=True)
def _restore_runner():
    """main() installs a global runner; re-pin the hermetic one after."""
    yield
    from repro.analysis.runner import configure_runner

    configure_runner(jobs=1, cache_dir=None)


class TestParser:
    def test_all_exhibits_are_choices(self):
        parser = build_parser()
        for name in EXHIBITS:
            args = parser.parse_args([name])
            assert args.exhibit == name

    def test_default_instructions(self):
        args = build_parser().parse_args(["table1"])
        assert args.instructions == 400_000

    def test_rejects_unknown_exhibit(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXHIBITS:
            assert name in out

    def test_analytic_exhibits(self, capsys):
        for name in ("table1", "fig2", "fig8", "related-work"):
            assert main([name]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Fig. 8" in out

    def test_simulation_exhibit_small(self, capsys):
        from repro.analysis.experiments import clear_caches

        clear_caches()
        assert main(["fig3", "--instructions", "30000"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "High-MPKI" in out


class TestTraceTools:
    def test_trace_gen_and_sim_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "t.trace"
        assert main(["trace-gen", "--benchmark", "povray",
                     "--instructions", "30000", "-o", str(path)]) == 0
        assert path.exists()
        assert main(["trace-sim", "-i", str(path), "--policy", "secded"]) == 0
        out = capsys.readouterr().out
        assert "povray" in out
        assert "IPC" in out

    def test_trace_gen_requires_output(self, capsys):
        assert main(["trace-gen", "--benchmark", "povray"]) == 2

    def test_trace_gen_unknown_benchmark(self, capsys):
        assert main(["trace-gen", "--benchmark", "doom", "-o", "/tmp/x"]) == 2

    def test_trace_sim_requires_input(self, capsys):
        assert main(["trace-sim"]) == 2

    def test_trace_sim_exports_event_trace(self, tmp_path, capsys):
        from repro.obs.trace import read_jsonl

        trace_path = tmp_path / "t.trace"
        events_path = tmp_path / "events.jsonl"
        assert main(["trace-gen", "--benchmark", "povray",
                     "--instructions", "20000", "-o", str(trace_path)]) == 0
        assert main(["trace-sim", "-i", str(trace_path), "--policy", "mecc",
                     "--trace", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert f"trace events to {events_path}" in out
        assert "invariants:" in out and "0 violations" in out
        with open(events_path, encoding="utf-8") as stream:
            events = read_jsonl(stream)
        kinds = {(e.source, e.kind) for e in events}
        assert ("engine", "run_start") in kinds
        assert ("engine", "run_end") in kinds

    def test_trace_sim_writes_metrics(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "t.trace"
        metrics_path = tmp_path / "metrics.json"
        assert main(["trace-gen", "--benchmark", "povray",
                     "--instructions", "20000", "-o", str(trace_path)]) == 0
        assert main(["trace-sim", "-i", str(trace_path), "--policy", "mecc+smd",
                     "--metrics-out", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert f"metrics to {metrics_path}" in out
        snapshot = json.loads(metrics_path.read_text(encoding="utf-8"))
        # trace-gen rounds up to whole inter-access gaps.
        assert snapshot["sim.instructions"] >= 20000
        assert snapshot["invariants.violations"] == 0
        assert snapshot["obs.trace.emitted"] >= 2
        assert "dram.reads" in snapshot

    def test_exhibit_metrics_out_records_runner(self, tmp_path, capsys):
        import json

        from repro.analysis.experiments import clear_caches

        clear_caches()
        metrics_path = tmp_path / "runner_metrics.json"
        assert main(["fig3", "--instructions", "30000",
                     "--metrics-out", str(metrics_path)]) == 0
        snapshot = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert snapshot["runner.jobs"] == 1
        assert snapshot["runner.job_count"] > 0
        assert "runner.code_version" in snapshot


class TestFaultInject:
    def test_fixed_errors(self, capsys):
        assert main(["fault-inject", "--errors", "6", "--trials", "20"]) == 0
        out = capsys.readouterr().out
        assert "corrected" in out
        assert "silent-corruption rate 0.0000" in out

    def test_ber_mode(self, capsys):
        assert main(["fault-inject", "--mode", "weak", "--trials", "30"]) == 0
        out = capsys.readouterr().out
        assert "weak mode" in out


class TestRunnerFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig7"])
        assert args.jobs is None
        assert args.cache_dir is None
        assert not args.no_cache
        assert args.manifest is None

    def test_cache_and_manifest_flags(self, tmp_path, capsys):
        import json

        from repro.analysis.experiments import clear_caches

        cache = tmp_path / "cache"
        manifest = tmp_path / "manifest.json"
        argv = ["fig14", "--instructions", "20000",
                "--cache-dir", str(cache), "--manifest", str(manifest)]
        clear_caches()
        assert main(argv) == 0
        first = json.loads(manifest.read_text())
        assert first["cache"]["hits"] == 0
        assert first["totals"]["job_count"] > 0
        assert list(cache.rglob("*.json"))

        # Second invocation: every job served from the on-disk cache.
        clear_caches()
        assert main(argv) == 0
        second = json.loads(manifest.read_text())
        assert second["cache"]["hits"] == first["totals"]["job_count"]
        assert second["cache"]["misses"] == 0
        out = capsys.readouterr().out
        assert "Experiment runner" in out
        assert "cache hit rate 100%" in out

    def test_no_cache_overrides_cache_dir(self, tmp_path, capsys):
        from repro.analysis.experiments import clear_caches

        cache = tmp_path / "cache"
        clear_caches()
        assert main(["fig14", "--instructions", "20000", "--jobs", "1",
                     "--cache-dir", str(cache), "--no-cache"]) == 0
        assert not cache.exists()


class TestCsvExport:
    def test_csv_requires_output(self):
        assert main(["csv"]) == 2

    def test_csv_export(self, tmp_path, capsys):
        from repro.analysis.experiments import clear_caches

        clear_caches()
        assert main(["csv", "-o", str(tmp_path), "--instructions", "20000"]) == 0
        assert (tmp_path / "table1.csv").exists()
        assert (tmp_path / "fig7.csv").exists()


class TestChaosCli:
    def test_chaos_runs_and_reports_zero_silent(self, capsys):
        assert main(["chaos", "--trials", "5", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "chaos campaign 'metadata'" in out
        assert "silent corruptions: 0" in out

    def test_chaos_is_deterministic(self, capsys):
        assert main(["chaos", "--trials", "4", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(["chaos", "--trials", "4", "--seed", "7"]) == 0
        assert capsys.readouterr().out == first

    def test_chaos_custom_class_list(self, capsys):
        code = main(
            ["chaos", "--campaign", "mdt-false-set,smd-counter", "--trials", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos campaign 'custom'" in out

    def test_chaos_unknown_class_fails_cleanly(self, capsys):
        assert main(["chaos", "--campaign", "not-a-fault"]) == 2
        assert "unknown fault class" in capsys.readouterr().err

    def test_chaos_metrics_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "chaos.json"
        code = main(
            ["chaos", "--trials", "3", "--metrics-out", str(path)]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["chaos.silent_corruptions"] == 0

    def test_resilience_flags_parse(self):
        args = build_parser().parse_args(
            [
                "fig7",
                "--timeout", "3.5",
                "--retries", "2",
                "--checkpoint", "ckpt.json",
                "--resume", "ckpt.json",
            ]
        )
        assert args.timeout == 3.5
        assert args.retries == 2
        assert args.checkpoint == "ckpt.json"
        assert args.resume == "ckpt.json"


class TestValidate:
    def test_validate_passes_at_default_tolerance(self, capsys):
        assert main(["validate", "--trials", "2000"]) == 0
        out = capsys.readouterr().out
        assert "model validation" in out
        assert "PASS" in out

    def test_validate_forced_disagreement_exits_nonzero(self, capsys):
        # An impossible tolerance with the noise fallback disabled must
        # turn every comparison into a disagreement and exit 1.
        assert main(
            ["validate", "--trials", "200", "--tolerance", "-1", "--sigma", "0"]
        ) == 1
        captured = capsys.readouterr()
        assert "DISAGREEMENT" in captured.err
        assert "FAIL" in captured.out


class TestFidelity:
    def test_reduced_set_passes(self, capsys):
        assert main(["fidelity", "--claim-set", "reduced"]) == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out
        assert "F8-REFRESH-16X" in out

    def test_violated_claim_named_and_nonzero(self, monkeypatch, capsys):
        import dataclasses

        from repro.fidelity import claims as claims_mod

        claim = claims_mod.CLAIMS["F8-REFRESH-16X"]
        monkeypatch.setitem(
            claims_mod.CLAIMS,
            "F8-REFRESH-16X",
            dataclasses.replace(claim, expected=0.95, low=0.9, high=1.0),
        )
        assert main(["fidelity", "--claim-set", "reduced"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION F8-REFRESH-16X" in out
        assert "verdict: FAIL" in out

    def test_list_claims(self, capsys):
        assert main(["fidelity", "--list-claims"]) == 0
        out = capsys.readouterr().out
        assert "F8-REFRESH-16X" in out
        assert "T1-LINE-FAILURE-ECC6" in out

    def test_explicit_claims_and_report_json(self, tmp_path, capsys):
        import json

        report = tmp_path / "fidelity.json"
        code = main([
            "fidelity", "--claims", "MDT-STORAGE-128B,F8-REFRESH-16X",
            "--report-json", str(report),
        ])
        assert code == 0
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert payload["evaluated"] == 2
        assert payload["failed"] == 0
        assert {c["id"] for c in payload["claims"]} == {
            "MDT-STORAGE-128B", "F8-REFRESH-16X",
        }

    def test_unknown_claim_exits_2(self, capsys):
        assert main(["fidelity", "--claims", "NO-SUCH-CLAIM"]) == 2
        assert "NO-SUCH-CLAIM" in capsys.readouterr().err


class TestFleet:
    ARGS = ["--devices", "2000", "--shard-size", "500", "--instructions", "10000"]

    def test_fleet_summary_table(self, capsys):
        assert main(["fleet"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "fleet: 2000 devices, 4 shard(s)" in out
        assert "saving_fraction.mean" in out
        assert "best_policy.mecc" in out

    def test_fleet_report_index_and_metrics(self, tmp_path, capsys):
        import json

        report = tmp_path / "fleet.json"
        index = tmp_path / "index.json"
        metrics = tmp_path / "metrics.json"
        code = main([
            "fleet", *self.ARGS, "--output", str(report),
            "--index-out", str(index), "--metrics-out", str(metrics),
        ])
        assert code == 0
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert payload["devices"] == 2000
        assert payload["aggregate"]["devices"] == 2000
        from repro.fleet import PolicyIndex

        assert set(PolicyIndex.load(index).personas) == {
            "light", "moderate", "heavy",
        }
        snapshot = json.loads(metrics.read_text(encoding="utf-8"))
        assert snapshot["fleet.devices"] == 2000
        assert "runner.job_count" in snapshot

    def test_fleet_report_is_deterministic(self, tmp_path):
        import json

        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main([
                "fleet", *self.ARGS, "--fleet-seed", "3",
                "--output", str(path),
            ]) == 0
        a = json.loads(paths[0].read_text(encoding="utf-8"))
        b = json.loads(paths[1].read_text(encoding="utf-8"))
        assert a == b

    def test_fleet_custom_mix_and_schemes(self, capsys):
        code = main([
            "fleet", *self.ARGS,
            "--mix", "minimal:0.6,gamer:0.4",
            "--schemes", "baseline,mecc",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "energy_j.mecc.mean" in out
        assert "energy_j.secded.mean" not in out

    def test_fleet_bad_mix_exits_2(self, capsys):
        assert main(["fleet", *self.ARGS, "--mix", "nosuch:1.0"]) == 2
        assert "unknown personas" in capsys.readouterr().err

    def test_fleet_unknown_scheme_lists_valid_choices(self, capsys):
        assert main([
            "fleet", *self.ARGS, "--schemes", "baseline,bogus"
        ]) == 2
        err = capsys.readouterr().err
        assert "unknown schemes" in err
        assert "bogus" in err
        assert "choose from" in err
        assert "mecc" in err


class TestServe:
    ARGS = ["--instructions", "10000"]

    def test_serve_requires_port_or_self_test(self, capsys):
        assert main(["serve"] + self.ARGS) == 2
        assert "--self-test" in capsys.readouterr().err

    def test_serve_self_test_smoke(self, capsys):
        code = main([
            "serve", *self.ARGS, "--self-test", "250",
            "--concurrency", "200", "--queue-limit", "256",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serve self-test: 250 requests" in out
        assert "latency_p50_ms" in out
        assert "latency_p95_ms" in out

    def test_serve_from_saved_index(self, tmp_path, capsys):
        index = tmp_path / "index.json"
        assert main([
            "fleet", "--devices", "500", "--shard-size", "500",
            "--instructions", "10000", "--index-out", str(index),
        ]) == 0
        code = main([
            "serve", "--index", str(index), "--self-test", "50",
            "--concurrency", "25",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "completed" in out

    def test_serve_unknown_scheme_lists_valid_choices(self, capsys):
        code = main([
            "serve", *self.ARGS, "--self-test", "5",
            "--schemes", "baseline,warpdrive",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown schemes" in err
        assert "warpdrive" in err
        assert "choose from" in err

    def test_serve_missing_index_exits_2(self, tmp_path, capsys):
        code = main([
            "serve", "--index", str(tmp_path / "nope.json"),
            "--self-test", "5",
        ])
        assert code == 2
        assert "cannot read policy index" in capsys.readouterr().err

    def test_serve_metrics_out(self, tmp_path):
        import json

        metrics = tmp_path / "metrics.json"
        assert main([
            "serve", *self.ARGS, "--self-test", "40",
            "--concurrency", "20", "--metrics-out", str(metrics),
        ]) == 0
        snapshot = json.loads(metrics.read_text(encoding="utf-8"))
        assert snapshot["service.requests_total"] == 40
        assert snapshot["service.completed"] == 40
        assert "service.latency_p95_ms" in snapshot
