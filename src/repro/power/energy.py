"""Energy and EDP accounting (paper Sec. IV-D figures of merit).

Combines the power calculator with simulation statistics to produce the
metrics of Figs. 9 and 10: active-mode power/energy/EDP and the total
memory-system energy split between active and idle periods (the paper
assumes 95% idle time, per the smartphone usage studies it cites).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.power.calculator import BankUtilization, DramPowerCalculator
from repro.types import EnergyBreakdown


def energy_delay_product(energy_j: float, time_s: float) -> float:
    """EDP = dissipated energy x execution time (paper Eq. 2)."""
    if energy_j < 0 or time_s < 0:
        raise ConfigurationError("energy and time must be non-negative")
    return energy_j * time_s


@dataclass(frozen=True)
class CodecActivity:
    """ECC encoder/decoder event counts over an active-mode run."""

    weak_decodes: int = 0
    strong_decodes: int = 0
    encodes: int = 0

    def __post_init__(self) -> None:
        if min(self.weak_decodes, self.strong_decodes, self.encodes) < 0:
            raise ConfigurationError("codec event counts must be non-negative")


class ActiveEnergyModel:
    """Turn utilization statistics + codec activity into joules.

    Args:
        calculator: the DRAM power model.
        weak_decode_energy_pj: per-line weak-ECC decode energy.
        strong_decode_energy_pj: per-line strong-ECC decode energy
            (paper: ~40 pJ for ECC-6, vs. ~12 nJ per DRAM line read).
        encode_energy_pj: per-line encode energy.
    """

    def __init__(
        self,
        calculator: DramPowerCalculator | None = None,
        weak_decode_energy_pj: float = 2.0,
        strong_decode_energy_pj: float = 40.0,
        encode_energy_pj: float = 2.0,
    ):
        self.calculator = calculator or DramPowerCalculator()
        self.weak_decode_energy_pj = weak_decode_energy_pj
        self.strong_decode_energy_pj = strong_decode_energy_pj
        self.encode_energy_pj = encode_energy_pj

    def energy(
        self,
        util: BankUtilization,
        duration_s: float,
        codec: CodecActivity | None = None,
        refresh_period_s: float = 0.064,
    ) -> EnergyBreakdown:
        """Active-mode energy breakdown over ``duration_s`` seconds."""
        if duration_s < 0:
            raise ConfigurationError("duration_s must be non-negative")
        power = self.calculator.active_power(util, refresh_period_s)
        codec = codec or CodecActivity()
        codec_energy = 1e-12 * (
            codec.weak_decodes * self.weak_decode_energy_pj
            + codec.strong_decodes * self.strong_decode_energy_pj
            + codec.encodes * self.encode_energy_pj
        )
        return EnergyBreakdown(
            background=power.background * duration_s,
            activate_precharge=power.activate_precharge * duration_s,
            read_write=power.read_write * duration_s,
            refresh=power.refresh * duration_s,
            ecc_codec=codec_energy,
        )


@dataclass(frozen=True)
class TotalEnergySplit:
    """Total memory energy over a usage period, split active/idle (Fig. 10)."""

    active_energy_j: float
    idle_energy_j: float

    @property
    def total_j(self) -> float:
        return self.active_energy_j + self.idle_energy_j

    @property
    def idle_fraction_of_energy(self) -> float:
        if self.total_j == 0:
            return 0.0
        return self.idle_energy_j / self.total_j


def total_energy_split(
    active_power_w: float,
    idle_power_w: float,
    total_time_s: float,
    idle_time_fraction: float = 0.95,
) -> TotalEnergySplit:
    """Combine active and idle power over a duty cycle (paper Fig. 10).

    Args:
        active_power_w: average memory power while the device is in use.
        idle_power_w: average memory power in self-refresh.
        total_time_s: length of the usage period.
        idle_time_fraction: fraction of time the device is idle
            (paper: 0.95, from smartphone usage studies).
    """
    if not 0.0 <= idle_time_fraction <= 1.0:
        raise ConfigurationError("idle_time_fraction must be in [0, 1]")
    if min(active_power_w, idle_power_w, total_time_s) < 0:
        raise ConfigurationError("powers and time must be non-negative")
    idle_t = total_time_s * idle_time_fraction
    active_t = total_time_s - idle_t
    return TotalEnergySplit(
        active_energy_j=active_power_w * active_t,
        idle_energy_j=idle_power_w * idle_t,
    )
