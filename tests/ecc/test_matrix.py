"""Tests for the fast-path matrix machinery and codec counters."""

import random

import pytest

from repro.ecc.bch import BchCode
from repro.ecc.counters import CodecCounters
from repro.ecc.matrix import (
    CHUNK_BITS,
    build_chunk_tables,
    cached_tables,
    clear_table_cache,
    fold_word,
    table_cache_info,
)
from repro.errors import UncorrectableError


class TestChunkTables:
    def test_single_chunk_subset_xor(self):
        contributions = [1 << i for i in range(CHUNK_BITS)]
        tables = build_chunk_tables(contributions)
        assert len(tables) == 1
        # For identity contributions the subset-XOR of byte b is b itself.
        assert tables[0] == list(range(1 << CHUNK_BITS))

    def test_partial_last_chunk(self):
        contributions = [3, 5, 9]  # 3 bits -> one chunk, 5 bits unused
        (table,) = build_chunk_tables(contributions)
        assert table[0b001] == 3
        assert table[0b110] == 5 ^ 9
        assert table[0b111] == 3 ^ 5 ^ 9
        # High bits of the byte beyond the contribution list add nothing.
        assert table[0b1000_0111] == table[0b111]

    def test_fold_matches_naive_per_bit_xor(self):
        rng = random.Random(13)
        contributions = [rng.getrandbits(40) for _ in range(100)]
        tables = build_chunk_tables(contributions)
        for _ in range(50):
            word = rng.getrandbits(100)
            naive = 0
            for p in range(100):
                if (word >> p) & 1:
                    naive ^= contributions[p]
            assert fold_word(tables, word) == naive

    def test_fold_zero_word(self):
        tables = build_chunk_tables([7] * 16)
        assert fold_word(tables, 0) == 0


class TestTableCache:
    def test_hit_and_miss_accounting(self):
        calls = []

        def builder():
            calls.append(1)
            return object()

        key = ("test-matrix", "hit-miss-accounting")
        before = table_cache_info()
        first = cached_tables(key, builder)
        second = cached_tables(key, builder)
        after = table_cache_info()
        assert first is second
        assert len(calls) == 1
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] == before["hits"] + 1

    def test_codecs_with_same_config_share_tables(self):
        a = BchCode(t=3, data_bits=64)
        hits_before = table_cache_info()["hits"]
        b = BchCode(t=3, data_bits=64)
        assert table_cache_info()["hits"] > hits_before
        data = random.Random(1).getrandbits(64)
        assert a.encode(data) == b.encode(data)

    def test_clear_resets_counters_but_not_behavior(self):
        code = BchCode(t=2, data_bits=64)
        word = code.encode(12345)
        clear_table_cache()
        info = table_cache_info()
        assert info == {"hits": 0, "misses": 0, "entries": 0}
        # Rebuilt tables produce identical codewords.
        assert BchCode(t=2, data_bits=64).encode(12345) == word
        assert table_cache_info()["misses"] >= 1


class TestCodecCounters:
    def test_fast_paths_count_reference_paths_do_not(self):
        code = BchCode(t=2, data_bits=64)
        code.counters.reset()
        word = code.encode(999)
        code.encode_reference(999)
        code.decode(word ^ 0b11)
        code.decode_reference(word ^ 0b11)
        assert code.counters.encodes == 1
        assert code.counters.decodes == 1
        assert code.counters.corrected_histogram == {2: 1}

    def test_detected_uncorrectable_counts(self):
        code = BchCode(t=1, data_bits=64, extended=True)
        code.counters.reset()
        word = code.encode(5)
        with pytest.raises(UncorrectableError):
            code.decode(word ^ 0b101)
        assert code.counters.detected_uncorrectable == 1
        assert code.counters.decodes == 1

    def test_merge_and_totals(self):
        a = CodecCounters(encodes=2, decodes=3, corrected_histogram={0: 2, 2: 1})
        b = CodecCounters(
            decodes=1, detected_uncorrectable=1, corrected_histogram={2: 4}
        )
        merged = a.merge(b)
        assert merged.encodes == 2
        assert merged.decodes == 4
        assert merged.detected_uncorrectable == 1
        assert merged.corrected_histogram == {0: 2, 2: 5}
        assert merged.corrected_bits_total == 10
        assert merged.words_with_correction == 5

    def test_as_dict_snapshot(self):
        counters = CodecCounters()
        counters.record_encodes(3)
        counters.record_decode(0)
        counters.record_decode(4)
        counters.record_detected()
        snapshot = counters.as_dict()
        assert snapshot["encodes"] == 3
        assert snapshot["decodes"] == 3
        assert snapshot["detected_uncorrectable"] == 1
        assert snapshot["corrected_bits_total"] == 4
        assert snapshot["corrected_histogram"] == {0: 1, 4: 1}

    def test_batch_apis_count_every_word(self):
        code = BchCode(t=2, data_bits=64)
        code.counters.reset()
        datas = list(range(10))
        words = code.encode_batch(datas)
        code.decode_batch(words)
        assert code.counters.encodes == 10
        assert code.counters.decodes == 10
