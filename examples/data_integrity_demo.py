#!/usr/bin/env python3
"""Prove MECC's integrity claim on the real data path.

Everything in the paper's evaluation models latency and power; this demo
runs the actual machinery — 576-bit stored lines under the (72,64)
morphable layout, BCH ECC-6 and SEC-DED decoders, 4-way-replicated mode
bits — through hours of simulated wake/idle cycles with retention faults
injected at each scheme's refresh period, and verifies every byte.

Retention faults are accelerated (BER 1e-3 instead of the paper's
10^-4.5 at 1 s) so corrections are frequent enough to watch; the margin
against ECC-6's 6-error budget is preserved.

Usage::

    python examples/data_integrity_demo.py [cycles]
"""

import sys

from repro.functional.faults import FaultProcess, SoftErrorModel
from repro.functional.session import FunctionalMeccSession
from repro.reliability.retention import RetentionModel

ACCELERATED_BER = 1e-3


def main() -> None:
    cycles = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    print(f"Running {cycles} wake/idle cycles per scheme "
          f"(48-line working set, 3-minute idle periods, BER {ACCELERATED_BER:g} at 1 s)\n")
    print(f"{'scheme':10} {'sim time':>9} {'reads':>6} {'corrected':>10} "
          f"{'detected':>9} {'silent':>7}  verdict")
    for scheme in ("mecc", "secded", "ecc6", "none-slow"):
        faults = FaultProcess(
            retention=RetentionModel(anchor_ber=ACCELERATED_BER),
            soft_errors=SoftErrorModel(rate_per_bit_s=0.0),
            seed=42,
        )
        session = FunctionalMeccSession(
            scheme=scheme, working_set_lines=48, faults=faults, seed=42,
            accesses_per_active_phase=64, idle_seconds=180.0,
        )
        report = session.run(cycles)
        c = report.counters
        verdict = "DATA LOST" if report.lost_data else "all data intact"
        print(f"{scheme:10} {report.simulated_seconds / 60:8.1f}m {c.reads:6} "
              f"{c.corrected_bits:10} {c.detected_uncorrectable:9} "
              f"{c.silent_corruptions:7}  {verdict}")

    print("""
What happened:
* mecc      — idle at 1 s under ECC-6; every retention flip that landed
              during an idle period was corrected by the real BCH decoder
              on the first access after wake-up (then the line ran at
              SEC-DED latency).  Zero loss, 16x fewer refreshes.
* secded    — safe only because it never left the 64 ms refresh: zero
              corrections needed, zero refresh savings.
* ecc6      — same safety as MECC, but every read of the session paid the
              30-cycle strong decode (the 10% slowdown of Fig. 7).
* none-slow — a 1 s refresh with no ECC: silent corruption on a large
              share of reads.  This is the strawman that motivates the
              whole paper.""")


if __name__ == "__main__":
    main()
