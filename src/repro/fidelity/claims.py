"""Machine-readable registry of the paper's quantitative claims.

Every headline number in *Reducing Refresh Power in Mobile Devices with
Morphable ECC* — the 16x refresh reduction, the ~2x idle-power saving,
the ~1.2% MECC slowdown vs ~10% for ECC-6-everywhere, the 400 ms → 50 ms
MDT upgrade latency, the MPKC=2 SMD gating — is registered here as a
:class:`Claim`: an ID, its paper source (section / figure / table), the
expected value, an explicit tolerance band ``[low, high]``, and an
evaluator that measures the value from the reproduction.  The
conformance engine (:mod:`repro.fidelity.engine`) runs every evaluator
and fails loudly when a measured value drifts out of its band, so a
regression anywhere in the stack cannot silently bend a figure.

Claims come in two kinds:

* ``analytic`` — closed-form or cheap model evaluations (Table I, the
  retention anchors, idle power, MDT latency, the related-work rates,
  the :mod:`repro.analysis.validation` cross-checks).  These form the
  ``reduced`` claim set used as a CI merge gate.
* ``simulation`` — claims measured from cycle simulation of the full
  benchmark suite (Figs. 7/10/14).  Evaluators route through the cached
  :class:`repro.analysis.runner.ExperimentRunner`, so they parallelize
  with ``--jobs`` and reuse the on-disk cache; seeds are pinned end to
  end, making every measured value deterministic.

The registry is exported as a machine-readable artifact
(``claims.json``, checked by ``tests/fidelity/test_claims.py`` and
regenerable with ``REPRO_REGEN_GOLDEN=1``).
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

from repro.errors import ConfigurationError
from repro.sim.system import ScaledRun
from repro.workloads.spec import ALL_BENCHMARKS, SMD_ALWAYS_DISABLED, BenchmarkSpec

#: Schema version of the exported ``claims.json`` artifact.
CLAIMS_SCHEMA = 1

#: Default slice length for simulation-backed claims (matches the CLI).
DEFAULT_CLAIM_INSTRUCTIONS = 400_000


@dataclass(frozen=True)
class Claim:
    """One quantitative paper claim with its tolerance band.

    Attributes:
        id: stable identifier (``F8-REFRESH-16X`` style).
        source: where the paper states it (section / figure / table).
        statement: the claim in the paper's words (abbreviated).
        expected: the paper's value (what ``relative_error`` is against).
        low: inclusive lower bound of the acceptance band.
        high: inclusive upper bound of the acceptance band.
        unit: unit of the measured value ("" for ratios/counts).
        kind: ``analytic`` (reduced set) or ``simulation`` (full set).
        module: the implementing module (documentation cross-link).
        checked_by: the test/bench that also pins this claim.
    """

    id: str
    source: str
    statement: str
    expected: float
    low: float
    high: float
    unit: str = ""
    kind: str = "analytic"
    module: str = ""
    checked_by: str = ""

    def __post_init__(self) -> None:
        if not self.id:
            raise ConfigurationError("claim id must be non-empty")
        if not self.low <= self.high:
            raise ConfigurationError(f"claim {self.id}: low must be <= high")
        if self.kind not in ("analytic", "simulation"):
            raise ConfigurationError(f"claim {self.id}: unknown kind {self.kind!r}")

    def band_contains(self, measured: float) -> bool:
        """True when ``measured`` lies inside ``[low, high]``."""
        return self.low <= measured <= self.high and math.isfinite(measured)

    def relative_error(self, measured: float) -> float:
        """|measured - expected| / |expected| (absolute error at expected 0)."""
        if self.expected == 0:
            return abs(measured)
        return abs(measured - self.expected) / abs(self.expected)

    def as_dict(self) -> dict:
        return asdict(self)


# ---------------------------------------------------------------------------
# Evaluation context — shared, memoized experiment products
# ---------------------------------------------------------------------------


@dataclass
class FidelityContext:
    """Shared state for one conformance evaluation pass.

    Simulation-backed evaluators all draw from the same two batched
    fan-outs (the benchmark x policy performance suite and the MECC+SMD
    suite), memoized here *and* in :mod:`repro.analysis.experiments`'s
    process-wide cache, which itself sits above the experiment runner's
    on-disk cache — so a conformance pass costs each distinct simulation
    at most once, ever.
    """

    run: ScaledRun = field(
        default_factory=lambda: ScaledRun(instructions=DEFAULT_CLAIM_INSTRUCTIONS)
    )
    benchmarks: tuple[BenchmarkSpec, ...] = ALL_BENCHMARKS
    _performance: object = field(default=None, repr=False)
    _smd_outcomes: object = field(default=None, repr=False)
    _fig10: object = field(default=None, repr=False)

    def warmup(self, claims: list[Claim]) -> None:
        """Batch-submit every simulation the claims will need.

        One :func:`repro.analysis.experiments.run_policy_suites` call
        fans all benchmark x policy jobs out through the experiment
        runner together (keeping a ``--jobs N`` pool saturated), and the
        SMD suite rides the same runner; evaluators then hit the memo.
        """
        kinds = {c.kind for c in claims}
        if "simulation" in kinds:
            self.performance()
            self.smd_outcomes()

    def performance(self):
        """Fig. 7's normalized-IPC table (memoized)."""
        if self._performance is None:
            from repro.analysis.experiments import fig7_performance

            self._performance = fig7_performance(self.run, self.benchmarks)
        return self._performance

    def smd_outcomes(self):
        """MECC+SMD outcomes per benchmark (memoized)."""
        if self._smd_outcomes is None:
            from repro.analysis.experiments import run_smd_suite

            self._smd_outcomes = run_smd_suite(self.run, self.benchmarks)
        return self._smd_outcomes

    def fig10(self):
        """Fig. 10's total-energy split (memoized)."""
        if self._fig10 is None:
            from repro.analysis.experiments import fig10_total_energy

            self._fig10 = fig10_total_energy(self.run, benchmarks=self.benchmarks)
        return self._fig10


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

CLAIMS: dict[str, Claim] = {}
EVALUATORS: dict[str, Callable[[FidelityContext], float]] = {}


def register(claim: Claim):
    """Register ``claim`` with the decorated function as its evaluator."""

    def decorator(fn: Callable[[FidelityContext], float]):
        if claim.id in CLAIMS:
            raise ConfigurationError(f"duplicate claim id {claim.id!r}")
        CLAIMS[claim.id] = claim
        EVALUATORS[claim.id] = fn
        return fn

    return decorator


def claims_in_set(name: str) -> list[Claim]:
    """Resolve a named claim set: ``reduced`` (analytic) or ``full``."""
    if name == "full":
        return list(CLAIMS.values())
    if name == "reduced":
        return [c for c in CLAIMS.values() if c.kind == "analytic"]
    raise ConfigurationError(
        f"unknown claim set {name!r}; choose from {', '.join(CLAIM_SETS)}"
    )


CLAIM_SETS = ("reduced", "full")


def resolve_claims(ids: list[str] | None = None) -> list[Claim]:
    """Claims for explicit ids (registry order), or the full set."""
    if ids is None:
        return list(CLAIMS.values())
    unknown = [i for i in ids if i not in CLAIMS]
    if unknown:
        raise ConfigurationError(
            f"unknown claim id(s): {', '.join(sorted(unknown))}; choose from "
            f"{', '.join(CLAIMS)}"
        )
    wanted = set(ids)
    return [c for c in CLAIMS.values() if c.id in wanted]


def claims_payload() -> dict:
    """The registry as a JSON-safe payload (the ``claims.json`` artifact)."""
    return {
        "schema": CLAIMS_SCHEMA,
        "paper": "Reducing Refresh Power in Mobile Devices with Morphable ECC (DSN 2015)",
        "claims": [c.as_dict() for c in CLAIMS.values()],
    }


def write_claims_json(path: str | Path | None = None) -> str:
    """Write the registry artifact; defaults to the packaged location."""
    target = Path(path) if path is not None else packaged_claims_path()
    with open(target, "w", encoding="utf-8") as stream:
        json.dump(claims_payload(), stream, indent=2, sort_keys=True)
        stream.write("\n")
    return str(target)


def packaged_claims_path() -> Path:
    """Location of the shipped ``claims.json`` artifact."""
    return Path(__file__).resolve().parent / "claims.json"


# ---------------------------------------------------------------------------
# Analytic claims (the ``reduced`` merge-gate set)
# ---------------------------------------------------------------------------


@register(Claim(
    id="T1-LINE-FAILURE-ECC6",
    source="Table I",
    statement="P(line failure) for ECC-6 at BER 10^-4.5 is 1.2e-16",
    expected=1.2e-16, low=1.0e-16, high=1.5e-16,
    module="repro.reliability.failure",
    checked_by="tests/reliability/test_failure.py::TestTable1",
))
def _line_failure_ecc6(ctx: FidelityContext) -> float:
    from repro.reliability.failure import DEFAULT_BER, line_failure_probability

    return line_failure_probability(DEFAULT_BER, 6, 576)


@register(Claim(
    id="T1-PROVISION-ECC6",
    source="Table I / Sec. II-C",
    statement="1e-6 system target needs ECC-5; +1 soft-error margin = ECC-6",
    expected=6, low=6, high=6, unit="t",
    module="repro.reliability.provisioning",
    checked_by="tests/reliability/test_provisioning.py",
))
def _provision_ecc6(ctx: FidelityContext) -> float:
    from repro.reliability.failure import DEFAULT_BER
    from repro.reliability.provisioning import required_ecc_strength

    return float(required_ecc_strength(DEFAULT_BER))


@register(Claim(
    id="F2-BER-64MS",
    source="Fig. 2 / Sec. II-B",
    statement="bit failure probability at the 64 ms JEDEC period is 1e-9",
    expected=1e-9, low=0.999e-9, high=1.001e-9,
    module="repro.reliability.retention",
    checked_by="tests/reliability/test_retention.py::TestAnchors",
))
def _ber_64ms(ctx: FidelityContext) -> float:
    from repro.reliability.retention import RetentionModel

    return RetentionModel().ber_at_refresh_period(0.064)


@register(Claim(
    id="F2-BER-1S",
    source="Fig. 2 / Sec. II-B",
    statement="bit failure probability at a 1 s refresh period is 10^-4.5",
    expected=10.0 ** -4.5, low=0.999 * 10.0 ** -4.5, high=1.001 * 10.0 ** -4.5,
    module="repro.reliability.retention",
    checked_by="tests/reliability/test_retention.py::TestAnchors",
))
def _ber_1s(ctx: FidelityContext) -> float:
    from repro.reliability.retention import RetentionModel, SLOW_REFRESH_PERIOD_S

    return RetentionModel().ber_at_refresh_period(SLOW_REFRESH_PERIOD_S)


@register(Claim(
    id="E6-PARITY-60-BITS",
    source="Sec. III-E",
    statement="BCH ECC-6 over a 512-bit line needs t*m = 60 parity bits",
    expected=60, low=60, high=60, unit="bits",
    module="repro.ecc.bch",
    checked_by="tests/ecc/test_bch.py::test_paper_ecc6_parity_budget",
))
def _ecc6_parity_bits(ctx: FidelityContext) -> float:
    from repro.ecc.bch import BchCode

    return float(BchCode(t=6, data_bits=512).parity_bits)


@register(Claim(
    id="F8-REFRESH-16X",
    source="Fig. 8 / Sec. V-B",
    statement="MECC cuts idle refresh operations 16x (1 s vs 64 ms period)",
    expected=1 / 16, low=0.0624, high=0.0626,
    module="repro.power.calculator",
    checked_by="benchmarks/bench_fig08_idle_power.py",
))
def _refresh_16x(ctx: FidelityContext) -> float:
    from repro.analysis.experiments import fig8_idle_power

    return fig8_idle_power()["MECC"]["refresh_norm"]


@register(Claim(
    id="F8-IDLE-POWER-2X",
    source="Fig. 8 / Sec. V-B",
    statement="total idle power drops to ~0.57 of baseline ('almost 2X')",
    expected=0.57, low=0.40, high=0.60,
    module="repro.power.calculator",
    checked_by="benchmarks/bench_fig08_idle_power.py",
))
def _idle_power_2x(ctx: FidelityContext) -> float:
    from repro.analysis.experiments import fig8_idle_power

    return fig8_idle_power()["MECC"]["total_norm"]


@register(Claim(
    id="F8-REFRESH-SHARE",
    source="Fig. 8 / Sec. I",
    statement="refresh is about half of baseline idle (self-refresh) power",
    expected=0.5, low=0.40, high=0.60,
    module="repro.power.calculator",
    checked_by="benchmarks/bench_fig08_idle_power.py",
))
def _refresh_share(ctx: FidelityContext) -> float:
    from repro.analysis.experiments import fig8_idle_power

    row = fig8_idle_power()["Baseline"]
    return row["refresh_w"] / row["total_w"]


@register(Claim(
    id="MDT-STORAGE-128B",
    source="Sec. VI-A",
    statement="a 1K-entry MDT costs 128 bytes of controller storage",
    expected=128, low=128, high=128, unit="bytes",
    module="repro.core.mdt",
    checked_by="tests/core/test_mdt.py::TestPaperConfiguration",
))
def _mdt_storage(ctx: FidelityContext) -> float:
    from repro.core.mdt import MemoryDowngradeTracker

    return float(MemoryDowngradeTracker().storage_bytes)


@register(Claim(
    id="MDT-FULL-UPGRADE-400MS",
    source="Sec. VI-A",
    statement="ECC-Upgrade of the full 1 GB memory takes ~400 ms",
    expected=400.0, low=300.0, high=500.0, unit="ms",
    module="repro.dram.device",
    checked_by="benchmarks/bench_fig11_mdt.py",
))
def _full_upgrade_ms(ctx: FidelityContext) -> float:
    from repro.dram.device import DramDevice

    return 1000.0 * DramDevice().full_upgrade_seconds()


@register(Claim(
    id="MDT-TRACKED-UPGRADE-50MS",
    source="Sec. VI-A",
    statement="MDT cuts the upgrade pass to ~50 ms for the average footprint",
    expected=50.0, low=25.0, high=100.0, unit="ms",
    module="repro.core.mdt / repro.dram.device",
    checked_by="benchmarks/bench_fig11_mdt.py",
))
def _tracked_upgrade_ms(ctx: FidelityContext) -> float:
    from repro.dram.device import DramDevice

    device = DramDevice()
    region_bytes = 1 << 20
    mean_footprint = sum(b.footprint_bytes for b in ALL_BENCHMARKS) / len(
        ALL_BENCHMARKS
    )
    regions = math.ceil(mean_footprint / region_bytes)
    return 1000.0 * device.upgrade_seconds_for_regions(regions, region_bytes)


@register(Claim(
    id="MDT-ENCODER-ENERGY-8X",
    source="Sec. VI-A",
    statement="MDT saves 8x of upgrade encoder energy (128 MB of 1 GB touched)",
    expected=8.0, low=7.5, high=8.5, unit="x",
    module="repro.dram.device",
    checked_by="benchmarks/bench_fig11_mdt.py",
))
def _mdt_energy_8x(ctx: FidelityContext) -> float:
    from repro.dram.device import DramDevice

    device = DramDevice()
    return device.full_upgrade_seconds() / device.upgrade_seconds_for_regions(
        128, 1 << 20
    )


@register(Claim(
    id="RW-FLIKKER-ONE-THIRD",
    source="Sec. VII-A",
    statement="Flikker with 1/4 critical memory still refreshes at ~1/3 rate",
    expected=1 / 3, low=0.28, high=0.35,
    module="repro.baselines.flikker",
    checked_by="tests/baselines/test_flikker.py::TestEffectiveRate",
))
def _flikker_one_third(ctx: FidelityContext) -> float:
    from repro.baselines import FlikkerModel

    return FlikkerModel(critical_fraction=0.25).effective_refresh_rate


@register(Claim(
    id="RW-RAIDR-MECC-FLOOR",
    source="Sec. VII-B",
    statement="a reliability-honest RAIDR+MECC combination cannot beat MECC's 1/16",
    expected=1 / 16, low=1 / 16 - 1e-9, high=0.07,
    module="repro.baselines.raidr",
    checked_by="tests/baselines/test_rapid_raidr.py",
))
def _raidr_mecc_floor(ctx: FidelityContext) -> float:
    from repro.baselines import RaidrModel

    return RaidrModel(rows=8192, seed=5).safe_combined_rate(1.024)


@register(Claim(
    id="RW-VRT-IMMUNITY",
    source="Sec. VII-B",
    statement="VRT flips land inside MECC's ECC-6 budget (~0 uncorrectable lines/GB)",
    expected=0.0, low=0.0, high=1e-6, unit="lines",
    module="repro.baselines.vrt",
    checked_by="tests/baselines/test_secret_vrt.py",
))
def _vrt_immunity(ctx: FidelityContext) -> float:
    from repro.baselines import VrtModel

    return VrtModel(seed=9).mecc_exposure(1e-7).uncorrectable_lines


@register(Claim(
    id="VAL-LINE-FAILURE",
    source="Table I cross-check",
    statement="binomial failure model agrees with Monte-Carlo sampling",
    expected=0.0, low=0.0, high=0.12, unit="rel. err.",
    module="repro.analysis.validation",
    checked_by="tests/analysis/test_validation.py",
))
def _val_line_failure(ctx: FidelityContext) -> float:
    from repro.analysis.validation import validate_line_failure

    return validate_line_failure().relative_error


@register(Claim(
    id="VAL-RETENTION-INVERSE",
    source="Fig. 2 cross-check",
    statement="retention CDF agrees with inverse-transform sampling",
    expected=0.0, low=0.0, high=0.12, unit="rel. err.",
    module="repro.analysis.validation",
    checked_by="tests/analysis/test_validation.py",
))
def _val_retention(ctx: FidelityContext) -> float:
    from repro.analysis.validation import validate_retention_inverse

    return validate_retention_inverse().relative_error


@register(Claim(
    id="VAL-REFRESH-LINEARITY",
    source="Fig. 8 premise",
    statement="refresh power scales exactly inversely with refresh period",
    expected=1.0, low=1.0 - 1e-9, high=1.0 + 1e-9, unit="worst factor",
    module="repro.analysis.validation",
    checked_by="tests/analysis/test_validation.py",
))
def _val_refresh_linearity(ctx: FidelityContext) -> float:
    from repro.analysis.validation import validate_refresh_linearity

    return validate_refresh_linearity().empirical


# ---------------------------------------------------------------------------
# Simulation claims (added by the ``full`` set)
# ---------------------------------------------------------------------------


@register(Claim(
    id="F7-SECDED-OVERHEAD",
    source="Fig. 7 / Sec. V-A",
    statement="SECDED costs ~0.5% average performance (normalized IPC 0.995)",
    expected=0.995, low=0.985, high=1.005, kind="simulation",
    module="repro.sim.engine / repro.core.policy",
    checked_by="benchmarks/bench_fig07_performance.py",
))
def _secded_overhead(ctx: FidelityContext) -> float:
    return ctx.performance().geomean("secded")


@register(Claim(
    id="F7-ECC6-OVERHEAD",
    source="Fig. 7 / Sec. V-A",
    statement="ECC-6 everywhere costs ~10% average performance",
    expected=0.90, low=0.85, high=0.94, kind="simulation",
    module="repro.sim.engine / repro.core.policy",
    checked_by="benchmarks/bench_fig07_performance.py",
))
def _ecc6_overhead(ctx: FidelityContext) -> float:
    return ctx.performance().geomean("ecc6")


@register(Claim(
    id="F7-MECC-OVERHEAD",
    source="Fig. 7 / Sec. V-A",
    statement="MECC with ECC-Downgrade costs only ~1.2% average performance",
    expected=0.988, low=0.96, high=1.005, kind="simulation",
    module="repro.core.mecc",
    checked_by="benchmarks/bench_fig07_performance.py",
))
def _mecc_overhead(ctx: FidelityContext) -> float:
    return ctx.performance().geomean("mecc")


@register(Claim(
    id="F7-LIBQ-WORST-CASE",
    source="Fig. 7 / Sec. II-D",
    statement="libquantum is ECC-6's worst case at ~21% slowdown",
    expected=0.79, low=0.70, high=0.85, kind="simulation",
    module="repro.sim.engine",
    checked_by="benchmarks/bench_fig07_performance.py",
))
def _libq_worst_case(ctx: FidelityContext) -> float:
    return ctx.performance().normalized("libq", "ecc6")


@register(Claim(
    id="F10-MECC-TOTAL-ENERGY",
    source="Fig. 10 / Sec. V-D",
    statement="MECC cuts total memory energy by ~26% at 95% idle",
    expected=0.74, low=0.60, high=0.85, kind="simulation",
    module="repro.power.energy",
    checked_by="benchmarks/bench_fig10_total_energy.py",
))
def _mecc_total_energy(ctx: FidelityContext) -> float:
    return ctx.fig10()["mecc"]["total_norm"]


@register(Claim(
    id="F14-SMD-NEVER-ENABLED",
    source="Fig. 14 / Sec. VI-B",
    statement="with MPKC threshold 2, seven benchmarks never enable downgrade",
    expected=7, low=7, high=7, unit="benchmarks", kind="simulation",
    module="repro.core.smd",
    checked_by="benchmarks/bench_fig14_smd.py",
))
def _smd_never_enabled(ctx: FidelityContext) -> float:
    outcomes = ctx.smd_outcomes()
    present = [n for n in SMD_ALWAYS_DISABLED if n in outcomes]
    return float(sum(
        1 for n in present
        if outcomes[n].smd_disabled_fraction == 1.0
    ))


@register(Claim(
    id="F14-SMD-PERFORMANCE",
    source="Fig. 14 / Sec. VI-B",
    statement="average performance with SMD stays within 2% of no-ECC baseline",
    expected=0.98, low=0.96, high=1.005, kind="simulation",
    module="repro.core.smd",
    checked_by="benchmarks/bench_fig14_smd.py",
))
def _smd_performance(ctx: FidelityContext) -> float:
    from repro.analysis.experiments import run_policy_suites
    from repro.sim.stats import geometric_mean

    outcomes = ctx.smd_outcomes()
    base = run_policy_suites(ctx.benchmarks, ctx.run, policies=("baseline",))
    return geometric_mean([
        outcomes[spec.name].result.ipc / base[spec.name]["baseline"].ipc
        for spec in ctx.benchmarks
    ])
