"""Declarative exhibit registry for the publication pipeline.

Every paper exhibit (figure, table, or reproduction extension) is one
:class:`ExhibitSpec`: a stable id, the paper anchor it reproduces, a
parameter grid, and a builder that regenerates the exhibit's data as a
tidy :class:`ExhibitData` table.  Builders route their simulations
through :mod:`repro.analysis.experiments`, so everything the pipeline
replays shares the cached :class:`repro.analysis.runner.ExperimentRunner`
jobs with the benches and the fidelity gate.

Registration is declarative::

    @register_exhibit(
        "fig7", title="Fig. 7 — per-benchmark performance",
        paper_anchor="Fig. 7", kind="figure", simulated=True,
    )
    def _fig7(run, **params) -> ExhibitData: ...

The registry is the single source of truth: the CLI's exhibit verbs,
the markdown report, the CSV exporters, the ``repro report`` artifact
pipeline, and the bench shims (each declares ``EXHIBIT_ID``) all
resolve through it, so an exhibit's logic lives exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.errors import ConfigurationError
from repro.sim.system import ScaledRun

#: Render targets every exhibit supports (see repro.report.render).
DEFAULT_FORMATS = ("csv", "json", "md", "tex")

#: Exhibit kinds, in presentation order.
KINDS = ("figure", "table", "extension")

#: Default per-cell relative tolerance band for ``repro report --diff``.
#: The pipeline rounds floats to 12 significant digits, and every
#: builder is deterministic end to end, so drift beyond rounding noise
#: is a real model change.
DEFAULT_DIFF_RTOL = 1e-9

#: Scalar cell types an exhibit row may carry (JSON-native).
_CELL_TYPES = (str, int, float, bool, type(None))


@dataclass(frozen=True)
class ExhibitData:
    """One exhibit's regenerated data as a tidy table.

    ``rows`` are tuples of JSON-native scalars, one per ``columns``
    entry.  The first column is the row key (benchmark name, scheme,
    ECC strength, ...) used by cell lookups and diff messages.
    """

    exhibit_id: str
    columns: tuple[str, ...]
    rows: tuple[tuple, ...]
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.columns:
            raise ConfigurationError(f"exhibit {self.exhibit_id!r} has no columns")
        for i, row in enumerate(self.rows):
            if len(row) != len(self.columns):
                raise ConfigurationError(
                    f"exhibit {self.exhibit_id!r} row {i} has {len(row)} "
                    f"cells for {len(self.columns)} columns"
                )
            for cell in row:
                if not isinstance(cell, _CELL_TYPES):
                    raise ConfigurationError(
                        f"exhibit {self.exhibit_id!r} row {i} carries a "
                        f"non-scalar cell of type {type(cell).__name__}"
                    )

    # -- lookups ---------------------------------------------------------------

    def _column_index(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise ConfigurationError(
                f"exhibit {self.exhibit_id!r} has no column {column!r}; "
                f"columns: {list(self.columns)}"
            ) from None

    def column(self, column: str) -> list:
        """Every value of one column, in row order."""
        index = self._column_index(column)
        return [row[index] for row in self.rows]

    def row(self, key) -> dict:
        """The first row whose leading cell equals ``key``, as a dict."""
        for row in self.rows:
            if row[0] == key:
                return dict(zip(self.columns, row))
        raise ConfigurationError(
            f"exhibit {self.exhibit_id!r} has no row keyed {key!r}"
        )

    def cell(self, key, column: str):
        """One cell, addressed by row key and column name."""
        return self.row(key)[column]

    def row_keys(self) -> list:
        return [row[0] for row in self.rows]

    def as_dict(self) -> dict:
        """JSON-native payload (the canonical artifact content)."""
        return {
            "exhibit": self.exhibit_id,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "meta": dict(self.meta),
        }


@dataclass(frozen=True)
class ExhibitSpec:
    """One registered exhibit: identity, provenance, and how to rebuild it.

    Args:
        id: stable exhibit id (``fig7``, ``table1``, ``related-work``).
        title: display title (CLI tables, report headings).
        paper_anchor: where in the paper this exhibit lives ("Fig. 7",
            "Table I", "Sec. VII"); extensions use "Extension".
        kind: ``figure`` / ``table`` / ``extension``.
        builder: ``builder(run, **params) -> ExhibitData``.
        paper_note: the paper's expectation, shown above the exhibit.
        params: default parameter grid forwarded to the builder and
            recorded in the artifact manifest.
        simulated: True when the builder needs cycle simulation (cost
            hint for reduced CI sets).
        diff_rtol: per-cell relative tolerance band for ``--diff``.
        formats: render targets this exhibit supports.
    """

    id: str
    title: str
    paper_anchor: str
    kind: str
    builder: Callable[..., ExhibitData] = field(compare=False)
    paper_note: str = ""
    params: Mapping = field(default_factory=dict)
    simulated: bool = False
    diff_rtol: float = DEFAULT_DIFF_RTOL
    formats: tuple[str, ...] = DEFAULT_FORMATS

    def __post_init__(self) -> None:
        if not self.id or any(c.isspace() or c == "," for c in self.id):
            raise ConfigurationError(f"bad exhibit id {self.id!r}")
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"exhibit {self.id!r} kind must be one of {KINDS}, got "
                f"{self.kind!r}"
            )
        if self.diff_rtol < 0:
            raise ConfigurationError(f"exhibit {self.id!r} diff_rtol < 0")
        unknown = set(self.formats) - set(DEFAULT_FORMATS)
        if not self.formats or unknown:
            raise ConfigurationError(
                f"exhibit {self.id!r} has unknown formats {sorted(unknown)}"
            )

    def build(self, run: ScaledRun | None = None, **overrides) -> ExhibitData:
        """Regenerate the exhibit's data (params merged with overrides)."""
        run = run or ScaledRun()
        params = {**self.params, **overrides}
        data = self.builder(run, **params)
        if data.exhibit_id != self.id:
            raise ConfigurationError(
                f"builder for {self.id!r} returned data labeled "
                f"{data.exhibit_id!r}"
            )
        return data

    def describe(self) -> dict:
        """Manifest-ready description (no callables)."""
        return {
            "id": self.id,
            "title": self.title,
            "paper_anchor": self.paper_anchor,
            "kind": self.kind,
            "paper_note": self.paper_note,
            "params": dict(self.params),
            "simulated": self.simulated,
            "diff_rtol": self.diff_rtol,
            "formats": list(self.formats),
        }


#: The process-wide registry, in registration (paper) order.
REGISTRY: dict[str, ExhibitSpec] = {}


def register_exhibit(
    id: str,
    *,
    title: str,
    paper_anchor: str,
    kind: str,
    paper_note: str = "",
    params: Mapping | None = None,
    simulated: bool = False,
    diff_rtol: float = DEFAULT_DIFF_RTOL,
    formats: tuple[str, ...] = DEFAULT_FORMATS,
) -> Callable:
    """Decorator: register ``fn`` as the builder for exhibit ``id``."""

    def wrap(fn: Callable[..., ExhibitData]) -> Callable[..., ExhibitData]:
        if id in REGISTRY:
            raise ConfigurationError(f"duplicate exhibit id {id!r}")
        REGISTRY[id] = ExhibitSpec(
            id=id,
            title=title,
            paper_anchor=paper_anchor,
            kind=kind,
            builder=fn,
            paper_note=paper_note,
            params=dict(params or {}),
            simulated=simulated,
            diff_rtol=diff_rtol,
            formats=tuple(formats),
        )
        return fn

    return wrap


def _ensure_registered() -> None:
    # Builders live in repro.report.exhibits; importing it populates the
    # registry exactly once (idempotent thanks to module caching).
    if not REGISTRY:
        from repro.report import exhibits  # noqa: F401


def all_exhibits() -> list[ExhibitSpec]:
    """Every registered exhibit, in registration order."""
    _ensure_registered()
    return list(REGISTRY.values())


def exhibit_ids() -> list[str]:
    _ensure_registered()
    return list(REGISTRY)


def get_exhibit(id: str) -> ExhibitSpec:
    """Look one exhibit up; unknown ids name the valid choices."""
    _ensure_registered()
    spec = REGISTRY.get(id)
    if spec is None:
        raise ConfigurationError(
            f"unknown exhibit {id!r}; choose from {', '.join(REGISTRY)}"
        )
    return spec


def resolve_exhibits(ids: str | Iterable[str] | None) -> list[ExhibitSpec]:
    """Resolve a comma-separated string / iterable / None (= all)."""
    _ensure_registered()
    if ids is None:
        return all_exhibits()
    if isinstance(ids, str):
        ids = [part.strip() for part in ids.split(",") if part.strip()]
    ids = list(ids)
    if not ids:
        return all_exhibits()
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        raise ConfigurationError(
            f"unknown exhibits: {unknown}; choose from {', '.join(REGISTRY)}"
        )
    # Deduplicate while preserving the caller's order.
    return [REGISTRY[i] for i in dict.fromkeys(ids)]
