"""Frontier JSON is byte-identical across parallelism and backends.

The determinism contract from ``tests/sim/test_batched_equivalence.py``
extended to the DSE layer: an identical grid + workload must render the
*same bytes* of canonical frontier JSON whether the sims ran inline,
over a 4-process pool, or through the dispatch coordinator/worker
stack.  Everything downstream (golden fixtures, CI replay diffs, the
tuner) leans on this.
"""

import pytest

from repro.analysis.runner import configure_runner, reset_runner
from repro.dse import DesignSpaceExplorer, GridSpec
from repro.sim.system import ScaledRun

#: Small but non-degenerate: 2 strengths x 2 periods x 2 thresholds x
#: 2 geometries = 16 points, 4 simulated pairs x 2 benchmarks + 2
#: baselines = 10 sim jobs.
GRID = GridSpec(
    ecc_strength=(4, 6),
    refresh_period_s=(0.256, 1.024),
    threshold_mpkc=(1.0, 2.0),
    mdt_entries=(512, 1024),
)
RUN = ScaledRun(instructions=20_000)
BENCHMARKS = ("povray", "libq")


@pytest.fixture(autouse=True)
def _restore_runner():
    """These tests reconfigure the global runner; re-pin the hermetic one."""
    yield
    configure_runner(jobs=1, cache_dir=None)


def _explore_json() -> str:
    return (
        DesignSpaceExplorer(grid=GRID, benchmarks=BENCHMARKS, run=RUN)
        .explore()
        .to_json()
    )


def test_frontier_json_identical_across_jobs_1_and_4():
    configure_runner(jobs=1, cache_dir=None)
    serial = _explore_json()
    reset_runner()
    configure_runner(jobs=4, cache_dir=None)
    parallel = _explore_json()
    assert serial == parallel


def test_frontier_json_identical_local_vs_dispatch():
    from repro.dispatch import DispatchConfig

    configure_runner(jobs=1, cache_dir=None)
    local = _explore_json()
    reset_runner()
    configure_runner(
        jobs=1,
        cache_dir=None,
        backend="dispatch",
        dispatch=DispatchConfig(
            workers=2, lease_s=2.0, heartbeat_s=0.5, worker_wait_s=30.0
        ),
    )
    dispatched = _explore_json()
    assert local == dispatched


def test_repeated_exploration_is_byte_stable():
    configure_runner(jobs=1, cache_dir=None)
    assert _explore_json() == _explore_json()


def test_grid_axis_order_does_not_change_bytes():
    configure_runner(jobs=1, cache_dir=None)
    reordered = GridSpec(
        ecc_strength=(6, 4),
        refresh_period_s=(1.024, 0.256),
        threshold_mpkc=(2.0, 1.0),
        mdt_entries=(1024, 512),
    )
    a = _explore_json()
    b = (
        DesignSpaceExplorer(grid=reordered, benchmarks=BENCHMARKS, run=RUN)
        .explore()
        .to_json()
    )
    assert a == b
