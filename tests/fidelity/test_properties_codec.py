"""Hypothesis property suite: BCH/GF(2^m) round-trips and codec equivalence.

Profiles are installed by ``tests/conftest.py`` (seed-pinned ``ci`` by
default; ``REPRO_HYPOTHESIS_PROFILE=nightly`` for the thorough tier).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

from repro.ecc.bch import BchCode
from repro.ecc.hamming import SecDedCode
from repro.fidelity.properties import codec_divergences

#: Small enough to keep each example cheap, large enough for real cosets.
DATA_BITS = 64
T = 3

_code = BchCode(t=T, data_bits=DATA_BITS)
_secded = SecDedCode(DATA_BITS)


@given(data=st.integers(min_value=0, max_value=2**DATA_BITS - 1))
def test_bch_encode_fast_matches_reference(data):
    assert _code.encode(data) == _code.encode_reference(data)


@given(
    data=st.integers(min_value=0, max_value=2**DATA_BITS - 1),
    positions=st.sets(
        st.integers(min_value=0, max_value=_code.codeword_bits - 1),
        max_size=T,
    ),
)
def test_bch_roundtrip_within_capacity(data, positions):
    word = _code.encode(data)
    for position in positions:
        word ^= 1 << position
    result = _code.decode(word)
    assert result.data == data
    assert sorted(result.corrected_positions) == sorted(positions)


@given(
    data=st.integers(min_value=0, max_value=2**DATA_BITS - 1),
    positions=st.sets(
        st.integers(min_value=0, max_value=_code.codeword_bits - 1),
        min_size=T + 1,
        max_size=T + 1,
    ),
)
def test_bch_beyond_capacity_fast_and_reference_agree(data, positions):
    """Past the designed distance the decode outcome is coset-determined:
    whatever the polynomial oracle does (detect or miscorrect), the fast
    matrix path must do the identical thing."""
    word = _code.encode(data)
    for position in positions:
        word ^= 1 << position
    fast_error = reference_error = None
    try:
        fast = _code.decode(word)
    except Exception as exc:
        fast, fast_error = None, type(exc).__name__
    try:
        reference = _code.decode_reference(word)
    except Exception as exc:
        reference, reference_error = None, type(exc).__name__
    assert fast_error == reference_error
    if fast is not None:
        assert fast.data == reference.data
        assert sorted(fast.corrected_positions) == sorted(
            reference.corrected_positions
        )


@given(
    data=st.integers(min_value=0, max_value=2**DATA_BITS - 1),
    position=st.integers(min_value=0, max_value=DATA_BITS + _secded.check_bits - 1),
)
def test_secded_single_error_roundtrip(data, position):
    word = _secded.encode(data) ^ (1 << position)
    assert _secded.decode(word).data == data


@given(words=st.lists(
    st.integers(min_value=0, max_value=2**DATA_BITS - 1), max_size=8
))
def test_divergence_detector_clean_on_healthy_codec(words):
    assert codec_divergences(_code, words, flip_bits=T) == []


@given(data=st.integers(min_value=0, max_value=2**512 - 1))
@hypothesis.settings(max_examples=10)
def test_paper_configuration_roundtrip(data):
    """The paper's actual ECC-6 line geometry, fast vs reference."""
    code = BchCode(t=6, data_bits=512)
    word = code.encode(data)
    assert word == code.encode_reference(data)
    assert code.decode(word ^ 0b111111).data == data
