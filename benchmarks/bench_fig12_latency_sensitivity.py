"""Fig. 12: sensitivity to the strong-ECC decode latency (15–60 cycles).

Paper: ECC-6's slowdown grows to ~18% at 60 cycles, while MECC stays
within ~2% of baseline at every latency — the designer can use small,
slow decoders.

Thin shim over the ``repro.report`` registry (exhibit ``fig12``).
"""

from repro.analysis.tables import format_table
from repro.report.spec import get_exhibit

EXHIBIT_ID = "fig12"

#: Approximate series read off paper Fig. 12.
PAPER = {15: {"ecc6": 0.95, "mecc": 0.99},
         30: {"ecc6": 0.90, "mecc": 0.988},
         45: {"ecc6": 0.86, "mecc": 0.985},
         60: {"ecc6": 0.82, "mecc": 0.98}}


def test_fig12_decode_latency_sensitivity(benchmark, run, show):
    spec = get_exhibit(EXHIBIT_ID)
    data = benchmark.pedantic(spec.build, args=(run,), rounds=1, iterations=1)
    show(format_table(
        ["decode cycles", "ECC-6 paper", "ECC-6 ours", "MECC paper", "MECC ours"],
        [
            [lat, PAPER[lat]["ecc6"], data.cell(lat, "ecc6"),
             PAPER[lat]["mecc"], data.cell(lat, "mecc")]
            for lat in data.row_keys()
        ],
        title="Fig. 12 — normalized IPC vs. strong-ECC decode latency",
    ))
    latencies = sorted(data.row_keys())
    ecc6 = [data.cell(l, "ecc6") for l in latencies]
    mecc = [data.cell(l, "mecc") for l in latencies]
    # ECC-6 degrades steadily with latency; MECC barely moves.
    assert all(a > b for a, b in zip(ecc6, ecc6[1:]))
    assert ecc6[0] - ecc6[-1] > 0.06
    assert mecc[0] - mecc[-1] < 0.03
    # Even at 60 cycles MECC stays within a few percent of baseline.
    assert data.cell(60, "mecc") > 0.95
    assert data.cell(60, "ecc6") < 0.88
