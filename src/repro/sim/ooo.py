"""Out-of-order core model: ROB-windowed memory-level parallelism.

The paper's core is in-order (every miss exposes its full latency —
:mod:`repro.sim.engine`).  USIMM itself also supports out-of-order
traces, where a reorder buffer lets independent misses overlap.  This
model adds that capability:

* instructions enter the ROB up to ``rob_size`` ahead of retirement;
* a read issues to the memory controller when it *enters* the ROB (its
  address is known from the trace, as in USIMM);
* retirement is in order, ``retire_width`` per cycle; a read retires no
  earlier than its data (plus ECC decode) returns.

The ROB-entry time of instruction *n* is the retirement time of
instruction *n - rob_size*, tracked with a compact checkpoint list and
linear interpolation between checkpoints.

With ``rob_size = 1`` this degenerates to the blocking in-order model,
which the tests verify — and the MLP ablation shows why the paper's
in-order configuration is the worst case for always-on strong ECC.
"""

from __future__ import annotations

from collections import deque

from repro.core.policy import EccPolicy, NoEccPolicy
from repro.dram.config import PROC_HZ, DramOrganization, DramTimings
from repro.dram.controller import MemoryController
from repro.errors import ConfigurationError
from repro.power.energy import ActiveEnergyModel, CodecActivity
from repro.types import MemoryOp, SimResult
from repro.workloads.trace import Trace


class _RetireTimeline:
    """Maps instruction index -> retirement time, queried monotonically."""

    def __init__(self):
        self._points: deque[tuple[int, float]] = deque([(0, 0.0)])

    def record(self, instr_index: int, time: float) -> None:
        last_index, last_time = self._points[-1]
        if instr_index < last_index or time < last_time:
            raise ConfigurationError("retire timeline must be monotone")
        self._points.append((instr_index, time))

    def time_of(self, instr_index: int) -> float:
        """Retirement time of an instruction (linear between checkpoints).

        Queries are non-decreasing, so consumed checkpoints are dropped.
        """
        if instr_index <= 0:
            return 0.0
        points = self._points
        while len(points) >= 2 and points[1][0] <= instr_index:
            points.popleft()
        i0, t0 = points[0]
        if len(points) == 1 or instr_index <= i0:
            return t0
        i1, t1 = points[1]
        if i1 == i0:
            return t1
        frac = (instr_index - i0) / (i1 - i0)
        return t0 + frac * (t1 - t0)


class OooSimulationEngine:
    """Trace-driven engine with a reorder-buffer core model.

    Args:
        policy: the ECC policy under evaluation.
        rob_size: reorder-buffer depth in instructions (1 = blocking).
        retire_width: instructions retired per cycle.
        controller: the memory controller.
    """

    def __init__(
        self,
        policy: EccPolicy | None = None,
        rob_size: int = 64,
        retire_width: int = 2,
        controller: MemoryController | None = None,
        energy_model: ActiveEnergyModel | None = None,
        org: DramOrganization | None = None,
        timings: DramTimings | None = None,
    ):
        if rob_size < 1:
            raise ConfigurationError("rob_size must be >= 1")
        if retire_width < 1:
            raise ConfigurationError("retire_width must be >= 1")
        self.policy = policy or NoEccPolicy()
        self.rob_size = rob_size
        self.retire_width = retire_width
        self.controller = controller or MemoryController(org=org, timings=timings)
        self.energy_model = energy_model or ActiveEnergyModel()

    def run(self, trace: Trace) -> SimResult:
        policy = self.policy
        controller = self.controller
        cpi = max(trace.nonmem_cpi, 1.0 / self.retire_width)
        timeline = _RetireTimeline()
        retire = 0.0
        instr_index = 0
        last_issue = 0
        reads = 0
        read_latency_sum = 0
        for record in trace.records:
            if record.gap:
                instr_index += record.gap
                retire += record.gap * cpi
            now = int(retire)
            if record.op is MemoryOp.READ:
                instr_index += 1
                # The read issues when it enters the ROB: when instruction
                # (n - rob_size) retired — or immediately if the window
                # already covers it.  Controller issue times must be
                # monotone, so clamp to the previous issue.
                entry = timeline.time_of(instr_index - self.rob_size)
                issue = max(int(entry), last_issue)
                # The ROB cannot see past an unretired read with rob=1.
                if self.rob_size == 1:
                    issue = max(issue, now)
                action = policy.on_read(record.address, issue)
                data_done = controller.read(record.address, issue)
                completion = data_done + action.decode_cycles
                if action.writeback:
                    controller.write(record.address, completion)
                reads += 1
                read_latency_sum += max(0, completion - now)
                last_issue = issue
                # In-order retirement: the read retires after both its
                # program-order predecessors and its data.
                retire = max(retire + cpi, float(completion))
                timeline.record(instr_index, retire)
            else:
                policy.on_write(record.address, now)
                controller.write(record.address, now)
        total_cycles = max(1, int(retire))
        policy.on_run_end(total_cycles)
        stats = controller.stats
        util = controller.utilization(total_cycles)
        codec = CodecActivity(
            weak_decodes=policy.weak_decodes,
            strong_decodes=policy.strong_decodes,
            encodes=stats.writes,
        )
        energy = self.energy_model.energy(util, total_cycles / PROC_HZ, codec)
        slow_frac = policy.slow_refresh_fraction
        if slow_frac > 0.0:
            energy.refresh *= (1.0 - slow_frac) + slow_frac / 16.0
        return SimResult(
            instructions=trace.instructions,
            cycles=total_cycles,
            reads=reads,
            writes=stats.writes,
            downgrades=policy.downgrades,
            strong_decodes=policy.strong_decodes,
            weak_decodes=policy.weak_decodes,
            energy=energy,
            read_latency_sum=read_latency_sum,
        )
