"""DRAM substrate: device organization, timing, refresh, memory controller.

A USIMM-style transaction-level model of the paper's memory system
(Table II: 1 GB LPDDR, 200 MHz bus, DDR, 1 channel, 1 rank, 4 banks,
16K rows, 1K columns), fast enough in pure Python to run millions of
instructions by keeping per-bank *timestamps* instead of ticking cycles.

All controller-facing times are in 1.6 GHz processor cycles; the 200 MHz
DDR bus gives an 8:1 clock ratio, so DRAM timing parameters are stored
pre-multiplied in processor cycles.
"""

from repro.dram.address import AddressMapper
from repro.dram.config import DramOrganization, DramTimings, PROC_CYCLES_PER_BUS_CYCLE
from repro.dram.controller import ControllerStats, MemoryController
from repro.dram.device import DramDevice
from repro.dram.refresh import RefreshDivider, SelfRefreshController
from repro.dram.scheduler import (
    FcfsPolicy,
    FrFcfsPolicy,
    OpenLoopMemorySystem,
    Request,
    SchedulerPolicy,
)

__all__ = [
    "AddressMapper",
    "ControllerStats",
    "DramDevice",
    "DramOrganization",
    "DramTimings",
    "FcfsPolicy",
    "FrFcfsPolicy",
    "MemoryController",
    "OpenLoopMemorySystem",
    "PROC_CYCLES_PER_BUS_CYCLE",
    "RefreshDivider",
    "Request",
    "SchedulerPolicy",
    "SelfRefreshController",
]
