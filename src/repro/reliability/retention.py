"""DRAM retention-time model (paper Fig. 2).

The paper derives its bit-failure-probability-vs-retention-time curve from
Kim & Lee's 60 nm measurements and uses exactly two operating points:

* at the JEDEC 64 ms refresh period the bit error rate is ~1e-9 (weak
  bits at this level are repaired with spare rows before shipping);
* at a 1 second refresh period the BER is 10^-4.5 (the paper's default).

Between (and beyond) those anchors, Fig. 2's cumulative curve is close to
a straight line on log-log axes, i.e. a power law
``P(t) = P1 * (t / t1)**slope``.  We fit the slope through the two anchors
and clamp to [0, 1].  This preserves everything the paper's experiments
need and gives a smooth curve for sensitivity sweeps (refresh period vs.
required ECC strength).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: JEDEC-standard refresh period in seconds.
JEDEC_REFRESH_PERIOD_S = 0.064
#: Paper's slow refresh period in idle mode, in seconds.
SLOW_REFRESH_PERIOD_S = 1.0
#: BER at the JEDEC period (after factory repair of weak bits).
BER_AT_64MS = 1e-9
#: The paper's default raw BER at a 1 second refresh period.
BER_AT_1S = 10.0 ** -4.5


@dataclass(frozen=True)
class RetentionModel:
    """Power-law retention-failure model anchored on the paper's two points.

    Attributes:
        anchor_time_s: retention time of the second anchor (default 1 s).
        anchor_ber: bit failure probability at ``anchor_time_s``.
        slope: log-log slope; default fits the (64 ms, 1e-9) anchor.
    """

    anchor_time_s: float = SLOW_REFRESH_PERIOD_S
    anchor_ber: float = BER_AT_1S
    slope: float = (
        (math.log10(BER_AT_1S) - math.log10(BER_AT_64MS))
        / (math.log10(SLOW_REFRESH_PERIOD_S) - math.log10(JEDEC_REFRESH_PERIOD_S))
    )

    def __post_init__(self) -> None:
        if self.anchor_time_s <= 0:
            raise ConfigurationError("anchor_time_s must be positive")
        if not 0 < self.anchor_ber <= 1:
            raise ConfigurationError("anchor_ber must be in (0, 1]")
        if self.slope <= 0:
            raise ConfigurationError("slope must be positive")

    def bit_failure_probability(self, retention_time_s: float) -> float:
        """P(cell retention < retention_time_s), clamped to [0, 1]."""
        if retention_time_s <= 0:
            return 0.0
        log_p = math.log10(self.anchor_ber) + self.slope * (
            math.log10(retention_time_s) - math.log10(self.anchor_time_s)
        )
        return min(1.0, 10.0 ** log_p)

    def ber_at_refresh_period(self, period_s: float) -> float:
        """Raw bit error rate when refreshing every ``period_s`` seconds.

        A cell fails iff its retention time is below the refresh period, so
        this equals :meth:`bit_failure_probability` at the period.
        """
        return self.bit_failure_probability(period_s)

    def refresh_period_for_ber(self, ber: float) -> float:
        """Longest refresh period (seconds) whose raw BER stays <= ber."""
        if not 0 < ber <= 1:
            raise ConfigurationError("ber must be in (0, 1]")
        log_t = math.log10(self.anchor_time_s) + (
            math.log10(ber) - math.log10(self.anchor_ber)
        ) / self.slope
        return 10.0 ** log_t

    def sample_retention_times(self, n: int, rng) -> list[float]:
        """Sample per-cell retention times (seconds) by inverting the CDF.

        Useful for Monte-Carlo studies; ``rng`` is a ``random.Random``.
        The inverse of ``P(t)`` is ``t(P) = t1 * (P / P1)**(1/slope)``.
        """
        if n < 0:
            raise ConfigurationError("n must be non-negative")
        inv_slope = 1.0 / self.slope
        return [
            self.anchor_time_s * (rng.random() / self.anchor_ber) ** inv_slope
            for _ in range(n)
        ]

    def at_temperature_offset(self, delta_celsius: float) -> "RetentionModel":
        """Model shifted by a temperature change (extension).

        DRAM retention roughly halves for every 10 °C of temperature
        rise (the basis of JEDEC's extended-temperature 2x refresh-rate
        requirement).  A +ΔT shift scales every cell's retention time by
        ``2^(-ΔT/10)``, which in this parametric model is equivalent to
        scaling the anchor time the same way.

        The paper's numbers correspond to the nominal operating point
        (ΔT = 0); this knob supports hot-device sensitivity studies.
        """
        factor = 2.0 ** (-delta_celsius / 10.0)
        return RetentionModel(
            anchor_time_s=self.anchor_time_s * factor,
            anchor_ber=self.anchor_ber,
            slope=self.slope,
        )

    def curve(self, t_min_s: float = 0.01, t_max_s: float = 100.0, points: int = 41):
        """(retention_time, failure_probability) samples for plotting Fig. 2."""
        if t_min_s <= 0 or t_max_s <= t_min_s or points < 2:
            raise ConfigurationError("invalid curve range")
        log_min = math.log10(t_min_s)
        log_max = math.log10(t_max_s)
        step = (log_max - log_min) / (points - 1)
        times = [10.0 ** (log_min + i * step) for i in range(points)]
        return [(t, self.bit_failure_probability(t)) for t in times]


# -- Monte-Carlo validation on the real codec --------------------------------


@dataclass(frozen=True)
class LineFailureEstimate:
    """Empirical line-failure tally from :func:`monte_carlo_line_failure`.

    Attributes:
        trials: lines simulated.
        detected: decodes that raised (data loss, but flagged).
        miscorrected: decodes that "succeeded" with wrong data.
        corrected_bits: total bits corrected across surviving lines.
    """

    trials: int
    detected: int
    miscorrected: int
    corrected_bits: int

    @property
    def failures(self) -> int:
        return self.detected + self.miscorrected

    @property
    def failure_probability(self) -> float:
        return self.failures / self.trials if self.trials else 0.0


def _sample_sparse_flips(rng: random.Random, n_bits: int, p: float) -> list[int]:
    """Positions of independent Bernoulli(p) flips via geometric skipping.

    O(expected flips) instead of O(n_bits), which is what makes
    million-line sweeps at BER ~1e-4 affordable.
    """
    if p <= 0.0:
        return []
    if p >= 1.0:
        return list(range(n_bits))
    flips = []
    log_q = math.log1p(-p)
    position = -1
    while True:
        skip = int(math.log(1.0 - rng.random()) / log_q)
        position += 1 + skip
        if position >= n_bits:
            return flips
        flips.append(position)


def monte_carlo_line_failure(
    model: RetentionModel,
    period_s: float,
    ecc_t: int,
    trials: int,
    seed: int = 0,
    data_bits: int = 512,
    extended: bool = False,
) -> LineFailureEstimate:
    """Empirically measure P(line failure) with the real batched BCH codec.

    Each trial encodes a random ``data_bits``-bit line, flips every stored
    bit independently with the model's BER at ``period_s``, and decodes.
    The whole campaign runs through ``encode_batch``/``decode_batch`` —
    this is the cross-check for the closed-form binomial tail in
    :func:`repro.reliability.failure.line_failure_probability` (paper
    Table I), now feasible at Monte-Carlo scale thanks to the matrix
    fast path.
    """
    from repro.ecc.bch import BchCode, DecodeResult

    if trials < 1:
        raise ConfigurationError("trials must be >= 1")
    if period_s <= 0:
        raise ConfigurationError("period_s must be positive")
    code = BchCode(t=ecc_t, data_bits=data_bits, extended=extended)
    ber = model.ber_at_refresh_period(period_s)
    rng = random.Random(seed)
    # Draw every line up front, then flip in encode order: the RNG draw
    # sequence is independent of the chunk size below, so chunked and
    # monolithic campaigns with one seed are bit-identical.
    datas = [rng.getrandbits(data_bits) for _ in range(trials)]
    detected = 0
    miscorrected = 0
    corrected_bits = 0
    chunk = 8192  # bounds live codewords; batch is still deep enough to slice
    for start in range(0, trials, chunk):
        chunk_datas = datas[start:start + chunk]
        received = []
        for word in code.encode_batch(chunk_datas):
            for position in _sample_sparse_flips(rng, code.codeword_bits, ber):
                word ^= 1 << position
            received.append(word)
        for data, result in zip(chunk_datas, code.decode_batch(received)):
            if not isinstance(result, DecodeResult):
                detected += 1
            elif result.data != data:
                miscorrected += 1
            else:
                corrected_bits += result.errors_corrected
    return LineFailureEstimate(
        trials=trials,
        detected=detected,
        miscorrected=miscorrected,
        corrected_bits=corrected_bits,
    )
