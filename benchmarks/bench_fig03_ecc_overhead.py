"""Fig. 3: performance impact of decode latency, by MPKI class.

Paper: SECDED is nearly free (<1%); ECC-6 costs ~10% on average and most
for High-MPKI workloads.

Thin shim over the ``repro.report`` registry (exhibit ``fig3``).
"""

from repro.analysis.tables import format_table
from repro.report.spec import get_exhibit

EXHIBIT_ID = "fig3"

#: Approximate bar heights read off paper Fig. 3.
PAPER = {
    "Low-MPKI": {"secded": 1.00, "ecc6": 0.98},
    "Med-MPKI": {"secded": 0.995, "ecc6": 0.91},
    "High-MPKI": {"secded": 0.99, "ecc6": 0.84},
    "ALL": {"secded": 0.995, "ecc6": 0.90},
}


def test_fig03_ecc_overhead_by_class(benchmark, run, show):
    spec = get_exhibit(EXHIBIT_ID)
    data = benchmark.pedantic(spec.build, args=(run,), rounds=1, iterations=1)
    show(format_table(
        ["class", "SECDED (paper)", "SECDED (ours)", "ECC-6 (paper)", "ECC-6 (ours)"],
        [
            [cls, PAPER[cls]["secded"], data.cell(cls, "secded"),
             PAPER[cls]["ecc6"], data.cell(cls, "ecc6")]
            for cls in data.row_keys()
        ],
        title="Fig. 3 — normalized IPC by MPKI class",
    ))
    # Shape: SECDED near-free everywhere; ECC-6 cost grows with intensity.
    for cls in data.row_keys():
        assert data.cell(cls, "secded") > 0.98, cls
    assert (
        data.cell("Low-MPKI", "ecc6")
        > data.cell("Med-MPKI", "ecc6")
        > data.cell("High-MPKI", "ecc6")
    )
    assert 0.84 <= data.cell("ALL", "ecc6") <= 0.95
