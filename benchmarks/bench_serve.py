"""Advisory-service benchmark: latency/throughput under concurrent load.

Drives the asyncio policy-advisory service (:mod:`repro.fleet.service`)
with hundreds of concurrent in-process requests and reports the
latency distribution (p50/p95/p99) plus sustained throughput, then
checks the two load-shedding contracts:

* at a queue sized for the offered concurrency, *every* request
  completes (the service sustains >= 200 concurrent requests), and
* at a deliberately tiny queue, the excess is *rejected immediately*
  (bounded backpressure) — never silently dropped or left hanging.

``REPRO_SERVE_REQUESTS`` scales the storm (default 2,000).
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.analysis.tables import format_table
from repro.fleet import (
    AdvisoryService,
    FleetSimulator,
    PolicyIndex,
    PopulationModel,
    run_request_storm,
)
from repro.sim.system import ScaledRun

STORM_REQUESTS = int(os.environ.get("REPRO_SERVE_REQUESTS", "2000"))
CONCURRENCY = 200


@pytest.fixture(scope="module")
def index():
    simulator = FleetSimulator(
        PopulationModel(seed=2015), run=ScaledRun(instructions=50_000)
    )
    return PolicyIndex.build(simulator)


def _profiles(n: int) -> list[dict]:
    """A deterministic sweep across the idle/intensity space."""
    return [
        {
            "idle_fraction": 0.55 + 0.44 * (i % 89) / 88.0,
            "mpki": 0.05 * (1.22 ** (i % 53)),
        }
        for i in range(n)
    ]


def test_bench_serve_throughput(benchmark, index, show):
    """>= 200 concurrent requests, all completed, percentiles recorded."""
    service = AdvisoryService(
        index, max_queue=512, workers=8, request_timeout_s=5.0
    )

    def storm():
        async def run():
            await service.start()
            try:
                return await run_request_storm(
                    service, _profiles(STORM_REQUESTS), concurrency=CONCURRENCY
                )
            finally:
                await service.stop()

        return asyncio.run(run())

    outcomes = benchmark.pedantic(storm, rounds=1, iterations=1)
    snapshot = service.metrics_snapshot()
    wall = benchmark.stats.stats.mean
    show(format_table(
        ["metric", "value"],
        sorted(outcomes.items())
        + sorted(snapshot.items())
        + [["requests/second", f"{STORM_REQUESTS / max(wall, 1e-9):,.0f}"]],
        title=(
            f"serve: {STORM_REQUESTS} requests at concurrency {CONCURRENCY}"
        ),
    ))
    assert outcomes["ok"] == STORM_REQUESTS
    assert outcomes["overloaded"] == outcomes["timeout"] == 0
    assert snapshot["queue_high_water"] <= 512
    # The percentile contract: latency tails are recorded and sane.
    assert "latency_p50_ms" in snapshot and "latency_p95_ms" in snapshot
    assert 0.0 <= snapshot["latency_p50_ms"] <= snapshot["latency_p95_ms"]


def test_bench_serve_backpressure(benchmark, index, show):
    """A tiny queue sheds excess load immediately and loses nothing."""
    service = AdvisoryService(
        index, max_queue=16, workers=2, request_timeout_s=5.0
    )
    n = 400

    def storm():
        async def run():
            await service.start()
            try:
                return await run_request_storm(
                    service, _profiles(n), concurrency=CONCURRENCY
                )
            finally:
                await service.stop()

        return asyncio.run(run())

    outcomes = benchmark.pedantic(storm, rounds=1, iterations=1)
    show(format_table(
        ["disposition", "count"],
        sorted(outcomes.items()),
        title=f"serve backpressure: queue 16, {n} offered",
    ))
    # Every request is accounted for: served or honestly rejected.
    assert sum(outcomes.values()) == n
    assert outcomes["ok"] >= 16
    assert outcomes["overloaded"] > 0
    assert outcomes["error"] == 0
    assert service.queue_high_water <= 16
