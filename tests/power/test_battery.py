"""Tests for the battery-life model."""

import pytest

from repro.errors import ConfigurationError
from repro.power.battery import BatteryModel
from repro.power.calculator import DramPowerCalculator


class TestStandby:
    def test_standby_hours_formula(self):
        battery = BatteryModel(capacity_wh=10.0, other_standby_w=0.015)
        # 20 mW total -> 10 Wh / 0.02 W = 500 h.
        assert battery.standby_hours(0.005) == pytest.approx(500.0)

    def test_lower_memory_power_longer_standby(self):
        battery = BatteryModel()
        assert battery.standby_hours(0.002) > battery.standby_hours(0.005)

    def test_zero_drain_infinite(self):
        battery = BatteryModel(other_standby_w=0.0)
        assert battery.standby_hours(0.0) == float("inf")

    def test_mecc_extends_standby_meaningfully(self):
        """With a 15 mW system floor and the paper's memory powers
        (4.6 mW -> 2.4 mW), MECC stretches standby by ~10-15%."""
        battery = BatteryModel()
        out = battery.standby_extension()
        assert out["mecc_hours"] > out["baseline_hours"]
        assert 0.05 <= out["extension_fraction"] <= 0.25

    def test_extension_grows_when_memory_dominates(self):
        """On a device with a tiny non-memory floor, memory refresh is
        the whole story and MECC's extension approaches the 2x idle-power
        ratio."""
        lean = BatteryModel(other_standby_w=0.001)
        heavy = BatteryModel(other_standby_w=0.100)
        assert (
            lean.standby_extension()["extension_fraction"]
            > heavy.standby_extension()["extension_fraction"]
        )
        assert lean.standby_extension()["extension_fraction"] > 0.4

    def test_days_budget(self):
        battery = BatteryModel(capacity_wh=10.0, other_standby_w=0.0)
        calc = DramPowerCalculator()
        fraction = battery.standby_days_budget(calc.idle_power(0.064).total, days=7.0)
        # ~4.6 mW for a week = ~0.77 Wh = ~7.7% of a 10 Wh battery,
        # from memory refresh+self-refresh alone.
        assert fraction == pytest.approx(0.077, abs=0.005)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BatteryModel(capacity_wh=0.0)
        with pytest.raises(ConfigurationError):
            BatteryModel(other_standby_w=-1.0)
        with pytest.raises(ConfigurationError):
            BatteryModel().standby_hours(-0.1)
        with pytest.raises(ConfigurationError):
            BatteryModel().standby_days_budget(0.01, -1.0)
