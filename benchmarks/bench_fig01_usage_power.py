"""Fig. 1: the bursty usage pattern and where refresh power matters.

Paper: devices alternate short active bursts with long idle periods;
active memory power is ~9x idle; refresh's share of power is small while
active but about half of the idle power.

Thin shim over the ``repro.report`` registry (exhibit ``fig1``).
"""

import pytest

from repro.analysis.tables import format_table
from repro.report.spec import get_exhibit

EXHIBIT_ID = "fig1"


def test_fig01_usage_power_timeline(benchmark, show):
    spec = get_exhibit(EXHIBIT_ID)
    data = benchmark.pedantic(
        spec.build, kwargs={"total_s": 1200.0}, rounds=1, iterations=1
    )
    rows = [
        [f"{row['start_s']:7.1f}s", row["state"], f"{row['duration_s']:.1f}s",
         row["power_norm"], row["refresh_share"]]
        for row in (data.row(k) for k in data.row_keys()[:12])
    ]
    show(format_table(
        ["start", "state", "duration", "power (norm)", "refresh share"],
        rows,
        title="Fig. 1 — normalized memory power over a usage session (first phases)",
    ))
    active = [data.row(k) for k in data.row_keys()
              if data.cell(k, "state") == "active"]
    idle = [data.row(k) for k in data.row_keys()
            if data.cell(k, "state") == "idle"]
    assert active and idle
    # Active memory power ~9x idle (paper Fig. 1 caption).
    ratio = active[0]["power_norm"] / idle[0]["power_norm"]
    assert ratio == pytest.approx(9.0, rel=0.05)
    # Refresh share: small in active mode, ~half in idle mode.
    assert active[0]["refresh_share"] < 0.1
    assert idle[0]["refresh_share"] == pytest.approx(0.5, abs=0.1)
    # Idle dominates the session's time budget.
    idle_time = sum(row["duration_s"] for row in idle)
    total_time = sum(data.column("duration_s"))
    assert idle_time / total_time > 0.9
