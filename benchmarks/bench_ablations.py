"""Ablation benches for MECC's design choices (see DESIGN.md Sec. 4).

The paper fixes several parameters by fiat; these benches quantify the
sensitivity around each choice:

* MDT table size (paper: 1K entries = 128 B).
* SMD traffic threshold (paper: MPKC = 2).
* ECC-mode-bit redundancy (paper: 4-way).
* Strong-ECC strength vs. achievable refresh period (paper: ECC-6 / ~1 s).
* Refresh period vs. idle power and required correction strength.
"""

import pytest

from repro.analysis import sweep
from repro.analysis.tables import format_table
from repro.workloads.spec import BENCHMARKS_BY_NAME


def test_ablation_mdt_table_size(benchmark, show):
    spec = BENCHMARKS_BY_NAME["sphinx"]
    out = benchmark.pedantic(
        sweep.mdt_entry_sweep, args=(spec,), kwargs={"coverage_factor": 1.5},
        rounds=1, iterations=1,
    )
    show(format_table(
        ["entries", "storage B", "tracked MB", "upgrade ms"],
        [[e, v["storage_bytes"], v["tracked_mb"], v["upgrade_ms"]]
         for e, v in out.items()],
        title="Ablation — MDT size vs. upgrade cost (sphinx, 34 MB footprint)",
    ))
    # Finer tables never track more memory; the paper's 1K point is already
    # within ~2x of the footprint.
    entries = sorted(out)
    tracked = [out[e]["tracked_mb"] for e in entries]
    assert all(a >= b - 1e-9 for a, b in zip(tracked, tracked[1:]))
    assert out[1024]["tracked_mb"] <= 2.5 * spec.footprint_mb


def test_ablation_smd_threshold(benchmark, run, show):
    subset = tuple(
        BENCHMARKS_BY_NAME[n]
        for n in ("povray", "hmmer", "gobmk", "sphinx", "libq")
    )
    out = benchmark.pedantic(
        sweep.smd_threshold_sweep,
        kwargs={"thresholds": (0.5, 2.0, 8.0), "run": run, "benchmarks": subset},
        rounds=1, iterations=1,
    )
    show(format_table(
        ["threshold MPKC", "mean disabled frac", "never enabled", "geomean IPC"],
        [[t, v["mean_disabled_fraction"], v["never_enabled_count"],
          v["geomean_normalized_ipc"]] for t, v in out.items()],
        title="Ablation — SMD threshold: power opportunity vs. performance",
    ))
    # Raising the threshold keeps more time at slow refresh...
    assert out[8.0]["mean_disabled_fraction"] >= out[0.5]["mean_disabled_fraction"]
    # ...at some performance cost.
    assert out[8.0]["geomean_normalized_ipc"] <= out[0.5]["geomean_normalized_ipc"] + 0.01
    # The paper's threshold of 2 keeps performance within a few percent.
    assert out[2.0]["geomean_normalized_ipc"] > 0.94


def test_ablation_mode_bit_redundancy(benchmark, show):
    out = benchmark.pedantic(sweep.mode_bit_redundancy_sweep, rounds=1, iterations=1)
    show(format_table(
        ["replicas", "misresolve P", "tie P"],
        [[r, v["misresolve_p"], v["tie_p"]] for r, v in out.items()],
        title="Ablation — mode-bit replication at BER 10^-4.5",
    ))
    assert out[1]["misresolve_p"] == pytest.approx(10 ** -4.5)
    assert out[4]["misresolve_p"] < 1e-12
    assert out[8]["misresolve_p"] < out[4]["misresolve_p"]


def test_ablation_strength_vs_refresh_period(benchmark, show):
    out = benchmark.pedantic(sweep.ecc_strength_refresh_sweep, rounds=1, iterations=1)
    show(format_table(
        ["ECC-t", "max refresh period (s)"],
        [[t, p] for t, p in out.items()],
        title="Ablation — correction strength vs. achievable refresh period",
    ))
    periods = [out[t] for t in sorted(out)]
    assert all(a < b for a, b in zip(periods, periods[1:]))
    assert 0.9 <= out[6] <= 1.6  # the paper's ECC-6 ~ 1 second


def test_ablation_refresh_period_power(benchmark, show):
    out = benchmark.pedantic(sweep.refresh_period_power_sweep, rounds=1, iterations=1)
    show(format_table(
        ["period s", "idle power mW", "normalized", "refresh share", "needs ECC-t"],
        [[p, 1000 * v["idle_power_w"], v["idle_power_norm"], v["refresh_share"],
          v["required_ecc_t"]] for p, v in out.items()],
        title="Ablation — refresh period vs. idle power and ECC demand",
    ))
    periods = sorted(out)
    powers = [out[p]["idle_power_norm"] for p in periods]
    strengths = [out[p]["required_ecc_t"] for p in periods]
    assert all(a >= b for a, b in zip(powers, powers[1:]))
    assert all(a <= b for a, b in zip(strengths, strengths[1:]))
    # Diminishing returns: background power floors the curve near ~0.5.
    assert powers[-1] > 0.45


def test_ablation_morphing_levels(benchmark, run, show):
    """Paper Sec. VIII: MECC can morph between arbitrary ECC levels.

    Sweeps (weak, strong) scheme pairs and reports the three-way
    trade-off: active-mode performance (weak decode latency), idle
    refresh period (strong correction budget), and whether the pair fits
    the (72,64) storage budget.
    """
    from repro.core.mecc import MeccController
    from repro.core.policy import MeccPolicy
    from repro.ecc.codes import make_scheme
    from repro.reliability.provisioning import max_refresh_period_for_strength
    from repro.sim.engine import simulate
    from repro.sim.stats import geometric_mean
    from repro.analysis.experiments import _trace_for, run_policy_suite
    from repro.sim.system import ScaledRun

    pairs = ((1, 4), (1, 6), (2, 6), (1, 8))
    subset = tuple(BENCHMARKS_BY_NAME[n] for n in ("sphinx", "libq", "gobmk"))
    sweep_run = ScaledRun(instructions=min(run.instructions, 150_000))

    def compute():
        rows = {}
        for weak_t, strong_t in pairs:
            ratios = []
            for spec in subset:
                base = run_policy_suite(spec, sweep_run, policies=("baseline",))["baseline"]
                policy = MeccPolicy(controller=MeccController(
                    weak=make_scheme(weak_t), strong=make_scheme(strong_t)))
                result = simulate(_trace_for(spec, sweep_run), policy)
                ratios.append(result.ipc / base.ipc)
            storage = max(
                make_scheme(weak_t).storage_bits,
                make_scheme(strong_t, extended_detection=False).storage_bits,
            )
            rows[(weak_t, strong_t)] = {
                "normalized_ipc": geometric_mean(ratios),
                "idle_period_s": max_refresh_period_for_strength(strong_t),
                "storage_bits": storage,
                "fits_72_64": storage <= 60,
            }
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(format_table(
        ["weak/strong", "normalized IPC", "idle refresh (s)", "code bits", "fits (72,64)"],
        [[f"ECC-{w} / ECC-{s}", v["normalized_ipc"], v["idle_period_s"],
          v["storage_bits"], "yes" if v["fits_72_64"] else "NO"]
         for (w, s), v in rows.items()],
        title="Ablation — arbitrary morphing levels (paper Sec. VIII)",
    ))
    # Stronger strong code -> longer idle refresh; ECC-8 breaks the budget.
    assert rows[(1, 8)]["idle_period_s"] > rows[(1, 6)]["idle_period_s"]
    assert not rows[(1, 8)]["fits_72_64"]
    assert rows[(1, 6)]["fits_72_64"]
    # Heavier weak code costs active-mode performance.
    assert rows[(2, 6)]["normalized_ipc"] < rows[(1, 6)]["normalized_ipc"]
    # Weaker strong code: same active performance, shorter idle period.
    assert rows[(1, 4)]["idle_period_s"] < rows[(1, 6)]["idle_period_s"]


def test_ablation_temperature(benchmark, show):
    """Temperature sensitivity (extension): retention halves per +10 C.

    At elevated device temperatures the 1 s refresh period exceeds the
    ECC-6 budget; a temperature-compensated divider must fall back to
    shorter periods, shrinking the refresh saving (16x at nominal, 4x at
    +20 C, 1x at +40 C).
    """
    from repro.power.calculator import DramPowerCalculator
    from repro.reliability.provisioning import max_refresh_period_for_strength
    from repro.reliability.retention import RetentionModel

    def compute():
        calc = DramPowerCalculator()
        base_idle = calc.idle_power(0.064).total
        rows = {}
        for delta in (0.0, 10.0, 20.0, 30.0, 40.0):
            model = RetentionModel().at_temperature_offset(delta)
            safe = max_refresh_period_for_strength(6, model)
            # The divider only offers power-of-two stretches of 64 ms.
            # Allow the paper's own rounding margin (it treats 1.024 s
            # as "1 second" against a 1.009 s strict bound).
            divider = 1
            while 0.064 * divider * 2 <= safe * 1.05 and divider < 16:
                divider *= 2
            period = 0.064 * divider
            rows[delta] = {
                "safe_period_s": safe,
                "divider": divider,
                "idle_power_norm": calc.idle_power(period).total / base_idle,
            }
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(format_table(
        ["delta C", "ECC-6-safe period (s)", "usable divider", "idle power (norm)"],
        [[d, v["safe_period_s"], f"{v['divider']}x", v["idle_power_norm"]]
         for d, v in rows.items()],
        title="Ablation — temperature vs. MECC's refresh saving",
    ))
    assert rows[0.0]["divider"] == 16
    assert rows[20.0]["divider"] == 4
    assert rows[40.0]["divider"] == 1
    powers = [rows[d]["idle_power_norm"] for d in (0.0, 10.0, 20.0, 30.0, 40.0)]
    assert all(a <= b + 1e-9 for a, b in zip(powers, powers[1:]))


def test_ablation_address_mapping(benchmark, run, show):
    """Address-mapping ablation (extension): the open-page row-interleaved
    mapping vs. block interleaving.

    The paper's open-page system depends on row-buffer locality; block
    interleaving trades that locality for bank parallelism, which a
    *blocking* in-order core cannot exploit — so the baseline slows down
    and, notably, ECC-6's relative penalty shrinks (decode latency is a
    smaller share of a slower memory system).
    """
    from repro.dram.controller import MemoryController
    from repro.sim.engine import SimulationEngine
    from repro.sim.system import ScaledRun, SystemConfig

    config = SystemConfig()
    sweep_run = ScaledRun(instructions=min(run.instructions, 150_000))
    subset = ("sphinx", "libq")

    def compute():
        out = {}
        for policy in ("row-interleaved", "block-interleaved"):
            base_ipcs, hit_rates, ecc6_ratio = [], [], []
            for name in subset:
                trace = BENCHMARKS_BY_NAME[name].trace(sweep_run.instructions)
                engine = SimulationEngine(
                    policy=config.baseline_policy(),
                    controller=MemoryController(mapping_policy=policy),
                )
                base = engine.run(trace)
                hit_rates.append(engine.controller.stats.row_hit_rate)
                base_ipcs.append(base.ipc)
                ecc6 = SimulationEngine(
                    policy=config.ecc6_policy(),
                    controller=MemoryController(mapping_policy=policy),
                ).run(trace)
                ecc6_ratio.append(ecc6.ipc / base.ipc)
            n = len(subset)
            out[policy] = {
                "row_hit_rate": sum(hit_rates) / n,
                "baseline_ipc": sum(base_ipcs) / n,
                "ecc6_normalized": sum(ecc6_ratio) / n,
            }
        return out

    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(format_table(
        ["mapping", "row-hit rate", "baseline IPC", "ECC-6 (norm IPC)"],
        [[m, v["row_hit_rate"], v["baseline_ipc"], v["ecc6_normalized"]]
         for m, v in out.items()],
        title="Ablation — address mapping (sphinx+libq mean)",
    ))
    row = out["row-interleaved"]
    blk = out["block-interleaved"]
    # With only 4 banks a stream still revisits each bank's open row, so
    # block interleaving dents rather than destroys locality.
    assert row["row_hit_rate"] > blk["row_hit_rate"] + 0.05
    assert row["baseline_ipc"] > blk["baseline_ipc"]


def test_ablation_adaptive_governor(benchmark, show):
    """Adaptive refresh governor (extension): temperature-aware divider.

    Over a day with warm/hot segments, static MECC's fixed 1 s period
    silently violates its own reliability budget whenever the device runs
    above nominal temperature; the governor derates per segment, staying
    safe for a small energy premium.
    """
    from repro.core.governor import RefreshGovernor, static_mecc_idle_energy

    profile = [
        (8 * 3600.0, -5.0),   # cool night
        (12 * 3600.0, 5.0),   # warm daytime
        (2 * 3600.0, 25.0),   # hot gaming stretch
        (2 * 3600.0, 10.0),   # evening
    ]

    def compute():
        governor = RefreshGovernor()
        governed_j, decisions = governor.idle_energy_over_profile(profile)
        static_j, violations = static_mecc_idle_energy(profile)
        return {
            "decisions": [(d.temperature_offset_c, d.divider) for d in decisions],
            "governed_j": governed_j,
            "static_j": static_j,
            "static_violations": violations,
        }

    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(format_table(
        ["segment temp offset", "governed divider"],
        [[f"{t:+.0f} C", f"{d}x"] for t, d in out["decisions"]],
        title=(
            "Ablation — adaptive governor over a day "
            f"(governed {out['governed_j']:.0f} J vs static {out['static_j']:.0f} J, "
            f"static violates reliability on {out['static_violations']}/4 segments)"
        ),
    ))
    assert out["static_violations"] >= 3
    assert out["governed_j"] <= 1.2 * out["static_j"]
    dividers = dict(out["decisions"])
    assert dividers[-5.0] == 16 and dividers[25.0] <= 2
