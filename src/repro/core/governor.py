"""Adaptive refresh governor (extension; the paper's natural next step).

MECC fixes the idle refresh period at 1 s, which Table I justifies *at
nominal temperature*.  A real controller knows more: the DRAM thermal
sensor (LPDDR exposes one for self-refresh-rate derating) and the ECC
strength it shipped with.  This governor closes that loop — each idle
entry it picks the largest power-of-two refresh divider whose period the
provisioned ECC can still tolerate at the current temperature:

* at 25 °C it reproduces the paper exactly (divider 16, 1.024 s);
* on a hot device it derates gracefully instead of risking data
  (divider 4 at +20 °C) — where static MECC would violate its own
  reliability target;
* on a cool night it never exceeds the configured cap (VRT margin).

The governor is pure decision logic over existing substrates
(provisioning + retention + power), so it stays fully testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.power.calculator import DramPowerCalculator
from repro.reliability.provisioning import max_refresh_period_for_strength
from repro.reliability.retention import RetentionModel

#: JEDEC base period the divider stretches.
BASE_PERIOD_S = 0.064
#: The paper's rounding margin: 1.024 s is accepted against the strict
#: ~1.009 s ECC-6 bound.
PERIOD_MARGIN = 1.05


@dataclass(frozen=True)
class GovernorDecision:
    """One idle-entry decision."""

    temperature_offset_c: float
    divider: int
    period_s: float
    safe_period_s: float
    idle_power_w: float

    @property
    def refresh_reduction(self) -> int:
        return self.divider


@dataclass
class RefreshGovernor:
    """Choose the idle refresh divider from temperature + ECC strength.

    Attributes:
        ecc_t: provisioned strong-ECC strength (paper: 6).
        retention: nominal-temperature retention model.
        max_divider_bits: cap on the divider counter width (paper: 4,
            i.e. at most 16x — also a VRT safety margin against running
            arbitrarily slow on a cold device).
        calculator: power model for reporting the decision's idle power.
    """

    ecc_t: int = 6
    retention: RetentionModel = field(default_factory=RetentionModel)
    max_divider_bits: int = 4
    calculator: DramPowerCalculator = field(default_factory=DramPowerCalculator)

    def __post_init__(self) -> None:
        if self.ecc_t < 1:
            raise ConfigurationError("ecc_t must be >= 1")
        if not 0 <= self.max_divider_bits <= 16:
            raise ConfigurationError("max_divider_bits must be in [0, 16]")
        self._safe_period_cache: dict[float, float] = {}

    def safe_period_s(self, temperature_offset_c: float) -> float:
        """Longest ECC-safe refresh period at a temperature offset."""
        cached = self._safe_period_cache.get(temperature_offset_c)
        if cached is None:
            model = self.retention.at_temperature_offset(temperature_offset_c)
            cached = max_refresh_period_for_strength(self.ecc_t, model)
            self._safe_period_cache[temperature_offset_c] = cached
        return cached

    def decide(self, temperature_offset_c: float = 0.0) -> GovernorDecision:
        """Pick the divider for one idle period."""
        safe = self.safe_period_s(temperature_offset_c)
        divider = 1
        max_divider = 1 << self.max_divider_bits
        while (
            divider < max_divider
            and BASE_PERIOD_S * divider * 2 <= safe * PERIOD_MARGIN
        ):
            divider *= 2
        period = BASE_PERIOD_S * divider
        return GovernorDecision(
            temperature_offset_c=temperature_offset_c,
            divider=divider,
            period_s=period,
            safe_period_s=safe,
            idle_power_w=self.calculator.idle_power(period).total,
        )

    def idle_energy_over_profile(
        self, profile: list[tuple[float, float]]
    ) -> tuple[float, list[GovernorDecision]]:
        """Idle energy over a (duration_s, temperature_offset_c) profile.

        Returns total joules and the per-segment decisions.
        """
        if not profile:
            raise ConfigurationError("profile must be non-empty")
        total = 0.0
        decisions = []
        for duration_s, offset_c in profile:
            if duration_s < 0:
                raise ConfigurationError("durations must be non-negative")
            decision = self.decide(offset_c)
            decisions.append(decision)
            total += decision.idle_power_w * duration_s
        return total, decisions


def static_mecc_idle_energy(
    profile: list[tuple[float, float]],
    retention: RetentionModel | None = None,
    ecc_t: int = 6,
    calculator: DramPowerCalculator | None = None,
) -> tuple[float, int]:
    """Static MECC (fixed 16x divider) over the same profile.

    Returns ``(energy_j, reliability_violations)`` where a violation is a
    segment whose temperature makes the fixed 1.024 s period exceed the
    ECC-safe bound — static MECC either loses data there or must fall
    back to JEDEC refresh out-of-band.
    """
    if not profile:
        raise ConfigurationError("profile must be non-empty")
    retention = retention or RetentionModel()
    calc = calculator or DramPowerCalculator()
    period = BASE_PERIOD_S * 16
    power = calc.idle_power(period).total
    energy = 0.0
    violations = 0
    for duration_s, offset_c in profile:
        energy += power * duration_s
        model = retention.at_temperature_offset(offset_c)
        if period > max_refresh_period_for_strength(ecc_t, model) * PERIOD_MARGIN:
            violations += 1
    return energy, violations
