"""One-shot reproduction report: every exhibit, rendered as markdown.

``generate_report`` runs the full exhibit set at a chosen scale and
renders an EXPERIMENTS-style markdown document with each table in a
code fence, prefixed by the paper's expectation.  The CLI exposes it as
``python -m repro report -o report.md``.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.errors import ConfigurationError
from repro.sim.system import ScaledRun

#: Paper expectations shown above each exhibit.
PAPER_NOTES = {
    "table1": "Paper: ECC-5 meets the 1e-6 system target at BER 10^-4.5; "
              "ECC-6 adds the soft-error margin.",
    "fig2": "Paper anchors: BER 1e-9 at 64 ms, 10^-4.5 at 1 s.",
    "fig3": "Paper: SECDED <1%; ECC-6 ~2%/~9%/~16% by class, 10% overall.",
    "fig7": "Paper geomeans: SECDED 0.995, ECC-6 0.90 (libq ~0.79), MECC 0.988.",
    "fig8": "Paper: refresh 1/16; total idle power ~0.57 of baseline.",
    "fig9": "Paper: MECC power ~+1%; ECC-6 EDP ~+12%; energies similar.",
    "fig10": "Paper: ~15% total-energy saving at 95% idle (see EXPERIMENTS.md "
             "on the active/idle power-ratio discussion).",
    "fig11": "Paper: ~128 MB average footprint -> 8x less upgrade work; "
             "400 ms -> 50 ms.",
    "fig12": "Paper: ECC-6 drops to 0.82 at 60 cycles; MECC stays within ~2%.",
    "fig13": "Paper: MECC converges from ~2% (<=1B instr) to 1.2% (4B).",
    "fig14": "Paper: povray, tonto, wrf, gamess, hmmer, sjeng, h264ref never "
             "enable ECC-Downgrade; average within 2% of baseline.",
    "table3": "Paper: Low 1.514/0.3/26; Med 0.887/4.7/96.4; "
              "High 0.359/23.5/259.1 (IPC/MPKI/MB).",
    "related-work": "Paper Sec. VII: Flikker ~1/3 effective rate; "
                    "profile-based schemes are VRT-fragile; RAIDR orthogonal.",
    "functional": "Extension: real codewords survive the 1 s refresh under "
                  "MECC/ECC-6; no-ECC corrupts silently.",
    "device": "Extension: device-scale energy ledger with upgrade costs.",
}


def render_codec_counters(counters_by_name) -> str:
    """Render codec fast-path counters as a table (plus cache hit rate).

    Args:
        counters_by_name: mapping of display name ->
            :class:`repro.ecc.counters.CodecCounters` (e.g. the output of
            :meth:`repro.ecc.layout.LineCodec.codec_counters`).
    """
    from repro.analysis.tables import format_table
    from repro.ecc.matrix import table_cache_info
    from repro.sim.stats import summarize_histogram

    rows = []
    for name, counters in counters_by_name.items():
        hist = summarize_histogram(counters.corrected_histogram)
        rows.append([
            name,
            counters.encodes,
            counters.decodes,
            counters.detected_uncorrectable,
            counters.corrected_bits_total,
            f"{hist['mean']:.3f}",
            hist["max"],
        ])
    cache = table_cache_info()
    return format_table(
        ["codec", "encodes", "decodes", "detected", "corrected bits",
         "bits/word", "max/word"],
        rows,
        title="Codec fast-path counters "
        f"(table cache: {cache['hits']} hits / {cache['misses']} misses)",
    )


def render_metrics(registry, title: str = "Metrics") -> str:
    """Render a :class:`repro.obs.metrics.MetricsRegistry` as a table.

    One row per metric, sorted by namespaced name; returns an empty
    string for an empty registry so callers can print unconditionally.
    """
    from repro.analysis.tables import format_table

    snapshot = registry.snapshot()
    if not snapshot:
        return ""
    rows = []
    for name, value in snapshot.items():
        if isinstance(value, float):
            value = f"{value:.6g}"
        rows.append([name, value])
    return format_table(["metric", "value"], rows, title=title)


def render_runner_summary(runner=None) -> str:
    """Render the experiment runner's manifest as a summary table.

    One row per policy (job count, cache hits, simulated wall time) plus
    a totals row; the title carries the parallelism setting and the
    cache hit rate.  Returns an empty string when no jobs ran, so
    callers can print the result unconditionally.

    Args:
        runner: an :class:`repro.analysis.runner.ExperimentRunner`;
            defaults to the process-wide runner.
    """
    from repro.analysis.runner import get_runner
    from repro.analysis.tables import format_table

    runner = runner or get_runner()
    manifest = runner.manifest()
    if not manifest["totals"]["job_count"]:
        return ""
    by_policy: dict[str, dict[str, float]] = {}
    for job in manifest["jobs"]:
        row = by_policy.setdefault(
            job["policy"], {"jobs": 0, "hits": 0, "wall_s": 0.0}
        )
        row["jobs"] += 1
        if job["source"] == "cache":
            row["hits"] += 1
        else:
            row["wall_s"] += job["wall_s"]
    rows = [
        [policy, row["jobs"], row["hits"], f"{row['wall_s']:.2f}"]
        for policy, row in sorted(by_policy.items())
    ]
    totals = manifest["totals"]
    cache = manifest["cache"]
    rows.append(
        ["TOTAL", totals["job_count"], cache["hits"],
         f"{totals['simulated_wall_s']:.2f}"]
    )
    return format_table(
        ["policy", "jobs", "cache hits", "sim wall s"],
        rows,
        title=(
            f"Experiment runner — jobs={manifest['parallelism']['jobs']}, "
            f"cache hit rate {cache['hit_rate']:.0%}"
        ),
    )


def generate_report(
    run: ScaledRun | None = None,
    include: Iterable[str] | None = None,
) -> str:
    """Render the reproduction report as a markdown string."""
    from repro.cli import EXHIBITS

    run = run or ScaledRun()
    names = list(include) if include is not None else list(EXHIBITS)
    unknown = [n for n in names if n not in EXHIBITS]
    if unknown:
        raise ConfigurationError(f"unknown exhibits: {unknown}")
    lines = [
        "# Morphable ECC reproduction report",
        "",
        f"Generated by `repro` at scale {run.instructions:,} instructions "
        f"per benchmark slice (standing for {run.paper_instructions:,}; "
        f"scale factor {run.scale_factor:,.0f}x).",
        "",
        f"Wall-clock start: {time.strftime('%Y-%m-%d %H:%M:%S')}",
        "",
    ]
    for name in names:
        title, fn = EXHIBITS[name]
        lines.append(f"## {title}")
        lines.append("")
        note = PAPER_NOTES.get(name)
        if note:
            lines.append(f"> {note}")
            lines.append("")
        lines.append("```")
        lines.append(fn(run).rstrip())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(
    path: str,
    run: ScaledRun | None = None,
    include: Iterable[str] | None = None,
) -> str:
    """Generate and write the report; returns the markdown."""
    text = generate_report(run, include)
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(text)
    return text
