"""Whole-device simulation: cycle-accurate bursts inside a day of usage.

Combines every layer of the library: each active burst runs a real trace
through the cycle engine under the chosen ECC policy (fresh-from-idle
MECC state per burst), each idle period is charged self-refresh power at
the scheme's period, and MECC's idle entries pay the measured
ECC-Upgrade cost for the lines actually downgraded during the burst
(MDT-accurate).  The result is an energy/performance ledger for a
realistic mixed-app session — the device-scale version of Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.device import DramDevice
from repro.errors import ConfigurationError
from repro.power.calculator import DramPowerCalculator
from repro.sim.engine import SimulationEngine
from repro.sim.system import ScaledRun, SystemConfig
from repro.types import SimResult
from repro.workloads.spec import BenchmarkSpec
from repro.workloads.trace import Trace


@dataclass
class BurstOutcome:
    """One active burst's results (energies at represented wall-clock scale)."""

    benchmark: str
    result: SimResult
    burst_seconds: float
    active_energy_j: float
    upgrade_seconds: float
    upgrade_energy_j: float
    downgraded_bytes: int


@dataclass
class DeviceReport:
    """Full-session ledger."""

    scheme: str
    bursts: list[BurstOutcome] = field(default_factory=list)
    idle_seconds: float = 0.0
    idle_energy_j: float = 0.0

    @property
    def active_seconds(self) -> float:
        return sum(b.burst_seconds for b in self.bursts)

    @property
    def active_energy_j(self) -> float:
        return sum(b.active_energy_j for b in self.bursts)

    @property
    def upgrade_energy_j(self) -> float:
        return sum(b.upgrade_energy_j for b in self.bursts)

    @property
    def total_energy_j(self) -> float:
        return self.active_energy_j + self.idle_energy_j + self.upgrade_energy_j

    @property
    def total_seconds(self) -> float:
        return self.active_seconds + self.idle_seconds

    @property
    def total_instructions(self) -> int:
        return sum(b.result.instructions for b in self.bursts)

    @property
    def average_ipc(self) -> float:
        cycles = sum(b.result.cycles for b in self.bursts)
        if cycles == 0:
            raise ConfigurationError("no active cycles simulated")
        return self.total_instructions / cycles


class DeviceSimulator:
    """Simulate alternating app bursts and idle periods under one scheme.

    Args:
        scheme: ``baseline`` / ``secded`` / ``ecc6`` / ``mecc`` /
            ``mecc+smd``.
        config: the Table II system.
        run: scaled-run bookkeeping (burst length, SMD quantum).
        idle_seconds: idle period between bursts.
    """

    #: Idle self-refresh period per scheme.
    IDLE_PERIODS = {
        "baseline": 0.064,
        "secded": 0.064,
        "ecc6": 1.024,
        "mecc": 1.024,
        "mecc+smd": 1.024,
    }

    def __init__(
        self,
        scheme: str = "mecc",
        config: SystemConfig | None = None,
        run: ScaledRun | None = None,
        idle_seconds: float = 104.5,
    ):
        if scheme not in self.IDLE_PERIODS:
            raise ConfigurationError(f"unknown scheme {scheme!r}")
        if idle_seconds <= 0:
            raise ConfigurationError("idle_seconds must be positive")
        self.scheme = scheme
        self.config = config or SystemConfig()
        self.run = run or ScaledRun(instructions=200_000)
        self.idle_seconds = idle_seconds
        self.calculator = DramPowerCalculator(self.config.power)
        self.device = DramDevice(org=self.config.org)
        self.report = DeviceReport(scheme=scheme)
        self._trace_cache: dict[str, Trace] = {}

    # -- session steps ----------------------------------------------------------

    def run_burst(self, spec: BenchmarkSpec) -> BurstOutcome:
        """One active burst running ``spec``'s workload."""
        trace = self._trace_cache.get(spec.name)
        if trace is None:
            trace = spec.trace(self.run.instructions)
            self._trace_cache[spec.name] = trace
        if self.scheme == "mecc+smd":
            policy = self.config.policy_by_name(
                "mecc+smd", quantum_cycles=self.run.quantum_cycles
            )
        else:
            policy = self.config.policy_by_name(self.scheme)
        engine = SimulationEngine(policy=policy)
        result = engine.run(trace)
        # Wall-clock this burst stands for, at paper scale; energy scales
        # by the same factor (the simulated slice is a statistical sample
        # of the full burst).
        burst_seconds = self.run.to_paper_seconds(result.cycles)
        active_energy = result.energy.total * self.run.scale_factor
        upgrade_seconds = 0.0
        upgrade_energy = 0.0
        downgraded_bytes = 0
        if self.scheme.startswith("mecc"):
            # Idle entry: MDT-guided ECC-Upgrade.  The scaled trace's
            # working set underestimates the full-scale footprint, so the
            # upgrade scan is costed from the benchmark's Table III
            # footprint (1 MB MDT regions), as in Fig. 11.
            regions = max(1, int(spec.footprint_mb + 0.5))
            downgraded_bytes = regions << 20
            upgrade_seconds = self.device.upgrade_seconds_for_regions(regions, 1 << 20)
            upgrade_energy = (
                (downgraded_bytes // self.config.org.line_bytes)
                * self.config.strong_scheme().encode_energy_pj
                * 1e-12
            )
            policy.controller.enter_idle()
        outcome = BurstOutcome(
            benchmark=spec.name,
            result=result,
            burst_seconds=burst_seconds,
            active_energy_j=active_energy,
            upgrade_seconds=upgrade_seconds,
            upgrade_energy_j=upgrade_energy,
            downgraded_bytes=downgraded_bytes,
        )
        self.report.bursts.append(outcome)
        return outcome

    def run_idle(self, seconds: float | None = None) -> float:
        """One idle period; returns the energy charged."""
        seconds = self.idle_seconds if seconds is None else seconds
        if seconds <= 0:
            raise ConfigurationError("idle seconds must be positive")
        idle = self.calculator.idle_power(self.IDLE_PERIODS[self.scheme])
        energy = idle.total * seconds
        self.report.idle_seconds += seconds
        self.report.idle_energy_j += energy
        return energy

    def run_session(self, benchmarks: list[BenchmarkSpec], cycles: int = 1) -> DeviceReport:
        """Alternate bursts (round-robin over ``benchmarks``) and idles."""
        if not benchmarks:
            raise ConfigurationError("need at least one benchmark")
        if cycles < 1:
            raise ConfigurationError("cycles must be >= 1")
        for _ in range(cycles):
            for spec in benchmarks:
                self.run_burst(spec)
                self.run_idle()
        return self.report
