"""Full conformance pass: every registered claim, simulations included.

This is the nightly tier of the fidelity gate (the analytic ``reduced``
set runs on every merge): the complete benchmark x policy fan-out at the
standard 400k-instruction slice, ~30 s serial.
"""

import pytest

from repro.fidelity import claims_in_set, evaluate_claims
from repro.obs import MetricsRegistry

pytestmark = pytest.mark.slow


def test_full_claim_set_conforms():
    report = evaluate_claims([c.id for c in claims_in_set("full")])
    assert report.passed, report.render_table()
    assert len(report.results) >= 10
    kinds = {r.claim.kind for r in report.results}
    assert kinds == {"analytic", "simulation"}


def test_full_report_feeds_metrics():
    report = evaluate_claims([c.id for c in claims_in_set("full")])
    registry = MetricsRegistry()
    registry.record_fidelity(report)
    assert registry.get("fidelity.passed") is True
    assert registry.get("fidelity.evaluated") == len(report.results)
    assert registry.get("fidelity.failed") == 0
    for result in report.results:
        assert registry.get(f"fidelity.claim.{result.claim.id}.passed") is True
