"""Fig. 13: MECC's transition time — normalized IPC vs. slice length.

Paper: MECC is ~2% slow in the first ~1B instructions (while cold lines
still carry ECC-6) and converges to within 1.2% by 4B instructions;
downgrades concentrate at the start of the active period.
"""

from repro.analysis.experiments import fig13_transition
from repro.analysis.tables import format_table


def test_fig13_transition_time(benchmark, run, show):
    out = benchmark.pedantic(
        fig13_transition, kwargs={"run": run}, rounds=1, iterations=1
    )
    rows = []
    for fraction in sorted(out):
        v = out[fraction]
        rows.append([
            f"{v['paper_instructions'] / 1e9:.1f}B",
            v["secded"],
            v["mecc"],
            v["secded"] - v["mecc"],
        ])
    show(format_table(
        ["slice (paper scale)", "SECDED", "MECC", "gap"],
        rows,
        title="Fig. 13 — MECC convergence toward SECDED with slice length",
    ))
    fractions = sorted(out)
    gaps = [out[f]["secded"] - out[f]["mecc"] for f in fractions]
    # The MECC-vs-SECDED gap shrinks monotonically (modulo noise) and
    # at least halves from the shortest to the full slice.
    assert gaps[-1] < gaps[0] / 2
    # At full length, MECC is close to SECDED (paper: within ~1%).
    assert gaps[-1] < 0.03
