"""Tests for the whole-device simulator."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.device import DeviceSimulator
from repro.sim.system import ScaledRun
from repro.workloads.spec import BENCHMARKS_BY_NAME

RUN = ScaledRun(instructions=60_000)
MIX = [BENCHMARKS_BY_NAME[n] for n in ("h264ref", "sphinx")]


def make(scheme="mecc", **kwargs):
    return DeviceSimulator(scheme=scheme, run=RUN, **kwargs)


class TestSessionAccounting:
    def test_burst_and_idle_alternate(self):
        sim = make()
        report = sim.run_session(MIX, cycles=2)
        assert len(report.bursts) == 4
        assert report.idle_seconds == pytest.approx(4 * 104.5)
        assert report.total_seconds == report.active_seconds + report.idle_seconds

    def test_burst_seconds_at_paper_scale(self):
        """A 60k-instruction slice stands for ~4B instructions: the burst
        should represent seconds of wall-clock, not microseconds."""
        sim = make()
        outcome = sim.run_burst(MIX[0])
        assert 1.0 < outcome.burst_seconds < 60.0

    def test_energy_components_positive(self):
        sim = make()
        report = sim.run_session(MIX)
        assert report.active_energy_j > 0
        assert report.idle_energy_j > 0
        assert report.total_energy_j == pytest.approx(
            report.active_energy_j + report.idle_energy_j + report.upgrade_energy_j
        )

    def test_traces_cached_across_cycles(self):
        sim = make()
        sim.run_session(MIX, cycles=2)
        assert set(sim._trace_cache) == {"h264ref", "sphinx"}

    def test_average_ipc(self):
        sim = make()
        report = sim.run_session(MIX)
        assert 0.1 < report.average_ipc < 2.0


class TestSchemeComparison:
    def test_mecc_saves_total_energy(self):
        base = make("baseline").run_session(MIX, cycles=2)
        mecc = make("mecc").run_session(MIX, cycles=2)
        assert mecc.idle_energy_j < 0.6 * base.idle_energy_j
        assert mecc.total_energy_j < base.total_energy_j

    def test_secded_idle_power_unchanged(self):
        base = make("baseline").run_session(MIX)
        secded = make("secded").run_session(MIX)
        assert secded.idle_energy_j == pytest.approx(base.idle_energy_j)

    def test_ecc6_slower_than_mecc(self):
        ecc6 = make("ecc6").run_session(MIX, cycles=2)
        mecc = make("mecc").run_session(MIX, cycles=2)
        assert ecc6.average_ipc < mecc.average_ipc

    def test_mecc_pays_upgrade_costs(self):
        mecc = make("mecc").run_session(MIX)
        base = make("baseline").run_session(MIX)
        assert mecc.upgrade_energy_j > 0
        assert base.upgrade_energy_j == 0
        for outcome in mecc.bursts:
            assert outcome.upgrade_seconds > 0
            assert outcome.downgraded_bytes > 0

    def test_upgrade_time_tracks_footprint(self):
        sim = make("mecc")
        small = sim.run_burst(BENCHMARKS_BY_NAME["povray"])  # 4 MB
        large = sim.run_burst(BENCHMARKS_BY_NAME["sphinx"])  # 34 MB
        assert large.upgrade_seconds > small.upgrade_seconds

    def test_smd_scheme_runs(self):
        report = make("mecc+smd").run_session(MIX)
        assert len(report.bursts) == 2


class TestValidation:
    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            DeviceSimulator(scheme="raid5")

    def test_bad_idle(self):
        with pytest.raises(ConfigurationError):
            DeviceSimulator(idle_seconds=0.0)
        with pytest.raises(ConfigurationError):
            make().run_idle(-5.0)

    def test_empty_session(self):
        with pytest.raises(ConfigurationError):
            make().run_session([], cycles=1)
        with pytest.raises(ConfigurationError):
            make().run_session(MIX, cycles=0)

    def test_ipc_requires_bursts(self):
        with pytest.raises(ConfigurationError):
            _ = make().report.average_ipc
