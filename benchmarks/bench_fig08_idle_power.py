"""Fig. 8: refresh power (left) and total idle power (right).

Paper: both MECC and ECC-6 cut refresh operations 16x and total idle
power by ~43% ("almost 2X"); refresh is about half the idle power.

Thin shim over the ``repro.report`` registry (exhibit ``fig8``).
"""

import pytest

from repro.analysis.tables import format_table
from repro.report.spec import get_exhibit

EXHIBIT_ID = "fig8"


def test_fig08_idle_power(benchmark, show):
    spec = get_exhibit(EXHIBIT_ID)
    data = benchmark.pedantic(spec.build, rounds=1, iterations=1)
    show(format_table(
        ["scheme", "refresh mW", "background mW", "total mW",
         "refresh norm", "total norm"],
        [
            [row["scheme"], 1000 * row["refresh_w"], 1000 * row["background_w"],
             1000 * row["total_w"], row["refresh_norm"], row["total_norm"]]
            for row in (data.row(k) for k in data.row_keys())
        ],
        title=(
            "Fig. 8 — idle (self-refresh) power; paper: refresh 1/16, "
            "total ~0.57 of baseline"
        ),
    ))
    for scheme in ("MECC", "ECC-6"):
        assert data.cell(scheme, "refresh_norm") == pytest.approx(1 / 16)
        assert 0.40 <= data.cell(scheme, "total_norm") <= 0.60
    base = data.row("Baseline")
    assert base["refresh_w"] / base["total_w"] == pytest.approx(0.5, abs=0.1)
