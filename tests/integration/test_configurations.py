"""Configuration-matrix tests: the stack works beyond Table II.

The paper evaluates one system; a library must hold up across the
configuration space.  Run a small fixed workload through combinations of
organization, timings, mapping, and policy, asserting structural sanity
(and a few directional physics checks) everywhere.
"""

import pytest

from repro.dram.config import DramOrganization, DramTimings, PROC_CYCLES_PER_BUS_CYCLE
from repro.dram.controller import MemoryController
from repro.sim.engine import SimulationEngine
from repro.sim.system import SystemConfig
from repro.workloads.spec import BENCHMARKS_BY_NAME

TRACE = BENCHMARKS_BY_NAME["sphinx"].trace(25_000, calibrate=False)

ORGS = {
    "paper-1GB": DramOrganization(),
    "2GB-8banks": DramOrganization(capacity_bytes=2 << 30, banks=8),
    "2channel": DramOrganization(channels=2),
    "512MB": DramOrganization(capacity_bytes=512 << 20),
}


class TestOrganizationMatrix:
    @pytest.mark.parametrize("name", list(ORGS))
    @pytest.mark.parametrize("policy_name", ["baseline", "secded", "ecc6", "mecc"])
    def test_runs_and_is_sane(self, name, policy_name):
        org = ORGS[name]
        config = SystemConfig(org=org)
        engine = SimulationEngine(
            policy=config.policy_by_name(policy_name),
            controller=MemoryController(org=org),
        )
        result = engine.run(TRACE)
        assert result.instructions == TRACE.instructions
        assert 0.0 < result.ipc <= 2.0
        assert result.energy.total > 0

    def test_more_banks_never_slower(self):
        few = SimulationEngine(
            controller=MemoryController(org=ORGS["paper-1GB"])
        ).run(TRACE)
        many = SimulationEngine(
            controller=MemoryController(org=ORGS["2GB-8banks"])
        ).run(TRACE)
        # More banks -> fewer row conflicts for the same stream.
        assert many.cycles <= few.cycles * 1.02

    @pytest.mark.parametrize("mapping", ["row-interleaved", "block-interleaved"])
    def test_mappings_with_mecc(self, mapping):
        config = SystemConfig()
        engine = SimulationEngine(
            policy=config.policy_by_name("mecc"),
            controller=MemoryController(mapping_policy=mapping),
        )
        result = engine.run(TRACE)
        assert result.downgrades > 0


class TestTimingMatrix:
    def test_slower_bus_slower_system(self):
        """Halving the bus speed (doubling every DRAM timing) slows a
        memory-bound run."""
        slow = DramTimings(
            t_rcd=6 * PROC_CYCLES_PER_BUS_CYCLE,
            t_rp=6 * PROC_CYCLES_PER_BUS_CYCLE,
            t_cl=6 * PROC_CYCLES_PER_BUS_CYCLE,
            t_ras=16 * PROC_CYCLES_PER_BUS_CYCLE,
            t_rc=22 * PROC_CYCLES_PER_BUS_CYCLE,
            t_burst=8 * PROC_CYCLES_PER_BUS_CYCLE,
            t_rfc=44 * PROC_CYCLES_PER_BUS_CYCLE,
        )
        fast_run = SimulationEngine(controller=MemoryController()).run(TRACE)
        slow_run = SimulationEngine(
            controller=MemoryController(timings=slow)
        ).run(TRACE)
        assert slow_run.cycles > fast_run.cycles

    def test_decode_latency_dominates_on_fast_memory(self):
        """The faster the memory, the *bigger* ECC-6's relative penalty —
        the decode becomes a larger share of each miss."""
        fast = DramTimings(
            t_rcd=2 * PROC_CYCLES_PER_BUS_CYCLE,
            t_rp=2 * PROC_CYCLES_PER_BUS_CYCLE,
            t_cl=2 * PROC_CYCLES_PER_BUS_CYCLE,
            t_ras=6 * PROC_CYCLES_PER_BUS_CYCLE,
            t_rc=8 * PROC_CYCLES_PER_BUS_CYCLE,
            t_burst=2 * PROC_CYCLES_PER_BUS_CYCLE,
            t_rfc=22 * PROC_CYCLES_PER_BUS_CYCLE,
        )
        config = SystemConfig()

        def penalty(timings):
            base = SimulationEngine(
                policy=config.baseline_policy(),
                controller=MemoryController(timings=timings),
            ).run(TRACE)
            ecc6 = SimulationEngine(
                policy=config.ecc6_policy(),
                controller=MemoryController(timings=timings),
            ).run(TRACE)
            return 1.0 - ecc6.ipc / base.ipc

        assert penalty(fast) > penalty(DramTimings())
