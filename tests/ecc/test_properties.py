"""Property-based round-trip tests over the paper's code configurations.

Seeded ``random`` only (no extra dependencies): for every correction
strength the scheme registry (:mod:`repro.ecc.codes`) can instantiate
over a 64-byte line, any <= t-bit corruption must decode back to the
original data, and the extended variants must *detect* exactly-(t+1)-bit
corruption rather than miscorrect it (designed distance 2t+2).
"""

import random

import pytest

from repro.ecc.bch import BchCode
from repro.ecc.codes import make_scheme
from repro.ecc.hamming import SecDedCode
from repro.ecc.hsiao import HsiaoCode
from repro.errors import UncorrectableError

#: The paper's protected message: 512 data bits + 4 mode-replica bits.
MESSAGE_BITS = 516
#: BCH strengths the scheme registry uses for a 64-byte line (t >= 2).
BCH_STRENGTHS = range(2, 7)


class TestSchemeRegistryAgreement:
    """The real codecs match the registry's storage-bit cost model."""

    @pytest.mark.parametrize("t", BCH_STRENGTHS)
    def test_bch_parity_matches_scheme_storage(self, t):
        scheme = make_scheme(t, extended_detection=True)
        code = BchCode(t=t, data_bits=512, extended=True)
        assert code.parity_bits + 1 == scheme.storage_bits
        assert code.m == 10

    def test_secded_checks_match_scheme_storage(self):
        scheme = make_scheme(1)
        code = SecDedCode(512)
        assert code.check_bits == scheme.storage_bits


class TestRoundTripProperty:
    """Any <= t corruption on any data decodes to the original data."""

    @pytest.mark.parametrize("t", BCH_STRENGTHS)
    def test_bch_roundtrip_under_t_errors(self, t):
        code = BchCode(t=t, data_bits=MESSAGE_BITS)
        rng = random.Random(7000 + t)
        for _ in range(12):
            data = rng.getrandbits(MESSAGE_BITS)
            word = code.encode(data)
            n_errors = rng.randint(0, t)
            positions = rng.sample(range(code.codeword_bits), n_errors)
            for p in positions:
                word ^= 1 << p
            result = code.decode(word)
            assert result.data == data
            assert sorted(result.corrected_positions) == sorted(positions)

    def test_secded_roundtrip_single_error(self):
        code = SecDedCode(MESSAGE_BITS)
        rng = random.Random(7100)
        for _ in range(40):
            data = rng.getrandbits(MESSAGE_BITS)
            word = code.encode(data)
            if rng.random() < 0.8:
                word ^= 1 << rng.randrange(code.codeword_bits)
            assert code.decode(word).data == data

    def test_hsiao_roundtrip_single_error(self):
        code = HsiaoCode(64)
        rng = random.Random(7200)
        for _ in range(40):
            data = rng.getrandbits(64)
            word = code.encode(data)
            if rng.random() < 0.8:
                word ^= 1 << rng.randrange(code.codeword_bits)
            assert code.decode(word).data == data


class TestReferencePathAgreement:
    """The fast matrix path and the reference oracle agree bit-for-bit."""

    @pytest.mark.parametrize("t", BCH_STRENGTHS)
    def test_reference_decode_matches_under_t_errors(self, t):
        code = BchCode(t=t, data_bits=MESSAGE_BITS)
        rng = random.Random(7600 + t)
        for _ in range(10):
            data = rng.getrandbits(MESSAGE_BITS)
            word = code.encode(data)
            positions = rng.sample(range(code.codeword_bits), rng.randint(0, t))
            for p in positions:
                word ^= 1 << p
            fast = code.decode(word)
            oracle = code.decode_reference(word)
            assert fast.data == data
            assert oracle.data == data
            assert fast.corrected_positions == oracle.corrected_positions
            assert sorted(fast.corrected_positions) == sorted(positions)

    @pytest.mark.parametrize("t", BCH_STRENGTHS)
    def test_reference_agrees_on_detection(self, t):
        """Extended t+1 patterns are rejected by both paths, not just one."""
        code = BchCode(t=t, data_bits=MESSAGE_BITS, extended=True)
        rng = random.Random(7700 + t)
        for _ in range(6):
            word = code.encode(rng.getrandbits(MESSAGE_BITS))
            for p in rng.sample(range(code.codeword_bits), t + 1):
                word ^= 1 << p
            with pytest.raises(UncorrectableError):
                code.decode(word)
            with pytest.raises(UncorrectableError):
                code.decode_reference(word)


class TestBeyondCapacityProperty:
    """> t errors either raise, or miscorrect *consistently* — both paths
    return the same result and the output re-encodes to a codeword within
    t bits of the received word (a coset leader), never an arbitrary word.
    """

    @pytest.mark.parametrize("t", BCH_STRENGTHS)
    def test_overload_never_silently_inconsistent(self, t):
        code = BchCode(t=t, data_bits=MESSAGE_BITS)
        rng = random.Random(7800 + t)
        raised = returned = 0
        for _ in range(12):
            data = rng.getrandbits(MESSAGE_BITS)
            word = code.encode(data)
            for p in rng.sample(range(code.codeword_bits), t + 2):
                word ^= 1 << p
            try:
                fast = code.decode(word)
            except UncorrectableError:
                raised += 1
                with pytest.raises(UncorrectableError):
                    code.decode_reference(word)
                continue
            returned += 1
            oracle = code.decode_reference(word)
            assert fast.data == oracle.data
            assert fast.corrected_positions == oracle.corrected_positions
            # A silent miscorrection still lands on a true codeword
            # reachable by flipping <= t bits of the received word.
            reencoded = code.encode_reference(fast.data)
            distance = bin(reencoded ^ word).count("1")
            assert 0 < distance <= t
        # The campaign must exercise at least one of the two outcomes
        # (both is typical); a dead loop would prove nothing.
        assert raised + returned == 12


class TestExtendedDetectionProperty:
    """Extended codes detect exactly t+1 errors — never miscorrect them."""

    @pytest.mark.parametrize("t", BCH_STRENGTHS)
    def test_extended_bch_detects_t_plus_one(self, t):
        code = BchCode(t=t, data_bits=MESSAGE_BITS, extended=True)
        rng = random.Random(7300 + t)
        for _ in range(8):
            data = rng.getrandbits(MESSAGE_BITS)
            word = code.encode(data)
            for p in rng.sample(range(code.codeword_bits), t + 1):
                word ^= 1 << p
            with pytest.raises(UncorrectableError):
                code.decode(word)

    def test_secded_detects_double_error(self):
        code = SecDedCode(MESSAGE_BITS)
        rng = random.Random(7400)
        for _ in range(30):
            word = code.encode(rng.getrandbits(MESSAGE_BITS))
            for p in rng.sample(range(code.codeword_bits), 2):
                word ^= 1 << p
            with pytest.raises(UncorrectableError):
                code.decode(word)

    def test_hsiao_detects_double_error(self):
        code = HsiaoCode(64)
        rng = random.Random(7500)
        for _ in range(30):
            word = code.encode(rng.getrandbits(64))
            for p in rng.sample(range(code.codeword_bits), 2):
                word ^= 1 << p
            with pytest.raises(UncorrectableError):
                code.decode(word)
