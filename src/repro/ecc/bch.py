"""Binary BCH codes: the paper's strong multi-bit ECC (ECC-2 .. ECC-6).

The paper (Sec. III-E) uses t-error-correcting BCH over GF(2^m) with
``t*m`` parity bits (plus one for t+1-error detection).  For a 64-byte
line (512 data bits) this means m=10 and, for ECC-6, 60 parity bits —
exactly the budget available in a (72,64)-style ECC DIMM once SECDED is
moved to line granularity (paper Fig. 6).

Two implementations live side by side:

* the **fast path** (:meth:`BchCode.encode` / :meth:`BchCode.decode`)
  folds precomputed generator-matrix rows and packed parity-check
  columns byte-at-a-time (:mod:`repro.ecc.matrix`), with batch variants
  (:meth:`BchCode.encode_batch` etc.) for bulk traffic;
* the **reference path** (:meth:`BchCode.encode_reference` /
  :meth:`BchCode.decode_reference`) keeps the original polynomial
  division and per-bit syndrome evaluation.  It is the oracle for the
  differential test harness (``tests/ecc/test_differential.py``) and is
  deliberately untouched by the fast-path tables.

Both paths share Berlekamp–Massey and Chien search, so they are
bit-identical by construction everywhere except parity/syndrome
computation — exactly what the differential suite verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.ecc.backend import MIN_SLICED_BATCH, get_engine
from repro.ecc.bitslice import lane_flags, supports_from_contributions
from repro.ecc.counters import CodecCounters
from repro.ecc.gf import GF2m, get_field, gf2_poly_degree, gf2_poly_lcm, gf2_poly_mod
from repro.ecc.matrix import build_chunk_tables, cached_tables, fold_word
from repro.errors import ConfigurationError, EncodingError, UncorrectableError

#: Bit width of one packed-syndrome lane (fits any supported GF(2^m)).
_LANE_BITS = 16
_LANE_MASK = (1 << _LANE_BITS) - 1


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of a successful decode.

    Attributes:
        data: the corrected data bits as an int.
        corrected_positions: bit positions (in the codeword) that were
            flipped by the decoder; empty tuple for a clean word.
    """

    data: int
    corrected_positions: tuple[int, ...]

    @property
    def errors_corrected(self) -> int:
        return len(self.corrected_positions)


@dataclass(frozen=True)
class _BchTables:
    """Precomputed fast-path matrices for one (t, data_bits, m) config.

    Attributes:
        parity: chunk tables over the data bits; folding a data word
            yields its ``parity_bits``-bit remainder.
        syndrome: chunk tables over the base codeword bits; folding a
            received word yields all ``2t`` syndromes packed into
            16-bit lanes (lane ``j-1`` holds ``S_j``).
    """

    parity: list[list[int]]
    syndrome: list[list[int]]


def _generator_for(t: int, m: int, primitive_poly: int) -> int:
    """g(x) = lcm of minimal polynomials of alpha^1 .. alpha^(2t), cached."""

    def build() -> int:
        field = get_field(m)
        gen = 1
        for j in range(1, 2 * t + 1):
            gen = gf2_poly_lcm(gen, field.minimal_polynomial(j))
        return gen

    return cached_tables(("bch-generator", t, m, primitive_poly), build)


def _tables_for(
    t: int, data_bits: int, m: int, generator: int, base_len: int, field: GF2m
) -> _BchTables:
    """Fast-path tables, cached per (t, data_bits, m, generator)."""

    def build() -> _BchTables:
        parity_bits = gf2_poly_degree(generator)
        top = 1 << parity_bits
        # Generator-matrix rows: x^(parity_bits + i) mod g(x), built
        # incrementally (multiply by x, reduce) instead of dividing a
        # full-length polynomial for every row.
        r = gf2_poly_mod(top, generator)
        rows = []
        for _ in range(data_bits):
            rows.append(r)
            r <<= 1
            if r & top:
                r ^= generator
        # Parity-check columns: lane j-1 of column p holds alpha^(j*p).
        exp = field._exp
        order = field.order
        columns = []
        for p in range(base_len):
            packed = 0
            for j in range(1, 2 * t + 1):
                packed |= exp[(j * p) % order] << ((j - 1) * _LANE_BITS)
            columns.append(packed)
        return _BchTables(
            parity=build_chunk_tables(rows),
            syndrome=build_chunk_tables(columns),
        )

    key = ("bch", t, data_bits, m, generator)
    return cached_tables(key, build)


@dataclass(frozen=True)
class _SlicedBch:
    """Engine-compiled maps for the bit-sliced batch paths.

    Attributes:
        enc: data slices -> parity slices (the generator-matrix rows).
        chk: codeword slices -> remainder slices (``x^p mod g``); any
            nonzero output lane marks a dirty word.
    """

    enc: object
    chk: object


def _sliced_for(code: "BchCode", engine) -> _SlicedBch:
    """Engine-specific sliced maps, cached per (code params, backend)."""

    def build() -> _SlicedBch:
        parity_bits = code.parity_bits
        generator = code.generator
        top = 1 << parity_bits
        r = gf2_poly_mod(top, generator)
        rows = []
        for _ in range(code.data_bits):
            rows.append(r)
            r <<= 1
            if r & top:
                r ^= generator
        c = 1  # x^0 mod g
        checks = []
        for _ in range(code._base_len):
            checks.append(c)
            c <<= 1
            if c & top:
                c ^= generator
        if code.extended:
            checks.append(0)  # the ext parity bit is outside g's reach
        return _SlicedBch(
            enc=engine.compile_map(
                supports_from_contributions(rows, parity_bits), code.data_bits
            ),
            chk=engine.compile_map(
                supports_from_contributions(checks, parity_bits), code.codeword_bits
            ),
        )

    key = ("bch-sliced", code.t, code.data_bits, code.m, code.generator, code.extended)
    return cached_tables(key, build, backend=engine.name)


class BchCode:
    """A shortened, systematic, t-error-correcting binary BCH code.

    Args:
        t: guaranteed correction capability (number of bit errors).
        data_bits: number of data bits per codeword (e.g. 512 for a 64-byte
            line).
        m: Galois-field degree; defaults to the smallest m with
            ``2^m - 1 >= data_bits + t*m``.
        extended: if True, append one overall parity bit, turning the code
            into a (t)EC-(t+1)ED code (the paper's "61 bits if we want
            6-bit correction and 7-bit detection").

    Codeword layout (LSB first): ``[parity | data]`` — data occupies the
    high ``data_bits`` bits, parity the low bits, and the optional extended
    parity bit sits above the data.

    Attributes:
        counters: :class:`repro.ecc.counters.CodecCounters` tallying the
            fast-path traffic of this instance (reference-path calls are
            not counted).
    """

    def __init__(self, t: int, data_bits: int, m: int | None = None, extended: bool = False):
        if t < 1:
            raise ConfigurationError(f"BCH needs t >= 1, got t={t}")
        if data_bits < 1:
            raise ConfigurationError(f"BCH needs data_bits >= 1, got {data_bits}")
        if m is None:
            m = 3
            while (1 << m) - 1 < data_bits + t * m:
                m += 1
                if m > 16:
                    raise ConfigurationError(
                        f"no supported field fits data_bits={data_bits}, t={t}"
                    )
        self.field: GF2m = get_field(m)
        self.t = t
        self.m = m
        self.n_full = (1 << m) - 1
        self.data_bits = data_bits
        self.extended = extended
        self.generator = _generator_for(t, m, self.field.primitive_poly)
        self.parity_bits = gf2_poly_degree(self.generator)
        base_len = data_bits + self.parity_bits
        if base_len > self.n_full:
            raise ConfigurationError(
                f"shortened length {base_len} exceeds n={self.n_full} for m={m}"
            )
        self.codeword_bits = base_len + (1 if extended else 0)
        # Precompute masks.
        self._parity_mask = (1 << self.parity_bits) - 1
        self._data_shift = self.parity_bits
        self._ext_bit = 1 << (base_len) if extended else 0
        self._base_len = base_len
        self._base_mask = (1 << base_len) - 1
        self._tables = _tables_for(
            t, data_bits, m, self.generator, base_len, self.field
        )
        self.counters = CodecCounters()

    # -- encode -------------------------------------------------------------

    def encode(self, data: int) -> int:
        """Systematically encode ``data`` into a codeword int (fast path).

        Raises:
            EncodingError: if data does not fit in ``data_bits``.
        """
        if data < 0 or data >> self.data_bits:
            raise EncodingError(f"data does not fit in {self.data_bits} bits")
        word = (data << self.parity_bits) | fold_word(self._tables.parity, data)
        if self.extended and _parity_of(word):
            word |= self._ext_bit
        self.counters.encodes += 1
        return word

    def encode_batch(self, datas: Iterable[int]) -> list[int]:
        """Encode many data words; equivalent to ``[encode(d) for d in datas]``.

        Large batches go through the active lane engine (bit-sliced or
        numpy, see :mod:`repro.ecc.backend`): one transpose, one compiled
        parity fold, one untranspose for the whole batch.  Small batches
        and the ``matrix`` backend take the scalar loop, which binds the
        hot tables locally — that still matters for the Monte-Carlo
        campaigns that push millions of words through here.
        """
        if not isinstance(datas, list):
            datas = list(datas)
        data_bits = self.data_bits
        shift = self.parity_bits
        extended = self.extended
        ext_bit = self._ext_bit
        engine = get_engine() if len(datas) >= MIN_SLICED_BATCH else None
        if engine is None:
            tables = self._tables.parity
            out = []
            append = out.append
            for data in datas:
                if data < 0 or data >> data_bits:
                    raise EncodingError(f"data does not fit in {data_bits} bits")
                word = (data << shift) | fold_word(tables, data)
                if extended and _parity_of(word):
                    word |= ext_bit
                append(word)
            self.counters.encodes += len(out)
            if out:
                self.counters.record_backend("matrix", len(out))
            return out
        for data in datas:
            if data < 0 or data >> data_bits:
                raise EncodingError(f"data does not fit in {data_bits} bits")
        n = len(datas)
        maps = _sliced_for(self, engine)
        slices = engine.transpose(datas, data_bits)
        parity_slices = engine.fold(slices, maps.enc)
        parities = engine.untranspose(parity_slices, n)
        if extended:
            # Lane parity of the base codeword = data parity ^ parity parity.
            ext = lane_flags(
                engine.xor_reduce(slices) ^ engine.xor_reduce(parity_slices), n
            )
            out = [
                (data << shift)
                | parity
                | (ext_bit if (ext[i >> 3] >> (i & 7)) & 1 else 0)
                for i, (data, parity) in enumerate(zip(datas, parities))
            ]
        else:
            out = [
                (data << shift) | parity for data, parity in zip(datas, parities)
            ]
        self.counters.encodes += n
        self.counters.record_backend(engine.name, n)
        return out

    def encode_reference(self, data: int) -> int:
        """Reference (oracle) encoder: systematic polynomial division.

        Bit-identical to :meth:`encode`; kept as the slow path for the
        differential test harness.  Does not touch :attr:`counters`.
        """
        if data < 0 or data >> self.data_bits:
            raise EncodingError(f"data does not fit in {self.data_bits} bits")
        shifted = data << self.parity_bits
        parity = gf2_poly_mod(shifted, self.generator)
        word = shifted | parity
        if self.extended and _parity_of(word):
            word |= self._ext_bit
        return word

    def extract_data(self, codeword: int) -> int:
        """Pull the data bits out of a codeword without decoding."""
        return (codeword & self._base_mask) >> self._data_shift

    # -- decode -------------------------------------------------------------

    def check(self, received: int) -> bool:
        """True iff ``received`` is a valid codeword (syndrome-only test).

        This is the cheapest integrity probe: one table fold, no error
        location.  Out-of-range words are simply invalid.
        """
        if received < 0 or received >> self.codeword_bits:
            return False
        if fold_word(self._tables.syndrome, received & self._base_mask):
            return False
        return not (self.extended and _parity_of(received))

    def check_batch(self, words: Iterable[int]) -> list[bool]:
        """Vectorized :meth:`check` over many received words."""
        if not isinstance(words, list):
            words = list(words)
        engine = get_engine() if len(words) >= MIN_SLICED_BATCH else None
        if engine is None:
            out = [self.check(word) for word in words]
            if out:
                self.counters.record_backend("matrix", len(out))
            return out
        n = len(words)
        cw_bits = self.codeword_bits
        valid = [not (w < 0 or w >> cw_bits) for w in words]
        safe = words if all(valid) else [
            w if ok else 0 for w, ok in zip(words, valid)
        ]
        maps = _sliced_for(self, engine)
        slices = engine.transpose(safe, cw_bits)
        dirty = engine.or_reduce(engine.fold(slices, maps.chk))
        if self.extended:
            dirty |= engine.xor_reduce(slices)
        self.counters.record_backend(engine.name, n)
        if not dirty:  # common case: every in-range word is a codeword
            return valid
        flags = lane_flags(dirty, n)
        return [
            ok and not ((flags[i >> 3] >> (i & 7)) & 1)
            for i, ok in enumerate(valid)
        ]

    def decode(self, received: int) -> DecodeResult:
        """Correct up to t errors in ``received`` and return the data.

        Raises:
            UncorrectableError: when the decoder *detects* more errors than
                it can correct.  Patterns with > t errors that alias onto a
                valid codeword (or a correctable coset) are miscorrected
                silently, as in real hardware.
        """
        if received < 0 or received >> self.codeword_bits:
            self.counters.record_detected()
            raise UncorrectableError("received word has out-of-range bits")
        base = received & self._base_mask
        packed = fold_word(self._tables.syndrome, base)
        if packed == 0:
            if self.extended and _parity_of(received):
                # Clean BCH word but bad overall parity: the error is the
                # extended parity bit itself.
                self.counters.record_decode(1)
                return DecodeResult(self.extract_data(base), (self._base_len,))
            self.counters.record_decode(0)
            return DecodeResult(self.extract_data(base), ())
        syndromes = [
            (packed >> (j * _LANE_BITS)) & _LANE_MASK for j in range(2 * self.t)
        ]
        try:
            result = self._locate_and_correct(received, base, syndromes)
        except UncorrectableError:
            self.counters.record_detected()
            raise
        self.counters.record_decode(result.errors_corrected)
        return result

    def decode_batch(
        self, words: Iterable[int]
    ) -> list[DecodeResult | UncorrectableError]:
        """Decode many received words without raising.

        Returns one entry per word: the :class:`DecodeResult` on success,
        or the :class:`UncorrectableError` instance the word produced —
        callers classify outcomes with ``isinstance`` instead of
        try/except per word.
        """
        if not isinstance(words, list):
            words = list(words)
        out: list[DecodeResult | UncorrectableError] = []
        append = out.append
        decode = self.decode
        engine = get_engine() if len(words) >= MIN_SLICED_BATCH else None
        if engine is None:
            for word in words:
                try:
                    append(decode(word))
                except UncorrectableError as exc:
                    append(exc)
            if out:
                self.counters.record_backend("matrix", len(out))
            return out
        # Sliced prescreen: one fold finds the (rare) dirty lanes; clean
        # lanes skip syndrome extraction and BM/Chien entirely.  Dirty and
        # out-of-range lanes take the scalar decoder, so results *and*
        # counter updates stay bit-identical to the scalar loop.
        n = len(words)
        cw_bits = self.codeword_bits
        invalid = 0
        safe = words
        for i, w in enumerate(words):
            if w < 0 or w >> cw_bits:
                if safe is words:
                    safe = list(words)
                safe[i] = 0
                invalid |= 1 << i
        maps = _sliced_for(self, engine)
        slices = engine.transpose(safe, cw_bits)
        dirty = engine.or_reduce(engine.fold(slices, maps.chk))
        if self.extended:
            dirty |= engine.xor_reduce(slices)
        base_mask = self._base_mask
        shift = self._data_shift
        bad = dirty | invalid
        if not bad:  # common case: whole batch clean, skip the lane loop
            out = [DecodeResult((w & base_mask) >> shift, ()) for w in words]
            self.counters.decodes += n
            hist = self.counters.corrected_histogram
            hist[0] = hist.get(0, 0) + n
            self.counters.record_backend(engine.name, n)
            return out
        flags = lane_flags(bad, n)
        n_clean = 0
        for i, word in enumerate(words):
            if (flags[i >> 3] >> (i & 7)) & 1:
                try:
                    append(decode(word))
                except UncorrectableError as exc:
                    append(exc)
            else:
                n_clean += 1
                append(DecodeResult((word & base_mask) >> shift, ()))
        if n_clean:
            self.counters.decodes += n_clean
            hist = self.counters.corrected_histogram
            hist[0] = hist.get(0, 0) + n_clean
        self.counters.record_backend(engine.name, n)
        return out

    def decode_reference(self, received: int) -> DecodeResult:
        """Reference (oracle) decoder using per-bit syndrome evaluation.

        Bit-identical to :meth:`decode` (same Berlekamp–Massey and Chien
        search); the differential harness replays traffic through both.
        Does not touch :attr:`counters`.
        """
        if received < 0 or received >> self.codeword_bits:
            raise UncorrectableError("received word has out-of-range bits")
        base = received & self._base_mask
        syndromes = self._syndromes_reference(base)
        if all(s == 0 for s in syndromes):
            if self.extended and _parity_of(received):
                return DecodeResult(self.extract_data(base), (self._base_len,))
            return DecodeResult(self.extract_data(base), ())
        return self._locate_and_correct(received, base, syndromes)

    def _locate_and_correct(
        self, received: int, base: int, syndromes: list[int]
    ) -> DecodeResult:
        """Shared back half of both decode paths: BM + Chien + fixup."""
        sigma = self._berlekamp_massey(syndromes)
        n_errors = len(sigma) - 1
        if n_errors > self.t:
            raise UncorrectableError(
                "error locator degree exceeds t", detected_errors=n_errors
            )
        positions = self._chien_search(sigma)
        if len(positions) != n_errors:
            raise UncorrectableError(
                "error locator does not split over valid positions",
                detected_errors=n_errors,
            )
        if self.extended:
            # Total flips must leave the overall parity consistent.
            corrected = received
            for pos in positions:
                corrected ^= 1 << pos
            if _parity_of(corrected):
                # Parity mismatch after correcting n <= t errors means the
                # true error count is n+1 (or more): detected.
                if n_errors >= self.t:
                    raise UncorrectableError(
                        "extended parity indicates t+1 errors",
                        detected_errors=n_errors + 1,
                    )
                # Fewer than t corrections plus the parity bit itself.
                positions = positions + [self._base_len]
                corrected ^= self._ext_bit
            return DecodeResult(self.extract_data(corrected), tuple(sorted(positions)))

        corrected = base
        for pos in positions:
            corrected ^= 1 << pos
        return DecodeResult(self.extract_data(corrected), tuple(sorted(positions)))

    def _syndromes_reference(self, received: int) -> list[int]:
        """S_j = r(alpha^j) for j = 1..2t, iterating over set bits only."""
        field = self.field
        exp = field._exp
        order = field.order
        syndromes = [0] * (2 * self.t)
        bits = []
        word = received
        while word:
            low = word & -word
            bits.append(low.bit_length() - 1)
            word ^= low
        for j in range(1, 2 * self.t + 1):
            acc = 0
            for i in bits:
                acc ^= exp[(j * i) % order]
            syndromes[j - 1] = acc
        return syndromes

    def _berlekamp_massey(self, syndromes: list[int]) -> list[int]:
        """Find the error-locator polynomial sigma(x) (low-to-high coeffs)."""
        field = self.field
        sigma = [1]
        prev_sigma = [1]
        length = 0
        shift = 1
        prev_discrepancy = 1
        for step, s in enumerate(syndromes):
            # discrepancy d = s + sum_{i=1..L} sigma_i * S_{step-i}
            d = s
            for i in range(1, length + 1):
                if i < len(sigma) and sigma[i]:
                    d ^= field.mul(sigma[i], syndromes[step - i])
            if d == 0:
                shift += 1
                continue
            scale = field.div(d, prev_discrepancy)
            candidate = sigma[:]
            # candidate = sigma - scale * x^shift * prev_sigma
            needed = len(prev_sigma) + shift
            if len(candidate) < needed:
                candidate.extend([0] * (needed - len(candidate)))
            for i, coeff in enumerate(prev_sigma):
                if coeff:
                    candidate[i + shift] ^= field.mul(scale, coeff)
            if 2 * length <= step:
                prev_sigma = sigma
                prev_discrepancy = d
                length = step + 1 - length
                shift = 1
            else:
                shift += 1
            sigma = candidate
        # Trim trailing zeros.
        while len(sigma) > 1 and sigma[-1] == 0:
            sigma.pop()
        return sigma

    def _chien_search(self, sigma: list[int]) -> list[int]:
        """Roots of sigma give error positions; keep only in-range ones.

        A root at ``alpha^(-i)`` marks an error at codeword position ``i``.
        For the shortened code, a root mapping outside ``[0, base_len)``
        means the pattern is uncorrectable (handled by the caller via the
        root-count check).
        """
        field = self.field
        positions = []
        degree = len(sigma) - 1
        found = 0
        for i in range(self.n_full):
            value = field.poly_eval(sigma, field.alpha_pow((-i) % field.order))
            if value == 0:
                if i < self._base_len:
                    positions.append(i)
                found += 1
                if found == degree:
                    break
        return positions

    def __repr__(self) -> str:
        kind = "extended " if self.extended else ""
        return (
            f"BchCode({kind}t={self.t}, data_bits={self.data_bits}, m={self.m}, "
            f"parity_bits={self.parity_bits + (1 if self.extended else 0)})"
        )


def _parity_of(word: int) -> int:
    """Overall parity (popcount mod 2) of an int."""
    return bin(word).count("1") & 1
