"""Hamming-based SEC-DED codes: the paper's weak ECC.

Implements single-error-correct, double-error-detect codes for arbitrary
data lengths using the classic extended-Hamming construction: check bits
at power-of-two positions plus one overall parity bit.  Two instances
matter for the paper:

* ``SecDedCode(64)`` — the traditional (72,64) word-granularity code of
  paper Fig. 6(i).
* ``SecDedCode(512)`` — SEC-DED over a whole 64-byte line, needing 11
  check bits, as proposed in paper Sec. III-D / Fig. 6(ii).

Like :class:`repro.ecc.bch.BchCode`, the codec has a matrix fast path
(chunked XOR-fold tables from :mod:`repro.ecc.matrix`, batch APIs, a
counters object) and keeps the original per-bit walks as the reference
path (:meth:`SecDedCode.encode_reference` /
:meth:`SecDedCode.decode_reference`) for the differential harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.ecc.backend import MIN_SLICED_BATCH, get_engine
from repro.ecc.bitslice import lane_flags, supports_from_contributions
from repro.ecc.counters import CodecCounters
from repro.ecc.matrix import build_chunk_tables, cached_tables, fold_word
from repro.errors import ConfigurationError, EncodingError, UncorrectableError

#: Lane width for packing a Hamming syndrome next to a scatter mask.
_SYN_BITS = 16
_SYN_MASK = (1 << _SYN_BITS) - 1


@dataclass(frozen=True)
class SecDedResult:
    """Outcome of a SEC-DED decode."""

    data: int
    corrected_position: int | None  # codeword bit index, None if clean

    @property
    def errors_corrected(self) -> int:
        return 0 if self.corrected_position is None else 1


@dataclass(frozen=True)
class _SecDedTables:
    """Fast-path tables for one data length.

    Attributes:
        scatter: chunk tables over the data bits; folding a data word
            yields ``(scattered word << 16) | hamming_syndrome``.
        syndrome: chunk tables over the codeword bits; folding a received
            word yields its Hamming syndrome (bit 0 contributes nothing).
        extract: chunk tables over the codeword bits; folding a codeword
            yields the packed data bits.
    """

    scatter: list[list[int]]
    syndrome: list[list[int]]
    extract: list[list[int]]


class SecDedCode:
    """Extended Hamming SEC-DED code for ``data_bits`` of data.

    Codeword layout uses 1-based Hamming positions 1..(data_bits + r) with
    check bits at powers of two, prefixed by the overall parity bit at
    position 0.  The public bit numbering of a codeword int is therefore:
    bit 0 = overall parity, bit p = Hamming position p.

    Attributes:
        counters: fast-path traffic tallies (reference calls not counted).
    """

    def __init__(self, data_bits: int):
        if data_bits < 1:
            raise ConfigurationError(f"SEC-DED needs data_bits >= 1, got {data_bits}")
        self.data_bits = data_bits
        r = 2
        while (1 << r) < data_bits + r + 1:
            r += 1
        self.hamming_check_bits = r
        self.check_bits = r + 1  # including overall parity
        self.codeword_bits = data_bits + self.check_bits
        # Map data bit index -> codeword position (non-power-of-two Hamming
        # positions, in increasing order).
        self._data_positions: list[int] = []
        pos = 1
        while len(self._data_positions) < data_bits:
            if pos & (pos - 1):  # not a power of two
                self._data_positions.append(pos)
            pos += 1
        self._max_position = self._data_positions[-1]
        self._check_positions = [1 << i for i in range(r)]
        if self._check_positions[-1] > self._max_position:
            # The last check position may exceed the last data position
            # (possible for data lengths just above a power of two).
            self._max_position = self._check_positions[-1]
        self._position_of_data = {p: i for i, p in enumerate(self._data_positions)}
        self._tables = self._tables_for(data_bits)
        self.counters = CodecCounters()

    def _tables_for(self, data_bits: int) -> _SecDedTables:
        """Fast-path tables, cached per data length (the layout is fixed)."""

        def build() -> _SecDedTables:
            if self.codeword_bits > _SYN_MASK:
                raise ConfigurationError(
                    "SEC-DED fast path supports codewords up to 65535 bits"
                )
            scatter = [
                (1 << (pos + _SYN_BITS)) | pos for pos in self._data_positions
            ]
            # Codeword bit p contributes its Hamming position p to the
            # syndrome; the overall-parity bit at position 0 contributes 0.
            syndrome = list(range(self.codeword_bits))
            extract = [0] * self.codeword_bits
            for i, pos in enumerate(self._data_positions):
                extract[pos] = 1 << i
            return _SecDedTables(
                scatter=build_chunk_tables(scatter),
                syndrome=build_chunk_tables(syndrome),
                extract=build_chunk_tables(extract),
            )

        return cached_tables(("secded", data_bits), build)

    def _sliced_for(self, engine):
        """Engine-compiled maps, cached per (data length, backend).

        ``enc``: data slices -> full codeword slices (check bits and the
        overall parity folded in, since both are GF(2)-linear in the
        data).  ``chk``: codeword slices -> r+1 outputs (Hamming
        syndrome bits plus overall parity); any nonzero lane is dirty.
        """

        def build():
            r = self.hamming_check_bits
            enc_cols = []
            for pos in self._data_positions:
                col = 1 << pos
                for check_pos in self._check_positions:
                    if pos & check_pos:
                        col |= 1 << check_pos
                if _parity_of(col):
                    col |= 1
                enc_cols.append(col)
            parity_out = 1 << r
            chk_cols = [pos | parity_out for pos in range(self.codeword_bits)]
            chk_cols[0] = parity_out  # bit 0 feeds only the overall parity
            return (
                engine.compile_map(
                    supports_from_contributions(enc_cols, self.codeword_bits),
                    self.data_bits,
                ),
                engine.compile_map(
                    supports_from_contributions(chk_cols, r + 1),
                    self.codeword_bits,
                ),
            )

        return cached_tables(
            ("secded-sliced", self.data_bits), build, backend=engine.name
        )

    # -- encode -------------------------------------------------------------

    def encode(self, data: int) -> int:
        """Encode data into a codeword int (bit 0 = overall parity)."""
        if data < 0 or data >> self.data_bits:
            raise EncodingError(f"data does not fit in {self.data_bits} bits")
        packed = fold_word(self._tables.scatter, data)
        word = packed >> _SYN_BITS
        syndrome = packed & _SYN_MASK
        # Set check bits so that the syndrome of the full word is zero.
        for check_pos in self._check_positions:
            if syndrome & check_pos:
                word |= 1 << check_pos
        if _parity_of(word):
            word |= 1  # overall parity at position 0
        self.counters.encodes += 1
        return word

    def encode_batch(self, datas: Iterable[int]) -> list[int]:
        """Encode many data words through the fast path.

        Large batches run through the active lane engine: one transpose,
        one compiled scatter fold (check bits and overall parity
        included), one untranspose.
        """
        if not isinstance(datas, list):
            datas = list(datas)
        engine = get_engine() if len(datas) >= MIN_SLICED_BATCH else None
        if engine is None:
            out = [self.encode(data) for data in datas]
            if out:
                self.counters.record_backend("matrix", len(out))
            return out
        data_bits = self.data_bits
        for data in datas:
            if data < 0 or data >> data_bits:
                raise EncodingError(f"data does not fit in {data_bits} bits")
        n = len(datas)
        enc_map, _ = self._sliced_for(engine)
        out = engine.untranspose(
            engine.fold(engine.transpose(datas, data_bits), enc_map), n
        )
        self.counters.encodes += n
        self.counters.record_backend(engine.name, n)
        return out

    def encode_reference(self, data: int) -> int:
        """Reference encoder: per-bit Hamming-position scatter (oracle)."""
        if data < 0 or data >> self.data_bits:
            raise EncodingError(f"data does not fit in {self.data_bits} bits")
        word = 0
        syndrome = 0
        for i, pos in enumerate(self._data_positions):
            if (data >> i) & 1:
                word |= 1 << pos
                syndrome ^= pos
        for check_pos in self._check_positions:
            if syndrome & check_pos:
                word |= 1 << check_pos
        if _parity_of(word):
            word |= 1
        return word

    def extract_data(self, codeword: int) -> int:
        """Pull the data bits out of a codeword without decoding."""
        return fold_word(self._tables.extract, codeword)

    # -- decode -------------------------------------------------------------

    def check(self, received: int) -> bool:
        """True iff ``received`` is a valid codeword (syndrome-only test)."""
        if received < 0 or received >> self.codeword_bits:
            return False
        if fold_word(self._tables.syndrome, received):
            return False
        return _parity_of(received) == 0

    def check_batch(self, words: Iterable[int]) -> list[bool]:
        """Vectorized :meth:`check` over many received words."""
        if not isinstance(words, list):
            words = list(words)
        engine = get_engine() if len(words) >= MIN_SLICED_BATCH else None
        if engine is None:
            out = [self.check(word) for word in words]
            if out:
                self.counters.record_backend("matrix", len(out))
            return out
        n = len(words)
        cw_bits = self.codeword_bits
        valid = [not (w < 0 or w >> cw_bits) for w in words]
        safe = words if all(valid) else [
            w if ok else 0 for w, ok in zip(words, valid)
        ]
        _, chk_map = self._sliced_for(engine)
        dirty = engine.or_reduce(
            engine.fold(engine.transpose(safe, cw_bits), chk_map)
        )
        self.counters.record_backend(engine.name, n)
        if not dirty:  # common case: every in-range word is a codeword
            return valid
        flags = lane_flags(dirty, n)
        return [
            ok and not ((flags[i >> 3] >> (i & 7)) & 1)
            for i, ok in enumerate(valid)
        ]

    def decode(self, received: int) -> SecDedResult:
        """Correct a single error or detect a double error.

        Raises:
            UncorrectableError: on a detected double error.
        """
        if received < 0 or received >> self.codeword_bits:
            self.counters.record_detected()
            raise UncorrectableError("received word has out-of-range bits")
        syndrome = fold_word(self._tables.syndrome, received)
        overall = _parity_of(received)
        try:
            result = self._resolve(received, syndrome, overall)
        except UncorrectableError:
            self.counters.record_detected()
            raise
        self.counters.record_decode(result.errors_corrected)
        return result

    def decode_batch(
        self, words: Iterable[int]
    ) -> list[SecDedResult | UncorrectableError]:
        """Decode many words; failures come back as exception instances."""
        if not isinstance(words, list):
            words = list(words)
        out: list[SecDedResult | UncorrectableError] = []
        append = out.append
        decode = self.decode
        engine = get_engine() if len(words) >= MIN_SLICED_BATCH else None
        if engine is None:
            for word in words:
                try:
                    append(decode(word))
                except UncorrectableError as exc:
                    append(exc)
            if out:
                self.counters.record_backend("matrix", len(out))
            return out
        # Sliced prescreen (see BchCode.decode_batch): clean lanes take a
        # bulk extract; dirty / out-of-range lanes fall back to the
        # scalar decoder for bit-identical results and counters.
        n = len(words)
        cw_bits = self.codeword_bits
        invalid = 0
        safe = words
        for i, w in enumerate(words):
            if w < 0 or w >> cw_bits:
                if safe is words:
                    safe = list(words)
                safe[i] = 0
                invalid |= 1 << i
        _, chk_map = self._sliced_for(engine)
        slices = engine.transpose(safe, cw_bits)
        dirty = engine.or_reduce(engine.fold(slices, chk_map))
        extracted = engine.untranspose(
            engine.select(slices, self._data_positions), n
        )
        bad = dirty | invalid
        if not bad:  # common case: whole batch clean, skip the lane loop
            out = [SecDedResult(x, None) for x in extracted]
            self.counters.decodes += n
            hist = self.counters.corrected_histogram
            hist[0] = hist.get(0, 0) + n
            self.counters.record_backend(engine.name, n)
            return out
        flags = lane_flags(bad, n)
        n_clean = 0
        for i, word in enumerate(words):
            if (flags[i >> 3] >> (i & 7)) & 1:
                try:
                    append(decode(word))
                except UncorrectableError as exc:
                    append(exc)
            else:
                n_clean += 1
                append(SecDedResult(extracted[i], None))
        if n_clean:
            self.counters.decodes += n_clean
            hist = self.counters.corrected_histogram
            hist[0] = hist.get(0, 0) + n_clean
        self.counters.record_backend(engine.name, n)
        return out

    def decode_reference(self, received: int) -> SecDedResult:
        """Reference decoder with the original per-bit syndrome walk."""
        if received < 0 or received >> self.codeword_bits:
            raise UncorrectableError("received word has out-of-range bits")
        syndrome = 0
        word = received >> 1  # strip overall parity for syndrome walk
        pos = 1
        while word:
            if word & 1:
                syndrome ^= pos
            word >>= 1
            pos += 1
        overall = _parity_of(received)
        return self._resolve(received, syndrome, overall)

    def _resolve(self, received: int, syndrome: int, overall: int) -> SecDedResult:
        """Shared decision logic of both decode paths."""
        if syndrome == 0 and overall == 0:
            return SecDedResult(self.extract_data(received), None)
        if overall == 1:
            # Single error: at Hamming position `syndrome`, or at the
            # overall parity bit itself when syndrome == 0.
            if syndrome == 0:
                return SecDedResult(self.extract_data(received ^ 1), 0)
            if syndrome > self._max_position:
                raise UncorrectableError("syndrome points outside the codeword")
            corrected = received ^ (1 << syndrome)
            return SecDedResult(self.extract_data(corrected), syndrome)
        # syndrome != 0 and overall parity holds -> even number of errors.
        raise UncorrectableError("double-bit error detected", detected_errors=2)

    def __repr__(self) -> str:
        return (
            f"SecDedCode(data_bits={self.data_bits}, "
            f"codeword_bits={self.codeword_bits})"
        )


def _parity_of(word: int) -> int:
    """Overall parity (popcount mod 2) of an int."""
    return bin(word).count("1") & 1
