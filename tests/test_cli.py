"""Tests for the command-line interface."""

import pytest

from repro.cli import EXHIBITS, build_parser, main


class TestParser:
    def test_all_exhibits_are_choices(self):
        parser = build_parser()
        for name in EXHIBITS:
            args = parser.parse_args([name])
            assert args.exhibit == name

    def test_default_instructions(self):
        args = build_parser().parse_args(["table1"])
        assert args.instructions == 400_000

    def test_rejects_unknown_exhibit(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXHIBITS:
            assert name in out

    def test_analytic_exhibits(self, capsys):
        for name in ("table1", "fig2", "fig8", "related-work"):
            assert main([name]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Fig. 8" in out

    def test_simulation_exhibit_small(self, capsys):
        from repro.analysis.experiments import clear_caches

        clear_caches()
        assert main(["fig3", "--instructions", "30000"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "High-MPKI" in out


class TestTraceTools:
    def test_trace_gen_and_sim_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "t.trace"
        assert main(["trace-gen", "--benchmark", "povray",
                     "--instructions", "30000", "-o", str(path)]) == 0
        assert path.exists()
        assert main(["trace-sim", "-i", str(path), "--policy", "secded"]) == 0
        out = capsys.readouterr().out
        assert "povray" in out
        assert "IPC" in out

    def test_trace_gen_requires_output(self, capsys):
        assert main(["trace-gen", "--benchmark", "povray"]) == 2

    def test_trace_gen_unknown_benchmark(self, capsys):
        assert main(["trace-gen", "--benchmark", "doom", "-o", "/tmp/x"]) == 2

    def test_trace_sim_requires_input(self, capsys):
        assert main(["trace-sim"]) == 2


class TestFaultInject:
    def test_fixed_errors(self, capsys):
        assert main(["fault-inject", "--errors", "6", "--trials", "20"]) == 0
        out = capsys.readouterr().out
        assert "corrected" in out
        assert "silent-corruption rate 0.0000" in out

    def test_ber_mode(self, capsys):
        assert main(["fault-inject", "--mode", "weak", "--trials", "30"]) == 0
        out = capsys.readouterr().out
        assert "weak mode" in out


class TestCsvExport:
    def test_csv_requires_output(self):
        assert main(["csv"]) == 2

    def test_csv_export(self, tmp_path, capsys):
        from repro.analysis.experiments import clear_caches

        clear_caches()
        assert main(["csv", "-o", str(tmp_path), "--instructions", "20000"]) == 0
        assert (tmp_path / "table1.csv").exists()
        assert (tmp_path / "fig7.csv").exists()
