"""Tolerance-banded comparison of two artifact trees.

``diff_trees(candidate, baseline)`` walks the exhibits both manifests
declare, loads each exhibit's JSON artifact, and compares cell by cell.
Numeric cells get a per-exhibit relative tolerance band (the
``diff_rtol`` each spec recorded into the manifest); everything else
must match exactly.  Volatile manifest fields (timestamps, git rev,
runner stats, wall times) are ignored by construction — only exhibit
content drifts.

Every mismatch names the exhibit, the row key, and the column, so a CI
failure reads as ``fig7[libq].mecc: 0.981 != 0.912`` rather than a
blob-level "trees differ".
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.report.pipeline import load_manifest
from repro.report.spec import DEFAULT_DIFF_RTOL


@dataclass(frozen=True)
class CellDiff:
    """One divergent cell (or structural mismatch)."""

    exhibit: str
    location: str
    baseline: object
    candidate: object
    rtol: float | None = None

    def render(self) -> str:
        where = f"{self.exhibit}[{self.location}]"
        if self.rtol is not None:
            return (
                f"{where}: {self.candidate!r} != {self.baseline!r} "
                f"(rtol {self.rtol:g})"
            )
        return f"{where}: {self.candidate!r} != {self.baseline!r}"


@dataclass
class TreeDiff:
    """Outcome of comparing a candidate tree against a baseline."""

    baseline: str
    candidate: str
    exhibits_compared: int = 0
    mismatches: list[CellDiff] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.exhibits_compared > 0 and not self.mismatches

    def render(self, limit: int = 50) -> str:
        lines = [
            f"diff: {self.candidate} vs baseline {self.baseline} — "
            f"{self.exhibits_compared} exhibit(s), "
            f"{len(self.mismatches)} mismatch(es)"
        ]
        for m in self.mismatches[:limit]:
            lines.append(f"  {m.render()}")
        if len(self.mismatches) > limit:
            lines.append(f"  ... and {len(self.mismatches) - limit} more")
        return "\n".join(lines)


def _numbers_match(a: float, b: float, rtol: float) -> bool:
    if math.isnan(a) and math.isnan(b):
        return True
    return math.isclose(a, b, rel_tol=rtol, abs_tol=rtol)


def _load_exhibit_json(tree: Path, exhibit_id: str) -> dict:
    path = tree / f"{exhibit_id}.json"
    if not path.is_file():
        raise ConfigurationError(f"tree {tree} has no {exhibit_id}.json")
    return json.loads(path.read_text(encoding="utf-8"))


def _row_label(payload: dict, index: int) -> str:
    try:
        return str(payload["rows"][index][0])
    except (IndexError, KeyError, TypeError):
        return f"row {index}"


def diff_exhibit(
    exhibit_id: str,
    baseline: dict,
    candidate: dict,
    rtol: float = DEFAULT_DIFF_RTOL,
) -> list[CellDiff]:
    """Compare two exhibit JSON payloads cell by cell."""
    out: list[CellDiff] = []
    b_cols = baseline.get("columns", [])
    c_cols = candidate.get("columns", [])
    if b_cols != c_cols:
        out.append(CellDiff(exhibit_id, "columns", b_cols, c_cols))
        return out
    b_rows = baseline.get("rows", [])
    c_rows = candidate.get("rows", [])
    if len(b_rows) != len(c_rows):
        out.append(CellDiff(exhibit_id, "row count", len(b_rows), len(c_rows)))
        return out
    for i, (b_row, c_row) in enumerate(zip(b_rows, c_rows)):
        label = _row_label(baseline, i)
        for col, b_cell, c_cell in zip(b_cols, b_row, c_row):
            loc = f"{label}.{col}"
            # bool is an int subclass; compare it exactly, not in-band.
            numeric = (
                isinstance(b_cell, (int, float))
                and isinstance(c_cell, (int, float))
                and not isinstance(b_cell, bool)
                and not isinstance(c_cell, bool)
            )
            if numeric:
                if not _numbers_match(float(b_cell), float(c_cell), rtol):
                    out.append(
                        CellDiff(exhibit_id, loc, b_cell, c_cell, rtol=rtol)
                    )
            elif b_cell != c_cell:
                out.append(CellDiff(exhibit_id, loc, b_cell, c_cell))
    return out


def diff_trees(
    candidate: str | Path,
    baseline: str | Path,
    exhibits=None,
) -> TreeDiff:
    """Compare two artifact trees; only exhibits present in both count.

    An exhibit listed by one manifest but missing from the other is a
    mismatch in itself (trees must agree on coverage unless the caller
    narrows ``exhibits``).
    """
    candidate = Path(candidate)
    baseline = Path(baseline)
    c_manifest = load_manifest(candidate)
    b_manifest = load_manifest(baseline)
    c_ids = list(c_manifest.get("exhibits", {}))
    b_ids = list(b_manifest.get("exhibits", {}))
    if exhibits is not None:
        if isinstance(exhibits, str):
            exhibits = [p.strip() for p in exhibits.split(",") if p.strip()]
        wanted = list(dict.fromkeys(exhibits))
    else:
        wanted = list(dict.fromkeys(c_ids + b_ids))

    result = TreeDiff(baseline=str(baseline), candidate=str(candidate))
    for exhibit_id in wanted:
        in_c, in_b = exhibit_id in c_ids, exhibit_id in b_ids
        if not (in_c and in_b):
            result.mismatches.append(
                CellDiff(
                    exhibit_id,
                    "presence",
                    "present" if in_b else "absent",
                    "present" if in_c else "absent",
                )
            )
            continue
        rtol = float(
            b_manifest["exhibits"][exhibit_id].get(
                "diff_rtol", DEFAULT_DIFF_RTOL
            )
        )
        b_payload = _load_exhibit_json(baseline, exhibit_id)
        c_payload = _load_exhibit_json(candidate, exhibit_id)
        result.mismatches.extend(
            diff_exhibit(exhibit_id, b_payload, c_payload, rtol=rtol)
        )
        result.exhibits_compared += 1
    return result
