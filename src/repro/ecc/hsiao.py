"""Hsiao SEC-DED codes: the industry-standard construction.

The paper calls SEC-DED "a widely adopted code in industry" without
detail; the code industry actually adopted is Hsiao's 1970 variant of
extended Hamming.  Its parity-check matrix H uses only *odd-weight*
columns, which buys three hardware properties over classic
Hamming-plus-parity:

1. double errors are detected by an **even-weight** (nonzero) syndrome —
   no separate overall-parity bit or second XOR tree;
2. the total number of 1s in H is minimized → fewer XOR gates and a
   shallower, faster encoder/decoder (the basis for our SECDED cost
   model's ~3K gates);
3. balanced rows → uniform per-check fanin.

This implementation builds H for any data length, encodes/decodes via
the matrix, and exposes the gate-count statistics so the cost model's
numbers can be checked against a real construction.  The H product is
evaluated through the chunked XOR-fold fast path
(:mod:`repro.ecc.matrix`) with batch APIs and counters; the original
per-bit walks survive as ``encode_reference``/``decode_reference`` for
the differential harness.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable

from repro.ecc.backend import MIN_SLICED_BATCH, get_engine
from repro.ecc.bitslice import lane_flags, supports_from_contributions
from repro.ecc.counters import CodecCounters
from repro.ecc.matrix import build_chunk_tables, cached_tables, fold_word
from repro.errors import ConfigurationError, EncodingError, UncorrectableError


@dataclass(frozen=True)
class HsiaoResult:
    """Outcome of a Hsiao decode."""

    data: int
    corrected_position: int | None  # column index in the codeword

    @property
    def errors_corrected(self) -> int:
        return 0 if self.corrected_position is None else 1


@dataclass(frozen=True)
class _HsiaoTables:
    """Fast-path tables: H columns folded per data / codeword chunk."""

    encode: list[list[int]]
    syndrome: list[list[int]]


class HsiaoCode:
    """A (n, k) Hsiao SEC-DED code for ``data_bits`` of data.

    Check bits r satisfy ``2^(r-1) >= k + r`` (enough odd-weight columns
    for every data bit).  Codeword layout: data columns first, then the
    r check columns (each check column is the unit vector for its row).

    Attributes:
        counters: fast-path traffic tallies (reference calls not counted).
    """

    def __init__(self, data_bits: int):
        if data_bits < 1:
            raise ConfigurationError("data_bits must be >= 1")
        self.data_bits = data_bits
        r = 2
        while _odd_weight_columns_available(r) < data_bits:
            r += 1
        self.check_bits = r
        self.codeword_bits = data_bits + r
        self._data_columns = _choose_columns(data_bits, r)
        # Syndrome lookup: column value -> codeword position.
        self._position_of_syndrome: dict[int, int] = {}
        for position, column in enumerate(self._data_columns):
            self._position_of_syndrome[column] = position
        for row in range(r):
            self._position_of_syndrome[1 << row] = data_bits + row
        self._tables = self._tables_for()
        self.counters = CodecCounters()

    def _tables_for(self) -> _HsiaoTables:
        """Fast-path tables, cached per data length (columns are fixed)."""

        def build() -> _HsiaoTables:
            columns = list(self._data_columns)
            full = columns + [1 << row for row in range(self.check_bits)]
            return _HsiaoTables(
                encode=build_chunk_tables(columns),
                syndrome=build_chunk_tables(full),
            )

        return cached_tables(("hsiao", self.data_bits), build)

    def _sliced_for(self, engine):
        """Engine-compiled maps, cached per (data length, backend).

        ``enc``: data slices -> r syndrome slices (the data columns of
        H).  ``chk``: codeword slices -> r syndrome slices (full H);
        any nonzero lane is dirty.
        """

        def build():
            r = self.check_bits
            columns = list(self._data_columns)
            full = columns + [1 << row for row in range(r)]
            return (
                engine.compile_map(
                    supports_from_contributions(columns, r), self.data_bits
                ),
                engine.compile_map(
                    supports_from_contributions(full, r), self.codeword_bits
                ),
            )

        return cached_tables(
            ("hsiao-sliced", self.data_bits), build, backend=engine.name
        )

    # -- construction statistics ------------------------------------------------

    @property
    def total_ones_in_h(self) -> int:
        """1s in H: proportional to the encoder's XOR count."""
        data_ones = sum(bin(c).count("1") for c in self._data_columns)
        return data_ones + self.check_bits  # identity part

    def xor_gate_estimate(self) -> int:
        """Two-input XOR gates for the encoder (ones minus one per row)."""
        return self.total_ones_in_h - self.check_bits

    # -- encode -------------------------------------------------------------------

    def encode(self, data: int) -> int:
        if data < 0 or data >> self.data_bits:
            raise EncodingError(f"data does not fit in {self.data_bits} bits")
        syndrome = fold_word(self._tables.encode, data)
        self.counters.encodes += 1
        return data | (syndrome << self.data_bits)

    def encode_batch(self, datas: Iterable[int]) -> list[int]:
        """Encode many data words through the fast path.

        Large batches run through the active lane engine: one transpose,
        one compiled H fold for the syndromes, one untranspose.
        """
        if not isinstance(datas, list):
            datas = list(datas)
        engine = get_engine() if len(datas) >= MIN_SLICED_BATCH else None
        if engine is None:
            out = [self.encode(data) for data in datas]
            if out:
                self.counters.record_backend("matrix", len(out))
            return out
        data_bits = self.data_bits
        for data in datas:
            if data < 0 or data >> data_bits:
                raise EncodingError(f"data does not fit in {data_bits} bits")
        n = len(datas)
        enc_map, _ = self._sliced_for(engine)
        syndromes = engine.untranspose(
            engine.fold(engine.transpose(datas, data_bits), enc_map), n
        )
        out = [
            data | (syndrome << data_bits)
            for data, syndrome in zip(datas, syndromes)
        ]
        self.counters.encodes += n
        self.counters.record_backend(engine.name, n)
        return out

    def encode_reference(self, data: int) -> int:
        """Reference encoder: per-bit column accumulation (oracle)."""
        if data < 0 or data >> self.data_bits:
            raise EncodingError(f"data does not fit in {self.data_bits} bits")
        syndrome = 0
        remaining = data
        position = 0
        while remaining:
            if remaining & 1:
                syndrome ^= self._data_columns[position]
            remaining >>= 1
            position += 1
        return data | (syndrome << self.data_bits)

    def extract_data(self, codeword: int) -> int:
        return codeword & ((1 << self.data_bits) - 1)

    # -- decode -------------------------------------------------------------------

    def check(self, received: int) -> bool:
        """True iff ``received`` is a valid codeword (syndrome-only test)."""
        if received < 0 or received >> self.codeword_bits:
            return False
        return fold_word(self._tables.syndrome, received) == 0

    def check_batch(self, words: Iterable[int]) -> list[bool]:
        """Vectorized :meth:`check` over many received words."""
        if not isinstance(words, list):
            words = list(words)
        engine = get_engine() if len(words) >= MIN_SLICED_BATCH else None
        if engine is None:
            out = [self.check(word) for word in words]
            if out:
                self.counters.record_backend("matrix", len(out))
            return out
        n = len(words)
        cw_bits = self.codeword_bits
        valid = [not (w < 0 or w >> cw_bits) for w in words]
        safe = words if all(valid) else [
            w if ok else 0 for w, ok in zip(words, valid)
        ]
        _, chk_map = self._sliced_for(engine)
        dirty = engine.or_reduce(
            engine.fold(engine.transpose(safe, cw_bits), chk_map)
        )
        self.counters.record_backend(engine.name, n)
        if not dirty:  # common case: every in-range word is a codeword
            return valid
        flags = lane_flags(dirty, n)
        return [
            ok and not ((flags[i >> 3] >> (i & 7)) & 1)
            for i, ok in enumerate(valid)
        ]

    def decode(self, received: int) -> HsiaoResult:
        """Correct single errors; detect double errors by syndrome weight.

        Raises:
            UncorrectableError: on an even-weight nonzero syndrome
                (double error) or an odd-weight syndrome matching no
                column (triple-error alias detected).
        """
        if received < 0 or received >> self.codeword_bits:
            self.counters.record_detected()
            raise UncorrectableError("received word has out-of-range bits")
        syndrome = fold_word(self._tables.syndrome, received)
        try:
            result = self._resolve(received, syndrome)
        except UncorrectableError:
            self.counters.record_detected()
            raise
        self.counters.record_decode(result.errors_corrected)
        return result

    def decode_batch(
        self, words: Iterable[int]
    ) -> list[HsiaoResult | UncorrectableError]:
        """Decode many words; failures come back as exception instances."""
        if not isinstance(words, list):
            words = list(words)
        out: list[HsiaoResult | UncorrectableError] = []
        append = out.append
        decode = self.decode
        engine = get_engine() if len(words) >= MIN_SLICED_BATCH else None
        if engine is None:
            for word in words:
                try:
                    append(decode(word))
                except UncorrectableError as exc:
                    append(exc)
            if out:
                self.counters.record_backend("matrix", len(out))
            return out
        # Sliced prescreen (see BchCode.decode_batch): the data part of a
        # clean Hsiao word is just its low bits, so clean lanes cost one
        # mask; dirty / out-of-range lanes take the scalar decoder.
        n = len(words)
        cw_bits = self.codeword_bits
        invalid = 0
        safe = words
        for i, w in enumerate(words):
            if w < 0 or w >> cw_bits:
                if safe is words:
                    safe = list(words)
                safe[i] = 0
                invalid |= 1 << i
        _, chk_map = self._sliced_for(engine)
        dirty = engine.or_reduce(
            engine.fold(engine.transpose(safe, cw_bits), chk_map)
        )
        data_mask = (1 << self.data_bits) - 1
        bad = dirty | invalid
        if not bad:  # common case: whole batch clean, skip the lane loop
            out = [HsiaoResult(w & data_mask, None) for w in words]
            self.counters.decodes += n
            hist = self.counters.corrected_histogram
            hist[0] = hist.get(0, 0) + n
            self.counters.record_backend(engine.name, n)
            return out
        flags = lane_flags(bad, n)
        n_clean = 0
        for i, word in enumerate(words):
            if (flags[i >> 3] >> (i & 7)) & 1:
                try:
                    append(decode(word))
                except UncorrectableError as exc:
                    append(exc)
            else:
                n_clean += 1
                append(HsiaoResult(word & data_mask, None))
        if n_clean:
            self.counters.decodes += n_clean
            hist = self.counters.corrected_histogram
            hist[0] = hist.get(0, 0) + n_clean
        self.counters.record_backend(engine.name, n)
        return out

    def decode_reference(self, received: int) -> HsiaoResult:
        """Reference decoder with the original per-bit syndrome walk."""
        if received < 0 or received >> self.codeword_bits:
            raise UncorrectableError("received word has out-of-range bits")
        syndrome = 0
        word = received
        position = 0
        while word and position < self.data_bits:
            if word & 1:
                syndrome ^= self._data_columns[position]
            word >>= 1
            position += 1
        syndrome ^= received >> self.data_bits
        return self._resolve(received, syndrome)

    def _resolve(self, received: int, syndrome: int) -> HsiaoResult:
        """Shared decision logic of both decode paths."""
        if syndrome == 0:
            return HsiaoResult(self.extract_data(received), None)
        if bin(syndrome).count("1") % 2 == 0:
            raise UncorrectableError("double-bit error detected", detected_errors=2)
        flip = self._position_of_syndrome.get(syndrome)
        if flip is None:
            raise UncorrectableError("syndrome matches no column (multi-bit error)")
        corrected = received ^ (1 << flip)
        return HsiaoResult(self.extract_data(corrected), flip)

    def __repr__(self) -> str:
        return (
            f"HsiaoCode(data_bits={self.data_bits}, "
            f"codeword_bits={self.codeword_bits})"
        )


def _odd_weight_columns_available(r: int) -> int:
    """Odd-weight nonzero r-bit columns, excluding the r unit vectors."""
    total = 0
    for weight in range(3, r + 1, 2):
        total += _comb(r, weight)
    return total


def _comb(n: int, k: int) -> int:
    import math

    return math.comb(n, k)


def _choose_columns(data_bits: int, r: int) -> list[int]:
    """Pick ``data_bits`` odd-weight columns, minimum weights first.

    Minimum-weight-first selection is what minimizes the total 1s count
    (Hsiao's optimality criterion).
    """
    columns: list[int] = []
    for weight in range(3, r + 1, 2):
        for combo in itertools.combinations(range(r), weight):
            column = 0
            for bit in combo:
                column |= 1 << bit
            columns.append(column)
            if len(columns) == data_bits:
                return columns
    raise ConfigurationError("not enough odd-weight columns (internal)")
