"""Fig. 10: total memory-system energy split into active and idle parts.

Paper: with 95% idle time, idle energy is a significant share of total
memory energy; halving idle power cuts total memory energy ~15% in the
paper's accounting.  Our simulated active power sits nearer the 9x-idle
ratio of the paper's own Fig. 1, which makes the idle share (and hence
MECC's total saving) larger — direction and mechanism identical; see
EXPERIMENTS.md for the discussion of this internal tension in the paper.

Thin shim over the ``repro.report`` registry (exhibit ``fig10``).
"""

import pytest

from repro.analysis.tables import format_table
from repro.ecc.backend import selected_backend
from repro.report.spec import get_exhibit

EXHIBIT_ID = "fig10"


def test_fig10_total_energy(benchmark, run, show):
    spec = get_exhibit(EXHIBIT_ID)
    data = benchmark.pedantic(spec.build, args=(run,), rounds=1, iterations=1)
    show(format_table(
        list(data.columns),
        [list(row) for row in data.rows],
        title=(
            "Fig. 10 — total memory energy over a 1-hour, 95%-idle "
            f"session [codec backend: {selected_backend()}]"
        ),
    ))
    # Baseline and SECDED are indistinguishable.
    assert data.cell("secded", "total_norm") == pytest.approx(1.0, abs=0.05)
    # MECC and ECC-6 halve the idle component.
    for scheme in ("mecc", "ecc6"):
        assert data.cell(scheme, "idle_j") == pytest.approx(
            data.cell("baseline", "idle_j") * 0.52, rel=0.1
        ), scheme
    # Total memory energy drops materially (paper: ~15%; ours more, see
    # module docstring).
    assert data.cell("mecc", "total_norm") < 0.90
    # MECC's saving comes without ECC-6's active-mode slowdown; its total
    # energy is in the same band as ECC-6's (ECC-6 trades its saving for
    # a 10% runtime hit that this energy-only figure does not show).
    assert data.cell("mecc", "total_norm") <= data.cell("ecc6", "total_norm") * 1.15
