"""Tests for the stored-bit fault processes."""

import pytest

from repro.errors import ConfigurationError
from repro.functional.faults import FaultProcess, SoftErrorModel
from repro.reliability.retention import RetentionModel


class TestSoftErrors:
    def test_zero_duration_zero_probability(self):
        assert SoftErrorModel().flip_probability(0.0) == 0.0

    def test_probability_grows_with_time(self):
        model = SoftErrorModel(rate_per_bit_s=1e-9)
        assert model.flip_probability(100.0) > model.flip_probability(1.0)

    def test_saturates_below_one(self):
        model = SoftErrorModel(rate_per_bit_s=1.0)
        assert model.flip_probability(1e6) <= 1.0

    def test_small_rate_linear(self):
        model = SoftErrorModel(rate_per_bit_s=1e-13)
        assert model.flip_probability(10.0) == pytest.approx(1e-12, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SoftErrorModel(rate_per_bit_s=-1.0)
        with pytest.raises(ConfigurationError):
            SoftErrorModel().flip_probability(-1.0)


class TestFaultProcess:
    def test_retention_probability_matches_model(self):
        process = FaultProcess()
        assert process.retention_flip_probability(1.0) == pytest.approx(10 ** -4.5)

    def test_no_retention_flips_below_period(self):
        """An interval shorter than the refresh period sees only soft
        errors (every cell gets refreshed in time)."""
        process = FaultProcess(soft_errors=SoftErrorModel(rate_per_bit_s=0.0), seed=1)
        for _ in range(50):
            assert process.sample_line_flips(1.0, 0.5) == []

    def test_flips_at_slow_period(self):
        """With an exaggerated BER, flips appear within few samples."""
        process = FaultProcess(
            retention=RetentionModel(anchor_ber=0.01), seed=2
        )
        total = sum(len(process.sample_line_flips(1.0, 10.0)) for _ in range(50))
        # Expectation: 50 lines * 576 bits * ~0.01 = ~288 flips.
        assert 150 < total < 500

    def test_positions_in_range(self):
        process = FaultProcess(retention=RetentionModel(anchor_ber=0.05), seed=3)
        for _ in range(20):
            for p in process.sample_line_flips(1.0, 5.0):
                assert 0 <= p < 576

    def test_expected_flips_per_line(self):
        process = FaultProcess()
        expected = process.expected_flips_per_line(1.0, 60.0)
        assert expected == pytest.approx(576 * 10 ** -4.5, rel=0.01)

    def test_deterministic(self):
        a = FaultProcess(retention=RetentionModel(anchor_ber=0.01), seed=5)
        b = FaultProcess(retention=RetentionModel(anchor_ber=0.01), seed=5)
        assert [a.sample_line_flips(1.0, 5.0) for _ in range(10)] == [
            b.sample_line_flips(1.0, 5.0) for _ in range(10)
        ]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultProcess(line_bits=0)
        with pytest.raises(ConfigurationError):
            FaultProcess().sample_line_flips(1.0, -1.0)


class TestLineFaultState:
    """The fixed weak-cell population model (persistent storage physics)."""

    def make(self, seed=0):
        from repro.functional.faults import LineFaultState
        import random

        return LineFaultState(576), random.Random(seed)

    def test_starts_empty(self):
        state, _ = self.make()
        assert state.weak_count == 0
        assert state.decayed_cells(1.0) == []

    def test_extend_samples_population(self):
        state, rng = self.make(1)
        state.extend(0.01, rng)
        # ~5.8 expected weak cells at f=0.01 over 576 bits.
        assert 0 < state.weak_count < 30

    def test_extend_is_monotone_and_idempotent(self):
        state, rng = self.make(2)
        state.extend(0.01, rng)
        count = state.weak_count
        state.extend(0.01, rng)  # same level: no growth
        assert state.weak_count == count
        state.extend(0.05, rng)  # higher level: grows
        assert state.weak_count >= count

    def test_decayed_subset_consistency(self):
        """Cells failing at a fast-period BER also fail at slower ones."""
        state, rng = self.make(3)
        state.extend(0.05, rng)
        fast = {p for p, _ in state.decayed_cells(0.01)}
        slow = {p for p, _ in state.decayed_cells(0.05)}
        assert fast <= slow

    def test_decay_values_are_stable(self):
        state, rng = self.make(4)
        state.extend(0.05, rng)
        first = sorted(state.decayed_cells(0.05))
        second = sorted(state.decayed_cells(0.05))
        assert first == second

    def test_errors_bounded_not_accumulating(self):
        """The whole point: repeated settling of an unread line is capped
        by the fixed weak population, unlike i.i.d. resampling."""
        from repro.functional.memory import FunctionalMemory
        from repro.reliability.retention import RetentionModel
        from repro.functional.faults import FaultProcess, SoftErrorModel
        from repro.types import EccMode
        import random

        faults = FaultProcess(
            retention=RetentionModel(anchor_ber=0.003),
            soft_errors=SoftErrorModel(rate_per_bit_s=0.0),
            seed=11,
        )
        memory = FunctionalMemory(faults=faults)
        memory.set_refresh_period(1.024)
        data = random.Random(0).getrandbits(512)
        memory.write(0, data, EccMode.STRONG)
        # A full simulated *week* unread: errors stay within the line's
        # weak population (expected ~1.7 cells), far under ECC-6's budget.
        memory.advance_time(7 * 24 * 3600.0)
        assert memory.read(0) == data
        assert memory.counters.detected_uncorrectable == 0

    def test_per_line_rng_deterministic(self):
        from repro.functional.faults import FaultProcess

        process = FaultProcess(seed=5)
        a = process.rng_for_line(42).random()
        b = process.rng_for_line(42).random()
        c = process.rng_for_line(43).random()
        assert a == b
        assert a != c
