"""Parallel, cached, crash-safe experiment runner (fan-out + reuse).

Every figure bench and ablation sweep ultimately runs the same kind of
job — simulate one (benchmark, policy, configuration) triple — and many
of them share jobs: Figs. 3/7/9/10 reuse the per-benchmark policy suite,
`smd_threshold_sweep` reuses the baseline suite across thresholds, and
re-running a bench recomputes everything from scratch.  This module
factors that work into an :class:`ExperimentRunner` that

* fans independent :class:`JobSpec` s out over a ``concurrent.futures``
  process pool (``jobs > 1``) or runs them inline (``jobs == 1``),
* memoizes results on disk in a :class:`ResultCache` keyed by a content
  hash of the complete job description — benchmark trace spec, policy
  name and parameters, DRAM organization/timings/power, scheme
  latencies, and a fingerprint of the ``repro`` source tree — so a
  cached result can never be served for changed code or config, and
* records an observability manifest per invocation: one record per job
  (wall time, cache hit/miss, final status), aggregate hit/miss
  counters, and the parallelism settings, renderable via
  :func:`repro.analysis.report.render_runner_summary`.

Resilience (the parts that make long sweeps survivable):

* **Checksummed cache entries** — every entry carries a SHA-256 of its
  own payload; an entry that fails the checksum, is not a JSON object,
  or lacks its result block is *quarantined* (moved to
  ``<cache>/_quarantine/``), logged, and treated as a miss so the job is
  recomputed instead of crashing the sweep.
* **Per-job wall-clock timeouts** (``timeout_s``) — enforced by waiting
  on each worker future with a deadline; on expiry the worker pool is
  killed (``SIGTERM`` to every worker) and the job is marked timed out.
  Setting a timeout forces pool execution even for a single job, since
  an inline job cannot be preempted.
* **Bounded retries with exponential backoff** (``retries``,
  ``retry_backoff_s``) — failed or timed-out jobs are re-attempted up to
  ``retries`` extra times; jobs still failing raise a single aggregated
  :class:`repro.errors.JobExecutionError` *after* every healthy job has
  completed and been cached.
* **Serial fallback** — a :class:`BrokenProcessPool` (worker killed by
  the OS, OOM, etc.) permanently downgrades the runner to inline
  execution for the rest of the sweep rather than losing it.
* **Checkpoint/resume** — with ``checkpoint_path`` set, the manifest is
  rewritten atomically after *every* job disposition; a sweep killed
  mid-run can be resumed by pointing :meth:`ExperimentRunner.resume_from`
  at that manifest (completed jobs are then served from the cache and
  marked ``"resumed"`` in the new manifest).

The runner is deterministic by construction: jobs are pure functions of
their spec (fixed seeds end to end), so ``jobs=N`` produces bit-identical
results to ``jobs=1``, and a cache hit returns exactly the bytes a cold
run would compute.

Configuration is either explicit (:func:`configure_runner`) or via the
environment: ``REPRO_JOBS`` sets the worker count, ``REPRO_CACHE_DIR``
enables the on-disk cache (unset → in-process memoization only),
``REPRO_JOB_TIMEOUT_S`` / ``REPRO_RETRIES`` set the resilience knobs,
and ``REPRO_CHECKPOINT`` names the incremental checkpoint manifest.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import multiprocessing
import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis.backoff import DecorrelatedJitter
from repro.core.smd import DEFAULT_THRESHOLD_MPKC
from repro.ecc import backend as codec_backend
from repro.errors import ConfigurationError, JobExecutionError, JobTimeoutError
from repro.sim.system import ScaledRun, SystemConfig
from repro.types import SimResult
from repro.workloads.spec import BenchmarkSpec

#: Bump when the cached payload layout changes; old entries become misses.
#: Schema 2 added the per-entry payload checksum; schema 3 records the
#: codec backend that computed each entry.
CACHE_SCHEMA = 3

#: Execution backends: "local" is the in-process pool, "dispatch" fans
#: out to TCP workers (see :mod:`repro.dispatch`) with local fallback.
RUNNER_BACKENDS = ("local", "dispatch")

#: Environment variable selecting the default execution backend.
BACKEND_ENV_VAR = "REPRO_RUNNER_BACKEND"

#: Default cap on corrupt-entry files kept under ``<cache>/_quarantine/``.
QUARANTINE_LIMIT = 64

logger = logging.getLogger("repro.analysis.runner")


# ---------------------------------------------------------------------------
# Job descriptions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobSpec:
    """One independent simulation job: benchmark x policy x configuration.

    Frozen and fully value-typed, so a spec works as a dict key, pickles
    to worker processes, and hashes into a stable cache key.  The
    benchmark is carried by value (not by name) so ad-hoc specs outside
    the registry cache correctly too.
    """

    benchmark: BenchmarkSpec
    instructions: int
    policy: str
    config: SystemConfig = field(default_factory=SystemConfig)
    #: SMD parameters; only meaningful for the ``mecc+smd`` policy.
    threshold_mpkc: float | None = None
    quantum_cycles: int | None = None

    @classmethod
    def build(
        cls,
        benchmark: BenchmarkSpec,
        run: ScaledRun,
        policy: str,
        config: SystemConfig | None = None,
        threshold_mpkc: float | None = None,
    ) -> "JobSpec":
        """Build a spec, filling SMD scaling parameters from ``run``."""
        config = config or SystemConfig()
        if policy == "mecc+smd":
            return cls(
                benchmark=benchmark,
                instructions=run.instructions,
                policy=policy,
                config=config,
                threshold_mpkc=(
                    DEFAULT_THRESHOLD_MPKC if threshold_mpkc is None else threshold_mpkc
                ),
                quantum_cycles=run.quantum_cycles,
            )
        return cls(
            benchmark=benchmark,
            instructions=run.instructions,
            policy=policy,
            config=config,
        )

    def describe(self) -> dict:
        """Canonical plain-dict form — the content the cache key hashes."""
        return {
            "benchmark": dataclasses.asdict(self.benchmark),
            "instructions": self.instructions,
            "policy": self.policy,
            "config": self.config.describe(),
            "threshold_mpkc": self.threshold_mpkc,
            "quantum_cycles": self.quantum_cycles,
        }

    def key(self, code_version: str | None = None) -> str:
        """Content-hash cache key: job description + code fingerprint."""
        payload = {
            "schema": CACHE_SCHEMA,
            "code": code_version if code_version is not None else code_fingerprint(),
            "job": self.describe(),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable name for logs and error messages."""
        return f"{self.benchmark.name}/{self.policy}"


@dataclass(frozen=True)
class JobOutcome:
    """The result of one job plus its provenance/observability data."""

    result: SimResult
    #: SMD disabled-time fraction; None unless the policy was ``mecc+smd``.
    smd_disabled_fraction: float | None
    #: Simulation wall time in seconds (the *original* run's time when
    #: served from cache).
    wall_s: float
    cached: bool
    key: str
    #: Codec backend the *executing* process resolved (``matrix`` /
    #: ``bitsliced`` / ``numpy``); the original run's backend when served
    #: from cache, or None for entries written before this field existed.
    backend: str | None = None


def code_fingerprint() -> str:
    """Digest of the installed ``repro`` sources (cache-invalidation tag).

    Hashes every ``.py`` file in the package (path + contents), so any
    code change — simulator, policies, traces, power model — invalidates
    all previously cached results.  Computed once per process.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _CODE_FINGERPRINT = digest.hexdigest()[:16]
    return _CODE_FINGERPRINT


_CODE_FINGERPRINT: str | None = None


# ---------------------------------------------------------------------------
# Job execution (importable at module top level so it pickles to workers)
# ---------------------------------------------------------------------------

#: Per-process trace memo; worker processes forked from the parent start
#: with the parent's already-calibrated traces.
_TRACE_MEMO: dict = {}


def trace_for(benchmark: BenchmarkSpec, instructions: int):
    """Generate (and memoize per process) one benchmark's perf trace."""
    memo_key = (benchmark.name, instructions)
    if memo_key not in _TRACE_MEMO:
        _TRACE_MEMO[memo_key] = benchmark.trace(instructions)
    return _TRACE_MEMO[memo_key]


def clear_trace_memo() -> None:
    """Drop memoized traces (tests use this for isolation)."""
    _TRACE_MEMO.clear()


def _pool_initializer(backend_request: str | None) -> None:
    """Worker bootstrap: carry the parent's codec-backend request across.

    ``ProcessPoolExecutor`` workers do not inherit the parent's
    process-local :func:`repro.ecc.backend.set_backend` override (the
    CLI's ``--codec-backend``): under the spawn start method they begin
    from fresh module state, so a forced-backend sweep would silently
    run ``auto`` inside every worker.  The request is installed both as
    the worker's explicit override and in its environment, so any
    grandchild process inherits it too.
    """
    if backend_request is not None:
        os.environ[codec_backend.ENV_VAR] = backend_request
        codec_backend.set_backend(backend_request)


def execute_job(spec: JobSpec) -> tuple[SimResult, float | None, float, str]:
    """Run one job; returns (result, smd_disabled_fraction, wall_s, backend).

    ``backend`` is the codec backend the executing process actually
    resolved (:func:`repro.ecc.backend.selected_backend`), reported back
    so the run manifest can prove which engine did the work — in
    particular that pool workers honored a forced ``--codec-backend``.
    """
    from repro.sim.engine import simulate

    start = time.perf_counter()
    trace = trace_for(spec.benchmark, spec.instructions)
    if spec.policy == "mecc+smd":
        policy = spec.config.policy_by_name(
            "mecc+smd",
            quantum_cycles=spec.quantum_cycles,
            threshold_mpkc=spec.threshold_mpkc,
        )
    else:
        policy = spec.config.policy_by_name(spec.policy)
    result = simulate(trace, policy)
    smd = getattr(policy, "smd", None)
    disabled = smd.report(result.cycles).disabled_fraction if smd is not None else None
    backend = codec_backend.selected_backend()
    return result, disabled, time.perf_counter() - start, backend


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------


def _payload_checksum(payload: dict) -> str:
    """Canonical SHA-256 of a JSON-native payload (checksum field excluded)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed store of job results, one JSON file per key.

    Entries live at ``<root>/<key[:2]>/<key>.json`` and are written
    atomically (temp file + rename), so concurrent runners sharing a
    cache directory never observe torn entries.  Every entry carries a
    SHA-256 checksum of its own payload; a *stale* entry (old schema or
    foreign key) is a plain miss, while a *corrupt* entry — undecodable
    JSON, non-object payload, checksum mismatch, or a missing result
    block — is moved to ``<root>/_quarantine/``, logged, and counted in
    :attr:`quarantined`, so the job recomputes instead of crashing.

    The quarantine directory itself is bounded: at most
    ``max_quarantine`` entries are kept, oldest evicted (deleted) first,
    so a long-lived cache hammered by corruption cannot grow it without
    bound.  Evictions count in :attr:`quarantine_evicted`.
    """

    def __init__(
        self, root: str | os.PathLike, max_quarantine: int = QUARANTINE_LIMIT
    ):
        if max_quarantine < 1:
            raise ConfigurationError("max_quarantine must be >= 1")
        self.root = Path(root)
        self.max_quarantine = max_quarantine
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.quarantine_evicted = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside (best effort) and log it."""
        dest: Path | None = self.root / "_quarantine" / path.name
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
        except OSError:
            dest = None
        self.quarantined += 1
        logger.warning(
            "quarantined corrupt cache entry %s (%s)%s; the job will be recomputed",
            path.name,
            reason,
            f" -> {dest}" if dest is not None else "",
        )
        if dest is not None:
            self._bound_quarantine()

    def _bound_quarantine(self) -> None:
        """Evict oldest quarantined entries beyond :attr:`max_quarantine`."""
        quarantine = self.root / "_quarantine"
        try:
            entries = sorted(
                (p for p in quarantine.iterdir() if p.is_file()),
                key=lambda p: (p.stat().st_mtime, p.name),
            )
        except OSError:
            return
        for victim in entries[: max(0, len(entries) - self.max_quarantine)]:
            try:
                victim.unlink()
            except OSError:
                continue
            self.quarantine_evicted += 1
            logger.info(
                "evicted oldest quarantined cache entry %s (quarantine "
                "bounded at %d entries)",
                victim.name,
                self.max_quarantine,
            )

    def load(self, key: str) -> dict | None:
        """Return the cached payload for ``key``, counting hit/miss.

        Never raises on a bad entry: corruption quarantines and misses.
        """
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as stream:
                payload = json.load(stream)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError) as exc:
            self._quarantine(path, f"undecodable entry: {exc}")
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self._quarantine(path, "payload is not a JSON object")
            self.misses += 1
            return None
        if payload.get("schema") != CACHE_SCHEMA or payload.get("key") != key:
            # Stale, not corrupt: written by an older schema or for
            # another key.  Leave it alone and recompute.
            self.misses += 1
            return None
        body = {k: v for k, v in payload.items() if k != "checksum"}
        if payload.get("checksum") != _payload_checksum(body):
            self._quarantine(path, "checksum mismatch")
            self.misses += 1
            return None
        if not isinstance(body.get("result"), dict):
            self._quarantine(path, "missing result block")
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, key: str, payload: dict) -> None:
        """Atomically persist ``payload`` under ``key`` with its checksum."""
        body = {k: v for k, v in payload.items() if k != "checksum"}
        body["checksum"] = _payload_checksum(body)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as stream:
            json.dump(body, stream, sort_keys=True)
        os.replace(tmp, path)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


@dataclass
class JobRecord:
    """One manifest line: what ran, how long, from where, and how it ended."""

    key: str
    benchmark: str
    policy: str
    instructions: int
    wall_s: float
    source: str  # "run" | "cache"
    status: str = "ok"  # "ok" | "resumed" | "failed" | "timeout"
    #: Codec backend resolved by the process that computed the result
    #: (None for failures and pre-existing cache entries without one).
    backend: str | None = None


#: Exceptions meaning "the pool itself died", not "the job failed".
_POOL_DEATH = (BrokenProcessPool,)


class ExperimentRunner:
    """Fan independent jobs out over processes, backed by the cache.

    Args:
        jobs: worker processes; 1 runs jobs inline (no pool) unless a
            timeout forces process isolation.
        cache: on-disk result cache, or None for no persistence.
        timeout_s: per-job wall-clock deadline; on expiry the worker
            pool is killed and the job counts as timed out (retryable).
            None disables the deadline (and inline jobs are never
            preempted regardless).
        retries: extra attempts for failed/timed-out jobs (0 = one
            attempt total).
        retry_backoff_s: base delay before the first retry; subsequent
            delays use decorrelated jitter (``min(30, U(base, 3 *
            previous))``) so synchronized failures do not retry in
            lockstep.  0 disables backoff entirely.
        checkpoint_path: when set, the manifest is rewritten atomically
            after every job disposition (see :meth:`resume_from`).
        start_method: multiprocessing start method for the worker pool
            (``fork`` / ``spawn`` / ``forkserver``); None uses the
            platform default.  Results are identical either way — the
            backend-propagation initializer makes spawn safe.
        backend: ``"local"`` (the in-process pool) or ``"dispatch"``
            (remote TCP workers via :mod:`repro.dispatch`, degrading to
            local execution when no worker infrastructure is available).
        dispatch: dispatch knobs; None reads ``REPRO_DISPATCH_*`` from
            the environment when the dispatch backend is selected.
        backoff_rng: randomness for the retry jitter (injectable so
            tests stay deterministic); None draws a private RNG.
        sleep: the backoff sleep hook (injectable for tests).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        timeout_s: float | None = None,
        retries: int = 0,
        retry_backoff_s: float = 0.25,
        checkpoint_path: str | os.PathLike | None = None,
        start_method: str | None = None,
        backend: str = "local",
        dispatch=None,
        backoff_rng: random.Random | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if backend not in RUNNER_BACKENDS:
            raise ConfigurationError(
                f"unknown runner backend {backend!r}; choose from "
                f"{', '.join(RUNNER_BACKENDS)}"
            )
        if start_method is not None and start_method not in (
            multiprocessing.get_all_start_methods()
        ):
            raise ConfigurationError(
                f"unknown start method {start_method!r}; choose from "
                f"{', '.join(multiprocessing.get_all_start_methods())}"
            )
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive (or None)")
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if retry_backoff_s < 0:
            raise ConfigurationError("retry_backoff_s must be >= 0")
        self.jobs = jobs
        self.cache = cache
        self.timeout_s = timeout_s
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.checkpoint_path = checkpoint_path
        self.start_method = start_method
        self.backend = backend
        self.dispatch = dispatch
        self._backoff_rng = backoff_rng
        self._sleep = sleep
        self.records: list[JobRecord] = []
        #: Cache keys a resume manifest reported complete (see
        #: :meth:`resume_from`); hits on these are marked ``"resumed"``.
        self.resumed_keys: set[str] = set()
        #: Jobs that hit their wall-clock deadline (across attempts).
        self.timeouts = 0
        #: Times the worker pool itself died (BrokenProcessPool).
        self.pool_failures = 0
        self._pool_broken = False
        #: Times the dispatch backend was unavailable and the sweep
        #: degraded to local execution (at most 1 per runner).
        self.dispatch_fallbacks = 0
        #: Coordinator summary of the last dispatch session (manifest).
        self.dispatch_summary: dict | None = None
        self._dispatch_unavailable = False

    # -- resume ----------------------------------------------------------------

    def resume_from(self, manifest_path: str | os.PathLike) -> int:
        """Load a checkpoint manifest; returns the completed-job count.

        Completion is keyed by the content-hash cache key, so resumed
        jobs are simply served from the cache (the checkpoint guarantees
        their entries were stored before the manifest line was written).
        A manifest from a different code version is accepted with a
        warning — its keys cannot match the new fingerprint, so every
        job transparently re-runs.

        A *truncated* manifest (undecodable JSON — e.g. the filesystem
        tore a write when the machine died) is treated as **absent**:
        the resume is a no-op (0 completed jobs) with a warning, never a
        crash, because re-running every job is always safe.  A manifest
        that decodes to the wrong shape, or a path that cannot be read
        at all, is still a :class:`ConfigurationError` — that is a wrong
        ``--resume`` argument, not a torn write.
        """
        path = Path(manifest_path)
        try:
            with open(path, encoding="utf-8") as stream:
                payload = json.load(stream)
        except ValueError as exc:
            logger.warning(
                "resume manifest %s is truncated or undecodable (%s); "
                "treating it as absent — every job will re-run",
                path,
                exc,
            )
            self.resumed_keys = set()
            return 0
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read resume manifest {path}: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"resume manifest {path} is not a JSON object"
            )
        if payload.get("code_version") != code_fingerprint():
            logger.warning(
                "resume manifest %s was written by a different code version; "
                "previously completed jobs will re-run",
                path,
            )
        keys = {
            record.get("key")
            for record in payload.get("jobs", [])
            if isinstance(record, dict)
            and record.get("status", "ok") in ("ok", "resumed")
        }
        keys.discard(None)
        self.resumed_keys = keys
        return len(self.resumed_keys)

    # -- execution -------------------------------------------------------------

    def run(self, specs: Sequence[JobSpec]) -> dict[JobSpec, JobOutcome]:
        """Execute ``specs`` (deduplicated), reusing cached results.

        Returns one :class:`JobOutcome` per distinct spec.  Results are
        independent of ``jobs`` — each job is a deterministic pure
        function of its spec — so parallel runs match serial runs
        bit for bit.  If any job still fails after its retries, a single
        :class:`JobExecutionError` aggregating every failure is raised
        — but only after all healthy jobs have completed, been cached,
        and been checkpointed, so the sweep is resumable.
        """
        unique: list[JobSpec] = []
        seen = set()
        for spec in specs:
            if spec not in seen:
                seen.add(spec)
                unique.append(spec)
        code = code_fingerprint()
        outcomes: dict[JobSpec, JobOutcome] = {}
        misses: list[tuple[JobSpec, str]] = []
        for spec in unique:
            key = spec.key(code)
            payload = self.cache.load(key) if self.cache is not None else None
            if payload is not None:
                outcome = JobOutcome(
                    result=SimResult.from_dict(payload["result"]),
                    smd_disabled_fraction=payload.get("smd_disabled_fraction"),
                    wall_s=payload.get("wall_s", 0.0),
                    cached=True,
                    key=key,
                    backend=payload.get("backend"),
                )
                outcomes[spec] = outcome
                status = "resumed" if key in self.resumed_keys else "ok"
                self._record(
                    spec, key, outcome.wall_s, "cache", status, outcome.backend
                )
                self._checkpoint()
            else:
                misses.append((spec, key))
        failures: list[tuple[str, Exception]] = []
        if misses:

            def harvest(position: int, triple) -> None:
                spec, key = misses[position]
                result, disabled, wall_s, backend = triple
                outcomes[spec] = JobOutcome(
                    result=result,
                    smd_disabled_fraction=disabled,
                    wall_s=wall_s,
                    cached=False,
                    key=key,
                    backend=backend,
                )
                if self.cache is not None:
                    self.cache.store(
                        key,
                        {
                            "schema": CACHE_SCHEMA,
                            "key": key,
                            "job": spec.describe(),
                            "result": result.to_dict(),
                            "smd_disabled_fraction": disabled,
                            "wall_s": wall_s,
                            "backend": backend,
                        },
                    )
                self._record(spec, key, wall_s, "run", "ok", backend)
                self._checkpoint()

            errors = self._execute_resilient(
                [spec for spec, _ in misses], harvest
            )
            for position in sorted(errors):
                spec, key = misses[position]
                exc = errors[position]
                status = "timeout" if isinstance(exc, JobTimeoutError) else "failed"
                self._record(spec, key, 0.0, "run", status)
                self._checkpoint()
                failures.append((spec.label(), exc))
        if failures:
            summary = "; ".join(f"{label}: {exc}" for label, exc in failures)
            raise JobExecutionError(
                f"{len(failures)} job(s) failed after "
                f"{self.retries + 1} attempt(s): {summary}",
                failures=failures,
            )
        return outcomes

    def _use_pool(self, n_jobs: int) -> bool:
        if self._pool_broken:
            return False
        if self.jobs > 1 and n_jobs > 1:
            return True
        # A timeout can only be enforced on a killable worker process.
        return self.timeout_s is not None and n_jobs > 0

    def _execute_resilient(
        self, specs: list[JobSpec], harvest: Callable[[int, tuple], None]
    ) -> dict[int, Exception]:
        """Run every spec, retrying failures; returns index -> final error.

        ``harvest`` is invoked once per *successful* job, in submission
        order within each attempt, so caching/checkpointing happens as
        results arrive rather than at sweep end.

        With ``backend="dispatch"`` the whole batch goes to the remote
        coordinator first: its ledger already applies bounded retries
        with jittered backoff per job, so dispatch failures come back
        final, and only *leftover* jobs (workers ran out mid-sweep) plus
        an unavailable dispatch infrastructure fall through to the local
        path below.
        """
        errors: dict[int, Exception] = {}
        pending: list[tuple[int, JobSpec]] = list(enumerate(specs))
        dispatch_errors: dict[int, Exception] = {}
        if pending and self.backend == "dispatch" and not self._dispatch_unavailable:
            dispatch_failed, pending = self._attempt_dispatch(pending, harvest)
            for index, _, exc in dispatch_failed:
                dispatch_errors[index] = exc
        backoff = DecorrelatedJitter(
            self.retry_backoff_s, 30.0, rng=self._backoff_rng
        )
        for attempt in range(self.retries + 1):
            if not pending:
                break
            if attempt:
                delay = backoff.next_delay()
                logger.info(
                    "retry %d/%d for %d job(s) after %.2f s backoff",
                    attempt,
                    self.retries,
                    len(pending),
                    delay,
                )
                if delay:
                    self._sleep(delay)
            failed: list[tuple[int, JobSpec, Exception]] = []
            leftover = pending
            if self._use_pool(len(pending)):
                failed, leftover = self._attempt_pool(pending, harvest)
            for index, spec in leftover:
                # Inline path: jobs == 1, pool permanently broken, or
                # jobs a killed pool never got to.
                try:
                    harvest(index, execute_job(spec))
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    failed.append((index, spec, exc))
            pending = []
            for index, spec, exc in failed:
                errors[index] = exc
                pending.append((index, spec))
            pending.sort()
        final = {index: errors[index] for index, _ in pending}
        final.update(dispatch_errors)
        return final

    def _attempt_dispatch(
        self,
        pending: list[tuple[int, JobSpec]],
        harvest: Callable[[int, tuple], None],
    ) -> tuple[list[tuple[int, JobSpec, Exception]], list[tuple[int, JobSpec]]]:
        """Run the batch through the dispatch backend; degrade on failure.

        Mirrors :meth:`_attempt_pool`'s contract.  An unavailable
        dispatch infrastructure (cannot bind, no workers) is *not* an
        error: it logs one warning, bumps :attr:`dispatch_fallbacks`,
        and returns every job as leftover for local execution.
        """
        from repro.dispatch.backend import DispatchBackend
        from repro.dispatch.coordinator import DispatchConfig
        from repro.errors import DispatchUnavailableError

        config = self.dispatch if self.dispatch is not None else DispatchConfig.from_env()
        backend = DispatchBackend(config)
        try:
            failed, leftover = backend.execute(pending, harvest)
        except DispatchUnavailableError as exc:
            self._dispatch_unavailable = True
            self.dispatch_fallbacks += 1
            self.dispatch_summary = backend.summary
            logger.warning(
                "dispatch backend unavailable (%s); falling back to the "
                "local process pool for this sweep",
                exc,
            )
            return [], pending
        self.dispatch_summary = backend.summary
        if leftover:
            logger.warning(
                "dispatch completed %d/%d job(s) before running out of "
                "workers; finishing the remaining %d locally",
                len(pending) - len(leftover) - len(failed),
                len(pending),
                len(leftover),
            )
        return failed, leftover

    def _attempt_pool(
        self,
        pending: list[tuple[int, JobSpec]],
        harvest: Callable[[int, tuple], None],
    ) -> tuple[list[tuple[int, JobSpec, Exception]], list[tuple[int, JobSpec]]]:
        """One pooled attempt; returns (failed-with-error, never-ran).

        Jobs in the second list were victims of a pool death or timeout
        kill — they did not fail on their own and run inline (or retry)
        without consuming extra attempts for a fault that was not theirs.
        """
        failed: list[tuple[int, JobSpec, Exception]] = []
        leftover: list[tuple[int, JobSpec]] = []
        workers = min(self.jobs, len(pending)) if self.jobs > 1 else 1
        # The initializer replays the parent's codec-backend request in
        # every worker: an explicit set_backend() override lives in
        # process-local module state that spawn-started workers would
        # otherwise never see (forced-backend sweeps silently ran `auto`).
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=(
                multiprocessing.get_context(self.start_method)
                if self.start_method
                else None
            ),
            initializer=_pool_initializer,
            initargs=(codec_backend.requested_backend(),),
        )
        futures = []
        try:
            for index, spec in pending:
                futures.append((pool.submit(execute_job, spec), index, spec))
        except _POOL_DEATH + (RuntimeError,):
            self._mark_pool_broken()
            submitted = {idx for _, idx, _ in futures}
            leftover.extend(
                (idx, spec) for idx, spec in pending if idx not in submitted
            )
        dead = False
        for future, index, spec in futures:
            if dead:
                # Pool already killed/broken: salvage finished results,
                # requeue everything else.
                if future.done() and not future.cancelled():
                    exc = future.exception()
                    if exc is None:
                        try:
                            harvest(index, future.result())
                        except Exception as err:
                            failed.append((index, spec, err))
                    elif isinstance(exc, _POOL_DEATH):
                        leftover.append((index, spec))
                    else:
                        failed.append((index, spec, exc))
                else:
                    leftover.append((index, spec))
                continue
            try:
                triple = future.result(timeout=self.timeout_s)
            except FutureTimeoutError:
                self.timeouts += 1
                failed.append(
                    (
                        index,
                        spec,
                        JobTimeoutError(
                            f"job {spec.label()} exceeded the "
                            f"{self.timeout_s:g} s wall-clock deadline; "
                            "worker pool killed"
                        ),
                    )
                )
                logger.warning(
                    "job %s timed out after %g s; killing the worker pool",
                    spec.label(),
                    self.timeout_s,
                )
                self._kill_pool(pool)
                dead = True
                continue
            except _POOL_DEATH:
                self._mark_pool_broken()
                leftover.append((index, spec))
                dead = True
                continue
            except Exception as exc:
                failed.append((index, spec, exc))
                continue
            try:
                harvest(index, triple)
            except Exception as err:
                failed.append((index, spec, err))
        if not dead:
            pool.shutdown(wait=True)
        return failed, leftover

    def _mark_pool_broken(self) -> None:
        self.pool_failures += 1
        if not self._pool_broken:
            logger.warning(
                "worker pool died (BrokenProcessPool); falling back to "
                "serial in-process execution for the rest of the sweep"
            )
        self._pool_broken = True

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Terminate every worker and abandon the pool (timeout path)."""
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except OSError:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _record(
        self,
        spec: JobSpec,
        key: str,
        wall_s: float,
        source: str,
        status: str = "ok",
        backend: str | None = None,
    ) -> None:
        self.records.append(
            JobRecord(
                key=key,
                benchmark=spec.benchmark.name,
                policy=spec.policy,
                instructions=spec.instructions,
                wall_s=wall_s,
                source=source,
                status=status,
                backend=backend,
            )
        )

    def _checkpoint(self) -> None:
        if self.checkpoint_path is not None:
            self.write_manifest(self.checkpoint_path)

    # -- observability ---------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.source == "cache")

    @property
    def cache_misses(self) -> int:
        return sum(1 for r in self.records if r.source == "run")

    def manifest(self) -> dict:
        """Structured run manifest: per-job records + aggregate counters."""
        ran = [r for r in self.records if r.source == "run"]
        total = len(self.records)
        return {
            "schema": CACHE_SCHEMA,
            "code_version": code_fingerprint(),
            "parallelism": {
                "jobs": self.jobs,
                "start_method": self.start_method,
                "backend": self.backend,
            },
            "dispatch": {
                "backend": self.backend,
                "fallbacks": self.dispatch_fallbacks,
                "summary": self.dispatch_summary,
            },
            # Which codec engines actually computed results this run —
            # workers report their resolved backend per job, so a forced
            # --codec-backend sweep is provable from the manifest alone.
            "codec_backends": sorted(
                {r.backend for r in self.records if r.backend is not None}
            ),
            "cache": {
                "enabled": self.cache is not None,
                "dir": str(self.cache.root) if self.cache is not None else None,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.cache_hits / total if total else 0.0,
                "quarantined": self.cache.quarantined if self.cache else 0,
                "quarantine_evicted": (
                    self.cache.quarantine_evicted if self.cache else 0
                ),
            },
            "resilience": {
                "timeout_s": self.timeout_s,
                "retries": self.retries,
                "timeouts": self.timeouts,
                "pool_failures": self.pool_failures,
                "serial_fallback": self._pool_broken,
            },
            "totals": {
                "job_count": total,
                "simulated_wall_s": sum(r.wall_s for r in ran),
                "max_job_wall_s": max((r.wall_s for r in ran), default=0.0),
                "failed_jobs": sum(
                    1 for r in self.records if r.status in ("failed", "timeout")
                ),
                "resumed_jobs": sum(
                    1 for r in self.records if r.status == "resumed"
                ),
            },
            "jobs": [dataclasses.asdict(r) for r in self.records],
        }

    def write_manifest(self, path: str | os.PathLike) -> str:
        """Atomically write the manifest as JSON; returns the path written.

        Atomic (temp file + rename) because the checkpoint path rewrites
        it after every job — a sweep killed mid-write must leave the
        previous complete manifest behind, never a torn one.
        """
        manifest = self.manifest()
        manifest["created"] = time.strftime("%Y-%m-%dT%H:%M:%S")
        target = Path(path)
        tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as stream:
            json.dump(manifest, stream, indent=2, sort_keys=True)
        os.replace(tmp, target)
        return str(target)


# ---------------------------------------------------------------------------
# Process-wide default runner
# ---------------------------------------------------------------------------

_default_runner: ExperimentRunner | None = None


def configure_runner(
    jobs: int = 1,
    cache_dir: str | os.PathLike | None = None,
    timeout_s: float | None = None,
    retries: int = 0,
    checkpoint_path: str | os.PathLike | None = None,
    start_method: str | None = None,
    backend: str = "local",
    dispatch=None,
) -> ExperimentRunner:
    """Install (and return) the process-wide default runner.

    Args:
        jobs: worker-process count (1 = inline).
        cache_dir: on-disk cache directory; None disables persistence.
        timeout_s: per-job wall-clock deadline (None = unlimited).
        retries: extra attempts for failed/timed-out jobs.
        checkpoint_path: incremental checkpoint manifest path.
        start_method: worker-pool start method (None = platform default).
        backend: execution backend, ``"local"`` or ``"dispatch"``.
        dispatch: :class:`repro.dispatch.DispatchConfig` knobs (None
            reads ``REPRO_DISPATCH_*`` when dispatch is selected).
    """
    global _default_runner
    cache = ResultCache(cache_dir) if cache_dir else None
    _default_runner = ExperimentRunner(
        jobs=jobs,
        cache=cache,
        timeout_s=timeout_s,
        retries=retries,
        checkpoint_path=checkpoint_path,
        start_method=start_method,
        backend=backend,
        dispatch=dispatch,
    )
    return _default_runner


def get_runner() -> ExperimentRunner:
    """The default runner; built from the environment on first use.

    ``REPRO_JOBS`` (int), ``REPRO_CACHE_DIR`` (path),
    ``REPRO_JOB_TIMEOUT_S`` (float), ``REPRO_RETRIES`` (int),
    ``REPRO_CHECKPOINT`` (path), ``REPRO_POOL_START_METHOD``
    (``fork``/``spawn``/``forkserver``), and ``REPRO_RUNNER_BACKEND``
    (``local``/``dispatch``) configure it; with none set the default is
    serial and memory-only, matching the pre-runner behavior exactly.
    """
    global _default_runner
    if _default_runner is None:
        jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
        timeout_env = os.environ.get("REPRO_JOB_TIMEOUT_S") or None
        retries = int(os.environ.get("REPRO_RETRIES", "0") or "0")
        checkpoint = os.environ.get("REPRO_CHECKPOINT") or None
        start_method = os.environ.get("REPRO_POOL_START_METHOD") or None
        backend = os.environ.get(BACKEND_ENV_VAR) or "local"
        _default_runner = configure_runner(
            jobs=max(1, jobs),
            cache_dir=cache_dir,
            timeout_s=float(timeout_env) if timeout_env else None,
            retries=max(0, retries),
            checkpoint_path=checkpoint,
            start_method=start_method,
            backend=backend,
        )
    return _default_runner


def reset_runner() -> None:
    """Forget the default runner (tests / CLI re-configuration)."""
    global _default_runner
    _default_runner = None
