"""Tests for the transaction-level memory controller."""

import pytest

from repro.dram.config import DramOrganization, DramTimings
from repro.dram.controller import MemoryController
from repro.errors import ConfigurationError

T = DramTimings()


def fresh_controller(**kwargs):
    return MemoryController(**kwargs)


class TestReadTiming:
    def test_first_read_latency(self):
        ctrl = fresh_controller()
        start = 10_000  # past the power-down gap so wake cost applies
        done = ctrl.read(0, start)
        assert done == start + T.t_xp + T.row_empty_latency

    def test_row_hit_latency(self):
        ctrl = fresh_controller()
        done1 = ctrl.read(0, 0)
        done2 = ctrl.read(64, done1)
        assert done2 - done1 == T.row_hit_latency

    def test_row_conflict_latency(self):
        ctrl = fresh_controller()
        done1 = ctrl.read(0, 0)
        # Same bank, different row: line 0 and line (4 banks * 256) share bank 0.
        conflict_addr = 4 * 256 * 64
        start = done1 + T.t_ras
        done2 = ctrl.read(conflict_addr, start)
        assert done2 - start >= T.row_conflict_latency

    def test_bank_parallelism_beats_serialization(self):
        """Two reads to different banks overlap; to the same row they queue."""
        ctrl_par = fresh_controller()
        ctrl_par.read(0, 0)
        done_par = ctrl_par.read(256 * 64, 0)  # bank 1
        ctrl_ser = fresh_controller()
        ctrl_ser.read(0, 0)
        done_ser = ctrl_ser.read(4 * 256 * 64, 0)  # bank 0 again, other row
        assert done_par < done_ser

    def test_data_bus_contention_serializes_bursts(self):
        ctrl = fresh_controller()
        done1 = ctrl.read(0, 0)
        done2 = ctrl.read(256 * 64, 0)  # different bank, same instant
        assert done2 >= done1 + T.t_burst

    def test_read_stats(self):
        ctrl = fresh_controller()
        ctrl.read(0, 0)
        ctrl.read(64, 200)
        assert ctrl.stats.reads == 2
        assert ctrl.stats.activates == 1
        assert ctrl.stats.row_hits == 1
        assert ctrl.stats.read_latency_sum > 0


class TestWrites:
    def test_writes_buffer_without_blocking(self):
        ctrl = fresh_controller()
        for i in range(8):
            ctrl.write(i * 64, 0)
        assert ctrl.stats.writes == 0
        assert len(ctrl.write_queue) == 8

    def test_full_queue_forces_drain(self):
        ctrl = fresh_controller(write_queue_capacity=8, write_drain_low=2)
        for i in range(8):
            ctrl.write(i * 64, 0)
        assert ctrl.stats.writes == 6
        assert len(ctrl.write_queue) == 2
        assert ctrl.stats.write_drains == 1

    def test_flush_writes_empties_queue(self):
        ctrl = fresh_controller()
        for i in range(5):
            ctrl.write(i * 64, 0)
        done = ctrl.flush_writes(1000)
        assert not ctrl.write_queue
        assert ctrl.stats.writes == 5
        assert done > 1000

    def test_opportunistic_drain_uses_idle_gaps(self):
        ctrl = fresh_controller()
        ctrl.read(0, 0)
        ctrl.write(64, 10)
        # A read far in the future: the idle gap should absorb the write.
        ctrl.read(128, 100_000)
        assert ctrl.stats.writes == 1
        assert not ctrl.write_queue

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fresh_controller(write_queue_capacity=4, write_drain_low=4)
        with pytest.raises(ConfigurationError):
            fresh_controller(write_queue_capacity=0, write_drain_low=-1)


class TestRefreshInterference:
    def test_collision_delays_read(self):
        ctrl = fresh_controller()
        ctrl.read(0, 0)  # establish activity before the refresh window
        # Arrive exactly at the first refresh window.
        start = T.t_refi + 1
        done = ctrl.read(64, start)
        assert done >= T.t_refi + T.t_rfc
        assert ctrl.stats.refresh_windows_hit == 1

    def test_refresh_closes_rows(self):
        ctrl = fresh_controller()
        ctrl.read(0, 0)
        assert ctrl.stats.activates == 1
        # This same-row access would be a hit, but the refresh it collides
        # with precharges the banks, forcing a fresh activate.
        ctrl.read(64, T.t_refi + 1)
        assert ctrl.stats.activates == 2
        assert ctrl.stats.row_hits == 0

    def test_refresh_disabled(self):
        ctrl = fresh_controller()
        ctrl.set_refresh_enabled(False)
        ctrl.read(0, 0)
        ctrl.read(64, T.t_refi + 1)
        assert ctrl.stats.refresh_windows_hit == 0


class TestPowerDown:
    def test_long_gap_pays_exit_latency(self):
        ctrl = fresh_controller(powerdown_gap_cycles=48)
        ctrl.read(0, 0)
        done_idle = ctrl.read(64, 1_000_000)
        assert ctrl.stats.powerdown_exits >= 1
        assert done_idle >= 1_000_000 + T.t_xp + T.row_hit_latency

    def test_short_gap_stays_awake(self):
        ctrl = fresh_controller(powerdown_gap_cycles=48)
        done = ctrl.read(0, 0)
        ctrl.read(64, done + 10)
        # First read from cold start counts one exit; no second exit.
        assert ctrl.stats.powerdown_exits <= 1


class TestUtilization:
    def test_fractions_sum_to_one(self):
        ctrl = fresh_controller()
        for i in range(50):
            ctrl.read(i * 64, i * 500)
        util = ctrl.utilization(50 * 500)
        total = (
            util.frac_active_standby
            + util.frac_precharge_standby
            + util.frac_active_powerdown
            + util.frac_precharge_powerdown
        )
        assert total == pytest.approx(1.0)
        assert util.read_bursts_per_second > 0

    def test_rejects_zero_cycles(self):
        with pytest.raises(ConfigurationError):
            fresh_controller().utilization(0)

    def test_busier_trace_higher_active_fraction(self):
        busy = fresh_controller()
        for i in range(100):
            busy.read(i * 64, i * 100)
        idlish = fresh_controller()
        for i in range(100):
            idlish.read(i * 64, i * 5000)
        cycles_busy, cycles_idle = 100 * 100, 100 * 5000
        assert (
            busy.utilization(cycles_busy).frac_active_standby
            > idlish.utilization(cycles_idle).frac_active_standby
        )


class TestActivatePacing:
    def test_trrd_spaces_activates(self):
        """Back-to-back ACTs to different banks respect tRRD."""
        ctrl = fresh_controller()
        done1 = ctrl.read(0, 0)  # bank 0, ACT at 0
        done2 = ctrl.read(256 * 64, 0)  # bank 1, ACT must wait tRRD
        act2_start = done2 - T.row_empty_latency
        # Bus contention may push further; tRRD is the floor.
        assert act2_start >= T.t_rrd

    def test_tfaw_limits_activate_bursts(self):
        """A fifth ACT inside the tFAW window stalls to the window edge."""
        ctrl = fresh_controller(powerdown_gap_cycles=10 ** 9)
        # Five conflict-free ACTs: banks 0..3 then bank 0 again (new row).
        for i in range(4):
            ctrl.read(i * 256 * 64, 0)
        done5 = ctrl.read(4 * 256 * 64, 0)  # bank 0 again, different row
        act5_start = done5 - T.row_conflict_latency - T.t_burst  # lower bound
        # The 5th ACT cannot start before the 1st + tFAW.
        assert done5 - T.row_empty_latency >= T.t_faw

    def test_row_hits_not_paced(self):
        """tRRD/tFAW constrain ACTs only; row hits stream freely."""
        ctrl = fresh_controller()
        done1 = ctrl.read(0, 0)
        done2 = ctrl.read(64, done1)  # same row: hit
        assert done2 - done1 == T.row_hit_latency


class TestMultiChannel:
    def test_channels_have_independent_buses(self):
        from repro.dram.config import DramOrganization

        two = MemoryController(org=DramOrganization(channels=2))
        one = fresh_controller()
        # Two simultaneous reads landing on different channels of the
        # 2-channel system do not serialize on the bus.
        lines_per_row = two.org.lines_per_row
        a = 0
        b = lines_per_row * 4 * 64  # next bank group -> other channel set
        # Find two addresses on different channels.
        loc_a = two.mapper.locate(a)
        addr_b = None
        for line in range(1, 64):
            candidate = line * lines_per_row * 64
            if (two.mapper.locate(candidate).bank // two._banks_per_channel) != (
                loc_a.bank // two._banks_per_channel
            ):
                addr_b = candidate
                break
        assert addr_b is not None
        done_a = two.read(a, 0)
        done_b = two.read(addr_b, 0)
        # Allow ACT pacing but not bus serialization beyond it.
        assert done_b <= done_a + T.t_rrd
