"""Fig. 8: refresh power (left) and total idle power (right).

Paper: both MECC and ECC-6 cut refresh operations 16x and total idle
power by ~43% ("almost 2X"); refresh is about half the idle power.
"""

import pytest

from repro.analysis.experiments import fig8_idle_power
from repro.analysis.tables import format_table


def test_fig08_idle_power(benchmark, show):
    out = benchmark.pedantic(fig8_idle_power, rounds=1, iterations=1)
    show(format_table(
        ["scheme", "refresh mW", "background mW", "total mW",
         "refresh norm", "total norm"],
        [
            [name, 1000 * v["refresh_w"], 1000 * v["background_w"],
             1000 * v["total_w"], v["refresh_norm"], v["total_norm"]]
            for name, v in out.items()
        ],
        title=(
            "Fig. 8 — idle (self-refresh) power; paper: refresh 1/16, "
            "total ~0.57 of baseline"
        ),
    ))
    for scheme in ("MECC", "ECC-6"):
        assert out[scheme]["refresh_norm"] == pytest.approx(1 / 16)
        assert 0.40 <= out[scheme]["total_norm"] <= 0.60
    base = out["Baseline"]
    assert base["refresh_w"] / base["total_w"] == pytest.approx(0.5, abs=0.1)
