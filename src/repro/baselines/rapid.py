"""RAPID (Venkatesan et al., HPCA 2006): retention-aware page placement.

RAPID profiles per-page retention time and allocates the best-retention
pages first; the refresh period can then be set to the retention of the
*worst allocated* page.  The saving therefore degrades as memory fills,
and the scheme trusts the profile (see :mod:`repro.baselines.vrt`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.reliability.retention import RetentionModel


@dataclass
class RapidModel:
    """Monte-Carlo model of RAPID page allocation.

    Per-page retention is the minimum over the page's cells; sampling
    every cell is infeasible, so we sample the page minimum directly from
    the cell distribution via the exact order-statistic transform:
    ``P(min < t) = 1 - (1 - F(t))^n`` for n cells per page.

    Attributes:
        capacity_bytes: memory size.
        page_bytes: allocation granularity (4 KB).
        retention: the cell-retention model.
        seed: RNG seed for the profile.
    """

    capacity_bytes: int = 1 << 30
    page_bytes: int = 4096
    retention: RetentionModel = field(default_factory=RetentionModel)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.capacity_bytes < self.page_bytes or self.page_bytes < 1:
            raise ConfigurationError("capacity must hold at least one page")
        self._page_retention: list[float] | None = None

    @property
    def total_pages(self) -> int:
        return self.capacity_bytes // self.page_bytes

    @property
    def cells_per_page(self) -> int:
        return 8 * self.page_bytes

    def _profile(self) -> list[float]:
        """Per-page minimum retention times, sorted descending."""
        if self._page_retention is None:
            rng = random.Random(self.seed)
            n = self.cells_per_page
            inv_slope = 1.0 / self.retention.slope
            anchor_t = self.retention.anchor_time_s
            anchor_p = self.retention.anchor_ber
            pages = []
            for _ in range(self.total_pages):
                # P(min < t) = 1 - (1-F(t))^n  =>  F(t_min) ~ Beta-ish;
                # invert via u -> F = 1-(1-u)^(1/n), then t = F^{-1}.
                u = rng.random()
                f = 1.0 - (1.0 - u) ** (1.0 / n)
                pages.append(anchor_t * (f / anchor_p) ** inv_slope)
            pages.sort(reverse=True)
            self._page_retention = pages
        return self._page_retention

    def achievable_refresh_period(self, utilization: float) -> float:
        """Longest safe refresh period when a fraction of pages is in use.

        RAPID allocates best pages first, so the period equals the
        retention of the worst page among the first ``utilization`` share.
        """
        if not 0.0 < utilization <= 1.0:
            raise ConfigurationError("utilization must be in (0, 1]")
        profile = self._profile()
        index = max(0, int(utilization * self.total_pages) - 1)
        return profile[index]

    def refresh_rate_relative(self, utilization: float, base_period_s: float = 0.064) -> float:
        """Refresh operations vs. the 64 ms baseline at a given utilization."""
        period = self.achievable_refresh_period(utilization)
        return base_period_s / period if period > 0 else 1.0

    def usable_fraction_at_period(self, period_s: float) -> float:
        """Fraction of memory usable if the period is fixed at ``period_s``.

        Pages whose worst cell cannot hold data for the period are dropped
        from the OS pool — RAPID's capacity cost (vs. MECC's full 100%).
        """
        if period_s <= 0:
            raise ConfigurationError("period must be positive")
        profile = self._profile()
        good = sum(1 for r in profile if r >= period_s)
        return good / self.total_pages
