"""Fig. 10: total memory-system energy split into active and idle parts.

Paper: with 95% idle time, idle energy is a significant share of total
memory energy; halving idle power cuts total memory energy ~15% in the
paper's accounting.  Our simulated active power sits nearer the 9x-idle
ratio of the paper's own Fig. 1, which makes the idle share (and hence
MECC's total saving) larger — direction and mechanism identical; see
EXPERIMENTS.md for the discussion of this internal tension in the paper.
"""

import pytest

from repro.analysis.experiments import fig10_total_energy
from repro.analysis.tables import format_table
from repro.ecc.backend import selected_backend


def test_fig10_total_energy(benchmark, run, show):
    out = benchmark.pedantic(fig10_total_energy, args=(run,), rounds=1, iterations=1)
    show(format_table(
        ["scheme", "active J", "idle J", "total J", "normalized"],
        [
            [name, v["active_j"], v["idle_j"], v["total_j"], v["total_norm"]]
            for name, v in out.items()
        ],
        title=(
            "Fig. 10 — total memory energy over a 1-hour, 95%-idle "
            f"session [codec backend: {selected_backend()}]"
        ),
    ))
    # Baseline and SECDED are indistinguishable.
    assert out["secded"]["total_norm"] == pytest.approx(1.0, abs=0.05)
    # MECC and ECC-6 halve the idle component.
    for scheme in ("mecc", "ecc6"):
        assert out[scheme]["idle_j"] == pytest.approx(
            out["baseline"]["idle_j"] * 0.52, rel=0.1
        ), scheme
    # Total memory energy drops materially (paper: ~15%; ours more, see
    # module docstring).
    assert out["mecc"]["total_norm"] < 0.90
    # MECC's saving comes without ECC-6's active-mode slowdown; its total
    # energy is in the same band as ECC-6's (ECC-6 trades its saving for
    # a 10% runtime hit that this energy-only figure does not show).
    assert out["mecc"]["total_norm"] <= out["ecc6"]["total_norm"] * 1.15
