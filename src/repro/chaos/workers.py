"""Worker-fault chaos campaign for the dispatch backend.

Where :mod:`repro.chaos.campaign` attacks the modeled *control plane*
(MDT bits, mode state), this campaign attacks the *execution
infrastructure*: real coordinator, real worker subprocesses, real
injected faults — a worker SIGKILLed mid-job, one that goes silent and
lets its lease expire, one that stalls until the slow-worker eviction
fires, a partitioned socket, duplicate result delivery, and a flaky
worker whose job failures must be retried.

Every scenario runs a small real sweep through
:class:`repro.dispatch.backend.DispatchBackend` (plus the local
degradation path for jobs the workers never finished, exactly as the
experiment runner would) and asserts the two invariants the dispatch
ledger promises:

* **exactly-once completion** — every job commits exactly once; late or
  repeated deliveries are counted duplicates, never double-commits, and
  no job is lost;
* **bit-identical results** — each committed payload equals a fault-free
  local run of the same spec, field for field.

``repro chaos --campaign workers`` runs the full campaign; the CI
dispatch job gates on a zero-lost / zero-double-commit / zero-mismatch
report.
"""

from __future__ import annotations

import logging
from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.tables import format_table
from repro.errors import ConfigurationError

logger = logging.getLogger("repro.chaos")

#: Default sweep behind each scenario: small enough that a full
#: campaign (one coordinator + two subprocess workers per scenario)
#: stays in CI-smoke territory, large enough that the healthy worker
#: banks the wall-time samples slow-eviction needs.
DEFAULT_INSTRUCTIONS = 3000
DEFAULT_BENCHMARKS = ("libq", "milc", "sphinx")
DEFAULT_POLICIES = ("mecc", "secded")


@dataclass(frozen=True)
class WorkerChaosScenario:
    """One named fault configuration: which worker misbehaves, and how."""

    name: str
    description: str
    #: ``(mode, arg)`` per spawned worker index; missing = healthy.
    faults: tuple = ()
    workers: int = 2
    lease_s: float = 1.0
    heartbeat_s: float = 0.25
    #: Scenario-specific :class:`repro.dispatch.DispatchConfig` extras.
    overrides: dict = field(default_factory=dict)
    #: Scenarios that *must* record at least one of these ledger events
    #: to prove the fault actually fired (e.g. ``leases_expired``).
    expect_events: tuple = ()


WORKER_SCENARIOS: dict[str, WorkerChaosScenario] = {
    scenario.name: scenario
    for scenario in (
        WorkerChaosScenario(
            name="kill",
            description="worker SIGKILLed mid-job; dropped connection requeues",
            faults=(("kill", 0.05),),
            expect_events=("requeues",),
        ),
        WorkerChaosScenario(
            name="silent",
            description="heartbeats stop mid-job; lease expires and requeues",
            faults=(("silent", 2.0),),
            expect_events=("leases_expired", "requeues"),
        ),
        WorkerChaosScenario(
            name="slow",
            description="worker stalls while heartbeating; slow-eviction fires",
            faults=(("slow", 6.0),),
            overrides={"slow_grace_s": 1.0, "slow_factor": 8.0},
            expect_events=("requeues",),
        ),
        WorkerChaosScenario(
            name="partition",
            description="socket freezes completely; silence requeues the lease",
            faults=(("partition", 4.0),),
            expect_events=("requeues",),
        ),
        WorkerChaosScenario(
            name="duplicate",
            description="every result delivered twice; second copy is a no-op",
            faults=(("duplicate", 0.0),),
            expect_events=("duplicates",),
        ),
        WorkerChaosScenario(
            name="flaky",
            description="first two jobs raise; bounded retries recover them",
            faults=(("flaky", 2.0),),
            expect_events=("retried_failures",),
        ),
    )
}

#: Named scenario sets for ``--campaign`` style selection.
WORKER_CAMPAIGNS: dict[str, tuple[str, ...]] = {
    "workers": tuple(WORKER_SCENARIOS),
    "workers-smoke": ("kill", "duplicate", "flaky"),
}


def resolve_worker_scenarios(names) -> tuple[WorkerChaosScenario, ...]:
    """Map scenario names to scenarios; unknown names raise."""
    scenarios = []
    for name in names:
        if name not in WORKER_SCENARIOS:
            raise ConfigurationError(
                f"unknown worker-chaos scenario {name!r}; choose from "
                f"{', '.join(WORKER_SCENARIOS)}"
            )
        scenarios.append(WORKER_SCENARIOS[name])
    if not scenarios:
        raise ConfigurationError("no worker-chaos scenarios selected")
    return tuple(scenarios)


@dataclass
class WorkerScenarioRecord:
    """Outcome of one scenario run, with the invariant verdicts."""

    scenario: str
    jobs: int
    committed: int
    completed_locally: int
    failed: int
    lost: int
    double_commits: int
    duplicates: int
    requeues: int
    leases_expired: int
    retried_failures: int
    workers_lost: int
    workers_evicted: int
    workers_quarantined: int
    mismatches: int
    missing_events: tuple = ()
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return (
            self.lost == 0
            and self.double_commits == 0
            and self.failed == 0
            and self.mismatches == 0
            and not self.missing_events
        )

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "jobs": self.jobs,
            "committed": self.committed,
            "completed_locally": self.completed_locally,
            "failed": self.failed,
            "lost": self.lost,
            "double_commits": self.double_commits,
            "duplicates": self.duplicates,
            "requeues": self.requeues,
            "leases_expired": self.leases_expired,
            "retried_failures": self.retried_failures,
            "workers_lost": self.workers_lost,
            "workers_evicted": self.workers_evicted,
            "workers_quarantined": self.workers_quarantined,
            "mismatches": self.mismatches,
            "missing_events": ",".join(self.missing_events),
            "wall_s": self.wall_s,
            "ok": self.ok,
        }


@dataclass
class WorkerChaosReport:
    """Campaign verdict: per-scenario records plus aggregate invariants."""

    records: list

    @property
    def ok(self) -> bool:
        return all(record.ok for record in self.records)

    @property
    def jobs_total(self) -> int:
        return sum(record.jobs for record in self.records)

    @property
    def lost_total(self) -> int:
        return sum(record.lost for record in self.records)

    @property
    def double_commits_total(self) -> int:
        return sum(record.double_commits for record in self.records)

    @property
    def mismatch_total(self) -> int:
        return sum(record.mismatches for record in self.records)

    def as_dict(self) -> dict:
        payload = {
            "scenarios": len(self.records),
            "jobs_total": self.jobs_total,
            "lost_total": self.lost_total,
            "double_commits_total": self.double_commits_total,
            "mismatch_total": self.mismatch_total,
            "duplicates_total": sum(r.duplicates for r in self.records),
            "ok": self.ok,
        }
        for record in self.records:
            payload[record.scenario] = record.as_dict()
        return payload

    def render_table(self) -> str:
        rows = [
            [
                record.scenario,
                record.jobs,
                record.committed,
                record.completed_locally,
                record.duplicates,
                record.requeues,
                record.lost,
                record.double_commits,
                record.mismatches,
                "PASS" if record.ok else "FAIL",
            ]
            for record in self.records
        ]
        verdict = "PASS" if self.ok else "FAIL"
        return format_table(
            [
                "scenario", "jobs", "committed", "local", "dups",
                "requeues", "lost", "double", "mismatch", "verdict",
            ],
            rows,
            title=(
                f"worker chaos: {len(self.records)} scenario(s), "
                f"{self.jobs_total} jobs, {self.lost_total} lost, "
                f"{self.double_commits_total} double-committed — {verdict}"
            ),
        )


class WorkerChaosCampaign:
    """Run fault scenarios against a real coordinator + worker fleet.

    Args:
        scenarios: scenario objects (default: every registered one).
        instructions: per-job slice length; the default keeps one
            scenario around a second of wall time.
        benchmarks / policies: the sweep grid behind every scenario.
    """

    def __init__(
        self,
        scenarios=None,
        instructions: int = DEFAULT_INSTRUCTIONS,
        benchmarks=DEFAULT_BENCHMARKS,
        policies=DEFAULT_POLICIES,
    ):
        if instructions < 1:
            raise ConfigurationError("instructions must be >= 1")
        self.scenarios = (
            tuple(scenarios)
            if scenarios is not None
            else tuple(WORKER_SCENARIOS.values())
        )
        if not self.scenarios:
            raise ConfigurationError("no worker-chaos scenarios selected")
        self.instructions = instructions
        self.benchmarks = tuple(benchmarks)
        self.policies = tuple(policies)

    def _specs(self):
        from repro.analysis.runner import JobSpec
        from repro.workloads.spec import BENCHMARKS_BY_NAME

        specs = []
        for name in self.benchmarks:
            if name not in BENCHMARKS_BY_NAME:
                raise ConfigurationError(f"unknown benchmark {name!r}")
            for policy in self.policies:
                specs.append(
                    JobSpec(
                        benchmark=BENCHMARKS_BY_NAME[name],
                        instructions=self.instructions,
                        policy=policy,
                    )
                )
        return specs

    def run(self) -> WorkerChaosReport:
        """Run every scenario; the report carries the verdicts."""
        import time

        from repro.analysis.runner import execute_job

        specs = self._specs()
        # Fault-free reference results, computed once in-process: the
        # bar every chaos-delivered payload must match bit for bit.
        reference = {
            index: execute_job(spec)[0].to_dict()
            for index, spec in enumerate(specs)
        }
        records = []
        for scenario in self.scenarios:
            started = time.monotonic()
            record = self._run_scenario(scenario, specs, reference)
            record.wall_s = time.monotonic() - started
            records.append(record)
            logger.info(
                "worker chaos %s: %s (%d jobs, %d dups, %d requeues, %.2fs)",
                scenario.name,
                "PASS" if record.ok else "FAIL",
                record.jobs,
                record.duplicates,
                record.requeues,
                record.wall_s,
            )
        return WorkerChaosReport(records=records)

    def _run_scenario(self, scenario, specs, reference) -> WorkerScenarioRecord:
        from repro.analysis.runner import execute_job
        from repro.dispatch import DispatchBackend, DispatchConfig

        config = DispatchConfig(
            workers=scenario.workers,
            lease_s=scenario.lease_s,
            heartbeat_s=scenario.heartbeat_s,
            worker_faults=tuple(scenario.faults),
            **scenario.overrides,
        )
        pending = list(enumerate(specs))
        commit_counts: Counter = Counter()
        harvested: dict[int, dict] = {}

        def harvest(index, triple):
            commit_counts[index] += 1
            harvested[index] = triple[0].to_dict()

        backend = DispatchBackend(config)
        failed, leftover = backend.execute(pending, harvest)
        committed = len(harvested)
        # The runner's graceful-degradation path: jobs workers never
        # finished run locally.  They still count toward exactly-once.
        for index, spec in leftover:
            result, _, _, _ = execute_job(spec)
            harvested[index] = result.to_dict()
        summary = backend.summary or {}
        mismatches = sum(
            1
            for index, payload in harvested.items()
            if payload != reference[index]
        )
        missing = tuple(
            event
            for event in scenario.expect_events
            if not summary.get(event, 0)
        )
        return WorkerScenarioRecord(
            scenario=scenario.name,
            jobs=len(specs),
            committed=committed,
            completed_locally=len(leftover),
            failed=len(failed),
            lost=len(specs) - len(harvested),
            double_commits=sum(
                1 for count in commit_counts.values() if count > 1
            ),
            duplicates=summary.get("duplicates", 0),
            requeues=summary.get("requeues", 0),
            leases_expired=summary.get("leases_expired", 0),
            retried_failures=summary.get("retried_failures", 0),
            workers_lost=summary.get("workers_lost", 0),
            workers_evicted=summary.get("workers_evicted", 0),
            workers_quarantined=summary.get("workers_quarantined", 0),
            mismatches=mismatches,
        )
