"""The publication pipeline: replay exhibits, emit a versioned tree.

``ReportPipeline.generate`` rebuilds a subset of the registry through
the cached experiment runner and writes one manifest-stamped artifact
tree::

    <out>/<run-id>/
        manifest.json          # schema, run id, git rev, backend, stats
        fig7.csv / .json / .md / .tex
        table1.csv / ...
        report.md              # all exhibits concatenated (md runs only)

The JSON artifacts plus the manifest are the machine-readable contract
``repro report --diff`` (see :mod:`repro.report.diff`), the fidelity
gate, and CI consume.
"""

from __future__ import annotations

import datetime as _dt
import json
import subprocess
import time
from pathlib import Path

from repro import __version__
from repro.errors import ConfigurationError
from repro.report.render import render, resolve_formats, rounded
from repro.report.spec import ExhibitSpec, resolve_exhibits
from repro.sim.system import ScaledRun

#: Artifact-tree schema version (bump on layout/manifest breaks).
SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"


def git_revision(repo_root: str | Path | None = None) -> str | None:
    """Current git commit hash, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root) if repo_root else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def default_run_id(now: float | None = None) -> str:
    stamp = _dt.datetime.fromtimestamp(
        now if now is not None else time.time(), tz=_dt.timezone.utc
    )
    return stamp.strftime("%Y%m%dT%H%M%SZ")


class ReportPipeline:
    """Replay registered exhibits into one artifact tree.

    Args:
        out_dir: root output directory (the tree lands in
            ``out_dir/run_id/``).
        run_id: tree name; defaults to a UTC timestamp.
        formats: render targets (comma string / iterable / None = all).
        run: the scaled run forwarded to every builder.
        fidelity: also evaluate the reduced fidelity claim set and
            stamp the digest into the manifest.
    """

    def __init__(
        self,
        out_dir: str | Path = "report",
        run_id: str | None = None,
        formats=None,
        run: ScaledRun | None = None,
        fidelity: bool = False,
    ):
        self.out_dir = Path(out_dir)
        self.run_id = run_id or default_run_id()
        if "/" in self.run_id or self.run_id in ("", ".", ".."):
            raise ConfigurationError(f"bad run id {self.run_id!r}")
        self.formats = resolve_formats(formats)
        self.run = run or ScaledRun()
        self.fidelity = fidelity

    @property
    def tree_dir(self) -> Path:
        return self.out_dir / self.run_id

    def generate(self, exhibits=None) -> Path:
        """Build the tree for a subset of exhibits; returns its path.

        ``exhibits`` accepts a comma-separated string, an iterable of
        ids, or None for the full registry.
        """
        specs = resolve_exhibits(exhibits)
        tree = self.tree_dir
        tree.mkdir(parents=True, exist_ok=True)

        built: list[tuple[ExhibitSpec, object]] = []
        wall_start = time.perf_counter()
        for spec in specs:
            data = rounded(spec.build(self.run))
            built.append((spec, data))
            for fmt in self.formats:
                if fmt not in spec.formats:
                    continue
                path = tree / f"{spec.id}.{fmt}"
                path.write_text(render(data, fmt, spec), encoding="utf-8")

        if "md" in self.formats:
            blocks = [f"# Reproduction report — run {self.run_id}", ""]
            for spec, data in built:
                blocks.append(render(data, "md", spec))
            (tree / "report.md").write_text(
                "\n".join(blocks), encoding="utf-8"
            )

        manifest = self._manifest(built, time.perf_counter() - wall_start)
        (tree / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return tree

    def _manifest(self, built, wall_s: float) -> dict:
        from repro.analysis.runner import get_runner
        from repro.ecc.backend import requested_backend

        runner = get_runner()
        total = runner.cache_hits + runner.cache_misses
        manifest = {
            "schema": SCHEMA_VERSION,
            "run_id": self.run_id,
            "generated_at": _dt.datetime.now(_dt.timezone.utc).isoformat(),
            "tool_version": __version__,
            "git_rev": git_revision(),
            "codec_backend": requested_backend(),
            "instructions": self.run.instructions,
            "formats": list(self.formats),
            "wall_s": wall_s,
            "runner": {
                "jobs": runner.jobs,
                "cache_hits": runner.cache_hits,
                "cache_misses": runner.cache_misses,
                "cache_hit_rate": runner.cache_hits / total if total else 0.0,
            },
            "exhibits": {
                spec.id: dict(
                    spec.describe(),
                    columns=list(data.columns),
                    rows=len(data.rows),
                )
                for spec, data in built
            },
        }
        if self.fidelity:
            from repro.fidelity.engine import conformance_summary

            manifest["fidelity"] = conformance_summary("reduced")
        return manifest


def load_manifest(tree: str | Path) -> dict:
    """Read and validate a tree's manifest."""
    path = Path(tree) / MANIFEST_NAME
    if not path.is_file():
        raise ConfigurationError(f"no {MANIFEST_NAME} under {tree}")
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"corrupt manifest {path}: {exc}") from exc
    schema = manifest.get("schema")
    if schema != SCHEMA_VERSION:
        raise ConfigurationError(
            f"manifest {path} has schema {schema!r}; this tool reads "
            f"schema {SCHEMA_VERSION}"
        )
    return manifest
