"""Morphable ECC — the paper's primary contribution.

* :mod:`repro.core.mode_bits` — replicated ECC-mode-bit helpers and
  mis-resolution analysis (paper Sec. III-B/D).
* :mod:`repro.core.line_store` — sparse per-line ECC-mode tracking for a
  whole memory.
* :mod:`repro.core.mdt` — Memory Downgrade Tracking (Sec. VI-A).
* :mod:`repro.core.smd` — Selective Memory Downgrade (Sec. VI-B).
* :mod:`repro.core.mecc` — the MECC controller: demand ECC-Downgrade in
  active mode, bulk ECC-Upgrade + slow self-refresh on idle entry.
* :mod:`repro.core.policy` — ECC policies the simulator evaluates
  (No-ECC, SECDED, ECC-6, MECC, MECC+SMD).
"""

from repro.core.governor import GovernorDecision, RefreshGovernor
from repro.core.line_store import LineEccStore
from repro.core.mdt import MemoryDowngradeTracker
from repro.core.mecc import MeccController, UpgradeReport
from repro.core.policy import (
    Ecc6Policy,
    EccPolicy,
    MeccPolicy,
    NoEccPolicy,
    ReadAction,
    SecdedPolicy,
)
from repro.core.smd import SelectiveMemoryDowngrade

__all__ = [
    "Ecc6Policy",
    "EccPolicy",
    "GovernorDecision",
    "RefreshGovernor",
    "LineEccStore",
    "MeccController",
    "MeccPolicy",
    "MemoryDowngradeTracker",
    "NoEccPolicy",
    "ReadAction",
    "SecdedPolicy",
    "SelectiveMemoryDowngrade",
    "UpgradeReport",
]
