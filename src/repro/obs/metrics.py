"""Unified, namespaced metrics snapshots.

The stack accumulates counters in several disjoint places — the memory
controller's :class:`repro.dram.controller.ControllerStats`, each codec's
:class:`repro.ecc.counters.CodecCounters`, the experiment runner's
manifest, the tracer and invariant suite — and every consumer used to
pick its own subset.  :class:`MetricsRegistry` merges them into one flat
``namespace.key -> value`` snapshot with stable, sorted keys, rendered
by :func:`repro.analysis.report.render_metrics` and exported by the CLI
(``--metrics-out``).

Namespaces:

* ``sim.*`` — per-run results (:class:`repro.types.SimResult`).
* ``dram.*`` — memory-controller counters.
* ``ecc.<codec>.*`` — codec fast-path counters.
* ``runner.*`` — experiment-runner manifest aggregates.
* ``obs.trace.*`` — tracer buffer statistics.
* ``invariants.*`` — invariant-suite evaluation/violation counts.
* ``fidelity.*`` — paper-claim conformance verdicts and relative errors.
* ``fleet.*`` — fleet-simulation aggregates (:mod:`repro.fleet`).
* ``service.*`` — advisory-service request counters and latency tails.
* ``dispatch.*`` — distributed-dispatch ledger/worker-health counters
  (:mod:`repro.dispatch`).
* ``dse.*`` — design-space-exploration frontier/knee summaries and
  tuner report-card aggregates (:mod:`repro.dse`).
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.errors import ConfigurationError

_SCALAR_TYPES = (int, float, str, bool)


class MetricsRegistry:
    """A flat registry of ``namespace.key`` scalar metrics."""

    def __init__(self):
        self._values: dict[str, object] = {}

    # -- generic access ------------------------------------------------------

    def set(self, name: str, value) -> None:
        """Set one metric; values must be JSON-safe scalars."""
        if not name:
            raise ConfigurationError("metric name must be non-empty")
        if value is not None and not isinstance(value, _SCALAR_TYPES):
            raise ConfigurationError(
                f"metric {name!r} must be a scalar, got {type(value).__name__}"
            )
        self._values[name] = value

    def update(self, namespace: str, values: Mapping[str, object]) -> None:
        """Set many metrics under one namespace prefix."""
        for key, value in values.items():
            self.set(f"{namespace}.{key}", value)

    def get(self, name: str):
        return self._values[name]

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __len__(self) -> int:
        return len(self._values)

    def namespace(self, prefix: str) -> dict[str, object]:
        """All metrics under ``prefix.`` with the prefix stripped."""
        lead = prefix + "."
        return {
            name[len(lead):]: value
            for name, value in self._values.items()
            if name.startswith(lead)
        }

    def snapshot(self) -> dict[str, object]:
        """The full registry as a sorted plain dict (stable key order)."""
        return dict(sorted(self._values.items()))

    # -- adapters for the stack's counter sources ----------------------------

    def record_sim_result(self, result, namespace: str = "sim") -> None:
        """Merge one :class:`repro.types.SimResult` (+ derived rates)."""
        self.update(
            namespace,
            {
                "instructions": result.instructions,
                "cycles": result.cycles,
                "reads": result.reads,
                "writes": result.writes,
                "downgrades": result.downgrades,
                "strong_decodes": result.strong_decodes,
                "weak_decodes": result.weak_decodes,
                "read_latency_sum": result.read_latency_sum,
                "ipc": result.ipc,
                "mpki": result.mpki,
                "avg_read_latency": result.avg_read_latency,
                "energy_j": result.energy.total,
                "energy_refresh_j": result.energy.refresh,
                "energy_ecc_j": result.energy.ecc_codec,
            },
        )

    def record_controller_stats(self, stats, namespace: str = "dram") -> None:
        """Merge :class:`repro.dram.controller.ControllerStats` counters."""
        self.update(
            namespace,
            {
                "reads": stats.reads,
                "writes": stats.writes,
                "activates": stats.activates,
                "row_hits": stats.row_hits,
                "row_hit_rate": stats.row_hit_rate,
                "refresh_windows_hit": stats.refresh_windows_hit,
                "write_drains": stats.write_drains,
                "busy_cycles": stats.busy_cycles,
                "powerdown_exits": stats.powerdown_exits,
            },
        )

    def record_codec_counters(
        self, counters_by_name: Mapping[str, object], namespace: str = "ecc"
    ) -> None:
        """Merge per-codec :class:`repro.ecc.counters.CodecCounters`.

        The corrected-bit histogram is condensed through
        :func:`repro.sim.stats.summarize_histogram`.
        """
        from repro.sim.stats import summarize_histogram

        for name, counters in counters_by_name.items():
            hist = summarize_histogram(counters.corrected_histogram)
            self.update(
                f"{namespace}.{name}",
                {
                    "encodes": counters.encodes,
                    "decodes": counters.decodes,
                    "detected_uncorrectable": counters.detected_uncorrectable,
                    "corrected_bits_total": counters.corrected_bits_total,
                    "words_with_correction": counters.words_with_correction,
                    "corrected_bits_per_word": hist["mean"],
                    "corrected_bits_max": hist["max"],
                },
            )
            # Backend dimension: words processed per batch hot path, so a
            # run's metrics show *which* engine actually did the work.
            self.update(
                f"{namespace}.{name}.backend",
                dict(sorted(counters.backend_ops.items())),
            )

    def record_codec_backend(self, namespace: str = "ecc.backend") -> None:
        """Snapshot the codec backend selection (requested/selected/fallbacks).

        The ``fallbacks`` count is how often a ``numpy`` request degraded
        to the bitsliced engine because numpy would not import.
        """
        from repro.ecc.backend import selection_info

        self.update(namespace, selection_info())

    def record_runner(self, runner, namespace: str = "runner") -> None:
        """Merge an experiment runner's manifest aggregates."""
        manifest = runner.manifest()
        self.update(
            namespace,
            {
                "jobs": manifest["parallelism"]["jobs"],
                "job_count": manifest["totals"]["job_count"],
                "simulated_wall_s": manifest["totals"]["simulated_wall_s"],
                "max_job_wall_s": manifest["totals"]["max_job_wall_s"],
                "cache_enabled": manifest["cache"]["enabled"],
                "cache_hits": manifest["cache"]["hits"],
                "cache_misses": manifest["cache"]["misses"],
                "cache_hit_rate": manifest["cache"]["hit_rate"],
                "quarantined": manifest["cache"].get("quarantined", 0),
                "quarantine_evicted": manifest["cache"].get(
                    "quarantine_evicted", 0
                ),
                "backend": manifest["parallelism"].get("backend", "local"),
                "dispatch_fallbacks": manifest.get("dispatch", {}).get(
                    "fallbacks", 0
                ),
                "code_version": manifest["code_version"],
            },
        )

    def record_dispatch(self, source, namespace: str = "dispatch") -> None:
        """Merge dispatch-coordinator counters (``dispatch.*``).

        Accepts a plain dict of scalars (e.g. a coordinator's
        ``metrics_snapshot()`` / a runner manifest's dispatch summary)
        or any object exposing ``metrics_snapshot()``.  Non-scalar
        values (like the per-worker record list) are skipped.
        """
        if not isinstance(source, Mapping):
            source = source.metrics_snapshot()
        self.update(
            namespace,
            {
                key: value
                for key, value in source.items()
                if value is None or isinstance(value, _SCALAR_TYPES)
            },
        )

    def record_tracer(self, tracer, namespace: str = "obs.trace") -> None:
        """Merge an :class:`repro.obs.trace.EventTracer`'s buffer stats."""
        self.update(
            namespace,
            {
                "emitted": tracer.emitted,
                "buffered": len(tracer),
                "dropped": tracer.dropped,
                "capacity": tracer.capacity,
            },
        )

    def record_invariants(self, suite, namespace: str = "invariants") -> None:
        """Merge an :class:`repro.obs.invariants.InvariantSuite` summary."""
        summary = suite.summary()
        self.update(
            namespace,
            {
                "evaluations": summary["evaluations"],
                "violations": summary["violations"],
                "tolerant": suite.tolerant,
            },
        )
        for check, count in summary["by_check"].items():
            self.set(f"{namespace}.by_check.{check}", count)

    def record_chaos(self, report, namespace: str = "chaos") -> None:
        """Merge a chaos-campaign report (:mod:`repro.chaos`).

        Accepts anything exposing ``as_dict()`` with scalar outcome
        totals plus per-class breakdown dicts.
        """
        payload = report.as_dict()
        for key, value in payload.items():
            if isinstance(value, Mapping):
                for inner_key, inner_value in value.items():
                    if isinstance(inner_value, _SCALAR_TYPES):
                        self.set(f"{namespace}.{key}.{inner_key}", inner_value)
            elif value is None or isinstance(value, _SCALAR_TYPES):
                self.set(f"{namespace}.{key}", value)

    def record_fidelity(self, report, namespace: str = "fidelity") -> None:
        """Merge a :class:`repro.fidelity.engine.ConformanceReport`.

        Emits the pass/fail totals plus one ``claim.<id>`` triple
        (passed / measured / relative_error) per evaluated claim, so a
        metrics sink can watch individual paper claims drift over time.
        """
        self.update(
            namespace,
            {
                "passed": report.passed,
                "evaluated": len(report.results),
                "failed": len(report.violations),
                "wall_s": report.wall_s,
                "instructions": report.instructions,
            },
        )
        for result in report.results:
            prefix = f"{namespace}.claim.{result.claim.id}"
            self.set(f"{prefix}.passed", result.passed)
            self.set(f"{prefix}.measured", result.measured)
            self.set(f"{prefix}.relative_error", result.relative_error)

    def record_fleet(self, report, namespace: str = "fleet") -> None:
        """Merge a :class:`repro.fleet.simulator.FleetReport` summary.

        Emits the sharding/caching totals plus per-metric mean and p95
        (the full histograms live in the report artifact, not here).
        """
        self.update(
            namespace,
            {
                "devices": report.devices,
                "shards": report.shards,
                "shard_size": report.shard_size,
                "cohort_jobs": report.cohort_jobs,
                "cohort_cache_hits": report.cohort_cache_hits,
                "seed": report.population["seed"],
                "schemes": ",".join(report.schemes),
                "codec_backends": ",".join(report.codec_backends),
            },
        )
        skip = {"devices", "shards", "cohort_jobs"}
        for key, value in report.summary().items():
            if key not in skip and isinstance(value, _SCALAR_TYPES):
                self.set(f"{namespace}.{key}", value)

    def record_dse(self, report, namespace: str = "dse") -> None:
        """Merge a :class:`repro.dse.engine.FrontierReport` summary.

        Emits the grid/frontier sizes, the knee's identity and
        objective triple, and the energy range — enough for a metrics
        sink to notice the knee moving between runs.
        """
        self.update(namespace, report.summary())
        for axis, entry in sorted(report.sensitivity.items()):
            for objective in ("energy_j_day", "slowdown", "failure_prob_day"):
                self.set(
                    f"{namespace}.sensitivity.{axis}.{objective}",
                    entry[objective]["spread"],
                )

    def record_tuner(self, tuner, namespace: str = "dse.tuner") -> None:
        """Merge a :class:`repro.dse.tuner.PolicyTuner` report card.

        Emits the training-set size, leave-one-out hit rate, and
        mean/max regret, plus each workload's predicted point.
        """
        card = tuner.report_card()
        regrets = [row["regret"] for row in card]
        self.update(
            namespace,
            {
                "samples": len(tuner.samples),
                "k": tuner.k,
                "loo_hits": sum(1 for row in card if row["hit"]),
                "loo_hit_rate": sum(1 for row in card if row["hit"]) / len(card),
                "mean_regret": sum(regrets) / len(regrets),
                "max_regret": max(regrets),
            },
        )
        for row in card:
            self.set(f"{namespace}.predicted.{row['workload']}", row["predicted"])

    def record_service(self, service, namespace: str = "service") -> None:
        """Merge an advisory service's request metrics.

        Accepts anything exposing ``metrics_snapshot()`` returning
        scalars (:class:`repro.fleet.service.AdvisoryService`).
        """
        self.update(namespace, service.metrics_snapshot())

    # -- export --------------------------------------------------------------

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write_json(self, path) -> str:
        """Write the snapshot as JSON; returns the path written."""
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(self.to_json())
            stream.write("\n")
        return str(path)
