"""Tests for the functional (data-holding) memory."""

import pytest

from repro.errors import ConfigurationError
from repro.functional.faults import FaultProcess, SoftErrorModel
from repro.functional.memory import FunctionalMemory, NoEccMemory
from repro.reliability.retention import RetentionModel
from repro.types import EccMode


def quiet_memory():
    """Memory with fault injection disabled."""
    return FunctionalMemory(faults=None)


def hot_memory(seed=0, anchor_ber=0.002):
    """Memory with an exaggerated retention BER so faults are frequent."""
    faults = FaultProcess(
        retention=RetentionModel(anchor_ber=anchor_ber),
        soft_errors=SoftErrorModel(rate_per_bit_s=0.0),
        seed=seed,
    )
    return FunctionalMemory(faults=faults)


class TestBasicDataPath:
    def test_write_read_roundtrip(self, rng):
        memory = quiet_memory()
        data = rng.getrandbits(512)
        memory.write(0, data, EccMode.STRONG)
        assert memory.read(0) == data

    def test_unwritten_lines_read_zero(self):
        memory = quiet_memory()
        assert memory.read(4096) == 0
        assert memory.mode_of(4096) is EccMode.STRONG

    def test_downgrade_on_read(self, rng):
        memory = quiet_memory()
        data = rng.getrandbits(512)
        memory.write(0, data, EccMode.STRONG)
        assert memory.read(0, downgrade=True) == data
        assert memory.mode_of(0) is EccMode.WEAK
        assert memory.counters.downgrades == 1

    def test_upgrade_line(self, rng):
        memory = quiet_memory()
        data = rng.getrandbits(512)
        memory.write(0, data, EccMode.WEAK)
        assert memory.upgrade_line(0)
        assert memory.mode_of(0) is EccMode.STRONG
        assert memory.counters.upgrades == 1
        assert memory.read(0) == data

    def test_weak_addresses(self):
        memory = quiet_memory()
        memory.write(0, 1, EccMode.WEAK)
        memory.write(64, 2, EccMode.STRONG)
        memory.write(128, 3, EccMode.WEAK)
        assert sorted(memory.weak_addresses()) == [0, 128]

    def test_sparse_materialization(self):
        memory = quiet_memory()
        memory.write(0, 1, EccMode.STRONG)
        memory.read(1 << 29)
        assert memory.materialized_lines == 2

    def test_validation(self):
        memory = quiet_memory()
        with pytest.raises(ConfigurationError):
            memory.write(0, 1 << 512, EccMode.WEAK)
        with pytest.raises(ConfigurationError):
            memory.read(-1)
        with pytest.raises(ConfigurationError):
            memory.advance_time(-1.0)
        with pytest.raises(ConfigurationError):
            memory.set_refresh_period(0.0)


class TestFaultInjectionPath:
    def test_strong_lines_survive_slow_refresh(self, rng):
        """At an elevated BER (~1.2 expected flips/line), ECC-6 corrects
        every line over many idle periods."""
        memory = hot_memory(seed=1)
        memory.set_refresh_period(1.024)
        expected = {}
        for line in range(32):
            data = rng.getrandbits(512)
            memory.write(line * 64, data, EccMode.STRONG)
            expected[line] = data
        for _ in range(5):
            memory.advance_time(120.0)
            for line, data in expected.items():
                assert memory.read(line * 64) == data
        assert memory.counters.corrected_bits > 50
        assert memory.counters.silent_corruptions == 0
        assert memory.counters.detected_uncorrectable == 0

    def test_weak_lines_fail_at_slow_refresh(self, rng):
        """SEC-DED at a 1 s period with the same BER quickly hits
        detected-uncorrectable (or worse) — the paper's reason to upgrade
        before idling."""
        memory = hot_memory(seed=2, anchor_ber=0.01)
        memory.set_refresh_period(1.024)
        for line in range(32):
            memory.write(line * 64, rng.getrandbits(512), EccMode.WEAK)
        memory.advance_time(300.0)
        losses = 0
        for line in range(32):
            result = memory.read(line * 64)
            if result is None:
                losses += 1
        assert memory.counters.data_loss_events > 0
        assert losses == memory.counters.detected_uncorrectable

    def test_fast_refresh_protects_weak_lines(self, rng):
        """At the 64 ms period the BER is negligible: SEC-DED suffices
        (active mode in the paper)."""
        memory = hot_memory(seed=3)
        memory.set_refresh_period(0.064)
        data = rng.getrandbits(512)
        memory.write(0, data, EccMode.WEAK)
        memory.advance_time(1000.0)
        assert memory.read(0) == data
        assert memory.counters.data_loss_events == 0

    def test_scrubbing_resets_fault_clock(self, rng):
        """Each read scrubs corrected errors, so errors do not accumulate
        across reads."""
        memory = hot_memory(seed=4, anchor_ber=0.001)
        memory.set_refresh_period(1.024)
        data = rng.getrandbits(512)
        memory.write(0, data, EccMode.STRONG)
        for _ in range(30):
            memory.advance_time(60.0)
            assert memory.read(0) == data
        assert memory.counters.silent_corruptions == 0

    def test_refresh_period_change_settles_faults(self, rng):
        """Flips accrued at the slow period must not be forgotten when
        switching to the fast period."""
        memory = hot_memory(seed=5, anchor_ber=0.004)
        memory.set_refresh_period(1.024)
        data = rng.getrandbits(512)
        memory.write(0, data, EccMode.STRONG)
        memory.advance_time(600.0)
        memory.set_refresh_period(0.064)  # wake-up
        assert memory.read(0) == data
        # Correction happened even though the read occurred at the fast
        # period: the flips were settled at the switch.
        assert memory.counters.corrected_bits >= 0


class TestNoEccMemory:
    def test_roundtrip_without_faults(self, rng):
        memory = NoEccMemory(faults=None)
        data = rng.getrandbits(512)
        memory.write(0, data)
        assert memory.read(0) == data

    def test_corrupts_at_slow_refresh(self, rng):
        faults = FaultProcess(retention=RetentionModel(anchor_ber=0.01), seed=6)
        memory = NoEccMemory(faults=faults)
        memory.set_refresh_period(1.024)
        for line in range(16):
            memory.write(line * 64, rng.getrandbits(512))
        memory.advance_time(300.0)
        for line in range(16):
            memory.read(line * 64)
        assert memory.counters.silent_corruptions > 0


class TestBatchDataPath:
    def test_write_batch_read_batch_roundtrip(self, rng):
        memory = quiet_memory()
        addresses = [line * 64 for line in range(24)]
        datas = [rng.getrandbits(512) for _ in addresses]
        memory.write_batch(addresses, datas, EccMode.STRONG)
        assert memory.read_batch(addresses) == datas
        assert memory.counters.reads == len(addresses)

    def test_batch_matches_scalar_path(self, rng):
        scalar = hot_memory(seed=11, anchor_ber=0.002)
        batch = hot_memory(seed=11, anchor_ber=0.002)
        addresses = [line * 64 for line in range(12)]
        datas = [rng.getrandbits(512) for _ in addresses]
        for memory in (scalar, batch):
            memory.set_refresh_period(1.024)
        for address, data in zip(addresses, datas):
            scalar.write(address, data, EccMode.STRONG)
        batch.write_batch(addresses, datas, EccMode.STRONG)
        scalar.advance_time(120.0)
        batch.advance_time(120.0)
        assert batch.read_batch(addresses) == [
            scalar.read(address) for address in addresses
        ]
        assert batch.counters.corrected_bits == scalar.counters.corrected_bits

    def test_write_batch_length_mismatch(self):
        memory = quiet_memory()
        with pytest.raises(ConfigurationError):
            memory.write_batch([0, 64], [1], EccMode.STRONG)

    def test_read_batch_detects_uncorrectable(self, rng):
        memory = hot_memory(seed=3, anchor_ber=0.03)
        memory.set_refresh_period(1.024)
        addresses = [line * 64 for line in range(40)]
        memory.write_batch(
            addresses, [rng.getrandbits(512) for _ in addresses], EccMode.WEAK
        )
        memory.advance_time(900.0)
        results = memory.read_batch(addresses)
        assert None in results
        assert memory.counters.detected_uncorrectable > 0
