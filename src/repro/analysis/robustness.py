"""Statistical robustness of the reproduction: multi-seed reruns.

The synthetic traces are seeded; a reproduction claim is only as good as
its stability across seeds.  This module reruns the headline experiment
(Fig. 7's normalized-IPC geomeans) with re-seeded trace generators and
reports mean and spread per policy — the bench asserts the spread is a
small fraction of the effect being measured.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.engine import simulate
from repro.sim.stats import geometric_mean
from repro.sim.system import ScaledRun, SystemConfig
from repro.workloads.spec import ALL_BENCHMARKS, BenchmarkSpec


@dataclass(frozen=True)
class SeedSweepResult:
    """Per-policy geomean across seeds."""

    policy: str
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(
            sum((v - mean) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    @property
    def spread(self) -> float:
        return max(self.values) - min(self.values)


def reseeded(spec: BenchmarkSpec, offset: int) -> BenchmarkSpec:
    """Copy of a benchmark spec with a shifted RNG seed."""
    if offset < 0:
        raise ConfigurationError("offset must be non-negative")
    return dataclasses.replace(spec, seed=spec.seed + 1_000_003 * offset)


def seed_sweep_normalized_ipc(
    run: ScaledRun | None = None,
    seeds: tuple[int, ...] = (0, 1, 2),
    benchmarks: tuple[BenchmarkSpec, ...] = ALL_BENCHMARKS,
    policies: tuple[str, ...] = ("secded", "ecc6", "mecc"),
    config: SystemConfig | None = None,
) -> dict[str, SeedSweepResult]:
    """Fig. 7 geomeans, re-run per seed (bypasses the experiment cache)."""
    if not seeds:
        raise ConfigurationError("need at least one seed")
    run = run or ScaledRun()
    config = config or SystemConfig()
    per_policy: dict[str, list[float]] = {p: [] for p in policies}
    for seed_offset in seeds:
        ratios: dict[str, list[float]] = {p: [] for p in policies}
        for spec in benchmarks:
            trace = reseeded(spec, seed_offset).trace(run.instructions)
            base = simulate(trace, config.policy_by_name("baseline"))
            for policy_name in policies:
                policy = config.policy_by_name(policy_name)
                result = simulate(trace, policy)
                ratios[policy_name].append(result.ipc / base.ipc)
        for policy_name in policies:
            per_policy[policy_name].append(geometric_mean(ratios[policy_name]))
    return {
        p: SeedSweepResult(policy=p, values=tuple(values))
        for p, values in per_policy.items()
    }
