"""Per-bank state for the transaction-level DRAM model.

Each bank tracks the open row and the earliest processor-cycle timestamps
at which the next column command or precharge may start.  This is the
timestamp-based equivalent of enforcing tRCD/tRP/tRAS/tRC without ticking
every cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.config import DramTimings


@dataclass
class Bank:
    """State machine for a single DRAM bank.

    Attributes:
        open_row: currently open row index, or None when precharged.
        ready_at: earliest time the next command to this bank may start.
        last_act_at: start time of the most recent ACT (for tRAS/tRC).
    """

    timings: DramTimings = field(default_factory=DramTimings)
    open_row: int | None = None
    ready_at: int = 0
    last_act_at: int = -(10 ** 12)

    def access(self, row: int, start: int) -> tuple[int, bool, int]:
        """Perform a column access to ``row`` starting no earlier than ``start``.

        Returns ``(data_done, row_hit, activates)`` where ``data_done`` is
        the processor cycle when the data burst completes, ``row_hit`` says
        whether the row buffer was hit, and ``activates`` is the number of
        ACT commands issued (0 or 1).
        """
        t = self.timings
        begin = max(start, self.ready_at)
        if self.open_row == row:
            data_done = begin + t.row_hit_latency
            self.ready_at = data_done
            return data_done, True, 0
        if self.open_row is not None:
            # Precharge may not start before tRAS after the ACT.
            begin = max(begin, self.last_act_at + t.t_ras)
            begin += t.t_rp
        # ACT-to-ACT same bank must respect tRC.
        begin = max(begin, self.last_act_at + t.t_rc)
        self.last_act_at = begin
        self.open_row = row
        data_done = begin + t.row_empty_latency
        self.ready_at = data_done
        return data_done, False, 1

    def precharge_all(self) -> None:
        """Close the row (used on refresh and self-refresh entry)."""
        self.open_row = None

    def block_until(self, cycle: int) -> None:
        """Make the bank unavailable until ``cycle`` (refresh window)."""
        if cycle > self.ready_at:
            self.ready_at = cycle
