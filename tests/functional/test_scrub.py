"""Tests for the patrol scrubber."""

import pytest

from repro.errors import ConfigurationError
from repro.functional.faults import FaultProcess, SoftErrorModel
from repro.functional.memory import FunctionalMemory
from repro.functional.scrub import PatrolScrubber
from repro.reliability.retention import RetentionModel
from repro.types import EccMode


def memory_with_soft_errors(rate=1e-6, seed=0):
    """Soft errors only (retention off) so accumulation is unbounded
    without scrubbing."""
    faults = FaultProcess(
        retention=RetentionModel(anchor_ber=1e-30),
        soft_errors=SoftErrorModel(rate_per_bit_s=rate),
        seed=seed,
    )
    return FunctionalMemory(faults=faults)


class TestScrubPass:
    def test_scans_materialized_lines(self, rng):
        memory = memory_with_soft_errors()
        for line in range(10):
            memory.write(line * 64, rng.getrandbits(512), EccMode.STRONG)
        scrubber = PatrolScrubber(memory)
        report = scrubber.scrub_pass()
        assert report.lines_scanned == 10
        assert report.energy_j == pytest.approx(
            10 * scrubber.calculator.line_read_energy_j()
        )

    def test_corrects_accumulated_soft_errors(self, rng):
        memory = memory_with_soft_errors(rate=1e-5, seed=1)
        data = {line: rng.getrandbits(512) for line in range(20)}
        for line, value in data.items():
            memory.write(line * 64, value, EccMode.STRONG)
        scrubber = PatrolScrubber(memory)
        # ~1e-5/bit/s * 576 bits * 100 s = ~0.6 flips per line per sweep.
        reports = scrubber.run_for(duration_s=1000.0, interval_s=100.0)
        assert sum(r.bits_corrected for r in reports) > 0
        assert all(r.failures == 0 for r in reports)
        for line, value in data.items():
            assert memory.read(line * 64) == value

    def test_sparse_scrubbing_risks_pileup(self):
        """The trade-off: scrubbing rarely lets independent soft errors
        pile past SEC-DED's single-error budget within one interval.

        At 2e-6 flips/bit/s a 576-bit line accumulates ~0.06 expected
        flips per 50 s interval (pile-up essentially never) but ~2.3 per
        2000 s interval (most lines exceed the budget).  The metric is
        lines actually lost at the end, not per-sweep detections.
        """
        def run(interval):
            import random

            data_rng = random.Random(99)
            faults = FaultProcess(
                retention=RetentionModel(anchor_ber=1e-30),
                soft_errors=SoftErrorModel(rate_per_bit_s=2e-6),
                seed=7,
            )
            memory = FunctionalMemory(faults=faults)
            expected = {}
            for line in range(30):
                value = data_rng.getrandbits(512)
                memory.write(line * 64, value, EccMode.WEAK)
                expected[line] = value
            scrubber = PatrolScrubber(memory)
            scrubber.run_for(duration_s=2000.0, interval_s=interval)
            lost = 0
            for line, value in expected.items():
                if memory.read(line * 64) != value:
                    lost += 1
            return lost

        frequent = run(50.0)
        rare = run(2000.0)
        assert frequent < 5
        assert rare > 10
        assert rare > frequent

    def test_energy_accounting(self):
        memory = memory_with_soft_errors()
        memory.write(0, 1, EccMode.STRONG)
        scrubber = PatrolScrubber(memory)
        scrubber.run_for(duration_s=300.0, interval_s=100.0)
        assert scrubber.passes == 3
        assert scrubber.total_energy_j > 0
        assert scrubber.average_power_w(300.0) == pytest.approx(
            scrubber.total_energy_j / 300.0
        )

    def test_validation(self):
        scrubber = PatrolScrubber(memory_with_soft_errors())
        with pytest.raises(ConfigurationError):
            scrubber.run_for(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            scrubber.run_for(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            scrubber.average_power_w(0.0)


class TestModeRepair:
    def quiet_memory(self):
        """No retention, no soft errors: only injected damage exists."""
        faults = FaultProcess(
            retention=RetentionModel(anchor_ber=1e-30),
            soft_errors=SoftErrorModel(rate_per_bit_s=0.0),
            seed=0,
        )
        return FunctionalMemory(faults=faults)

    def test_repairs_weak_stored_line_to_strong(self, rng):
        memory = self.quiet_memory()
        data = {line: rng.getrandbits(512) for line in range(6)}
        for line, value in data.items():
            memory.write(line * 64, value, EccMode.STRONG)
        memory.rewrite_mode(3 * 64, EccMode.WEAK)  # the metadata fault
        repaired = []
        scrubber = PatrolScrubber(memory, expected_mode=EccMode.STRONG)
        scrubber.on_mode_repair = lambda line, found: repaired.append(
            (line, found)
        )
        report = scrubber.scrub_pass()
        assert report.mode_repairs == 1
        assert scrubber.mode_repairs == 1
        assert repaired == [(3, EccMode.WEAK)]
        assert memory.mode_of(3 * 64) is EccMode.STRONG
        assert memory.read(3 * 64) == data[3]
        # A second pass finds nothing left to repair.
        assert scrubber.scrub_pass().mode_repairs == 0

    def test_repairs_toward_weak_when_expected(self, rng):
        memory = self.quiet_memory()
        memory.write(0, rng.getrandbits(512), EccMode.STRONG)
        memory.write(64, rng.getrandbits(512), EccMode.WEAK)
        scrubber = PatrolScrubber(memory, expected_mode=EccMode.WEAK)
        assert scrubber.scrub_pass().mode_repairs == 1
        assert memory.mode_of(0) is EccMode.WEAK

    def test_no_expected_mode_means_no_repairs(self, rng):
        memory = self.quiet_memory()
        memory.write(0, rng.getrandbits(512), EccMode.WEAK)
        scrubber = PatrolScrubber(memory)
        assert scrubber.scrub_pass().mode_repairs == 0
        assert memory.mode_of(0) is EccMode.WEAK
