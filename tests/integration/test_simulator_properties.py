"""Property-based tests on simulator-wide invariants.

Hypothesis generates small random traces; the invariants must hold for
*every* trace, not just the calibrated SPEC models:

* decode latency is monotone: more cycles per decode never helps;
* MECC's IPC is bracketed by ECC-6 (below) and the baseline (above);
* normalized results are deterministic for a fixed trace;
* energy is positive and increases with traffic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import Ecc6Policy, MeccPolicy, NoEccPolicy, SecdedPolicy
from repro.ecc.codes import make_scheme
from repro.sim.engine import simulate
from repro.types import MemoryOp, TraceRecord
from repro.workloads.trace import Trace


@st.composite
def small_traces(draw):
    """Random short traces: mixed reads/writes over a small address pool."""
    n = draw(st.integers(min_value=5, max_value=60))
    records = []
    for _ in range(n):
        gap = draw(st.integers(min_value=0, max_value=400))
        is_read = draw(st.booleans())
        line = draw(st.integers(min_value=0, max_value=255))
        records.append(TraceRecord(
            gap=gap,
            op=MemoryOp.READ if is_read else MemoryOp.WRITE,
            address=line * 64,
        ))
    # Ensure at least one read so IPC denominators are sane.
    records.append(TraceRecord(gap=10, op=MemoryOp.READ, address=0))
    cpi = draw(st.floats(min_value=0.5, max_value=2.0))
    return Trace(name="prop", records=records, nonmem_cpi=cpi)


@given(small_traces())
@settings(max_examples=40, deadline=None)
def test_decode_latency_monotone(trace):
    """Raising the strong decode latency never speeds anything up."""
    fast = simulate(trace, Ecc6Policy(make_scheme(6).with_decode_cycles(10)))
    slow = simulate(trace, Ecc6Policy(make_scheme(6).with_decode_cycles(50)))
    assert slow.cycles >= fast.cycles


@given(small_traces())
@settings(max_examples=40, deadline=None)
def test_mecc_bracketed(trace):
    """baseline >= MECC >= ECC-6 in IPC, for any access pattern."""
    base = simulate(trace, NoEccPolicy())
    mecc = simulate(trace, MeccPolicy())
    ecc6 = simulate(trace, Ecc6Policy())
    assert base.cycles <= mecc.cycles + 1
    # MECC pays at most what ECC-6 pays in decode stalls; its extra
    # write-backs can cost a little queueing, hence the small slack.
    assert mecc.cycles <= ecc6.cycles + trace.reads * 2 + 64


@given(small_traces())
@settings(max_examples=30, deadline=None)
def test_simulation_deterministic(trace):
    a = simulate(trace, SecdedPolicy())
    b = simulate(trace, SecdedPolicy())
    assert a.cycles == b.cycles
    assert a.energy.total == b.energy.total


@given(small_traces())
@settings(max_examples=30, deadline=None)
def test_energy_positive_and_bounded(trace):
    result = simulate(trace, NoEccPolicy())
    assert result.energy.total > 0
    # Background+refresh power alone bounds energy below ~active power
    # times duration; use a generous envelope (1 W is far above any
    # mobile DRAM's ceiling).
    duration_s = result.cycles / 1.6e9
    assert result.energy.total < 1.0 * duration_s + 1e-6


@given(small_traces())
@settings(max_examples=30, deadline=None)
def test_instruction_conservation(trace):
    """The engine retires exactly the trace's instructions."""
    result = simulate(trace, NoEccPolicy())
    assert result.instructions == trace.instructions
    assert result.reads == trace.reads


@given(small_traces())
@settings(max_examples=30, deadline=None)
def test_mecc_decode_accounting(trace):
    """Every read decodes exactly once, strong or weak; each distinct
    line downgrades at most once."""
    policy = MeccPolicy()
    result = simulate(trace, policy)
    assert result.strong_decodes + result.weak_decodes == result.reads
    distinct_lines = len({r.address // 64 for r in trace.records})
    assert result.downgrades <= distinct_lines
