"""CSV export of exhibit data (for external plotting).

A thin shim over the :mod:`repro.report` registry: ``exhibit_csv``
renders any registered exhibit through the pipeline's CSV renderer, and
``export_all`` sweeps :data:`EXPORT_SET` — the cheap, plot-ready subset
kept for back-compat with the original exporters.  For the full
versioned artifact tree (CSV + JSON + Markdown + LaTeX with a manifest)
use ``repro report`` (:mod:`repro.report.pipeline`).
"""

from __future__ import annotations

from repro.report.render import render_csv
from repro.report.spec import exhibit_ids, get_exhibit
from repro.sim.system import ScaledRun

#: Default export subset (the original exporter set, kept stable).
EXPORT_SET = ("fig2", "table1", "fig7", "fig8", "fig12", "fig14")


def _exporter(name: str):
    def rows(run: ScaledRun):
        data = get_exhibit(name).build(run)
        return list(data.columns), [list(r) for r in data.rows]

    return rows


#: Back-compat mapping: exhibit id -> ``fn(run) -> (header, rows)``.
EXPORTERS = {name: _exporter(name) for name in EXPORT_SET}


def exhibit_csv(name: str, run: ScaledRun | None = None) -> str:
    """Render one registered exhibit's data as a CSV string.

    Accepts any registry id (not just :data:`EXPORT_SET`); unknown ids
    raise :class:`~repro.errors.ConfigurationError` naming the choices.
    """
    run = run or ScaledRun()
    spec = get_exhibit(name)
    return render_csv(spec.build(run))


def export_exhibit(name: str, path: str, run: ScaledRun | None = None) -> None:
    """Write one exhibit's CSV to ``path``."""
    text = exhibit_csv(name, run)
    with open(path, "w", encoding="utf-8", newline="") as stream:
        stream.write(text)


def export_all(directory: str, run: ScaledRun | None = None) -> list[str]:
    """Write the :data:`EXPORT_SET` exhibits into ``directory``.

    Returns the written paths.  ``exportable_ids`` lists everything the
    registry can render if a caller wants the full sweep.
    """
    import os

    os.makedirs(directory, exist_ok=True)
    run = run or ScaledRun()
    paths = []
    for name in EXPORT_SET:
        path = os.path.join(directory, f"{name}.csv")
        export_exhibit(name, path, run)
        paths.append(path)
    return paths


def exportable_ids() -> list[str]:
    """Every registry id ``exhibit_csv`` accepts."""
    return exhibit_ids()
