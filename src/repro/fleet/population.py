"""Persona-driven device populations, sampled deterministically at scale.

A fleet is millions of devices, each a jittered instance of one of the
:mod:`repro.workloads.personas` profiles.  Sampling is *counter-based*:
device ``i``'s attributes are a pure function of ``(seed, i)`` through a
splitmix64 hash, never of any shared RNG stream, so

* the same seed always yields the same fleet,
* shard boundaries and chunk sizes cannot change any device, and
* shards can be sampled independently (and in parallel) by index range.

This is the property the streamed-aggregation layer leans on: a 1M
fleet simulated in ten 100k shards is *the same fleet* as one simulated
in a single pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigurationError
from repro.workloads.personas import ALL_PERSONAS_BY_NAME, Persona

#: Default population mix (shares of the installed base per persona).
DEFAULT_MIX: dict[str, float] = {
    "light": 0.45,
    "moderate": 0.35,
    "heavy": 0.20,
}

#: Per-device jitter applied around the persona's idle fraction.
IDLE_JITTER = 0.015

#: Sessions-per-day jitter band (multiplicative, +/- 25%).
SESSION_JITTER = 0.25

#: idle_fraction is clamped to this open interval after jitter (a phone
#: that is never idle, or always idle, is outside the model).
IDLE_BOUNDS = (0.50, 0.995)

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One splitmix64 round: the per-device counter hash."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _unit(seed: int, index: int, stream: int) -> float:
    """Uniform float in [0, 1) for (seed, device index, attribute stream)."""
    word = _splitmix64(_splitmix64(seed & _MASK64) ^ _splitmix64(index * 3 + stream))
    return word / float(1 << 64)


@dataclass(frozen=True)
class DeviceSample:
    """One sampled device: a persona instance with jittered duty cycle."""

    index: int
    persona: Persona
    idle_fraction: float
    sessions_per_day: int


class PopulationModel:
    """Seeded sampler over a weighted persona mix.

    Args:
        mix: persona name -> weight (any positive scale; normalized
            internally).  Personas come from
            :data:`repro.workloads.personas.ALL_PERSONAS_BY_NAME`.
        seed: fleet seed; same seed, same fleet, independent of chunking.
        idle_jitter: half-width of the uniform idle-fraction jitter.
        session_jitter: multiplicative sessions-per-day jitter band.
    """

    def __init__(
        self,
        mix: dict[str, float] | None = None,
        seed: int = 0,
        idle_jitter: float = IDLE_JITTER,
        session_jitter: float = SESSION_JITTER,
    ):
        mix = DEFAULT_MIX if mix is None else mix
        if not mix:
            raise ConfigurationError("population mix must name at least one persona")
        unknown = sorted(set(mix) - set(ALL_PERSONAS_BY_NAME))
        if unknown:
            raise ConfigurationError(
                f"unknown personas in mix: {unknown}; choose from "
                f"{', '.join(sorted(ALL_PERSONAS_BY_NAME))}"
            )
        if any(weight < 0 for weight in mix.values()):
            raise ConfigurationError("mix weights must be non-negative")
        total = float(sum(mix.values()))
        if total <= 0.0:
            raise ConfigurationError("mix weights must sum to a positive total")
        if not 0.0 <= idle_jitter < 0.25:
            raise ConfigurationError("idle_jitter must be in [0, 0.25)")
        if not 0.0 <= session_jitter < 1.0:
            raise ConfigurationError("session_jitter must be in [0, 1)")
        self.seed = seed
        self.idle_jitter = idle_jitter
        self.session_jitter = session_jitter
        # Stable persona order -> stable cumulative thresholds.
        self._personas = tuple(
            ALL_PERSONAS_BY_NAME[name] for name in sorted(mix)
        )
        weights = [mix[p.name] / total for p in self._personas]
        self._cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0  # guard float drift at the top end
        self.mix = {p.name: w for p, w in zip(self._personas, weights)}

    @property
    def personas(self) -> tuple[Persona, ...]:
        return self._personas

    def device(self, index: int) -> DeviceSample:
        """Sample device ``index`` — a pure function of (seed, index)."""
        if index < 0:
            raise ConfigurationError("device index must be >= 0")
        pick = _unit(self.seed, index, 0)
        persona = self._personas[-1]
        for cursor, threshold in enumerate(self._cumulative):
            if pick < threshold:
                persona = self._personas[cursor]
                break
        lo, hi = IDLE_BOUNDS
        idle = persona.idle_fraction + self.idle_jitter * (
            2.0 * _unit(self.seed, index, 1) - 1.0
        )
        idle = min(max(idle, lo), hi)
        scale = 1.0 + self.session_jitter * (2.0 * _unit(self.seed, index, 2) - 1.0)
        sessions = max(1, round(persona.sessions_per_day * scale))
        return DeviceSample(
            index=index,
            persona=persona,
            idle_fraction=idle,
            sessions_per_day=sessions,
        )

    def devices(self, start: int, stop: int) -> Iterator[DeviceSample]:
        """Stream devices ``start <= index < stop`` (a shard's range)."""
        if start < 0 or stop < start:
            raise ConfigurationError("need 0 <= start <= stop")
        for index in range(start, stop):
            yield self.device(index)

    def describe(self) -> dict:
        """JSON-native form (artifact provenance)."""
        return {
            "mix": dict(sorted(self.mix.items())),
            "seed": self.seed,
            "idle_jitter": self.idle_jitter,
            "session_jitter": self.session_jitter,
        }


def parse_mix(text: str) -> dict[str, float]:
    """Parse a CLI mix string like ``light:0.5,moderate:0.3,heavy:0.2``."""
    mix: dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight = part.partition(":")
        name = name.strip()
        if not name:
            raise ConfigurationError(f"bad mix component {part!r}")
        try:
            mix[name] = float(weight) if weight else 1.0
        except ValueError as exc:
            raise ConfigurationError(
                f"bad mix weight in {part!r}: {weight!r}"
            ) from exc
    if not mix:
        raise ConfigurationError("empty population mix")
    return mix
