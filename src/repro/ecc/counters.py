"""Codec-level operation counters.

Every fast-path codec (:class:`repro.ecc.bch.BchCode`,
:class:`repro.ecc.hamming.SecDedCode`, :class:`repro.ecc.hsiao.HsiaoCode`)
carries one :class:`CodecCounters` instance that tallies encodes, decodes,
detected-uncorrectable events and a corrected-bit histogram.  The
reference (oracle) paths deliberately do *not* count, so differential
tests can replay traffic without polluting the production statistics.

:func:`repro.sim.stats.summarize_histogram` condenses the histogram for
reports, and :func:`repro.analysis.report.render_codec_counters` renders
a set of counters (plus the fast-path table-cache hit rate) as a table.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CodecCounters:
    """Operation tallies for one codec instance.

    Attributes:
        encodes: words encoded through the fast path.
        decodes: decode attempts (successful or detected).
        detected_uncorrectable: decodes that raised a detected failure.
        corrected_histogram: map ``bits corrected per word -> word count``
            over successful decodes (key 0 counts clean words).
        backend_ops: map ``backend name -> words`` processed through that
            backend's *batch* path (``bitsliced``/``numpy``; batch calls
            served by the scalar loop record under ``matrix``).  Per-word
            scalar calls deliberately do not record, keeping the hot
            loop free of extra dict traffic.
    """

    encodes: int = 0
    decodes: int = 0
    detected_uncorrectable: int = 0
    corrected_histogram: dict[int, int] = field(default_factory=dict)
    backend_ops: dict[str, int] = field(default_factory=dict)

    def record_encodes(self, n: int = 1) -> None:
        self.encodes += n

    def record_backend(self, backend: str, n: int = 1) -> None:
        """Tally ``n`` words processed through ``backend``'s batch path."""
        ops = self.backend_ops
        ops[backend] = ops.get(backend, 0) + n

    def record_decode(self, corrected_bits: int) -> None:
        self.decodes += 1
        hist = self.corrected_histogram
        hist[corrected_bits] = hist.get(corrected_bits, 0) + 1

    def record_detected(self) -> None:
        self.decodes += 1
        self.detected_uncorrectable += 1

    @property
    def corrected_bits_total(self) -> int:
        """Total bits flipped back across all successful decodes."""
        return sum(bits * n for bits, n in self.corrected_histogram.items())

    @property
    def words_with_correction(self) -> int:
        """Successful decodes that corrected at least one bit."""
        return sum(n for bits, n in self.corrected_histogram.items() if bits)

    def merge(self, other: "CodecCounters") -> "CodecCounters":
        """Combined tallies of two counters (for aggregate reporting)."""
        hist = dict(self.corrected_histogram)
        for bits, n in other.corrected_histogram.items():
            hist[bits] = hist.get(bits, 0) + n
        ops = dict(self.backend_ops)
        for name, n in other.backend_ops.items():
            ops[name] = ops.get(name, 0) + n
        return CodecCounters(
            encodes=self.encodes + other.encodes,
            decodes=self.decodes + other.decodes,
            detected_uncorrectable=self.detected_uncorrectable
            + other.detected_uncorrectable,
            corrected_histogram=hist,
            backend_ops=ops,
        )

    def reset(self) -> None:
        self.encodes = 0
        self.decodes = 0
        self.detected_uncorrectable = 0
        self.corrected_histogram = {}
        self.backend_ops = {}

    def as_dict(self) -> dict:
        """Plain-dict snapshot (stable keys, for export/reporting)."""
        return {
            "encodes": self.encodes,
            "decodes": self.decodes,
            "detected_uncorrectable": self.detected_uncorrectable,
            "corrected_bits_total": self.corrected_bits_total,
            "words_with_correction": self.words_with_correction,
            "corrected_histogram": dict(sorted(self.corrected_histogram.items())),
            "backend_ops": dict(sorted(self.backend_ops.items())),
        }
