"""Hypothesis property suite: refresh-energy monotonicity in period.

Fig. 8's premise — refresh power scales inversely with the refresh
period — as properties: power is antitone in period, the power x period
product is invariant (each refresh pass costs fixed energy), and the
16x period extension yields exactly the paper's 16x operation reduction.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

from repro.fidelity.properties import refresh_power_w

periods = st.floats(min_value=0.016, max_value=4.0, allow_nan=False)


@given(a=periods, b=periods)
def test_refresh_power_antitone_in_period(a, b):
    short, long = min(a, b), max(a, b)
    hypothesis.assume(short < long)
    assert refresh_power_w(long) <= refresh_power_w(short)


@given(period=periods, factor=st.floats(min_value=1.0, max_value=32.0))
def test_energy_per_interval_invariant(period, factor):
    """P(k*T) * (k*T) == P(T) * T: a refresh pass costs fixed energy."""
    base = refresh_power_w(period) * period
    scaled = refresh_power_w(period * factor) * (period * factor)
    assert scaled == pytest.approx(base, rel=1e-9)


@given(period=periods)
def test_power_positive(period):
    assert refresh_power_w(period) > 0.0


def test_sixteen_x_claim_exact():
    fast = refresh_power_w(0.064)
    slow = refresh_power_w(0.064 * 16)
    assert slow / fast == pytest.approx(1 / 16, rel=1e-12)
