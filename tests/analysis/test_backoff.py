"""Decorrelated-jitter backoff: bounds, determinism, runner integration.

The runner's retry loop replaced deterministic exponential doubling with
decorrelated jitter (``min(cap, U(base, 3 * last))``) so synchronized
failures do not retry in lockstep.  RNG and sleep are injectable, so
every assertion here is exact and nothing actually sleeps.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import runner as runner_mod
from repro.analysis.backoff import DecorrelatedJitter, sleep_with_backoff
from repro.analysis.runner import ExperimentRunner, JobSpec, configure_runner
from repro.errors import ConfigurationError
from repro.sim.system import ScaledRun
from repro.workloads.spec import BENCHMARKS_BY_NAME

RUN = ScaledRun(instructions=20_000)


@pytest.fixture(autouse=True)
def _restore_runner():
    yield
    configure_runner(jobs=1, cache_dir=None)


class TestDecorrelatedJitter:
    def test_delays_stay_within_envelope(self):
        backoff = DecorrelatedJitter(0.25, 30.0, rng=random.Random(7))
        last = 0.25
        for _ in range(200):
            delay = backoff.next_delay()
            assert 0.25 <= delay <= 30.0
            assert delay <= max(last * 3, 0.25)
            last = delay

    def test_same_seed_same_sequence(self):
        first = DecorrelatedJitter(0.1, 5.0, rng=random.Random(42))
        second = DecorrelatedJitter(0.1, 5.0, rng=random.Random(42))
        assert [first.next_delay() for _ in range(20)] == [
            second.next_delay() for _ in range(20)
        ]

    def test_sequences_decorrelate_across_seeds(self):
        a = DecorrelatedJitter(0.1, 30.0, rng=random.Random(1))
        b = DecorrelatedJitter(0.1, 30.0, rng=random.Random(2))
        assert [a.next_delay() for _ in range(10)] != [
            b.next_delay() for _ in range(10)
        ]

    def test_zero_base_disables_backoff(self):
        backoff = DecorrelatedJitter(0.0, 30.0, rng=random.Random(3))
        assert [backoff.next_delay() for _ in range(5)] == [0.0] * 5

    def test_reset_restarts_the_sequence(self):
        rng = random.Random(9)
        backoff = DecorrelatedJitter(0.5, 30.0, rng=rng)
        for _ in range(10):
            backoff.next_delay()
        backoff.reset()
        assert backoff.next_delay() <= 1.5  # first draw: U(base, 3*base)

    def test_cap_is_respected_forever(self):
        backoff = DecorrelatedJitter(1.0, 2.0, rng=random.Random(11))
        assert all(backoff.next_delay() <= 2.0 for _ in range(100))

    def test_bad_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            DecorrelatedJitter(-0.1, 1.0)
        with pytest.raises(ConfigurationError):
            DecorrelatedJitter(1.0, 0.5)

    def test_sleep_with_backoff_skips_zero(self):
        slept = []
        backoff = DecorrelatedJitter(0.0, 1.0)
        assert sleep_with_backoff(backoff, sleep=slept.append) == 0.0
        assert slept == []
        jittered = DecorrelatedJitter(0.25, 1.0, rng=random.Random(5))
        delay = sleep_with_backoff(jittered, sleep=slept.append)
        assert slept == [delay] and delay >= 0.25


def _always_fail(spec):
    raise RuntimeError("injected permanent failure")


class TestRunnerRetryJitter:
    def test_retry_delays_are_jittered_and_deterministic(self, monkeypatch):
        """The runner's retry loop draws from the injected RNG and routes
        every delay through the injected sleep hook — no real sleeping,
        and an identical seed reproduces the exact delays."""
        monkeypatch.setattr(runner_mod, "execute_job", _always_fail)
        spec = JobSpec.build(BENCHMARKS_BY_NAME["libq"], RUN, "mecc")

        def run_with_seed(seed):
            slept = []
            runner = ExperimentRunner(
                jobs=1,
                retries=3,
                retry_backoff_s=0.25,
                backoff_rng=random.Random(seed),
                sleep=slept.append,
            )
            with pytest.raises(Exception):
                runner.run([spec])
            return slept

        first = run_with_seed(21)
        second = run_with_seed(21)
        other = run_with_seed(22)
        assert len(first) == 3  # one delay per retry attempt
        assert first == second
        assert first != other
        expected = DecorrelatedJitter(0.25, 30.0, rng=random.Random(21))
        assert first == [expected.next_delay() for _ in range(3)]

    def test_zero_backoff_never_sleeps(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "execute_job", _always_fail)
        spec = JobSpec.build(BENCHMARKS_BY_NAME["libq"], RUN, "mecc")
        slept = []
        runner = ExperimentRunner(
            jobs=1, retries=2, retry_backoff_s=0.0, sleep=slept.append
        )
        with pytest.raises(Exception):
            runner.run([spec])
        assert slept == []
