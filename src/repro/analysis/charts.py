"""Terminal bar charts for examples and CLI output.

Pure-text rendering — no plotting dependencies — tuned for the shapes
this library produces: normalized-IPC bars near 1.0, per-benchmark
series, power breakdowns.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigurationError


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    max_value: float | None = None,
    fill: str = "#",
    show_value: bool = True,
) -> str:
    """Horizontal bar chart, one labeled row per entry.

    Args:
        values: label -> value (values must be non-negative).
        width: bar width in characters at ``max_value``.
        max_value: scale ceiling; defaults to the max value present.
        fill: bar character.
        show_value: append the numeric value after each bar.
    """
    if not values:
        raise ConfigurationError("bar_chart needs at least one value")
    if width < 1:
        raise ConfigurationError("width must be >= 1")
    if any(v < 0 for v in values.values()):
        raise ConfigurationError("bar_chart values must be non-negative")
    ceiling = max_value if max_value is not None else max(values.values())
    if ceiling <= 0:
        ceiling = 1.0
    label_width = max(len(str(k)) for k in values)
    lines = []
    for label, value in values.items():
        bar = fill * max(0, min(width, round(width * value / ceiling)))
        suffix = f"  {value:.3f}" if show_value else ""
        lines.append(f"{str(label).ljust(label_width)}  {bar}{suffix}")
    return "\n".join(lines)


def normalized_ipc_chart(
    values: Mapping[str, float],
    width: int = 40,
    baseline: float = 1.0,
) -> str:
    """Bar chart specialized for normalized IPC: scaled to the baseline,
    with a '|' tick marking 1.0 so sub-baseline bars read as a gap."""
    if not values:
        raise ConfigurationError("chart needs at least one value")
    label_width = max(len(str(k)) for k in values)
    lines = []
    for label, value in values.items():
        filled = max(0, min(width, round(width * value / baseline)))
        bar = "#" * filled + "." * (width - filled) + "|"
        lines.append(f"{str(label).ljust(label_width)}  {bar}  {value:.3f}")
    return "\n".join(lines)


def series_sparkline(series: Sequence[float], levels: str = " .:-=+*#%@") -> str:
    """One-line sparkline of a numeric series (min..max mapped to levels)."""
    if not series:
        raise ConfigurationError("sparkline needs at least one point")
    lo, hi = min(series), max(series)
    span = hi - lo
    if span == 0:
        return levels[len(levels) // 2] * len(series)
    out = []
    for v in series:
        index = int((v - lo) / span * (len(levels) - 1))
        out.append(levels[index])
    return "".join(out)
