"""JSON-lines wire protocol for the dispatch coordinator/worker link.

One JSON object per line in each direction, same framing as the fleet
advisory service (:mod:`repro.fleet.service`).  Message ``type`` values:

worker -> coordinator:
    ``hello``      — registration: worker id, pid, code fingerprint.
    ``request``    — the worker is idle and wants a lease.
    ``heartbeat``  — liveness + lease renewal while computing a job.
    ``result``     — a finished job: ``ok`` plus either a payload block
                     (result dict, smd fraction, wall time, codec
                     backend) or an error string.

coordinator -> worker:
    ``welcome``    — registration accepted; carries the heartbeat and
                     lease intervals the worker must honor.
    ``reject``     — registration refused (e.g. code-version mismatch);
                     the worker must exit.
    ``lease``      — one job: id, cache key, and the pickled spec.
    ``idle``       — no work eligible right now; ask again in ``wait_s``.
    ``drain``      — no more work will ever be offered; disconnect.
    ``ack``        — result received; ``duplicate`` tells the worker its
                     result arrived after the job was already committed.

Job specs travel as base64-wrapped pickles: :class:`JobSpec` is a frozen
tree of value-typed dataclasses that pickles stably, and inventing a
parallel JSON codec for it would just add a second source of truth.
This is safe only because workers connect to a *trusted* coordinator
(same user, same machine or private network) — the docs say so too.
"""

from __future__ import annotations

import asyncio
import base64
import json
import pickle

from repro.errors import DispatchProtocolError

#: Bump on any incompatible wire change; mismatched peers are rejected.
PROTOCOL_VERSION = 1

#: asyncio stream limit: a pickled spec or result line can exceed the
#: 64 KiB default comfortably on wide configs.
STREAM_LIMIT = 4 * 1024 * 1024

#: Worker-side fault-injection modes (chaos campaigns only; see
#: :mod:`repro.dispatch.worker` and :mod:`repro.chaos.workers`).
FAULT_MODES = (
    "none",
    "kill",        # SIGKILL self mid-job
    "silent",      # stop heartbeating, keep computing (late duplicate)
    "slow",        # stall before returning each result
    "partition",   # freeze all socket I/O after the first lease
    "duplicate",   # deliver every result twice
    "flaky",       # fail the first N jobs with an exception
)


def encode_spec(spec) -> str:
    """Pickle a :class:`repro.analysis.runner.JobSpec` for the wire."""
    return base64.b64encode(pickle.dumps(spec)).decode("ascii")


def decode_spec(blob: str):
    """Inverse of :func:`encode_spec`; raises on undecodable blobs."""
    try:
        return pickle.loads(base64.b64decode(blob.encode("ascii")))
    except Exception as exc:  # pickle raises many concrete types
        raise DispatchProtocolError(f"undecodable job spec: {exc}") from exc


def encode_message(**payload) -> bytes:
    """One message as a canonical JSON line (sorted keys + newline)."""
    if "type" not in payload:
        raise DispatchProtocolError("message requires a 'type' field")
    return json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> dict:
    """Parse one wire line; raises :class:`DispatchProtocolError`."""
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise DispatchProtocolError(f"undecodable message line: {exc}") from exc
    if not isinstance(payload, dict) or not isinstance(payload.get("type"), str):
        raise DispatchProtocolError("message must be an object with a 'type'")
    return payload


async def send_message(writer: asyncio.StreamWriter, **payload) -> None:
    """Write one message and drain the transport."""
    writer.write(encode_message(**payload))
    await writer.drain()


async def recv_message(
    reader: asyncio.StreamReader, timeout: float | None = None
) -> dict | None:
    """Read one message; None on EOF; raises on timeout or bad framing."""
    if timeout is not None:
        line = await asyncio.wait_for(reader.readline(), timeout)
    else:
        line = await reader.readline()
    if not line:
        return None
    return decode_message(line)
