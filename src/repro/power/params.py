"""DRAM power parameters (paper Table IV, Micron 1Gb mobile LPDDR).

``IDD2N``/``IDD3N`` (non-power-down standby currents) are not listed in the
paper's Table IV because its baseline scheduler is "aggressive power down";
they are needed whenever a bank sits open without being in power-down, so we
take typical values from the Micron 1Gb LPDDR datasheet the paper cites
(MT46H64M16LF).  ``t_rfc``/``t_refi`` likewise come from the datasheet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PowerParams:
    """IDD-based power parameters for one DRAM device/rank.

    Currents are in amperes, voltage in volts, times in seconds.

    Attributes:
        vdd: operating voltage (paper: 1.7 V).
        idd0: one-bank activate-precharge current (95 mA).
        idd2p: precharge power-down standby current (0.6 mA).
        idd2n: precharge standby current, not powered down (20 mA, datasheet).
        idd3p: active power-down standby current (3 mA).
        idd3n: active standby current, not powered down (30 mA, datasheet).
        idd4: burst read/write current, one bank active (135 mA).
        idd5: auto-refresh current (100 mA).
        idd8: self-refresh current, background only (1.3 mA).
        t_rfc: refresh cycle time per auto-refresh command (110 ns).
        t_refi: average refresh command interval at the 64 ms period
            (7.8125 us: 8192 commands per 64 ms).
        t_rc: row cycle time (ACT-to-ACT same bank), seconds.
        t_ras: row active time, seconds.
        burst_time: data burst duration per 64B transfer, seconds
            (BL8 at 200 MHz DDR: 4 bus cycles = 20 ns).
    """

    vdd: float = 1.7
    idd0: float = 0.095
    idd2p: float = 0.0006
    idd2n: float = 0.020
    idd3p: float = 0.003
    idd3n: float = 0.030
    idd4: float = 0.135
    idd5: float = 0.100
    idd8: float = 0.0013
    t_rfc: float = 110e-9
    t_refi: float = 7.8125e-6
    t_rc: float = 55e-9
    t_ras: float = 40e-9
    burst_time: float = 20e-9

    def __post_init__(self) -> None:
        for name in (
            "vdd",
            "idd0",
            "idd2p",
            "idd2n",
            "idd3p",
            "idd3n",
            "idd4",
            "idd5",
            "idd8",
            "t_rfc",
            "t_refi",
            "t_rc",
            "t_ras",
            "burst_time",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"power parameter {name} must be positive")
        if self.t_ras >= self.t_rc:
            raise ConfigurationError("t_ras must be less than t_rc")
        if self.idd2p > self.idd2n or self.idd3p > self.idd3n:
            raise ConfigurationError("power-down currents must not exceed standby")


#: The paper's Table IV configuration.
PAPER_PARAMS = PowerParams()
