"""Simulation engine: blocking in-order core + memory system + power.

* :mod:`repro.sim.engine` — the trace-driven cycle engine (USIMM-style).
* :mod:`repro.sim.system` — the paper's Table II system configuration and
  factory helpers, including the scaled-run bookkeeping.
* :mod:`repro.sim.usage` — the bursty active/idle device usage model
  (paper Fig. 1) used by the idle/total-energy experiments.
* :mod:`repro.sim.stats` — geomean/normalization helpers shared by the
  analysis harness.
"""

from repro.sim.device import DeviceReport, DeviceSimulator
from repro.sim.engine import SimulationEngine, simulate
from repro.sim.ooo import OooSimulationEngine
from repro.sim.stats import geometric_mean, normalize
from repro.sim.system import ScaledRun, SystemConfig
from repro.sim.usage import UsageModel, UsagePhase

__all__ = [
    "DeviceReport",
    "DeviceSimulator",
    "OooSimulationEngine",
    "ScaledRun",
    "SimulationEngine",
    "SystemConfig",
    "UsageModel",
    "UsagePhase",
    "geometric_mean",
    "normalize",
    "simulate",
]
