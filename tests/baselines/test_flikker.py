"""Tests for the Flikker baseline model."""

import pytest

from repro.baselines.flikker import FlikkerModel
from repro.errors import ConfigurationError


class TestEffectiveRate:
    def test_paper_example(self):
        """Paper Sec. VII-A: 1/4 critical at rate 1 + 3/4 at 1/16 ~= 1/3."""
        model = FlikkerModel(critical_fraction=0.25, noncritical_refresh_divisor=16)
        assert model.effective_refresh_rate == pytest.approx(0.297, abs=0.005)
        assert model.effective_refresh_rate == pytest.approx(1 / 3, rel=0.12)

    def test_mecc_beats_flikker(self):
        """MECC's full-memory 1/16 beats any Flikker partition with a
        non-trivial critical region."""
        mecc_rate = 1 / 16
        for critical in (0.1, 0.25, 0.5):
            model = FlikkerModel(critical_fraction=critical)
            assert model.effective_refresh_rate > mecc_rate

    def test_zero_critical_degenerates_to_mecc_rate(self):
        assert FlikkerModel(critical_fraction=0.0).effective_refresh_rate == 1 / 16

    def test_all_critical_no_saving(self):
        assert FlikkerModel(critical_fraction=1.0).effective_refresh_rate == 1.0

    def test_rate_monotone_in_critical_fraction(self):
        rates = [
            FlikkerModel(critical_fraction=f).effective_refresh_rate
            for f in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert all(a < b for a, b in zip(rates, rates[1:]))


class TestIntegrityCost:
    def test_noncritical_corruption_is_nonzero(self):
        """Flikker trades integrity: expected corrupted bits are material
        (~190K bits in 768 MB non-critical at the 1 s BER)."""
        model = FlikkerModel()
        corrupt = model.expected_noncritical_corrupt_bits(1 << 30)
        assert corrupt > 10_000

    def test_corruption_scales_with_noncritical_size(self):
        small = FlikkerModel(critical_fraction=0.75)
        large = FlikkerModel(critical_fraction=0.25)
        assert large.expected_noncritical_corrupt_bits(1 << 30) == pytest.approx(
            3 * small.expected_noncritical_corrupt_bits(1 << 30)
        )

    def test_requires_source_changes(self):
        assert FlikkerModel().requires_source_changes()


class TestValidation:
    def test_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            FlikkerModel(critical_fraction=1.5)

    def test_bad_divisor(self):
        with pytest.raises(ConfigurationError):
            FlikkerModel(noncritical_refresh_divisor=0)

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            FlikkerModel().expected_noncritical_corrupt_bits(-1)
