"""Fault-injection campaign tests on the real line codec."""

import pytest

from repro.reliability.faults import FaultInjectionCampaign, InjectionOutcome
from repro.reliability.retention import BER_AT_1S
from repro.types import EccMode


@pytest.fixture(scope="module")
def campaign():
    return FaultInjectionCampaign(seed=42)


class TestStrongMode:
    def test_six_errors_always_corrected(self, campaign):
        stats = campaign.run_fixed_errors(EccMode.STRONG, 6, trials=25)
        assert stats.count(InjectionOutcome.CORRECTED) == 25
        assert stats.silent_corruption_rate == 0.0
        assert stats.corrected_bits_total == 25 * 6

    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_fewer_errors_corrected(self, campaign, n):
        stats = campaign.run_fixed_errors(EccMode.STRONG, n, trials=10)
        assert stats.count(InjectionOutcome.CORRECTED) == 10

    def test_zero_errors_clean(self, campaign):
        stats = campaign.run_fixed_errors(EccMode.STRONG, 0, trials=5)
        assert stats.count(InjectionOutcome.CLEAN) == 5

    def test_seven_errors_never_silent(self, campaign):
        """Beyond t the code may detect or (rarely) land on another
        correctable coset — but with 7-error detection it must not return
        wrong data while claiming success for these trials."""
        stats = campaign.run_fixed_errors(EccMode.STRONG, 7, trials=15)
        assert stats.count(InjectionOutcome.SILENT_DATA_CORRUPTION) == 0
        assert stats.count(InjectionOutcome.DETECTED) >= 13

    @pytest.mark.slow
    def test_paper_ber_campaign(self, campaign):
        """At BER 10^-4.5 a 576-bit line sees ~0.018 errors on average:
        nearly all trials are clean or corrected, none silently corrupt."""
        stats = campaign.run_ber(EccMode.STRONG, BER_AT_1S, trials=300)
        assert stats.trials == 300
        assert stats.silent_corruption_rate == 0.0
        corrected = stats.count(InjectionOutcome.CORRECTED)
        clean = stats.count(InjectionOutcome.CLEAN)
        assert clean + corrected == 300


class TestWeakMode:
    def test_single_error_corrected(self, campaign):
        stats = campaign.run_fixed_errors(EccMode.WEAK, 1, trials=25)
        assert stats.count(InjectionOutcome.CORRECTED) == 25

    def test_double_error_detected(self, campaign):
        stats = campaign.run_fixed_errors(EccMode.WEAK, 2, trials=25)
        assert stats.count(InjectionOutcome.DETECTED) == 25

    def test_eligible_positions_exclude_unused_field_bits(self, campaign):
        positions = campaign._eligible_positions(EccMode.WEAK)
        # Field bits 15..63 are unused in weak mode (paper Fig. 6 ii).
        assert all(not (15 <= p < 64) for p in positions)
        # 4 mode bits + 11 checks + 512 data bits are all eligible.
        assert len(positions) == 4 + 11 + 512

    def test_strong_mode_covers_everything(self, campaign):
        assert len(campaign._eligible_positions(EccMode.STRONG)) == 576


class TestValidation:
    def test_too_many_errors_rejected(self, campaign):
        with pytest.raises(ValueError):
            campaign.run_fixed_errors(EccMode.STRONG, 600, trials=1)

    def test_bad_ber_rejected(self, campaign):
        with pytest.raises(ValueError):
            campaign.run_ber(EccMode.STRONG, 1.5, trials=1)

    def test_deterministic_with_seed(self):
        a = FaultInjectionCampaign(seed=9).run_ber(EccMode.STRONG, 1e-3, trials=50)
        b = FaultInjectionCampaign(seed=9).run_ber(EccMode.STRONG, 1e-3, trials=50)
        assert a.outcomes == b.outcomes
