"""Job ledger invariants: never lost, never double-committed.

Pure unit tests with an injected fake clock — no sockets, no sleeping.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.dispatch import JobLedger, JobState, replay_ledger
from repro.errors import ConfigurationError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def make_ledger(clock, **kwargs) -> JobLedger:
    kwargs.setdefault("rng", random.Random(0))
    return JobLedger(lease_s=10.0, clock=clock, **kwargs)


def load(ledger: JobLedger, n: int) -> None:
    for i in range(n):
        ledger.register(i, f"spec-{i}", f"key-{i}", f"job-{i}")


class TestLeases:
    def test_oldest_pending_is_granted_first(self, clock):
        ledger = make_ledger(clock)
        load(ledger, 3)
        assert ledger.next_lease("w1").job_id == 0
        assert ledger.next_lease("w2").job_id == 1
        job = ledger.jobs[0]
        assert job.state is JobState.LEASED and job.worker == "w1"

    def test_renew_extends_only_for_the_holder(self, clock):
        ledger = make_ledger(clock)
        load(ledger, 1)
        ledger.next_lease("w1")
        clock.advance(5.0)
        assert ledger.renew(0, "w1")
        assert ledger.jobs[0].lease_deadline == pytest.approx(15.0)
        assert not ledger.renew(0, "imposter")
        assert not ledger.renew(99, "w1")

    def test_expiry_requeues_without_charging_attempts(self, clock):
        ledger = make_ledger(clock)
        load(ledger, 1)
        ledger.next_lease("w1")
        clock.advance(9.0)
        assert ledger.expire_due() == []  # still within the lease
        clock.advance(2.0)
        expired = ledger.expire_due()
        assert [job.job_id for job in expired] == [0]
        job = ledger.jobs[0]
        assert job.state is JobState.PENDING
        assert job.attempts == 0  # the fault was the worker's
        assert job.requeues == 1
        assert ledger.leases_expired == 1
        # The job is immediately leasable again.
        assert ledger.next_lease("w2").job_id == 0

    def test_heartbeats_keep_a_lease_alive_indefinitely(self, clock):
        ledger = make_ledger(clock)
        load(ledger, 1)
        ledger.next_lease("w1")
        for _ in range(10):
            clock.advance(8.0)
            assert ledger.renew(0, "w1")
            assert ledger.expire_due() == []

    def test_release_worker_requeues_all_its_leases(self, clock):
        ledger = make_ledger(clock)
        load(ledger, 3)
        ledger.next_lease("w1")
        ledger.next_lease("w1")
        ledger.next_lease("w2")
        released = ledger.release_worker("w1", "worker-disconnected")
        assert sorted(job.job_id for job in released) == [0, 1]
        assert ledger.jobs[2].state is JobState.LEASED  # w2 untouched

    def test_poison_job_fails_after_max_requeues(self, clock):
        ledger = make_ledger(clock, max_requeues=3)
        load(ledger, 1)
        for _ in range(3):
            ledger.next_lease("w1")
            clock.advance(11.0)
            ledger.expire_due()
        job = ledger.jobs[0]
        assert job.state is JobState.FAILED
        assert "poison" in job.error
        assert ledger.done


class TestCommits:
    def test_first_result_wins_exactly_once(self, clock):
        ledger = make_ledger(clock)
        load(ledger, 1)
        ledger.next_lease("w1")
        assert ledger.commit(0, "w1", {"result": 1}, 0.5)
        # Same worker re-delivers, and a non-holder delivers too.
        assert not ledger.commit(0, "w1", {"result": 1}, 0.5)
        assert not ledger.commit(0, "w2", {"result": 1}, 0.5)
        job = ledger.jobs[0]
        assert job.state is JobState.DONE
        assert job.duplicates == 2
        assert ledger.commits == 1 and ledger.duplicates == 2

    def test_late_result_from_evicted_worker_commits_if_first(self, clock):
        """Expiry requeued the job, but the old worker's result arrives
        before the new worker finishes: data is data — commit it."""
        ledger = make_ledger(clock)
        load(ledger, 1)
        ledger.next_lease("w1")
        clock.advance(11.0)
        ledger.expire_due()
        ledger.next_lease("w2")  # requeued to a healthy worker
        assert ledger.commit(0, "w1", {"result": 1}, 9.0)  # late but first
        assert ledger.jobs[0].committed_by == "w1"
        # w2's eventual delivery is the duplicate.
        assert not ledger.commit(0, "w2", {"result": 1}, 0.5)

    def test_commit_salvages_a_failed_job(self, clock):
        ledger = make_ledger(clock, retries=0)
        load(ledger, 1)
        ledger.next_lease("w1")
        assert ledger.report_failure(0, "w1", "boom") is JobState.FAILED
        assert ledger.commit(0, "w2", {"result": 1}, 0.1)
        assert ledger.jobs[0].state is JobState.DONE
        assert ledger.jobs[0].error is None


class TestRetries:
    def test_failures_charge_attempts_and_back_off(self, clock):
        ledger = make_ledger(clock, retries=2, retry_backoff_s=1.0)
        load(ledger, 1)
        ledger.next_lease("w1")
        state = ledger.report_failure(0, "w1", "transient")
        assert state is JobState.PENDING
        job = ledger.jobs[0]
        assert job.attempts == 1
        assert job.not_before > clock.now  # jittered backoff window
        assert ledger.next_lease("w1") is None  # not yet eligible
        wait = ledger.next_eligible_in()
        assert wait is not None and wait > 0
        clock.advance(wait)
        assert ledger.next_lease("w1").job_id == 0

    def test_retries_exhaust_to_failed(self, clock):
        ledger = make_ledger(clock, retries=1, retry_backoff_s=0.0)
        load(ledger, 1)
        ledger.next_lease("w1")
        assert ledger.report_failure(0, "w1", "err-1") is JobState.PENDING
        ledger.next_lease("w1")
        assert ledger.report_failure(0, "w1", "err-2") is JobState.FAILED
        assert ledger.jobs[0].error == "err-2"
        assert ledger.retried_failures == 1

    def test_failure_after_done_is_a_no_op(self, clock):
        ledger = make_ledger(clock)
        load(ledger, 1)
        ledger.next_lease("w1")
        ledger.commit(0, "w2", {"result": 1}, 0.1)
        assert ledger.report_failure(0, "w1", "late error") is JobState.DONE
        assert ledger.jobs[0].attempts == 0

    def test_requeues_never_exhaust_the_retry_budget(self, clock):
        """Nine worker deaths then one honest failure: the job still has
        its full retry budget when the failure arrives."""
        ledger = make_ledger(clock, retries=1, max_requeues=20)
        load(ledger, 1)
        for _ in range(9):
            ledger.next_lease("w1")
            clock.advance(11.0)
            ledger.expire_due()
        ledger.next_lease("w1")
        assert ledger.report_failure(0, "w1", "real failure") is JobState.PENDING


class TestBookkeeping:
    def test_summary_counts_everything(self, clock):
        ledger = make_ledger(clock, retries=1, retry_backoff_s=0.0)
        load(ledger, 3)
        ledger.next_lease("w1")
        ledger.commit(0, "w1", {}, 0.1)
        ledger.next_lease("w1")
        ledger.report_failure(1, "w1", "boom")
        summary = ledger.summary()
        assert summary["jobs_total"] == 3
        assert summary["commits"] == 1
        assert summary["retried_failures"] == 1
        assert summary["state_done"] == 1
        assert summary["state_pending"] == 2

    def test_validation(self, clock):
        with pytest.raises(ConfigurationError):
            JobLedger(retries=-1, clock=clock)
        with pytest.raises(ConfigurationError):
            JobLedger(lease_s=0, clock=clock)
        with pytest.raises(ConfigurationError):
            JobLedger(max_requeues=0, clock=clock)
        ledger = make_ledger(clock)
        load(ledger, 1)
        with pytest.raises(ConfigurationError):
            ledger.register(0, "dup", "key", "label")


class TestJournal:
    def test_journal_records_the_full_history(self, clock, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = make_ledger(clock, path=path, retries=1, retry_backoff_s=0.0)
        load(ledger, 2)
        ledger.next_lease("w1")
        ledger.commit(0, "w1", {"result": 1}, 0.2)
        ledger.commit(0, "w2", {"result": 1}, 0.2)  # duplicate
        ledger.next_lease("w1")
        clock.advance(11.0)
        ledger.expire_due()
        ledger.next_lease("w2")
        ledger.commit(1, "w2", {"result": 2}, 0.1)
        ledger.close()
        events = [json.loads(line)["event"] for line in path.read_text().splitlines()]
        assert events == [
            "register", "register", "lease", "commit", "duplicate",
            "lease", "requeue", "lease", "commit",
        ]
        replay = replay_ledger(path)
        assert replay["commits"] == 2
        assert replay["duplicates"] == 1
        assert replay["torn_lines"] == 0
        assert replay["jobs"] == {"key-0": "done", "key-1": "done"}

    def test_replay_tolerates_a_torn_final_line(self, clock, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = make_ledger(clock, path=path)
        load(ledger, 1)
        ledger.next_lease("w1")
        ledger.commit(0, "w1", {}, 0.1)
        ledger.close()
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('{"event": "requ')  # coordinator died mid-append
        replay = replay_ledger(path)
        assert replay["torn_lines"] == 1
        assert replay["jobs"]["key-0"] == "done"

    def test_replay_missing_journal_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            replay_ledger(tmp_path / "missing.jsonl")
