"""Table III: workload characterization (per-class IPC, MPKI, footprint).

Paper averages — Low: IPC 1.514 / MPKI 0.3 / 26 MB; Med: 0.887 / 4.7 /
96.4 MB; High: 0.359 / 23.5 / 259.1 MB.
"""

import pytest

from repro.analysis.experiments import table3_characterization
from repro.analysis.tables import format_table

PAPER = {
    "Low-MPKI": {"ipc": 1.514, "mpki": 0.3, "footprint_mb": 26.0},
    "Med-MPKI": {"ipc": 0.887, "mpki": 4.7, "footprint_mb": 96.4},
    "High-MPKI": {"ipc": 0.359, "mpki": 23.5, "footprint_mb": 259.1},
}


def test_table3_characterization(benchmark, run, show):
    out = benchmark.pedantic(table3_characterization, args=(run,), rounds=1, iterations=1)
    show(format_table(
        ["class", "IPC paper", "IPC ours", "MPKI paper", "MPKI ours",
         "MB paper", "MB ours"],
        [
            [cls, PAPER[cls]["ipc"], vals["ipc"], PAPER[cls]["mpki"], vals["mpki"],
             PAPER[cls]["footprint_mb"], vals["footprint_mb"]]
            for cls, vals in out.items()
        ],
        title="Table III — measured workload characterization",
    ))
    for cls, vals in out.items():
        assert vals["ipc"] == pytest.approx(PAPER[cls]["ipc"], rel=0.12), cls
        assert vals["mpki"] == pytest.approx(PAPER[cls]["mpki"], rel=0.15), cls
        assert vals["footprint_mb"] == pytest.approx(
            PAPER[cls]["footprint_mb"], rel=0.05
        ), cls
