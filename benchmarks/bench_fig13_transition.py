"""Fig. 13: MECC's transition time — normalized IPC vs. slice length.

Paper: MECC is ~2% slow in the first ~1B instructions (while cold lines
still carry ECC-6) and converges to within 1.2% by 4B instructions;
downgrades concentrate at the start of the active period.

Thin shim over the ``repro.report`` registry (exhibit ``fig13``).
"""

from repro.analysis.tables import format_table
from repro.report.spec import get_exhibit

EXHIBIT_ID = "fig13"


def test_fig13_transition_time(benchmark, run, show):
    spec = get_exhibit(EXHIBIT_ID)
    data = benchmark.pedantic(spec.build, args=(run,), rounds=1, iterations=1)
    show(format_table(
        ["slice (paper scale)", "SECDED", "MECC", "gap"],
        [
            [f"{row['paper_billions']:.1f}B", row["secded"], row["mecc"],
             row["gap"]]
            for row in (data.row(k) for k in data.row_keys())
        ],
        title="Fig. 13 — MECC convergence toward SECDED with slice length",
    ))
    gaps = list(data.column("gap"))
    # The MECC-vs-SECDED gap shrinks monotonically (modulo noise) and
    # at least halves from the shortest to the full slice.
    assert gaps[-1] < gaps[0] / 2
    # At full length, MECC is close to SECDED (paper: within ~1%).
    assert gaps[-1] < 0.03
