"""Tests for the text-table renderer."""

import pytest

from repro.analysis.tables import format_table
from repro.errors import ConfigurationError


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) or True for line in lines)

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table I")
        assert text.splitlines()[0] == "Table I"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [1.2e-9], [2.5e7]])
        assert "0.123" in text
        assert "1.20e-09" in text
        assert "2.50e+07" in text

    def test_zero_not_scientific(self):
        assert "0.000" in format_table(["v"], [[0.0]])

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text
