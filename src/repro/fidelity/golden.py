"""Golden-figure regression fixtures.

``compute_golden_figures`` snapshots the numeric content of the paper's
key exhibits — Table I, the Fig. 2 retention curve, the Fig. 8 idle
power split, the MDT latency model, the related-work comparison rates,
and a two-benchmark simulation slice — as one JSON-able payload.  The
checked-in fixture (``tests/fidelity/golden_figures.json``) is compared
against a fresh computation on every test run; any drift names the exact
figure path that moved.  Regenerate deliberately with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/fidelity/test_golden_figures.py

Floats are rounded to 12 significant digits before storage and compared
with a relative tolerance, so a last-ulp libm difference across
platforms does not trip the gate while any real model change does.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.errors import ConfigurationError

#: Significant digits kept in the stored fixture.
GOLDEN_SIG_DIGITS = 12

#: Relative tolerance used when comparing stored vs recomputed values.
GOLDEN_RTOL = 1e-9

#: Instruction count for the simulation slice — small enough that the
#: golden check costs well under a second, long enough to exercise the
#: full policy stack.
GOLDEN_SIM_INSTRUCTIONS = 30_000

#: Benchmarks in the simulation slice: the lightest and the most
#: memory-bound corner of the suite.
GOLDEN_SIM_BENCHMARKS = ("povray", "libq")


def compute_golden_figures(sim_instructions: int = GOLDEN_SIM_INSTRUCTIONS) -> dict:
    """Recompute the golden payload from the current code."""
    from repro.analysis.experiments import fig8_idle_power, run_policy_suites
    from repro.baselines import FlikkerModel, RaidrModel, SecretModel, VrtModel
    from repro.core.mdt import MemoryDowngradeTracker
    from repro.dram.device import DramDevice
    from repro.reliability.failure import DEFAULT_BER, line_failure_probability
    from repro.reliability.retention import RetentionModel
    from repro.sim.system import ScaledRun
    from repro.workloads.spec import ALL_BENCHMARKS

    retention = RetentionModel()
    device = DramDevice()
    raidr = RaidrModel(rows=8192, seed=5)
    vrt = VrtModel(seed=9)

    specs = {b.name: b for b in ALL_BENCHMARKS}
    missing = [n for n in GOLDEN_SIM_BENCHMARKS if n not in specs]
    if missing:
        raise ConfigurationError(f"unknown golden benchmarks: {missing}")
    run = ScaledRun(instructions=sim_instructions)
    suites = run_policy_suites(
        tuple(specs[n] for n in GOLDEN_SIM_BENCHMARKS),
        run,
        policies=("baseline", "mecc"),
    )

    payload = {
        "schema": 1,
        "table1_line_failure": {
            str(t): line_failure_probability(DEFAULT_BER, t, 576)
            for t in range(1, 7)
        },
        "fig2_retention_ber": {
            f"{period:g}": retention.ber_at_refresh_period(period)
            for period in (0.064, 0.128, 0.256, 0.512, 1.0)
        },
        "fig8_idle_power": fig8_idle_power(),
        "mdt": {
            "storage_bytes": MemoryDowngradeTracker().storage_bytes,
            "full_upgrade_ms": 1000.0 * device.full_upgrade_seconds(),
            "upgrade_128_regions_ms": 1000.0
            * device.upgrade_seconds_for_regions(128, 1 << 20),
        },
        "related_work": {
            "flikker_quarter_critical_rate": FlikkerModel(
                critical_fraction=0.25
            ).effective_refresh_rate,
            "raidr_rate": raidr.refresh_rate_relative(),
            "raidr_safe_combined_rate": raidr.safe_combined_rate(1.024),
            "secret_rate": SecretModel(
                target_period_s=1.024
            ).refresh_rate_relative,
            "vrt_mecc_uncorrectable_lines": vrt.mecc_exposure(
                1e-7
            ).uncorrectable_lines,
        },
        "sim_slice": {
            "instructions": sim_instructions,
            "results": {
                name: {
                    policy: {
                        "ipc": suites[name][policy].ipc,
                        "avg_read_latency": suites[name][policy].avg_read_latency,
                    }
                    for policy in ("baseline", "mecc")
                }
                for name in GOLDEN_SIM_BENCHMARKS
            },
        },
    }
    return _round_floats(payload)


def compare_golden(actual, expected, rtol: float = GOLDEN_RTOL, path: str = "") -> list[str]:
    """Structural diff of two golden payloads; empty list means match.

    Each mismatch is rendered as ``path: detail`` so a regression names
    the exact figure value that drifted.
    """
    mismatches: list[str] = []
    if isinstance(expected, dict) or isinstance(actual, dict):
        if not (isinstance(expected, dict) and isinstance(actual, dict)):
            mismatches.append(f"{path or '<root>'}: type mismatch")
            return mismatches
        for key in sorted(expected.keys() - actual.keys()):
            mismatches.append(f"{_join(path, key)}: missing from actual")
        for key in sorted(actual.keys() - expected.keys()):
            mismatches.append(f"{_join(path, key)}: unexpected new key")
        for key in sorted(expected.keys() & actual.keys()):
            mismatches.extend(
                compare_golden(actual[key], expected[key], rtol, _join(path, key))
            )
        return mismatches
    if isinstance(expected, list) or isinstance(actual, list):
        if not (isinstance(expected, list) and isinstance(actual, list)):
            mismatches.append(f"{path or '<root>'}: type mismatch")
        elif len(expected) != len(actual):
            mismatches.append(
                f"{path}: length {len(actual)} != expected {len(expected)}"
            )
        else:
            for i, (a, e) in enumerate(zip(actual, expected)):
                mismatches.extend(compare_golden(a, e, rtol, f"{path}[{i}]"))
        return mismatches
    if isinstance(expected, bool) or isinstance(actual, bool):
        if expected != actual:
            mismatches.append(f"{path}: {actual!r} != expected {expected!r}")
        return mismatches
    if isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
        if not math.isclose(actual, expected, rel_tol=rtol, abs_tol=1e-300):
            mismatches.append(f"{path}: {actual!r} != expected {expected!r}")
        return mismatches
    if expected != actual:
        mismatches.append(f"{path}: {actual!r} != expected {expected!r}")
    return mismatches


def write_golden(path: str | Path, payload: dict | None = None) -> str:
    """Write a golden fixture (computing it when not supplied)."""
    payload = payload if payload is not None else compute_golden_figures()
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")
    return str(target)


def load_golden(path: str | Path) -> dict:
    """Load a golden fixture, validating its schema tag."""
    target = Path(path)
    if not target.exists():
        raise ConfigurationError(
            f"golden fixture {target} does not exist "
            "(regenerate with REPRO_REGEN_GOLDEN=1 or repro fidelity --update-golden)"
        )
    with open(target, encoding="utf-8") as stream:
        payload = json.load(stream)
    if not isinstance(payload, dict) or payload.get("schema") != 1:
        raise ConfigurationError(f"golden fixture {target} has unknown schema")
    return payload


def check_golden_file(path: str | Path, rtol: float = GOLDEN_RTOL) -> list[str]:
    """Compare the stored fixture at ``path`` against a fresh computation."""
    return compare_golden(compute_golden_figures(), load_golden(path), rtol)


def default_golden_path() -> Path:
    """The checked-in fixture used by the test suite and the CLI."""
    return (
        Path(__file__).resolve().parents[3]
        / "tests"
        / "fidelity"
        / "golden_figures.json"
    )


def _round_floats(value):
    if isinstance(value, dict):
        return {k: _round_floats(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_round_floats(v) for v in value]
    if isinstance(value, float) and math.isfinite(value) and value != 0.0:
        digits = GOLDEN_SIG_DIGITS - 1 - int(math.floor(math.log10(abs(value))))
        return round(value, digits)
    return value


def _join(path: str, key: str) -> str:
    return f"{path}.{key}" if path else str(key)
