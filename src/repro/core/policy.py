"""ECC policies: what the cycle simulator evaluates against each other.

Each policy answers, per memory access, how many processor cycles of
decode latency the access pays and whether an extra write-back (the
ECC-Downgrade re-encode) must be injected.  The paper's evaluated
configurations:

* ``NoEccPolicy`` — the normalization baseline (no correction latency).
* ``SecdedPolicy`` — ECC-1 everywhere, 2-cycle decode.
* ``Ecc6Policy`` — ECC-6 everywhere, 30-cycle decode (sweepable, Fig. 12).
* ``MeccPolicy`` — morphable: strong decode + downgrade on first touch,
  weak afterwards; optional SMD gate (Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mecc import MeccController
from repro.core.smd import PAPER_QUANTUM_CYCLES, SelectiveMemoryDowngrade
from repro.ecc.codes import ECC6, SECDED, EccScheme
from repro.types import MemoryOp


@dataclass(frozen=True)
class ReadAction:
    """What the engine must do for one demand read."""

    decode_cycles: int
    writeback: bool = False


class EccPolicy:
    """Base policy: fixed decode latency, no extra traffic."""

    def __init__(self, name: str, decode_cycles: int = 0):
        self.name = name
        self._decode_cycles = decode_cycles
        self.strong_decodes = 0
        self.weak_decodes = 0
        self.downgrades = 0
        #: Observability hooks (repro.obs); None = disabled, zero cost.
        self.tracer = None
        self.invariants = None

    def attach_observer(self, tracer=None, invariants=None) -> None:
        """Attach a tracer and/or invariant suite to this policy.

        Stateless policies only record the references (the engine emits
        run-level events); stateful subclasses propagate them to their
        components.  Passing None for either leaves that hook detached.
        """
        self.tracer = tracer
        self.invariants = invariants

    def reset(self) -> None:
        """Forget per-run counters/state so the policy can be re-run.

        Called by the simulation engine at the top of every run; stateful
        subclasses must also restore their fresh-from-idle state here.
        """
        self.strong_decodes = 0
        self.weak_decodes = 0
        self.downgrades = 0

    def on_read(self, byte_address: int, now: int) -> ReadAction:
        """Called for every demand read at processor cycle ``now``."""
        self.weak_decodes += 1
        return ReadAction(decode_cycles=self._decode_cycles)

    def on_write(self, byte_address: int, now: int) -> None:
        """Called for every write-back; default: nothing extra."""

    def on_write_batch(self, byte_addresses, nows) -> None:
        """Called for a run of consecutive write-backs (engine coalescing).

        Semantically identical to calling :meth:`on_write` per element;
        stateful policies may override to amortize dispatch over the run.
        """
        on_write = self.on_write
        for byte_address, now in zip(byte_addresses, nows):
            on_write(byte_address, now)

    def on_run_end(self, total_cycles: int) -> None:
        """Called once when the simulation finishes."""

    @property
    def slow_refresh_fraction(self) -> float:
        """Fraction of active time spent at the 1 s refresh period.

        Non-SMD policies refresh at 64 ms for the whole active period.
        """
        return 0.0


class NoEccPolicy(EccPolicy):
    """No error correction: the paper's normalization baseline."""

    def __init__(self):
        super().__init__(name="Baseline", decode_cycles=0)


class SecdedPolicy(EccPolicy):
    """SEC-DED everywhere (paper's ECC-1 / weak configuration)."""

    def __init__(self, scheme: EccScheme = SECDED):
        super().__init__(name=scheme.name, decode_cycles=scheme.decode_cycles)
        self.scheme = scheme


class Ecc6Policy(EccPolicy):
    """Strong multi-bit ECC everywhere: saves refresh, costs latency."""

    def __init__(self, scheme: EccScheme = ECC6):
        super().__init__(name=scheme.name, decode_cycles=scheme.decode_cycles)
        self.scheme = scheme

    def on_read(self, byte_address: int, now: int) -> ReadAction:
        self.strong_decodes += 1
        return ReadAction(decode_cycles=self._decode_cycles)


class MeccPolicy(EccPolicy):
    """Morphable ECC, optionally gated by Selective Memory Downgrade.

    Args:
        controller: the MECC state machine (fresh-from-idle: all strong).
        smd: optional SMD monitor; when present, downgrades stay disabled
            until the traffic threshold trips, and refresh stays slow
            meanwhile.
    """

    def __init__(
        self,
        controller: MeccController | None = None,
        smd: SelectiveMemoryDowngrade | None = None,
    ):
        controller = controller or MeccController()
        name = "MECC+SMD" if smd is not None else "MECC"
        super().__init__(name=name, decode_cycles=0)
        self.controller = controller
        self.smd = smd
        self.controller.smd_ref = smd
        self.controller.wake()
        if self.smd is not None:
            self.smd.reset(0)
        self._total_cycles = 0
        # Quantum bookkeeping for invariant evaluation: boundaries follow
        # the SMD quantum when gated, the paper quantum otherwise.
        self._invariant_quantum = (
            smd.quantum_cycles if smd is not None else PAPER_QUANTUM_CYCLES
        )
        self._last_quantum = 0

    def attach_observer(self, tracer=None, invariants=None) -> None:
        """Propagate observability hooks to the MECC core components."""
        super().attach_observer(tracer, invariants)
        self.controller.tracer = tracer
        self.controller.invariants = invariants
        self.controller.device.refresh.tracer = tracer
        if self.controller.mdt is not None:
            self.controller.mdt.tracer = tracer
        if self.smd is not None:
            self.smd.tracer = tracer
        if invariants is not None and invariants.tracer is None:
            invariants.tracer = tracer

    def reset(self) -> None:
        """Back to the fresh-from-idle state: all lines strong, SMD re-armed."""
        super().reset()
        self.controller.reset()
        self.controller.wake()
        if self.smd is not None:
            self.smd.reset(0)
        self._total_cycles = 0
        self._last_quantum = 0

    def _check_quantum(self, now: int) -> None:
        """Evaluate invariants when the access stream crosses a quantum."""
        quantum = now // self._invariant_quantum
        if quantum != self._last_quantum:
            self._last_quantum = quantum
            self.invariants.check(
                self.controller, smd=self.smd, event="quantum", cycle=now
            )

    @property
    def downgrade_enabled(self) -> bool:
        return self.smd is None or self.smd.enabled

    def on_read(self, byte_address: int, now: int) -> ReadAction:
        if self.smd is not None:
            self.smd.record_access(now)
        if self.invariants is not None:
            self._check_quantum(now)
        decode_cycles, writeback = self.controller.on_read(
            byte_address, downgrade_enabled=self.downgrade_enabled, now=now
        )
        if writeback:
            self.downgrades += 1
        return ReadAction(decode_cycles=decode_cycles, writeback=writeback)

    def on_write(self, byte_address: int, now: int) -> None:
        if self.smd is not None:
            self.smd.record_access(now)
        if self.invariants is not None:
            self._check_quantum(now)
        self.controller.on_write(
            byte_address, downgrade_enabled=self.downgrade_enabled, now=now
        )

    def on_write_batch(self, byte_addresses, nows) -> None:
        """Amortized :meth:`on_write` over a coalesced write run.

        Binds the hot components once per run instead of once per access;
        every per-access side effect (SMD traffic accounting, quantum
        invariant checks, MDT updates) still fires in access order.
        """
        smd = self.smd
        invariants = self.invariants
        controller_on_write = self.controller.on_write
        for byte_address, now in zip(byte_addresses, nows):
            if smd is not None:
                smd.record_access(now)
            if invariants is not None:
                self._check_quantum(now)
            controller_on_write(
                byte_address, downgrade_enabled=self.downgrade_enabled, now=now
            )

    def on_run_end(self, total_cycles: int) -> None:
        self._total_cycles = total_cycles
        self.strong_decodes = self.controller.strong_decodes
        self.weak_decodes = self.controller.weak_decodes
        if self.invariants is not None:
            self.invariants.check(
                self.controller, smd=self.smd, event="run-end", cycle=total_cycles
            )

    @property
    def slow_refresh_fraction(self) -> float:
        """With SMD, refresh stays at 1 s until downgrades are enabled."""
        if self.smd is None:
            return 0.0
        report = self.smd.report(self._total_cycles)
        return report.disabled_fraction
