"""Reliability substrate: retention model, failure analysis, fault injection.

* :mod:`repro.reliability.retention` — DRAM retention-time model (paper
  Fig. 2, anchored at BER(64 ms) = 1e-9 and BER(1 s) = 10^-4.5).
* :mod:`repro.reliability.failure` — binomial line/system failure
  probability (paper Table I).
* :mod:`repro.reliability.provisioning` — ECC-strength provisioning solver
  (paper Sec. II-C: ECC-5 for reliability target, +1 for soft errors).
* :mod:`repro.reliability.faults` — Monte-Carlo fault injection on the real
  codecs, including ECC-mode-bit confusion experiments.
"""

from repro.reliability.failure import (
    line_failure_probability,
    system_failure_probability,
    table1_rows,
)
from repro.reliability.faults import FaultInjectionCampaign, InjectionOutcome
from repro.reliability.mttf import MttfAnalysis, MttfResult
from repro.reliability.profiling import ProfilingReport, RetentionProfiler
from repro.reliability.provisioning import required_ecc_strength
from repro.reliability.retention import RetentionModel

__all__ = [
    "FaultInjectionCampaign",
    "InjectionOutcome",
    "MttfAnalysis",
    "MttfResult",
    "ProfilingReport",
    "RetentionModel",
    "RetentionProfiler",
    "line_failure_probability",
    "required_ecc_strength",
    "system_failure_probability",
    "table1_rows",
]
