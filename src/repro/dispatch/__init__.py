"""Fault-tolerant distributed dispatch backend for the experiment runner.

``repro.dispatch`` turns :class:`repro.analysis.runner.ExperimentRunner`
into a multi-machine fan-out: a coordinator distributes
:class:`~repro.analysis.runner.JobSpec` s to worker processes over a
stdlib JSON-lines TCP protocol with

* lease-based assignment (expired leases requeue; jobs are never lost
  and results commit exactly once under content-hash cache keys),
* per-worker health tracking (heartbeats, consecutive-failure
  quarantine, slow-worker eviction),
* bounded retries with decorrelated-jitter backoff, and
* graceful degradation to the local process pool when the coordinator
  cannot bind or every worker dies.

Select it with ``ExperimentRunner(backend="dispatch")``, the CLI's
``--runner-backend dispatch``, or ``REPRO_RUNNER_BACKEND=dispatch``;
attach extra machines with ``repro workers --connect HOST:PORT``.

Security note: job specs travel as pickles between coordinator and
workers — run both ends as the same trust domain (same user / private
network) only.
"""

from repro.dispatch.backend import DispatchBackend, spawn_local_worker
from repro.dispatch.coordinator import Coordinator, DispatchConfig, WorkerInfo
from repro.dispatch.ledger import JobLedger, JobState, LedgerJob, replay_ledger
from repro.dispatch.protocol import (
    FAULT_MODES,
    PROTOCOL_VERSION,
    decode_message,
    decode_spec,
    encode_message,
    encode_spec,
)

__all__ = [
    "Coordinator",
    "DispatchBackend",
    "DispatchConfig",
    "FAULT_MODES",
    "JobLedger",
    "JobState",
    "LedgerJob",
    "PROTOCOL_VERSION",
    "WorkerInfo",
    "decode_message",
    "decode_spec",
    "encode_message",
    "encode_spec",
    "replay_ledger",
    "spawn_local_worker",
]
