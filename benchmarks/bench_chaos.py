"""Chaos exhibit: metadata fault-injection campaign (extension).

Runs the default ``metadata`` campaign — seeded corruption of the MDT
bit table, per-line mode state, stored mode replicas, SMD registers, and
the refresh-mode latch — against the fully mitigated system (patrol
scrub + conservative MDT fallback) and prints the per-fault-class
outcome table.  The asserted contract mirrors the CI chaos smoke:

* zero silent corruption under mitigations (the one class that means
  the protection story failed);
* zero masked trials (every injection leaves at least a control-plane
  signature, so the harness actually exercises the system);
* the lossy fault directions (``mdt-false-clear``, the MDT forgetting
  live downgrades; ``mode-false-strong``, a SECDED line riding the 1 s
  refresh as if ECC-6) lose data *without* mitigations and are fully
  recovered *with* them.
"""

from repro.chaos import ChaosCampaign, resolve_classes

TRIALS = 60
SEED = 0
LOSSY = ("mdt-false-clear", "mode-false-strong")


def test_metadata_campaign_zero_silent_corruption(benchmark, show):
    campaign = ChaosCampaign(trials=TRIALS, seed=SEED)
    report = benchmark.pedantic(campaign.run, rounds=1, iterations=1)
    show(report.render_table())
    totals = report.outcome_totals()
    assert totals["silent-corruption"] == 0
    assert totals["masked"] == 0
    assert report.detection_rate > 0.5
    # Determinism: the exhibit is byte-reproducible from its seed.
    again = ChaosCampaign(trials=TRIALS, seed=SEED).run()
    assert again.render_table() == report.render_table()


def test_mitigations_recover_the_lossy_directions(show):
    classes = resolve_classes(LOSSY)
    unmitigated = ChaosCampaign(
        classes=classes, trials=10, seed=SEED, scrub=False, conservative=False
    ).run()
    mitigated = ChaosCampaign(
        classes=classes, trials=10, seed=SEED, scrub=True, conservative=True
    ).run()
    show(
        "unmitigated: "
        + str(unmitigated.outcome_totals())
        + "\nmitigated:   "
        + str(mitigated.outcome_totals())
    )
    # Without scrub/fallback the lossy directions really lose data...
    assert unmitigated.outcome_totals()["detected-unrecovered"] > 0
    # ...and the mitigations convert every loss into a clean recovery.
    assert mitigated.outcome_totals()["detected-unrecovered"] == 0
    assert mitigated.outcome_totals()["detected-recovered"] == 10
    assert mitigated.silent_corruption_count == 0
