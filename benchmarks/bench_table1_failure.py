"""Table I: line/system failure probability vs. ECC strength.

Paper: at BER 10^-4.5 over 576-bit lines, ECC-5 brings a 1 GB system's
failure probability under 1e-6; ECC-6 adds the soft-error margin.
"""

import pytest

from repro.analysis.experiments import table1_failure
from repro.analysis.tables import format_table

PAPER = {
    0: (1.8e-2, 1.0),
    1: (1.6e-4, 1.0),
    2: (9.8e-7, 1.0),
    3: (4.5e-9, 7.2e-2),
    4: (1.6e-11, 2.7e-4),
    5: (4.9e-14, 8.1e-7),
    6: (1.2e-16, 1.8e-9),
}


def test_table1_failure_probability(benchmark, show):
    rows = benchmark.pedantic(table1_failure, rounds=1, iterations=1)
    table = format_table(
        ["ECC", "line (paper)", "line (ours)", "system (paper)", "system (ours)"],
        [
            [r.label, PAPER[r.ecc_t][0], r.line_failure, PAPER[r.ecc_t][1], r.system_failure]
            for r in rows
        ],
        title="Table I — failure probability at BER 10^-4.5, 1 GB memory",
    )
    show(table)
    for r in rows:
        paper_line, paper_system = PAPER[r.ecc_t]
        assert r.line_failure == pytest.approx(paper_line, rel=0.15)
        if paper_system < 1.0:
            assert r.system_failure == pytest.approx(paper_system, rel=0.35)
        else:
            assert r.system_failure > 0.99
