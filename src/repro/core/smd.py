"""Selective Memory Downgrade (paper Sec. VI-B).

On wake-up from idle, ECC-Downgrade starts *disabled* and the refresh
period stays at 1 s.  Every 64 ms quantum (~100M processor cycles) the
controller checks the memory traffic of the previous quantum, measured in
misses per kilo-cycle (MPKC); once it exceeds a threshold (paper default:
2), ECC-Downgrade is enabled for the rest of the active period.  The
hardware cost is two registers: an access counter and the quantum timer.

For scaled-down simulation runs the quantum is configurable; the analysis
harness scales it by the ratio of simulated to paper instruction counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Paper's quantum: 64 ms at 1.6 GHz ("approximately 100 Million cycles").
PAPER_QUANTUM_CYCLES = 102_400_000
#: Paper's traffic threshold in misses per kilo-cycle.
DEFAULT_THRESHOLD_MPKC = 2.0


@dataclass
class SmdReport:
    """Outcome of one SMD run (feeds paper Fig. 14)."""

    enabled_at_cycle: int | None
    total_cycles: int

    @property
    def disabled_fraction(self) -> float:
        """Fraction of execution time with ECC-Downgrade disabled."""
        if self.total_cycles <= 0:
            return 1.0
        if self.enabled_at_cycle is None:
            return 1.0
        return min(1.0, self.enabled_at_cycle / self.total_cycles)


class SelectiveMemoryDowngrade:
    """The SMD traffic monitor.

    Args:
        threshold_mpkc: memory accesses per kilo-cycle above which
            ECC-Downgrade is enabled.
        quantum_cycles: check interval in processor cycles.
    """

    def __init__(
        self,
        threshold_mpkc: float = DEFAULT_THRESHOLD_MPKC,
        quantum_cycles: int = PAPER_QUANTUM_CYCLES,
    ):
        if threshold_mpkc <= 0:
            raise ConfigurationError("threshold_mpkc must be positive")
        if quantum_cycles < 1:
            raise ConfigurationError("quantum_cycles must be >= 1")
        self.threshold_mpkc = threshold_mpkc
        self.quantum_cycles = quantum_cycles
        self.enabled = False
        self.enabled_at_cycle: int | None = None
        self._quantum_start = 0
        self._accesses = 0
        #: Controller downgrade count at the last re-arm; the gating
        #: invariant only attributes downgrades *beyond* this baseline to
        #: the current active period (earlier ones were legitimately
        #: enabled before the last idle period).
        self.downgrades_baseline = 0
        #: Optional :class:`repro.obs.trace.EventTracer`; None = no tracing.
        self.tracer = None

    def reset(self, now: int = 0, downgrades_baseline: int = 0) -> None:
        """Re-arm on wake-up from idle: downgrade disabled again."""
        self.enabled = False
        self.enabled_at_cycle = None
        self._quantum_start = now
        self._accesses = 0
        self.downgrades_baseline = downgrades_baseline

    def record_access(self, now: int) -> None:
        """Count one memory access (read or write) at processor cycle ``now``.

        Quantum boundaries are evaluated lazily from the access stream,
        which matches the two-register hardware (a counter and a timer).
        """
        if self.enabled:
            return
        # Close out any fully elapsed quanta before this access.
        while now - self._quantum_start >= self.quantum_cycles:
            mpkc = 1000.0 * self._accesses / self.quantum_cycles
            quantum_end = self._quantum_start + self.quantum_cycles
            tripped = mpkc > self.threshold_mpkc
            if self.tracer is not None:
                self.tracer.emit(
                    "smd",
                    "quantum",
                    cycle=quantum_end,
                    mpkc=mpkc,
                    threshold=self.threshold_mpkc,
                    enabled=tripped,
                )
            if tripped:
                self.enabled = True
                self.enabled_at_cycle = quantum_end
                return
            self._quantum_start = quantum_end
            self._accesses = 0
        self._accesses += 1

    def report(self, total_cycles: int) -> SmdReport:
        return SmdReport(enabled_at_cycle=self.enabled_at_cycle, total_cycles=total_cycles)

    # -- fault injection (chaos harness) ------------------------------------

    def inject_accesses(self, count: int) -> None:
        """Fault-inject: corrupt the quantum access counter register.

        A huge value trips the threshold at the next quantum boundary (a
        spurious enable); zero erases the quantum's traffic (a delayed
        enable).  Either way the gate stays self-consistent, so the
        gating invariant cannot see it — only end-to-end comparison can.
        """
        self._accesses = count
        if self.tracer is not None:
            self.tracer.emit("smd", "fault", register="accesses", value=count)

    def inject_threshold(self, threshold_mpkc: float) -> None:
        """Fault-inject: corrupt the threshold register (no validation)."""
        self.threshold_mpkc = threshold_mpkc
        if self.tracer is not None:
            self.tracer.emit(
                "smd", "fault", register="threshold", value=threshold_mpkc
            )

    def inject_enable(self, enabled: bool, record_cycle: int | None = None) -> None:
        """Fault-inject: force the enable latch, optionally inconsistently.

        Forcing ``enabled=True`` without a recorded enable cycle is the
        stuck-enable fault the gating invariant is designed to catch.
        """
        self.enabled = enabled
        self.enabled_at_cycle = record_cycle
        if self.tracer is not None:
            self.tracer.emit(
                "smd", "fault", register="enable", value=enabled
            )
