"""Hypothesis metamorphic suite: MDT coverage vs upgrade latency.

Sec. VI-A's pitch is that the Memory Downgrade Tracker turns the fixed
~400 ms whole-memory ECC-Upgrade pass into one proportional to the
downgraded footprint.  The metamorphic relations: upgrade latency is
monotone in the set of downgraded addresses (marking more regions never
shortens the pass), invariant under duplicate marks, and bounded above
by the full-memory pass.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

from repro.core.mdt import MemoryDowngradeTracker
from repro.dram.device import DramDevice
from repro.fidelity.properties import mdt_upgrade_seconds

GIB = 1 << 30

addresses = st.lists(
    st.integers(min_value=0, max_value=GIB - 1), min_size=0, max_size=40
)


@given(base=addresses, extra=addresses)
def test_upgrade_latency_monotone_in_coverage(base, extra):
    subset = mdt_upgrade_seconds(base)
    superset = mdt_upgrade_seconds(base + extra)
    assert subset <= superset


@given(addr_list=addresses)
def test_duplicate_marks_do_not_change_latency(addr_list):
    once = mdt_upgrade_seconds(addr_list)
    twice = mdt_upgrade_seconds(addr_list + addr_list)
    assert once == twice


@given(addr_list=addresses)
def test_tracked_pass_bounded_by_full_pass(addr_list):
    tracked = mdt_upgrade_seconds(addr_list)
    full = DramDevice().full_upgrade_seconds()
    assert 0.0 <= tracked <= full * (1 + 1e-12)


@given(count=st.integers(min_value=0, max_value=1024))
def test_latency_linear_in_region_count(count):
    device = DramDevice()
    region_bytes = 1 << 20
    one = device.upgrade_seconds_for_regions(1, region_bytes)
    many = device.upgrade_seconds_for_regions(count, region_bytes)
    assert many == pytest.approx(count * one, rel=1e-9)


@given(addr_list=addresses)
def test_marked_count_matches_distinct_regions(addr_list):
    tracker = MemoryDowngradeTracker()
    for address in addr_list:
        tracker.record_downgrade(address)
    distinct = {address // tracker.region_bytes for address in addr_list}
    assert tracker.marked_count == len(distinct)


def test_full_coverage_equals_full_pass():
    device = DramDevice()
    assert device.upgrade_seconds_for_regions(1024, 1 << 20) == pytest.approx(
        device.full_upgrade_seconds(), rel=1e-9
    )
