"""Tests for the memory-scheduler framework."""

import random

import pytest

from repro.dram.config import DramTimings
from repro.dram.scheduler import (
    FcfsPolicy,
    FrFcfsPolicy,
    OpenLoopMemorySystem,
    Request,
)
from repro.errors import ConfigurationError
from repro.types import MemoryOp

T = DramTimings()


def read(address, arrival, request_id=0):
    return Request(op=MemoryOp.READ, address=address, arrival=arrival,
                   request_id=request_id)


class TestBasics:
    def test_single_request(self):
        system = OpenLoopMemorySystem()
        requests = [read(0, 100)]
        stats = system.run(requests)
        assert stats.issued == 1
        assert requests[0].completion == 100 + T.row_empty_latency
        assert requests[0].latency == T.row_empty_latency

    def test_all_requests_complete(self):
        rng = random.Random(3)
        requests = [
            read(rng.randrange(1 << 20) * 64, rng.randrange(10_000), i)
            for i in range(100)
        ]
        stats = OpenLoopMemorySystem().run(requests)
        assert stats.issued == 100
        assert all(r.completion is not None for r in requests)
        assert stats.makespan >= max(r.completion for r in requests) - 1

    def test_queue_depth_backpressure(self):
        """A 1-deep queue forces strict serialization."""
        shallow = OpenLoopMemorySystem(queue_depth=1)
        deep = OpenLoopMemorySystem(queue_depth=32)
        def burst():
            return [read(i * 256 * 64, 0, i) for i in range(8)]  # 8 banks-ish
        s_shallow = shallow.run(burst())
        s_deep = deep.run(burst())
        assert s_deep.makespan <= s_shallow.makespan

    def test_idle_gap_jumps_to_next_arrival(self):
        system = OpenLoopMemorySystem()
        requests = [read(0, 0, 0), read(64, 1_000_000, 1)]
        system.run(requests)
        assert requests[1].completion >= 1_000_000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OpenLoopMemorySystem(queue_depth=0)
        with pytest.raises(ConfigurationError):
            _ = read(0, 0).latency


class TestPolicies:
    def burst_with_hits(self):
        """Interleaved rows: [row A, row B, row A, row B...] to one bank.

        FCFS ping-pongs (all conflicts); FR-FCFS batches the row-A
        requests then the row-B ones (half become hits).
        """
        row_a, row_b = 0, 4 * 256 * 64  # same bank, different rows
        requests = []
        for i in range(12):
            base = row_a if i % 2 == 0 else row_b
            requests.append(read(base + (i // 2) * 64, 0, i))
        return requests

    def test_frfcfs_beats_fcfs_on_interleaved_rows(self):
        fcfs = OpenLoopMemorySystem(policy=FcfsPolicy())
        frfcfs = OpenLoopMemorySystem(policy=FrFcfsPolicy())
        s_fcfs = fcfs.run(self.burst_with_hits())
        s_fr = frfcfs.run(self.burst_with_hits())
        assert s_fr.row_hit_rate > s_fcfs.row_hit_rate
        assert s_fr.makespan < s_fcfs.makespan
        assert s_fr.avg_latency < s_fcfs.avg_latency

    def test_fcfs_preserves_arrival_order_per_bank(self):
        requests = [read(i * 64, i, i) for i in range(10)]  # same row
        OpenLoopMemorySystem(policy=FcfsPolicy()).run(requests)
        completions = [r.completion for r in requests]
        assert completions == sorted(completions)

    def test_policies_identical_on_streaming(self):
        """Pure sequential traffic has no reordering opportunity."""
        def stream():
            return [read(i * 64, 0, i) for i in range(32)]
        s_fcfs = OpenLoopMemorySystem(policy=FcfsPolicy()).run(stream())
        s_fr = OpenLoopMemorySystem(policy=FrFcfsPolicy()).run(stream())
        assert s_fcfs.makespan == s_fr.makespan

    def test_frfcfs_does_not_starve_forever(self):
        """Our FR-FCFS falls back to oldest when no hit exists, so every
        request eventually completes."""
        rng = random.Random(5)
        requests = [
            read(rng.randrange(1 << 18) * 64, 0, i) for i in range(64)
        ]
        stats = OpenLoopMemorySystem(policy=FrFcfsPolicy()).run(requests)
        assert stats.issued == 64


class TestUpgradeScanTraffic:
    def test_mecc_upgrade_scan_is_bandwidth_bound(self):
        """An ECC-Upgrade pass is a sequential sweep: nearly all row hits,
        throughput in the tens of cycles per line — the same regime as
        the paper's 40-cycles-per-line bulk-conversion estimate.

        (Our bank model conservatively occupies the bank for the full
        CAS+burst of each access — no tCCD column pipelining — so the
        measured 56 cycles/line brackets the paper's 40 from above; the
        pure data-bus floor is 32.)"""
        requests = [read(i * 64, 0, i) for i in range(512)]
        stats = OpenLoopMemorySystem(policy=FrFcfsPolicy()).run(requests)
        assert stats.row_hit_rate > 0.95
        cycles_per_line = stats.makespan / 512
        assert 32.0 <= cycles_per_line <= 64.0
