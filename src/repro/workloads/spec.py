"""The paper's 28 SPEC2006 workloads as synthetic-trace models.

Per-benchmark parameters (MPKI, baseline IPC, footprint, streaming share,
write-back share, phase structure) are calibrated so that

* the per-class averages match paper Table III
  (Low: MPKI 0.3 / IPC 1.514 / 26 MB; Med: 4.7 / 0.887 / 96.4 MB;
  High: 23.5 / 0.359 / 259.1 MB);
* the seven benchmarks the paper names as never tripping SMD's traffic
  threshold (povray, tonto, wrf, gamess, hmmer, sjeng, h264ref) have
  MPKC < 2 throughout, while mid-intensity benchmarks ramp past the
  threshold partway through execution (Fig. 14's gradient);
* memory-intensity ordering matches the paper's figure layouts.

``mcf`` is excluded, as in the paper (1.4 GB footprint exceeds the 1 GB
memory).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.workloads.synth import LINE_BYTES, Phase, SyntheticTraceGenerator
from repro.workloads.trace import Trace

#: Fraction of a perf run's demand reads that are cold (first-touch) in
#: steady state; sizes the working set of scaled perf traces so MECC's
#: downgrade traffic matches the paper's 4-billion-instruction dynamics.
DEFAULT_COLD_FRACTION = 0.02
#: Floor on the perf-run working set, in lines (spread over a few rows).
MIN_WORKING_SET_LINES = 256


class MpkiClass(enum.Enum):
    """The paper's three-way workload classification (Sec. IV-B)."""

    LOW = "Low-MPKI"  # MPKI < 1
    MED = "Med-MPKI"  # 1 <= MPKI <= 10
    HIGH = "High-MPKI"  # MPKI > 10


@dataclass(frozen=True)
class BenchmarkSpec:
    """Statistical model of one SPEC2006 benchmark.

    Attributes:
        name: SPEC short name as printed in the paper's figures.
        mpki: average demand-read misses per kilo-instruction.
        ipc: baseline IPC with no error-correction latency.
        footprint_mb: full-scale footprint in MB (unique 4KB pages).
        stream_fraction: share of reads from sequential streams.
        write_fraction: dirty write-backs per demand read.
        phases: intensity phases, weights summing to 1 and the weighted
            intensity averaging 1 (so average MPKI is preserved).
        seed: deterministic RNG seed.
    """

    name: str
    mpki: float
    ipc: float
    footprint_mb: float
    stream_fraction: float
    write_fraction: float
    phases: tuple[Phase, ...] = ()
    seed: int = 0

    @property
    def mpki_class(self) -> MpkiClass:
        if self.mpki < 1.0:
            return MpkiClass.LOW
        if self.mpki <= 10.0:
            return MpkiClass.MED
        return MpkiClass.HIGH

    @property
    def footprint_bytes(self) -> int:
        return int(self.footprint_mb * (1 << 20))

    def generator(
        self,
        instructions: int | None = None,
        cold_fraction: float = DEFAULT_COLD_FRACTION,
    ) -> SyntheticTraceGenerator:
        """Build a trace generator.

        With ``instructions`` given, the working set is scaled so roughly
        ``cold_fraction`` of the run's reads are first touches — preserving
        the paper's steady-state ratio of ECC-Downgrades to accesses in
        scaled-down runs.  Without it, the working set is the full
        footprint (use for address-only footprint/MDT studies).
        """
        working_set = None
        if instructions is not None:
            if instructions < 1:
                raise ConfigurationError("instructions must be >= 1")
            expected_reads = self.mpki * instructions / 1000.0
            ws_lines = max(MIN_WORKING_SET_LINES, int(cold_fraction * expected_reads))
            working_set = ws_lines * LINE_BYTES
        return SyntheticTraceGenerator(
            name=self.name,
            mpki=self.mpki,
            target_ipc=self.ipc,
            footprint_bytes=self.footprint_bytes,
            working_set_bytes=working_set,
            write_fraction=self.write_fraction,
            stream_fraction=self.stream_fraction,
            phases=self.phases,
            seed=self.seed,
        )

    def trace(self, instructions: int, calibrate: bool = True, **kwargs) -> Trace:
        """Generate a perf-run trace of ``instructions`` instructions.

        With ``calibrate`` (default), the trace's non-memory CPI is tuned
        by simulating a short prefix against the baseline (no-ECC) system
        so the measured baseline IPC tracks ``self.ipc`` — the analytic
        estimate alone is off by up to ~20% for benchmarks whose queueing
        behaviour deviates from the average.
        """
        trace = self.generator(instructions, **kwargs).generate(instructions)
        if calibrate:
            trace.nonmem_cpi = _calibrate_cpi(trace, self.ipc)
        return trace


def _phases(*pairs: tuple[float, float]) -> tuple[Phase, ...]:
    return tuple(Phase(weight, intensity) for weight, intensity in pairs)


#: Instructions simulated per calibration pass (a prefix of the trace).
_CALIBRATION_PREFIX_INSTRUCTIONS = 200_000
_CALIBRATION_PASSES = 2


def _calibrate_cpi(trace: Trace, target_ipc: float) -> float:
    """Tune ``nonmem_cpi`` so a baseline run of ``trace`` hits ``target_ipc``.

    Simulates a prefix with the current CPI, measures cycles/instruction,
    and shifts the non-memory component by the shortfall.  Two passes
    absorb the second-order effect of request timing on queueing.  The
    2-wide retire width floors the CPI at 0.5, so benchmarks whose memory
    behaviour alone exceeds the target budget stay memory-bound.
    """
    # Imported lazily: workloads must stay importable without the simulator.
    from repro.core.policy import NoEccPolicy
    from repro.sim.engine import simulate

    prefix_records = []
    instrs = 0
    for record in trace.records:
        prefix_records.append(record)
        instrs += record.gap + 1
        if instrs >= _CALIBRATION_PREFIX_INSTRUCTIONS:
            break
    cpi = trace.nonmem_cpi
    target_cycles_per_instr = 1.0 / target_ipc
    for _ in range(_CALIBRATION_PASSES):
        prefix = Trace(name=trace.name, records=prefix_records, nonmem_cpi=cpi)
        result = simulate(prefix, NoEccPolicy())
        measured = result.cycles / result.instructions
        cpi = max(0.5, cpi + (target_cycles_per_instr - measured))
    return cpi


#: All 28 benchmarks, in the paper's Fig. 7 order (low to high intensity).
ALL_BENCHMARKS: tuple[BenchmarkSpec, ...] = (
    # -- Low-MPKI: avg MPKI 0.3, IPC 1.514, footprint 26 MB ------------------
    BenchmarkSpec("povray", 0.05, 1.75, 4, 0.55, 0.20, seed=101),
    BenchmarkSpec("tonto", 0.10, 1.60, 10, 0.60, 0.25, seed=102),
    BenchmarkSpec("wrf", 0.20, 1.55, 40, 0.75, 0.35, seed=103),
    BenchmarkSpec("gamess", 0.05, 1.70, 5, 0.60, 0.20, seed=104),
    BenchmarkSpec("hmmer", 0.30, 1.45, 12, 0.65, 0.25, seed=105),
    BenchmarkSpec("sjeng", 0.40, 1.40, 50, 0.30, 0.20, seed=106),
    BenchmarkSpec("h264ref", 0.50, 1.35, 30, 0.60, 0.30, seed=107),
    BenchmarkSpec(
        "namd", 0.80, 1.30, 57, 0.80, 0.35,
        phases=_phases((0.5, 0.3), (0.5, 1.7)), seed=108,
    ),
    # -- Med-MPKI: avg MPKI 4.7, IPC 0.887, footprint 96.4 MB ----------------
    BenchmarkSpec(
        "gobmk", 1.20, 1.25, 28, 0.40, 0.25,
        phases=_phases((0.4, 0.4), (0.6, 1.4)), seed=201,
    ),
    BenchmarkSpec(
        "gromacs", 1.50, 1.20, 14, 0.70, 0.30,
        phases=_phases((0.3, 0.45), (0.7, 1.2357)), seed=202,
    ),
    BenchmarkSpec(
        "perl", 1.80, 1.15, 60, 0.45, 0.30,
        phases=_phases((0.2, 0.5), (0.8, 1.125)), seed=203,
    ),
    BenchmarkSpec(
        "astar", 2.50, 1.05, 80, 0.35, 0.25,
        phases=_phases((0.15, 0.4), (0.85, 1.1059)), seed=204,
    ),
    BenchmarkSpec(
        "bzip2", 3.50, 0.95, 110, 0.60, 0.35,
        phases=_phases((0.1, 0.4), (0.9, 1.0667)), seed=205,
    ),
    BenchmarkSpec("dealII", 4.00, 0.90, 75, 0.65, 0.35, seed=206),
    BenchmarkSpec("soplex", 8.50, 0.62, 250, 0.60, 0.35, seed=207),
    BenchmarkSpec("cactus", 5.00, 0.85, 170, 0.75, 0.50, seed=208),
    BenchmarkSpec("calculix", 2.80, 1.00, 62, 0.70, 0.30, seed=209),
    BenchmarkSpec("gcc", 6.00, 0.75, 90, 0.50, 0.40, seed=210),
    BenchmarkSpec("zeusmp", 6.50, 0.70, 130, 0.70, 0.45, seed=211),
    BenchmarkSpec("omnetpp", 9.50, 0.55, 150, 0.25, 0.35, seed=212),
    BenchmarkSpec("sphinx", 8.30, 0.56, 34, 0.50, 0.25, seed=213),
    # -- High-MPKI: avg MPKI 23.5, IPC 0.359, footprint 259.1 MB --------------
    BenchmarkSpec("milc", 16.0, 0.42, 380, 0.70, 0.45, seed=301),
    BenchmarkSpec("xalanc", 18.0, 0.38, 190, 0.40, 0.30, seed=302),
    BenchmarkSpec("leslie", 21.0, 0.37, 120, 0.85, 0.50, seed=303),
    BenchmarkSpec("libq", 26.0, 0.36, 64, 0.95, 0.15, seed=304),
    BenchmarkSpec("Gems", 25.0, 0.33, 420, 0.80, 0.50, seed=305),
    BenchmarkSpec("lbm", 30.0, 0.32, 400, 0.93, 0.40, seed=306),
    BenchmarkSpec("bwaves", 28.5, 0.333, 240, 0.92, 0.35, seed=307),
)

BENCHMARKS_BY_NAME: dict[str, BenchmarkSpec] = {b.name: b for b in ALL_BENCHMARKS}

#: Benchmarks the paper reports never enable ECC-Downgrade under SMD.
SMD_ALWAYS_DISABLED = ("povray", "tonto", "wrf", "gamess", "hmmer", "sjeng", "h264ref")


def benchmarks_in_class(cls: MpkiClass) -> list[BenchmarkSpec]:
    """All benchmarks in one MPKI class, in Fig. 7 order."""
    return [b for b in ALL_BENCHMARKS if b.mpki_class is cls]


def class_averages() -> dict[MpkiClass, dict[str, float]]:
    """Recompute Table III's per-class averages from the spec table."""
    out = {}
    for cls in MpkiClass:
        members = benchmarks_in_class(cls)
        n = len(members)
        out[cls] = {
            "ipc": sum(b.ipc for b in members) / n,
            "mpki": sum(b.mpki for b in members) / n,
            "footprint_mb": sum(b.footprint_mb for b in members) / n,
        }
    return out
