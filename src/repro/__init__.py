"""repro — Morphable ECC (MECC) reproduction.

A full-system reproduction of Chou, Nair & Qureshi, "Reducing Refresh
Power in Mobile Devices with Morphable ECC" (DSN 2015): real BCH/SEC-DED
codecs, a USIMM-style mobile DRAM simulator, the Micron IDD power model,
the MECC controller with MDT and SMD, 28 SPEC2006-like workload models,
and an experiment harness regenerating every table and figure in the
paper's evaluation.

Quick start::

    from repro import SystemConfig, simulate
    from repro.workloads import BENCHMARKS_BY_NAME

    config = SystemConfig()
    trace = BENCHMARKS_BY_NAME["libq"].trace(200_000)
    base = simulate(trace, config.policy_by_name("baseline"))
    mecc = simulate(trace, config.policy_by_name("mecc"))
    print(f"MECC normalized IPC: {mecc.ipc / base.ipc:.3f}")
"""

from repro.core import MeccController, MeccPolicy, MemoryDowngradeTracker
from repro.ecc import BchCode, LineCodec, SecDedCode, make_scheme
from repro.errors import ReproError
from repro.power import DramPowerCalculator, PowerParams
from repro.reliability import RetentionModel, required_ecc_strength, table1_rows
from repro.sim import ScaledRun, SimulationEngine, SystemConfig, simulate
from repro.types import EccMode, MemoryOp, SimResult, SystemState
from repro.workloads import ALL_BENCHMARKS, BENCHMARKS_BY_NAME

__version__ = "1.0.0"

__all__ = [
    "ALL_BENCHMARKS",
    "BENCHMARKS_BY_NAME",
    "BchCode",
    "DramPowerCalculator",
    "EccMode",
    "LineCodec",
    "MeccController",
    "MeccPolicy",
    "MemoryDowngradeTracker",
    "MemoryOp",
    "PowerParams",
    "ReproError",
    "RetentionModel",
    "ScaledRun",
    "SecDedCode",
    "SimResult",
    "SimulationEngine",
    "SystemConfig",
    "SystemState",
    "make_scheme",
    "required_ecc_strength",
    "simulate",
    "table1_rows",
    "__version__",
]
