"""Tests for the binomial failure analysis: must reproduce paper Table I."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.reliability.failure import (
    DEFAULT_BER,
    DEFAULT_LINE_BITS,
    LINES_PER_GB,
    expected_failed_bits,
    line_failure_probability,
    system_failure_probability,
    table1_rows,
)

#: Paper Table I, line-failure column (printed to 2 significant digits).
PAPER_LINE_FAILURE = {
    0: 1.8e-2,
    1: 1.6e-4,
    2: 9.8e-7,
    3: 4.5e-9,
    4: 1.6e-11,
    5: 4.9e-14,
    6: 1.2e-16,
}

#: Paper Table I, system-failure column.
PAPER_SYSTEM_FAILURE = {
    0: 1.0,
    1: 1.0,
    2: 1.0,
    3: 7.2e-2,
    4: 2.7e-4,
    5: 8.1e-7,
    6: 1.8e-9,
}


class TestTable1:
    @pytest.mark.parametrize("t,expected", PAPER_LINE_FAILURE.items())
    def test_line_failure_matches_paper(self, t, expected):
        measured = line_failure_probability(DEFAULT_BER, t)
        assert measured == pytest.approx(expected, rel=0.15)

    @pytest.mark.parametrize("t,expected", PAPER_SYSTEM_FAILURE.items())
    def test_system_failure_matches_paper(self, t, expected):
        line_p = line_failure_probability(DEFAULT_BER, t)
        measured = system_failure_probability(line_p)
        # The paper's 16M-line rounding gives ~20% slack at the extremes.
        assert measured == pytest.approx(expected, rel=0.35)

    def test_table_rows_structure(self):
        rows = table1_rows()
        assert len(rows) == 7
        assert rows[0].label == "No ECC"
        assert rows[6].label == "ECC-6"

    def test_ecc5_meets_target_ecc4_does_not(self):
        """Paper Sec. II-C: the 1e-6 target needs ECC-5."""
        rows = {r.ecc_t: r.system_failure for r in table1_rows()}
        assert rows[5] < 1e-6
        assert rows[4] > 1e-6


class TestLineFailure:
    def test_zero_ber(self):
        assert line_failure_probability(0.0, 3) == 0.0

    def test_full_ber(self):
        assert line_failure_probability(1.0, 3) == pytest.approx(1.0)

    def test_strength_at_least_line_bits(self):
        assert line_failure_probability(0.5, DEFAULT_LINE_BITS) == 0.0

    def test_monotone_decreasing_in_t(self):
        probs = [line_failure_probability(DEFAULT_BER, t) for t in range(8)]
        assert all(a > b for a, b in zip(probs, probs[1:]))

    def test_monotone_increasing_in_ber(self):
        probs = [line_failure_probability(b, 3) for b in (1e-6, 1e-5, 1e-4, 1e-3)]
        assert all(a < b for a, b in zip(probs, probs[1:]))

    def test_no_ecc_closed_form(self):
        """With t=0, failure = 1 - (1-p)^n exactly."""
        p = 1e-4
        expected = 1.0 - (1.0 - p) ** DEFAULT_LINE_BITS
        assert line_failure_probability(p, 0) == pytest.approx(expected, rel=1e-9)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            line_failure_probability(-0.1, 1)
        with pytest.raises(ConfigurationError):
            line_failure_probability(0.1, -1)
        with pytest.raises(ConfigurationError):
            line_failure_probability(0.1, 1, line_bits=0)


class TestSystemFailure:
    def test_zero_lines(self):
        assert system_failure_probability(0.5, 0) == 0.0

    def test_zero_line_prob(self):
        assert system_failure_probability(0.0) == 0.0

    def test_certain_line_failure(self):
        assert system_failure_probability(1.0) == 1.0

    def test_small_probability_linearization(self):
        """For tiny p, system failure ~= n * p."""
        p = 1e-12
        assert system_failure_probability(p) == pytest.approx(LINES_PER_GB * p, rel=1e-4)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            system_failure_probability(1.5)
        with pytest.raises(ConfigurationError):
            system_failure_probability(0.5, -1)


class TestExpectedFailedBits:
    def test_paper_magnitudes(self):
        """~32K failing bits per 1Gb array at BER 10^-4.5 (paper Sec. II-B)."""
        assert expected_failed_bits(DEFAULT_BER, 1 << 30) == pytest.approx(33_940, rel=0.02)

    def test_rejects_bad(self):
        with pytest.raises(ConfigurationError):
            expected_failed_bits(2.0, 100)


@given(ber=st.floats(min_value=1e-9, max_value=1e-2),
       t=st.integers(min_value=0, max_value=8))
@settings(max_examples=100)
def test_property_probability_bounds(ber, t):
    p = line_failure_probability(ber, t)
    assert 0.0 <= p <= 1.0
    s = system_failure_probability(p)
    assert 0.0 <= s <= 1.0
    assert s >= p or LINES_PER_GB == 0  # more lines, more risk
