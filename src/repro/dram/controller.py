"""Transaction-level memory controller (USIMM-style substrate).

Models the paper's baseline controller: read/write queues, open-page
row-buffer policy, bank-level parallelism, data-bus contention, periodic
auto-refresh interference, and an *aggressive power-down* policy (the
paper: "the scheduler issues a power-down command whenever it is
possible").

The model is event-timestamped: servicing a request computes its data
completion time from per-bank and bus availability timestamps, so cost is
O(1) per transaction instead of per cycle.  Writes are buffered in a write
queue and drained in bursts when the queue fills, stealing bank/bus time
from subsequent reads — which is how MECC's extra downgrade write-backs
show up as a small power/performance cost (paper Fig. 9).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.dram.address import AddressMapper
from repro.dram.bank import Bank
from repro.dram.config import PROC_HZ, DramOrganization, DramTimings
from repro.errors import ConfigurationError
from repro.power.calculator import BankUtilization


@dataclass
class ControllerStats:
    """Counters accumulated while servicing transactions."""

    reads: int = 0
    writes: int = 0
    activates: int = 0
    row_hits: int = 0
    refresh_windows_hit: int = 0
    write_drains: int = 0
    busy_cycles: int = 0
    powerdown_exits: int = 0
    read_latency_sum: int = 0

    @property
    def row_hit_rate(self) -> float:
        total = self.reads + self.writes
        return self.row_hits / total if total else 0.0


class MemoryController:
    """Single-channel memory controller over a set of banks.

    Args:
        org: DRAM organization (capacity, banks, rows, line size).
        timings: DRAM timing constraints in processor cycles.
        write_queue_capacity: writes buffered before a forced drain.
        write_drain_low: drain stops when the queue falls to this level.
        powerdown_gap_cycles: an idle gap at least this long (processor
            cycles) puts the rank into precharge power-down; waking costs
            ``t_xp``.
    """

    def __init__(
        self,
        org: DramOrganization | None = None,
        timings: DramTimings | None = None,
        write_queue_capacity: int = 32,
        write_drain_low: int = 8,
        powerdown_gap_cycles: int = 48,
        mapping_policy: str = "row-interleaved",
    ):
        self.org = org or DramOrganization()
        self.timings = timings or DramTimings()
        if write_drain_low >= write_queue_capacity:
            raise ConfigurationError("write_drain_low must be < write_queue_capacity")
        if write_queue_capacity < 1:
            raise ConfigurationError("write_queue_capacity must be >= 1")
        self.mapper = AddressMapper(self.org, policy=mapping_policy)
        self.banks = [Bank(self.timings) for _ in range(self.mapper.total_banks)]
        self.write_queue: deque[int] = deque()
        self.write_queue_capacity = write_queue_capacity
        self.write_drain_low = write_drain_low
        self.powerdown_gap_cycles = powerdown_gap_cycles
        self.stats = ControllerStats()
        #: Optional :class:`repro.obs.trace.EventTracer`; only the *rare*
        #: events (forced drains, refresh collisions) emit, so the
        #: per-access service path carries no tracing cost.
        self.tracer = None
        self._banks_per_channel = self.org.banks * self.org.ranks
        self._data_bus_free_at = [0] * self.org.channels
        self._busy_until = 0
        self._next_refresh_at = self.timings.t_refi
        self._refresh_enabled = True
        # ACT pacing per rank: last ACT start (tRRD) and a sliding window
        # of the last four ACT starts (tFAW).
        n_ranks = self.org.channels * self.org.ranks
        self._last_act_start = [-(10 ** 12)] * n_ranks
        self._act_window: list[deque[int]] = [deque(maxlen=4) for _ in range(n_ranks)]

    # -- configuration hooks ---------------------------------------------------

    def set_refresh_enabled(self, enabled: bool) -> None:
        """Allow SMD-style operation where auto-refresh stays off (1 s SR)."""
        self._refresh_enabled = enabled

    def reset(self) -> None:
        """Drop all per-run state (bank timing, queues, stats).

        Configuration (organization, timings, queue thresholds, refresh
        enablement) is preserved; everything a previous ``run`` touched is
        re-initialized so the controller can be reused without one run's
        stats or bank timestamps leaking into the next.
        """
        self.banks = [Bank(self.timings) for _ in range(self.mapper.total_banks)]
        self.write_queue.clear()
        self.stats = ControllerStats()
        self._data_bus_free_at = [0] * self.org.channels
        self._busy_until = 0
        self._next_refresh_at = self.timings.t_refi
        n_ranks = self.org.channels * self.org.ranks
        self._last_act_start = [-(10 ** 12)] * n_ranks
        self._act_window = [deque(maxlen=4) for _ in range(n_ranks)]

    # -- public request interface ----------------------------------------------

    def read(self, address: int, now: int) -> int:
        """Service a demand read arriving at processor cycle ``now``.

        Returns the cycle at which the data burst completes (excluding any
        ECC decode latency, which the simulation engine layers on top).
        """
        self._opportunistic_drain(now)
        if len(self.write_queue) >= self.write_queue_capacity:
            self._drain_writes(now)
        # Completion times are whole processor cycles even if a caller
        # configured fractional (float) timings; latency stats stay ints.
        done = int(self._service(address, now))
        self.stats.reads += 1
        self.stats.read_latency_sum += done - now
        return done

    def write(self, address: int, now: int) -> None:
        """Buffer a write-back; drains happen in bursts off the read path."""
        self.write_queue.append(address)
        if len(self.write_queue) >= self.write_queue_capacity:
            self._drain_writes(now)

    def write_batch(self, addresses, nows) -> None:
        """Buffer a coalesced run of write-backs (engine batching).

        Timing-identical to calling :meth:`write` per element: the queue
        fills in access order and forced drains trigger at the same
        arrival cycles.
        """
        queue = self.write_queue
        capacity = self.write_queue_capacity
        for address, now in zip(addresses, nows):
            queue.append(address)
            if len(queue) >= capacity:
                self._drain_writes(now)

    def flush_writes(self, now: int) -> int:
        """Drain the entire write queue; returns the completion cycle."""
        done = now
        while self.write_queue:
            address = self.write_queue.popleft()
            done = self._service(address, done)
            self.stats.writes += 1
        return done

    # -- internals ---------------------------------------------------------------

    def _opportunistic_drain(self, now: int) -> None:
        """Service buffered writes inside idle gaps, off the read path.

        The queue head is written whenever the channel has been idle long
        enough to fit a burst before ``now`` — this is how ECC-Downgrade
        write-backs stay off the critical path (paper Sec. III-B).
        """
        slot = 2 * self.timings.t_burst
        while self.write_queue and now - self._busy_until >= slot:
            address = self.write_queue.popleft()
            self._service(address, self._busy_until)
            self.stats.writes += 1

    def _drain_writes(self, now: int) -> None:
        self.stats.write_drains += 1
        drained = len(self.write_queue) - self.write_drain_low
        if self.tracer is not None:
            self.tracer.emit(
                "dram", "write_drain", cycle=now, drained=drained
            )
        t = now
        while len(self.write_queue) > self.write_drain_low:
            address = self.write_queue.popleft()
            t = self._service(address, t)
            self.stats.writes += 1

    def _service(self, address: int, now: int) -> int:
        """Common timing path for a 64B column access (read or write)."""
        loc = self.mapper.locate(address)
        begin = now
        # Aggressive power-down: a long-enough idle gap means the rank was
        # powered down and must pay the exit latency.
        if begin - self._busy_until >= self.powerdown_gap_cycles:
            begin += self.timings.t_xp
            self.stats.powerdown_exits += 1
        begin = self._apply_refresh(begin)
        bank = self.banks[loc.bank]
        rank = loc.bank // self.org.banks
        # ACT pacing: if this access will open a row, respect tRRD (ACT to
        # ACT, any bank of the rank) and tFAW (at most four ACTs per
        # rolling window).
        if bank.open_row != loc.row:
            t = self.timings
            begin = max(begin, self._last_act_start[rank] + t.t_rrd)
            window = self._act_window[rank]
            if len(window) == 4:
                begin = max(begin, window[0] + t.t_faw)
        data_done, row_hit, activates = bank.access(loc.row, begin)
        if activates:
            act_start = data_done - self.timings.row_empty_latency
            self._last_act_start[rank] = max(self._last_act_start[rank], act_start)
            self._act_window[rank].append(act_start)
        # Data-bus contention: the burst phase may not overlap a previous
        # burst on the same channel.
        channel = loc.bank // self._banks_per_channel
        data_start = data_done - self.timings.t_burst
        if data_start < self._data_bus_free_at[channel]:
            shift = self._data_bus_free_at[channel] - data_start
            data_done += shift
            bank.ready_at += shift
        self._data_bus_free_at[channel] = data_done
        self.stats.activates += activates
        if row_hit:
            self.stats.row_hits += 1
        # Busy-time envelope for the power model.
        overlap_start = max(begin, self._busy_until)
        if data_done > overlap_start:
            self.stats.busy_cycles += int(data_done - overlap_start)
        self._busy_until = max(self._busy_until, data_done)
        return data_done

    def _apply_refresh(self, begin: int) -> int:
        """Delay ``begin`` past any auto-refresh window it collides with."""
        if not self._refresh_enabled:
            return begin
        t = self.timings
        # Refreshes that completed before `begin` happened in idle gaps.
        while self._next_refresh_at + t.t_rfc <= begin:
            self._next_refresh_at += t.t_refi
        if self._next_refresh_at <= begin:
            # Collision: wait out the refresh; rows are closed by it.
            stalled_from = begin
            begin = self._next_refresh_at + t.t_rfc
            self._next_refresh_at += t.t_refi
            for bank in self.banks:
                bank.precharge_all()
            self.stats.refresh_windows_hit += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "dram",
                    "refresh_collision",
                    cycle=int(stalled_from),
                    stall_cycles=int(begin - stalled_from),
                )
        return begin

    # -- power-model export -------------------------------------------------------

    def utilization(self, total_cycles: int) -> BankUtilization:
        """Summarize this run as utilization fractions/rates for the power model.

        With the aggressive power-down policy, all non-busy time is spent
        in precharge power-down.
        """
        if total_cycles <= 0:
            raise ConfigurationError("total_cycles must be positive")
        seconds = total_cycles / PROC_HZ
        busy_frac = min(1.0, self.stats.busy_cycles / total_cycles)
        return BankUtilization(
            frac_active_standby=busy_frac,
            frac_precharge_standby=0.0,
            frac_active_powerdown=0.0,
            frac_precharge_powerdown=1.0 - busy_frac,
            activates_per_second=self.stats.activates / seconds,
            read_bursts_per_second=self.stats.reads / seconds,
            write_bursts_per_second=self.stats.writes / seconds,
        )
