"""Memory-request scheduling framework (USIMM's home turf).

USIMM — the paper's simulator — was built for the Memory Scheduling
Championship, where policies pick which queued request to issue next.
The paper's blocking in-order core rarely queues more than one demand
read, so the main engine services synchronously; this module provides
the full queued model for open-loop studies (bandwidth-bound traffic,
write bursts, MECC's upgrade scans):

* :class:`FcfsPolicy` — oldest request first.
* :class:`FrFcfsPolicy` — row hits first, then oldest (the classic
  first-ready FCFS that open-page controllers use).

The driver is event-stepped: at each step it issues the policy's pick
to the earliest-available bank slot, modelling bank occupancy, bus
serialization, and ACT pacing the same way the main controller does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.address import AddressMapper
from repro.dram.bank import Bank
from repro.dram.config import DramOrganization, DramTimings
from repro.errors import ConfigurationError
from repro.types import MemoryOp


@dataclass
class Request:
    """One memory request with open-loop arrival time."""

    op: MemoryOp
    address: int
    arrival: int
    request_id: int = 0
    completion: int | None = None

    @property
    def latency(self) -> int:
        if self.completion is None:
            raise ConfigurationError("request has not completed")
        return self.completion - self.arrival


class SchedulerPolicy:
    """Base policy: pick which queued request to issue next."""

    name = "base"

    def pick(self, queue: list[Request], banks: list[Bank], mapper: AddressMapper,
             now: int) -> int:
        """Index into ``queue`` of the request to issue."""
        raise NotImplementedError


class FcfsPolicy(SchedulerPolicy):
    """Strictly oldest-first."""

    name = "FCFS"

    def pick(self, queue, banks, mapper, now) -> int:
        return min(range(len(queue)), key=lambda i: (queue[i].arrival, queue[i].request_id))


class FrFcfsPolicy(SchedulerPolicy):
    """First-ready FCFS: row-buffer hits first, then oldest."""

    name = "FR-FCFS"

    def pick(self, queue, banks, mapper, now) -> int:
        def key(i: int):
            request = queue[i]
            loc = mapper.locate(request.address)
            row_hit = banks[loc.bank].open_row == loc.row
            return (not row_hit, request.arrival, request.request_id)

        return min(range(len(queue)), key=key)


@dataclass
class SchedulerStats:
    """Aggregate statistics of one open-loop run."""

    issued: int = 0
    row_hits: int = 0
    activates: int = 0
    total_latency: int = 0
    makespan: int = 0

    @property
    def avg_latency(self) -> float:
        return self.total_latency / self.issued if self.issued else 0.0

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.issued if self.issued else 0.0


class OpenLoopMemorySystem:
    """Serve an arrival-timed request stream under a scheduling policy.

    Args:
        policy: the scheduler.
        org: DRAM organization.
        timings: DRAM timings.
        queue_depth: max requests held; arrivals beyond it stall (the
            producer is back-pressured, as a real controller would).
    """

    def __init__(
        self,
        policy: SchedulerPolicy | None = None,
        org: DramOrganization | None = None,
        timings: DramTimings | None = None,
        queue_depth: int = 32,
    ):
        if queue_depth < 1:
            raise ConfigurationError("queue_depth must be >= 1")
        self.policy = policy or FrFcfsPolicy()
        self.org = org or DramOrganization()
        self.timings = timings or DramTimings()
        self.mapper = AddressMapper(self.org)
        self.queue_depth = queue_depth

    def run(self, requests: list[Request]) -> SchedulerStats:
        """Service all requests; fills each request's ``completion``."""
        timings = self.timings
        banks = [Bank(timings) for _ in range(self.mapper.total_banks)]
        arrivals = sorted(requests, key=lambda r: (r.arrival, r.request_id))
        next_index = 0
        queue: list[Request] = []
        stats = SchedulerStats()
        now = 0
        data_bus_free = 0
        # One command slot per DRAM bus cycle.
        command_slot = max(1, timings.t_burst // 4)
        while next_index < len(arrivals) or queue:
            # Admit arrivals up to the queue depth.
            while (
                next_index < len(arrivals)
                and arrivals[next_index].arrival <= now
                and len(queue) < self.queue_depth
            ):
                queue.append(arrivals[next_index])
                next_index += 1
            if not queue:
                now = arrivals[next_index].arrival
                continue
            index = self.policy.pick(queue, banks, self.mapper, now)
            request = queue.pop(index)
            loc = self.mapper.locate(request.address)
            bank = banks[loc.bank]
            begin = max(now, request.arrival)
            data_done, row_hit, activates = bank.access(loc.row, begin)
            data_start = data_done - timings.t_burst
            if data_start < data_bus_free:
                shift = data_bus_free - data_start
                data_done += shift
                bank.ready_at += shift
            data_bus_free = data_done
            request.completion = data_done
            stats.issued += 1
            stats.activates += activates
            if row_hit:
                stats.row_hits += 1
            stats.total_latency += request.latency
            stats.makespan = max(stats.makespan, data_done)
            # Next command issues one bus-cycle later; bank-level overlap
            # emerges because other banks' accesses can begin while this
            # one's data phase is still in flight.
            now = begin + command_slot
        return stats
