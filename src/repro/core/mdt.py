"""Memory Downgrade Tracking (paper Sec. VI-A).

A table of single bits, one per memory region (default: 1K entries of
1 MB each over 1 GB — 128 *bytes* of controller storage).  The bit for a
region is set when any line in it undergoes ECC-Downgrade.  On idle entry
only the marked regions are scanned for ECC-Upgrade, cutting the upgrade
pass from ~400 ms (full memory) to ~50 ms (typical 128 MB footprint) and
saving 8x of the encoder energy.  The table resets after each upgrade.
"""

from __future__ import annotations

from repro.dram.config import DramOrganization
from repro.errors import ConfigurationError


class MemoryDowngradeTracker:
    """The MDT bit table.

    Args:
        org: memory organization (for capacity/line size).
        entries: number of regions tracked (paper default: 1024).
    """

    def __init__(self, org: DramOrganization | None = None, entries: int = 1024):
        if entries < 1:
            raise ConfigurationError("entries must be >= 1")
        self.org = org or DramOrganization()
        if self.org.capacity_bytes % entries:
            raise ConfigurationError("entries must divide memory capacity")
        self.entries = entries
        self.region_bytes = self.org.capacity_bytes // entries
        if self.region_bytes < self.org.line_bytes:
            raise ConfigurationError("regions must hold at least one line")
        self._marked: set[int] = set()
        #: Optional :class:`repro.obs.trace.EventTracer`; None = no tracing.
        self.tracer = None

    @property
    def storage_bytes(self) -> int:
        """Hardware cost of the table: one bit per entry (128 B default)."""
        return (self.entries + 7) // 8

    @property
    def lines_per_region(self) -> int:
        return self.region_bytes // self.org.line_bytes

    def region_of(self, byte_address: int) -> int:
        """Region index of an address (top MSBs of the line address)."""
        if byte_address < 0:
            raise ConfigurationError("address must be non-negative")
        return (byte_address % self.org.capacity_bytes) // self.region_bytes

    def record_downgrade(self, byte_address: int) -> None:
        """Set the bit for the region containing a downgraded line."""
        region = self.region_of(byte_address)
        if region not in self._marked:
            self._marked.add(region)
            if self.tracer is not None:
                self.tracer.emit(
                    "mdt", "set", region=region, marked=len(self._marked)
                )

    def is_marked(self, region: int) -> bool:
        if not 0 <= region < self.entries:
            raise ConfigurationError(f"region {region} out of range")
        return region in self._marked

    @property
    def marked_regions(self) -> frozenset[int]:
        return frozenset(self._marked)

    @property
    def marked_count(self) -> int:
        return len(self._marked)

    @property
    def tracked_bytes(self) -> int:
        """Memory the upgrade pass must scan (Fig. 11's y-axis)."""
        return self.marked_count * self.region_bytes

    def lines_to_upgrade(self) -> int:
        """Number of lines the MDT-guided ECC-Upgrade scans."""
        return self.marked_count * self.lines_per_region

    def reset(self) -> None:
        """Clear the table (done after each ECC-Upgrade pass)."""
        if self._marked and self.tracer is not None:
            self.tracer.emit("mdt", "clear", cleared=len(self._marked))
        self._marked.clear()

    # -- fault injection (chaos harness) ------------------------------------

    def inject_set(self, region: int) -> None:
        """Fault-inject: spuriously set a region bit (false-set fault).

        Models a bit flip in the controller's MDT SRAM.  A false-set bit
        costs extra idle-entry scan work but cannot lose data; the
        coherence invariant is expected to flag it.
        """
        if not 0 <= region < self.entries:
            raise ConfigurationError(f"region {region} out of range")
        self._marked.add(region)
        if self.tracer is not None:
            self.tracer.emit("mdt", "fault-set", region=region)

    def inject_clear(self, region: int) -> None:
        """Fault-inject: spuriously clear a region bit (false-clear fault).

        The dangerous direction: downgraded lines in the region will be
        skipped by an MDT-guided ECC-Upgrade unless the conservative
        fallback or the patrol scrubber catches them.
        """
        if not 0 <= region < self.entries:
            raise ConfigurationError(f"region {region} out of range")
        self._marked.discard(region)
        if self.tracer is not None:
            self.tracer.emit("mdt", "fault-clear", region=region)
