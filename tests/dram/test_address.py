"""Tests for the address mapper."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.address import AddressMapper
from repro.dram.config import DramOrganization
from repro.errors import ConfigurationError

MAPPER = AddressMapper()


class TestMapping:
    def test_line_address(self):
        assert MAPPER.line_address(0) == 0
        assert MAPPER.line_address(63) == 0
        assert MAPPER.line_address(64) == 1

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MAPPER.line_address(-1)

    def test_sequential_lines_share_row(self):
        """Row-interleaved mapping: a 16 KB row holds 256 sequential lines."""
        first = MAPPER.locate(0)
        for i in range(1, 256):
            loc = MAPPER.locate(i * 64)
            assert loc.bank == first.bank
            assert loc.row == first.row
            assert loc.column_line == i

    def test_row_crossing_changes_bank(self):
        """The next row-worth of lines lands in the next bank."""
        a = MAPPER.locate(0)
        b = MAPPER.locate(256 * 64)
        assert b.bank == (a.bank + 1) % 4
        assert b.row == a.row

    def test_bank_wraps_to_next_row(self):
        a = MAPPER.locate(0)
        b = MAPPER.locate(4 * 256 * 64)
        assert b.bank == a.bank
        assert b.row == a.row + 1

    def test_addresses_beyond_capacity_wrap(self):
        loc_low = MAPPER.locate(64)
        loc_high = MAPPER.locate(64 + (1 << 30))
        assert loc_low == loc_high


class TestUniqueness:
    def test_distinct_lines_distinct_coordinates(self):
        seen = set()
        for line in range(0, 1 << 14):
            loc = MAPPER.locate(line * 64)
            key = (loc.bank, loc.row, loc.column_line)
            assert key not in seen
            seen.add(key)

    @given(st.integers(min_value=0, max_value=(1 << 24) - 1))
    @settings(max_examples=200)
    def test_property_in_bounds(self, line):
        loc = MAPPER.locate(line * 64)
        org = DramOrganization()
        assert 0 <= loc.bank < org.banks
        assert 0 <= loc.row < org.rows
        assert 0 <= loc.column_line < org.lines_per_row

    @given(st.integers(min_value=0, max_value=(1 << 24) - 1),
           st.integers(min_value=0, max_value=(1 << 24) - 1))
    @settings(max_examples=200)
    def test_property_injective(self, a, b):
        la, lb = MAPPER.locate(a * 64), MAPPER.locate(b * 64)
        if a != b:
            assert (la.bank, la.row, la.column_line) != (lb.bank, lb.row, lb.column_line)


class TestBlockInterleaved:
    def test_consecutive_lines_spread_across_banks(self):
        mapper = AddressMapper(policy="block-interleaved")
        banks = [mapper.locate(i * 64).bank for i in range(8)]
        assert banks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_row_locality_sacrificed(self):
        """Same bank revisited only every 4 lines; rows fill 4x slower."""
        mapper = AddressMapper(policy="block-interleaved")
        a = mapper.locate(0)
        b = mapper.locate(4 * 64)
        assert b.bank == a.bank
        assert b.row == a.row
        assert b.column_line == a.column_line + 1

    def test_injective_like_row_interleaved(self):
        mapper = AddressMapper(policy="block-interleaved")
        seen = set()
        for line in range(1 << 13):
            loc = mapper.locate(line * 64)
            key = (loc.bank, loc.row, loc.column_line)
            assert key not in seen
            seen.add(key)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressMapper(policy="hashed")

    def test_controller_accepts_policy(self):
        from repro.dram.controller import MemoryController

        ctrl = MemoryController(mapping_policy="block-interleaved")
        ctrl.read(0, 0)
        ctrl.read(64, 0)  # next line -> different bank: no row hit
        assert ctrl.stats.row_hits == 0
        assert ctrl.stats.activates == 2
