"""Experiment runners for every data-bearing table and figure.

Each function regenerates the rows/series of one paper exhibit (see
DESIGN.md for the index).  All simulation jobs route through
:mod:`repro.analysis.runner`: results are memoized per job description
within the process so figures sharing the same runs — Fig. 3/7/9/10 all
reuse the per-benchmark policy suite — pay for them once, jobs fan out
over a process pool when the runner is configured with ``jobs > 1``, and
an on-disk cache (when enabled) shares results across invocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.runner import JobOutcome, JobSpec, get_runner
from repro.core.smd import DEFAULT_THRESHOLD_MPKC
from repro.dram.config import PROC_HZ
from repro.dram.device import DramDevice
from repro.power.calculator import DramPowerCalculator
from repro.power.energy import energy_delay_product, total_energy_split
from repro.reliability.failure import FailureRow, table1_rows
from repro.reliability.retention import RetentionModel
from repro.sim.stats import geometric_mean
from repro.sim.system import ScaledRun, SystemConfig
from repro.sim.usage import SessionEvaluator, UsageModel
from repro.types import SimResult
from repro.workloads.spec import (
    ALL_BENCHMARKS,
    BenchmarkSpec,
    MpkiClass,
    benchmarks_in_class,
)

#: Policies evaluated in the performance figures, in paper order.
PERF_POLICIES = ("baseline", "secded", "ecc6", "mecc")

#: In-process memo: JobSpec -> JobOutcome (L1 above the runner's disk cache).
_result_cache: dict[JobSpec, JobOutcome] = {}
_trace_cache: dict = {}


def _trace_for(spec: BenchmarkSpec, run: ScaledRun):
    from repro.analysis import runner as _runner

    key = (spec.name, run.instructions)
    if key not in _trace_cache:
        _trace_cache[key] = _runner.trace_for(spec, run.instructions)
    return _trace_cache[key]


def _effective_config(
    config: SystemConfig | None, decode_cycles: int | None
) -> SystemConfig:
    config = config or SystemConfig()
    if decode_cycles is not None:
        config = SystemConfig(
            org=config.org,
            timings=config.timings,
            power=config.power,
            weak_decode_cycles=config.weak_decode_cycles,
            strong_decode_cycles=decode_cycles,
            strong_t=config.strong_t,
        )
    return config


def _run_jobs(jobs: list[JobSpec]) -> None:
    """Execute (or fetch) every job not already memoized in-process."""
    pending = [job for job in jobs if job not in _result_cache]
    if pending:
        _result_cache.update(get_runner().run(pending))


def run_policy_suites(
    benchmarks: tuple[BenchmarkSpec, ...],
    run: ScaledRun,
    policies: tuple[str, ...] = PERF_POLICIES,
    config: SystemConfig | None = None,
    decode_cycles: int | None = None,
) -> dict[str, dict[str, SimResult]]:
    """Simulate many benchmarks x policies as one batched fan-out.

    The batch form is what parallelizes: all missing jobs across every
    benchmark are submitted to the runner together, so a 4-worker pool
    keeps 4 simulations in flight instead of walking benchmarks serially.
    Returns ``{benchmark name: {policy name: SimResult}}``.
    """
    config = _effective_config(config, decode_cycles)
    jobs = [
        JobSpec.build(spec, run, name, config)
        for spec in benchmarks
        for name in policies
    ]
    _run_jobs(jobs)
    out: dict[str, dict[str, SimResult]] = {}
    job_iter = iter(jobs)
    for spec in benchmarks:
        out[spec.name] = {
            name: _result_cache[next(job_iter)].result for name in policies
        }
    return out


def run_policy_suite(
    spec: BenchmarkSpec,
    run: ScaledRun,
    policies: tuple[str, ...] = PERF_POLICIES,
    config: SystemConfig | None = None,
    decode_cycles: int | None = None,
) -> dict[str, SimResult]:
    """Simulate one benchmark under several policies (memoized).

    Args:
        spec: the benchmark.
        run: the run-scale configuration.
        policies: policy names accepted by ``SystemConfig.policy_by_name``.
        config: system configuration override.
        decode_cycles: strong-ECC decode-latency override (Fig. 12).
    """
    return run_policy_suites((spec,), run, policies, config, decode_cycles)[spec.name]


def run_smd_suite(
    run: ScaledRun,
    benchmarks: tuple[BenchmarkSpec, ...] = ALL_BENCHMARKS,
    threshold_mpkc: float = DEFAULT_THRESHOLD_MPKC,
    config: SystemConfig | None = None,
) -> dict[str, JobOutcome]:
    """MECC+SMD outcomes (result + disabled fraction) per benchmark.

    Shared by Fig. 14 and the SMD threshold sweep so that the sweep's
    per-threshold performance pass reuses the very same simulations that
    produced the disabled-time fractions.
    """
    config = config or SystemConfig()
    jobs = [
        JobSpec.build(spec, run, "mecc+smd", config, threshold_mpkc=threshold_mpkc)
        for spec in benchmarks
    ]
    _run_jobs(jobs)
    return {spec.name: _result_cache[job] for spec, job in zip(benchmarks, jobs)}


# ---------------------------------------------------------------------------
# Analytical exhibits (no cycle simulation)
# ---------------------------------------------------------------------------


def fig2_retention_curve(points: int = 41) -> list[tuple[float, float]]:
    """Fig. 2: bit failure probability vs. retention time, 10 ms – 100 s."""
    return RetentionModel().curve(t_min_s=0.01, t_max_s=100.0, points=points)


def table1_failure() -> list[FailureRow]:
    """Table I: line/system failure probability, ECC-0..6 at BER 10^-4.5."""
    return table1_rows()


# ---------------------------------------------------------------------------
# Performance exhibits (Figs. 3, 7, 12, 13)
# ---------------------------------------------------------------------------


@dataclass
class PerformanceResult:
    """Normalized-IPC table over benchmarks x policies (Figs. 3/7)."""

    run: ScaledRun
    per_benchmark: dict[str, dict[str, float]] = field(default_factory=dict)

    def normalized(self, benchmark: str, policy: str) -> float:
        """IPC of ``policy`` normalized to the no-ECC baseline."""
        row = self.per_benchmark[benchmark]
        return row[policy] / row["baseline"]

    def geomean(self, policy: str, benchmarks: list[str] | None = None) -> float:
        names = benchmarks or list(self.per_benchmark)
        return geometric_mean([self.normalized(b, policy) for b in names])

    def class_geomean(self, policy: str, cls: MpkiClass) -> float:
        names = [b.name for b in benchmarks_in_class(cls) if b.name in self.per_benchmark]
        return self.geomean(policy, names)


def fig7_performance(
    run: ScaledRun | None = None,
    benchmarks: tuple[BenchmarkSpec, ...] = ALL_BENCHMARKS,
    policies: tuple[str, ...] = PERF_POLICIES,
    config: SystemConfig | None = None,
    decode_cycles: int | None = None,
) -> PerformanceResult:
    """Fig. 7: per-benchmark normalized IPC of SECDED, ECC-6, MECC."""
    run = run or ScaledRun()
    result = PerformanceResult(run=run)
    suites = run_policy_suites(benchmarks, run, policies, config, decode_cycles)
    for spec in benchmarks:
        result.per_benchmark[spec.name] = {
            p: r.ipc for p, r in suites[spec.name].items()
        }
    return result


def fig3_ecc_overhead_by_class(run: ScaledRun | None = None) -> dict[str, dict[str, float]]:
    """Fig. 3: normalized IPC of SECDED and ECC-6, by MPKI class + ALL."""
    perf = fig7_performance(run, policies=("baseline", "secded", "ecc6"))
    out: dict[str, dict[str, float]] = {}
    for cls in MpkiClass:
        out[cls.value] = {
            "secded": perf.class_geomean("secded", cls),
            "ecc6": perf.class_geomean("ecc6", cls),
        }
    out["ALL"] = {"secded": perf.geomean("secded"), "ecc6": perf.geomean("ecc6")}
    return out


def fig12_latency_sensitivity(
    latencies: tuple[int, ...] = (15, 30, 45, 60),
    run: ScaledRun | None = None,
    benchmarks: tuple[BenchmarkSpec, ...] = ALL_BENCHMARKS,
) -> dict[int, dict[str, float]]:
    """Fig. 12: geomean normalized IPC of ECC-6 and MECC vs. decode latency."""
    run = run or ScaledRun()
    out: dict[int, dict[str, float]] = {}
    for latency in latencies:
        perf = fig7_performance(
            run, benchmarks, policies=("baseline", "ecc6", "mecc"), decode_cycles=latency
        )
        out[latency] = {
            "ecc6": perf.geomean("ecc6"),
            "mecc": perf.geomean("mecc"),
        }
    return out


def fig13_transition(
    slice_fractions: tuple[float, ...] = (0.125, 0.25, 0.5, 0.75, 1.0),
    run: ScaledRun | None = None,
    benchmarks: tuple[BenchmarkSpec, ...] = ALL_BENCHMARKS,
) -> dict[float, dict[str, float]]:
    """Fig. 13: MECC's normalized IPC vs. executed slice length.

    The paper's x-axis is 0.5B..4B instructions; slice fractions map onto
    it (1.0 = the full 4B-equivalent scaled run).  MECC's gap to SECDED
    shrinks as the slice grows because downgrades concentrate at the
    start.
    """
    run = run or ScaledRun()
    out: dict[float, dict[str, float]] = {}
    for fraction in slice_fractions:
        slice_run = ScaledRun(
            instructions=max(1000, int(run.instructions * fraction)),
            paper_instructions=run.paper_instructions,
        )
        perf = fig7_performance(
            slice_run, benchmarks, policies=("baseline", "secded", "mecc")
        )
        out[fraction] = {
            "secded": perf.geomean("secded"),
            "mecc": perf.geomean("mecc"),
            "paper_instructions": run.paper_instructions * fraction,
        }
    return out


# ---------------------------------------------------------------------------
# Power/energy exhibits (Figs. 1, 8, 9, 10)
# ---------------------------------------------------------------------------


def fig8_idle_power(
    calculator: DramPowerCalculator | None = None,
) -> dict[str, dict[str, float]]:
    """Fig. 8: refresh power and total idle power, baseline vs MECC/ECC-6.

    Baseline self-refreshes at 64 ms; MECC and ECC-6 at 1 s (16x fewer
    refresh operations).
    """
    calc = calculator or DramPowerCalculator()
    out: dict[str, dict[str, float]] = {}
    for name, period in (("Baseline", 0.064), ("MECC", 1.024), ("ECC-6", 1.024)):
        idle = calc.idle_power(period)
        out[name] = {
            "refresh_w": idle.refresh,
            "background_w": idle.background,
            "total_w": idle.total,
        }
    base = out["Baseline"]
    for row in out.values():
        row["refresh_norm"] = row["refresh_w"] / base["refresh_w"]
        row["total_norm"] = row["total_w"] / base["total_w"]
    return out


def fig9_active_metrics(
    run: ScaledRun | None = None,
    benchmarks: tuple[BenchmarkSpec, ...] = ALL_BENCHMARKS,
) -> dict[str, dict[str, float]]:
    """Fig. 9: active-mode power / energy / EDP (normalized to baseline).

    Power and energy are averaged across benchmarks; each benchmark's
    energy uses its own execution time (so ECC-6's longer runtime shows
    up as lower power but similar energy, as in the paper).
    """
    run = run or ScaledRun()
    sums: dict[str, dict[str, float]] = {
        p: {"power": 0.0, "energy": 0.0, "edp": 0.0} for p in ("baseline", "secded", "ecc6", "mecc")
    }
    suites = run_policy_suites(benchmarks, run)
    for spec in benchmarks:
        for policy, result in suites[spec.name].items():
            seconds = result.cycles / PROC_HZ
            energy = result.energy.total
            sums[policy]["power"] += energy / seconds
            sums[policy]["energy"] += energy
            sums[policy]["edp"] += energy_delay_product(energy, seconds)
    n = len(benchmarks)
    for row in sums.values():
        for k in row:
            row[k] /= n
    base = sums["baseline"]
    return {
        policy: {metric: row[metric] / base[metric] for metric in row}
        for policy, row in sums.items()
    }


def fig10_total_energy(
    run: ScaledRun | None = None,
    idle_time_fraction: float = 0.95,
    session_seconds: float = 3600.0,
    benchmarks: tuple[BenchmarkSpec, ...] = ALL_BENCHMARKS,
) -> dict[str, dict[str, float]]:
    """Fig. 10: total memory energy split into active and idle components.

    Active power comes from the cycle simulator (per-scheme average across
    benchmarks); idle power from the self-refresh model at each scheme's
    refresh period; the duty cycle is the paper's 95% idle.
    """
    run = run or ScaledRun()
    active = fig9_active_metrics(run, benchmarks)
    # Recover absolute baseline active power to de-normalize.
    base_power = _average_active_power(run, benchmarks)
    calc = DramPowerCalculator()
    periods = {"baseline": 0.064, "secded": 0.064, "ecc6": 1.024, "mecc": 1.024}
    out: dict[str, dict[str, float]] = {}
    for policy, period in periods.items():
        split = total_energy_split(
            active_power_w=base_power * active[policy]["power"],
            idle_power_w=calc.idle_power(period).total,
            total_time_s=session_seconds,
            idle_time_fraction=idle_time_fraction,
        )
        out[policy] = {
            "active_j": split.active_energy_j,
            "idle_j": split.idle_energy_j,
            "total_j": split.total_j,
        }
    base_total = out["baseline"]["total_j"]
    for row in out.values():
        row["total_norm"] = row["total_j"] / base_total
    return out


def _average_active_power(run: ScaledRun, benchmarks) -> float:
    suites = run_policy_suites(tuple(benchmarks), run, policies=("baseline",))
    total = 0.0
    for spec in benchmarks:
        result = suites[spec.name]["baseline"]
        total += result.energy.total / (result.cycles / PROC_HZ)
    return total / len(benchmarks)


def fig1_usage_timeline(
    total_s: float = 600.0,
    active_power_w: float | None = None,
    seed: int = 7,
):
    """Fig. 1: normalized power over a bursty usage period.

    Returns ``(samples, normalization)`` where samples are per-phase
    ``PhasePower`` entries and the normalization is the active power.
    """
    calc = DramPowerCalculator()
    if active_power_w is None:
        # ~9x idle, the ratio in the paper's Fig. 1 caption.
        active_power_w = 9.0 * calc.idle_power(0.064).total
    model = UsageModel(seed=seed)
    evaluator = SessionEvaluator(calculator=calc, active_power_w=active_power_w)
    samples = evaluator.evaluate(model.phases(total_s))
    return samples, active_power_w


# ---------------------------------------------------------------------------
# MECC-enhancement exhibits (Figs. 11, 14) and Table III
# ---------------------------------------------------------------------------


def fig11_mdt_tracking(
    benchmarks: tuple[BenchmarkSpec, ...] = ALL_BENCHMARKS,
    coverage_factor: float = 3.0,
    mdt_entries: int = 1024,
) -> dict[str, dict[str, float]]:
    """Fig. 11: memory tracked by a 1K-entry MDT, per benchmark (MB).

    Runs the address-only generator over each benchmark's full footprint
    (``coverage_factor`` accesses per footprint line) and reports the MB
    the MDT would scan on idle entry, plus the resulting ECC-Upgrade time
    (the Sec. VI-A 400 ms -> 50 ms claim).
    """
    from repro.core.mdt import MemoryDowngradeTracker

    device = DramDevice()
    out: dict[str, dict[str, float]] = {}
    for spec in benchmarks:
        mdt = MemoryDowngradeTracker(device.org, entries=mdt_entries)
        n_accesses = int(coverage_factor * spec.footprint_bytes / 64)
        generator = spec.generator()
        for address in generator.iter_read_addresses(n_accesses):
            mdt.record_downgrade(address)
        tracked_mb = mdt.tracked_bytes / (1 << 20)
        out[spec.name] = {
            "tracked_mb": tracked_mb,
            "footprint_mb": spec.footprint_mb,
            "upgrade_ms": 1000.0
            * device.upgrade_seconds_for_regions(mdt.marked_count, mdt.region_bytes),
        }
    out["ALL"] = {
        "tracked_mb": sum(v["tracked_mb"] for v in out.values()) / len(out),
        "footprint_mb": sum(b.footprint_mb for b in benchmarks) / len(benchmarks),
        "upgrade_ms": sum(v["upgrade_ms"] for v in out.values()) / len(out),
    }
    return out


def fig14_smd_disabled(
    run: ScaledRun | None = None,
    benchmarks: tuple[BenchmarkSpec, ...] = ALL_BENCHMARKS,
    threshold_mpkc: float = DEFAULT_THRESHOLD_MPKC,
) -> dict[str, float]:
    """Fig. 14: fraction of execution time with ECC-Downgrade disabled.

    Uses MECC+SMD with the quantum scaled to the run length (the paper's
    64 ms quantum over a 4B-instruction slice).
    """
    run = run or ScaledRun()
    outcomes = run_smd_suite(run, benchmarks, threshold_mpkc=threshold_mpkc)
    return {
        name: outcome.smd_disabled_fraction for name, outcome in outcomes.items()
    }


def table3_characterization(
    run: ScaledRun | None = None,
    benchmarks: tuple[BenchmarkSpec, ...] = ALL_BENCHMARKS,
) -> dict[str, dict[str, float]]:
    """Table III: measured per-class averages (IPC, MPKI, footprint).

    IPC and MPKI are measured from baseline simulation of the scaled
    traces; footprint is the full-scale page count from the benchmark
    models (measured via the address-only path for a sample).
    """
    run = run or ScaledRun()
    suites = run_policy_suites(tuple(benchmarks), run, policies=("baseline",))
    rows: dict[str, dict[str, float]] = {}
    for cls in MpkiClass:
        members = benchmarks_in_class(cls)
        members = [m for m in members if m in benchmarks]
        if not members:
            continue
        ipc = mpki = fp = 0.0
        for spec in members:
            result = suites[spec.name]["baseline"]
            ipc += result.ipc
            mpki += result.mpki
            fp += spec.footprint_mb
        n = len(members)
        rows[cls.value] = {"ipc": ipc / n, "mpki": mpki / n, "footprint_mb": fp / n}
    return rows


def clear_caches() -> None:
    """Drop memoized traces/results (tests use this for isolation)."""
    from repro.analysis.runner import clear_trace_memo

    _result_cache.clear()
    _trace_cache.clear()
    clear_trace_memo()
