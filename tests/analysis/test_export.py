"""Tests for the CSV exporters."""

import csv
import io

import pytest

from repro.analysis.export import EXPORTERS, exhibit_csv, export_all, export_exhibit
from repro.errors import ConfigurationError
from repro.sim.system import ScaledRun

RUN = ScaledRun(instructions=25_000)


class TestCsv:
    def test_table1_csv_parses(self):
        text = exhibit_csv("table1", RUN)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 7
        assert rows[6]["ecc_t"] == "6"
        assert float(rows[6]["system_failure"]) < 1e-8

    def test_fig2_csv(self):
        text = exhibit_csv("fig2", RUN)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) > 20
        assert float(rows[0]["bit_failure_probability"]) < float(
            rows[-1]["bit_failure_probability"]
        )

    def test_fig7_csv(self):
        from repro.analysis.experiments import clear_caches

        clear_caches()
        text = exhibit_csv("fig7", RUN)
        rows = list(csv.DictReader(io.StringIO(text)))
        # 28 benchmarks + 3 per-class geomeans + the ALL geomean.
        assert len(rows) == 32
        assert rows[-1]["benchmark"] == "ALL"
        for row in rows:
            assert 0.5 < float(row["mecc"]) <= 1.01

    def test_unknown_exhibit(self):
        with pytest.raises(ConfigurationError):
            exhibit_csv("fig99", RUN)

    def test_export_to_file(self, tmp_path):
        path = tmp_path / "t1.csv"
        export_exhibit("table1", str(path), RUN)
        assert path.read_text().startswith("ecc_t,")

    def test_export_all(self, tmp_path):
        # Restrict to the cheap exhibits for speed by checking coverage
        # of the registry rather than running the heavy ones twice.
        assert set(EXPORTERS) >= {"table1", "fig2", "fig8"}
        paths = export_all(str(tmp_path / "out"), RUN)
        assert len(paths) == len(EXPORTERS)
        for path in paths:
            with open(path) as stream:
                assert stream.readline().strip()
