"""Asyncio dispatch coordinator: leases, heartbeats, worker health.

The coordinator owns a :class:`repro.dispatch.ledger.JobLedger` and a
JSON-lines TCP server (same asyncio pattern as
:class:`repro.fleet.service.AdvisoryService`).  Workers connect, say
``hello`` (carrying their code fingerprint — mismatched workers are
rejected, since their results would be cached under wrong keys), then
pull leases, stream heartbeats while computing, and deliver results.

Health tracking per worker:

* **Heartbeats** — every heartbeat renews the job lease and the
  worker's ``last_seen``.  A connection silent past the lease interval
  is treated as lost: its leases requeue immediately.
* **Consecutive-failure quarantine** — ``quarantine_after`` job
  failures in a row stop a worker from receiving further leases (it is
  drained on its next request); one success resets the streak.
* **Slow-worker eviction** — once enough jobs have completed to
  estimate a median wall time, a lease held longer than
  ``max(slow_grace_s, slow_factor * median)`` is evicted and requeued
  on a healthy worker.  The slow worker's eventual result is then
  either a counted duplicate or — if it arrives first — a perfectly
  good commit (first result wins either way).

The coordinator never crashes the sweep: when every live worker is gone
and nothing is mid-flight, :meth:`Coordinator.run` returns with the
unfinished jobs still ``pending`` so the caller (the experiment
runner's dispatch backend) can degrade to local execution.
"""

from __future__ import annotations

import asyncio
import logging
import os
import random
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.dispatch import protocol
from repro.dispatch.ledger import JobLedger, JobState
from repro.errors import ConfigurationError, DispatchProtocolError

logger = logging.getLogger("repro.dispatch")


@dataclass(frozen=True)
class DispatchConfig:
    """Knobs for the dispatch backend, coordinator, and spawned workers.

    Environment overrides (all optional) use the ``REPRO_DISPATCH_*``
    prefix; see :meth:`from_env`.
    """

    host: str = "127.0.0.1"
    port: int = 0
    #: Local worker processes the backend spawns (0 = external workers
    #: only, e.g. started with ``repro workers --connect``).
    workers: int = 2
    lease_s: float = 10.0
    heartbeat_s: float = 2.0
    #: How long the backend waits for the first worker before degrading
    #: to local execution.
    worker_wait_s: float = 15.0
    #: How long the coordinator keeps running with zero live workers
    #: and jobs outstanding before giving the jobs back.
    stall_grace_s: float = 5.0
    retries: int = 2
    retry_backoff_s: float = 0.05
    max_requeues: int = 10
    quarantine_after: int = 3
    slow_factor: float = 8.0
    slow_grace_s: float = 5.0
    #: Completed-job wall samples needed before eviction arms.
    min_wall_samples: int = 3
    #: Durable ledger journal path (None = in-memory only).
    ledger_path: str | None = None
    #: Fault injection for spawned workers (chaos campaigns): one
    #: ``(mode, arg)`` pair per spawned worker index; missing entries
    #: mean healthy.  See ``repro.dispatch.protocol.FAULT_MODES``.
    worker_faults: tuple = ()

    @classmethod
    def from_env(cls, **overrides) -> "DispatchConfig":
        """Build a config from ``REPRO_DISPATCH_*`` variables."""

        def _get(name: str, cast, default):
            raw = os.environ.get(f"REPRO_DISPATCH_{name}")
            return cast(raw) if raw else default

        values = {
            "host": _get("HOST", str, cls.host),
            "port": _get("PORT", int, cls.port),
            "workers": _get("WORKERS", int, cls.workers),
            "lease_s": _get("LEASE_S", float, cls.lease_s),
            "heartbeat_s": _get("HEARTBEAT_S", float, cls.heartbeat_s),
            "worker_wait_s": _get("WORKER_WAIT_S", float, cls.worker_wait_s),
            "stall_grace_s": _get("STALL_GRACE_S", float, cls.stall_grace_s),
            "retries": _get("RETRIES", int, cls.retries),
            "retry_backoff_s": _get("RETRY_BACKOFF_S", float, cls.retry_backoff_s),
            "max_requeues": _get("MAX_REQUEUES", int, cls.max_requeues),
            "quarantine_after": _get("QUARANTINE_AFTER", int, cls.quarantine_after),
            "slow_factor": _get("SLOW_FACTOR", float, cls.slow_factor),
            "slow_grace_s": _get("SLOW_GRACE_S", float, cls.slow_grace_s),
            "ledger_path": os.environ.get("REPRO_DISPATCH_LEDGER") or None,
        }
        values.update(overrides)
        return cls(**values)

    def validate(self) -> None:
        if self.lease_s <= 0 or self.heartbeat_s <= 0:
            raise ConfigurationError("lease_s and heartbeat_s must be positive")
        if self.heartbeat_s >= self.lease_s:
            raise ConfigurationError(
                "heartbeat_s must be shorter than lease_s (a lease must "
                "survive at least one missed heartbeat)"
            )
        if self.workers < 0:
            raise ConfigurationError("workers must be >= 0")
        if self.quarantine_after < 1:
            raise ConfigurationError("quarantine_after must be >= 1")
        if self.slow_factor <= 1:
            raise ConfigurationError("slow_factor must be > 1")


@dataclass
class WorkerInfo:
    """Connection-scoped health record for one registered worker."""

    worker_id: str
    pid: int
    joined_at: float
    last_seen: float
    connected: bool = True
    jobs_done: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    quarantined: bool = False
    evicted: bool = False
    #: The coordinator told this worker to drain; its disconnect is a
    #: clean exit, not a loss.
    drained: bool = False
    current_job: int | None = None
    job_started: float | None = None
    wall_total: float = 0.0

    @property
    def live(self) -> bool:
        """Eligible for new leases."""
        return self.connected and not self.quarantined and not self.evicted

    def as_dict(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "pid": self.pid,
            "connected": self.connected,
            "jobs_done": self.jobs_done,
            "failures": self.failures,
            "quarantined": self.quarantined,
            "evicted": self.evicted,
            "wall_total_s": self.wall_total,
        }


class Coordinator:
    """Serve leases for one sweep's jobs and collect the results.

    Args:
        config: dispatch knobs (validated here).
        code_version: the runner's code fingerprint; workers whose
            fingerprint differs are rejected at registration.
        on_commit: callback ``(job_id, payload, wall_s)`` fired exactly
            once per job, on the first result delivery.
        tracer: optional :class:`repro.obs.trace.EventTracer`; the
            coordinator emits ``dispatch.*`` control-plane events.
        rng / clock: injectable randomness and time for tests.
    """

    def __init__(
        self,
        config: DispatchConfig,
        code_version: str,
        on_commit: Callable[[int, dict, float], None] | None = None,
        tracer=None,
        rng: random.Random | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        config.validate()
        self.config = config
        self.code_version = code_version
        self.on_commit = on_commit
        self.tracer = tracer
        self._clock = clock
        self.ledger = JobLedger(
            retries=config.retries,
            lease_s=config.lease_s,
            max_requeues=config.max_requeues,
            retry_backoff_s=config.retry_backoff_s,
            path=config.ledger_path,
            rng=rng,
            clock=clock,
        )
        self.workers: dict[str, WorkerInfo] = {}
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._wall_samples: list[float] = []
        self._client_writers: set[asyncio.StreamWriter] = set()
        self.host: str | None = None
        self.port: int | None = None
        # -- counters ----------------------------------------------------------
        self.workers_joined = 0
        self.workers_rejected = 0
        self.workers_lost = 0
        self.workers_quarantined = 0
        self.workers_evicted = 0
        self.workers_peak = 0
        self.heartbeats = 0

    # -- trace ------------------------------------------------------------------

    def _emit(self, kind: str, **data) -> None:
        if self.tracer is not None:
            self.tracer.emit("dispatch", kind, **data)

    # -- job loading -------------------------------------------------------------

    def load_jobs(self, jobs: list[tuple[int, object, str, str]]) -> None:
        """Register ``(job_id, spec, key, label)`` tuples with the ledger."""
        for job_id, spec, key, label in jobs:
            self.ledger.register(job_id, spec, key, label)

    # -- server lifecycle --------------------------------------------------------

    async def bind(self) -> tuple[str, int]:
        """Start listening; returns the bound (host, port).

        Raises ``OSError`` when the address is unavailable — callers
        translate that into graceful local fallback.
        """
        self._server = await asyncio.start_server(
            self._handle_worker,
            self.config.host,
            self.config.port,
            limit=protocol.STREAM_LIMIT,
        )
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]
        self._emit("bind", host=self.host, port=self.port)
        return self.host, self.port

    async def close(self) -> None:
        """Stop listening and close every worker connection."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._client_writers):
            writer.close()
        for writer in list(self._client_writers):
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass
        self._client_writers.clear()
        self.ledger.close()

    def live_workers(self) -> list[WorkerInfo]:
        return [w for w in self.workers.values() if w.live]

    def _progress_possible(self) -> bool:
        """Can any outstanding job still be computed remotely?"""
        if any(w.live for w in self.workers.values()):
            return True
        # A quarantined/evicted worker mid-compute can still deliver.
        return any(
            w.connected and w.current_job is not None
            for w in self.workers.values()
        )

    async def run(self, tick_s: float | None = None) -> None:
        """Reap leases until every job is terminal or progress stalls.

        On return the ledger holds the final state: ``done`` + ``failed``
        everywhere on success, or leftover ``pending`` jobs when all
        workers died (the dispatch backend runs those locally).
        """
        tick = tick_s if tick_s is not None else min(self.config.lease_s / 4, 0.25)
        stalled_since: float | None = None
        try:
            while not self.ledger.done:
                self._reap()
                if self.ledger.done:
                    break
                if self._progress_possible():
                    stalled_since = None
                else:
                    now = self._clock()
                    if stalled_since is None:
                        stalled_since = now
                    elif now - stalled_since >= self.config.stall_grace_s:
                        logger.warning(
                            "dispatch stalled: no live workers and %d job(s) "
                            "outstanding; returning them for local execution",
                            self.ledger.outstanding,
                        )
                        self._emit("stall", outstanding=self.ledger.outstanding)
                        break
                await asyncio.sleep(tick)
        finally:
            await self.close()

    def _reap(self) -> None:
        """One maintenance pass: expire silent leases, evict slow ones."""
        for job in self.ledger.expire_due():
            self._emit("lease-expired", job_id=job.job_id, label=job.label)
            logger.info("lease expired for %s; requeued", job.label)
            holder = self._holder_of(job.job_id)
            if holder is not None:
                holder.current_job = None
        if len(self._wall_samples) >= self.config.min_wall_samples:
            median = statistics.median(self._wall_samples)
            threshold = max(self.config.slow_grace_s, self.config.slow_factor * median)
            now = self._clock()
            for worker in self.workers.values():
                if (
                    worker.connected
                    and worker.current_job is not None
                    and worker.job_started is not None
                    and now - worker.job_started > threshold
                ):
                    job = self.ledger.evict(worker.current_job, "slow-worker")
                    if job is not None:
                        worker.evicted = True
                        worker.current_job = None
                        self.workers_evicted += 1
                        self._emit(
                            "slow-evict",
                            worker=worker.worker_id,
                            job_id=job.job_id,
                            threshold_s=threshold,
                        )
                        logger.warning(
                            "evicted slow worker %s (job %s held > %.2fs); requeued",
                            worker.worker_id,
                            job.label,
                            threshold,
                        )

    def _holder_of(self, job_id: int) -> WorkerInfo | None:
        for worker in self.workers.values():
            if worker.current_job == job_id:
                return worker
        return None

    # -- connection handler ------------------------------------------------------

    async def _handle_worker(self, reader, writer) -> None:
        self._client_writers.add(writer)
        worker: WorkerInfo | None = None
        try:
            worker = await self._register(reader, writer)
            if worker is None:
                return
            await self._serve_worker(worker, reader, writer)
        except (
            DispatchProtocolError,
            ConnectionResetError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            TimeoutError,
        ) as exc:
            if worker is not None:
                logger.info("worker %s connection error: %s", worker.worker_id, exc)
        finally:
            if worker is not None and worker.connected:
                worker.connected = False
                worker.current_job = None
                if not self._draining and not worker.drained:
                    self.workers_lost += 1
                    self._emit("worker-lost", worker=worker.worker_id)
                released = self.ledger.release_worker(
                    worker.worker_id, "worker-disconnected"
                )
                for job in released:
                    self._emit("requeue", job_id=job.job_id, label=job.label)
            self._client_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _register(self, reader, writer) -> WorkerInfo | None:
        hello = await protocol.recv_message(reader, timeout=self.config.lease_s)
        if hello is None or hello.get("type") != "hello":
            raise DispatchProtocolError("expected hello as the first message")
        worker_id = str(hello.get("worker") or f"worker-{len(self.workers)}")
        reason = None
        if hello.get("protocol") != protocol.PROTOCOL_VERSION:
            reason = (
                f"protocol mismatch: coordinator speaks "
                f"v{protocol.PROTOCOL_VERSION}, worker spoke "
                f"v{hello.get('protocol')}"
            )
        elif hello.get("code_version") != self.code_version:
            reason = (
                "code-version mismatch: results would be cached under "
                f"wrong keys (coordinator {self.code_version}, worker "
                f"{hello.get('code_version')})"
            )
        elif worker_id in self.workers and self.workers[worker_id].connected:
            reason = f"worker id {worker_id!r} is already connected"
        if reason is not None:
            self.workers_rejected += 1
            self._emit("worker-rejected", worker=worker_id, reason=reason)
            logger.warning("rejected worker %s: %s", worker_id, reason)
            await protocol.send_message(writer, type="reject", reason=reason)
            return None
        now = self._clock()
        worker = WorkerInfo(
            worker_id=worker_id,
            pid=int(hello.get("pid", 0)),
            joined_at=now,
            last_seen=now,
        )
        self.workers[worker_id] = worker
        self.workers_joined += 1
        self.workers_peak = max(
            self.workers_peak,
            sum(1 for w in self.workers.values() if w.connected),
        )
        self._emit("worker-joined", worker=worker_id, pid=worker.pid)
        await protocol.send_message(
            writer,
            type="welcome",
            protocol=protocol.PROTOCOL_VERSION,
            heartbeat_s=self.config.heartbeat_s,
            lease_s=self.config.lease_s,
        )
        return worker

    async def _serve_worker(self, worker: WorkerInfo, reader, writer) -> None:
        # A healthy worker heartbeats every heartbeat_s while computing;
        # silence past the lease interval means the worker is gone.
        silence_timeout = self.config.lease_s + self.config.heartbeat_s
        while True:
            message = await protocol.recv_message(reader, timeout=silence_timeout)
            if message is None:
                return
            worker.last_seen = self._clock()
            kind = message.get("type")
            if kind == "request":
                await self._grant(worker, writer)
            elif kind == "heartbeat":
                self.heartbeats += 1
                job_id = message.get("job_id")
                if isinstance(job_id, int):
                    self.ledger.renew(job_id, worker.worker_id)
            elif kind == "result":
                await self._receive_result(worker, writer, message)
            else:
                raise DispatchProtocolError(f"unexpected message type {kind!r}")

    async def _grant(self, worker: WorkerInfo, writer) -> None:
        if self._draining or not worker.live:
            worker.drained = True
            await protocol.send_message(writer, type="drain")
            return
        job = self.ledger.next_lease(worker.worker_id)
        if job is not None:
            worker.current_job = job.job_id
            worker.job_started = self._clock()
            self._emit("lease", job_id=job.job_id, label=job.label,
                       worker=worker.worker_id, attempt=job.attempts)
            await protocol.send_message(
                writer,
                type="lease",
                job_id=job.job_id,
                key=job.key,
                label=job.label,
                spec=protocol.encode_spec(job.spec),
                lease_s=self.config.lease_s,
            )
        elif self.ledger.outstanding == 0:
            worker.drained = True
            await protocol.send_message(writer, type="drain")
        else:
            # Jobs exist but none is eligible right now (backoff window
            # or leased elsewhere); ask the worker to poll again soon.
            wait = self.ledger.next_eligible_in()
            wait_s = min(wait, 0.5) if wait is not None else 0.2
            await protocol.send_message(writer, type="idle", wait_s=max(wait_s, 0.05))

    async def _receive_result(self, worker: WorkerInfo, writer, message: dict) -> None:
        job_id = message.get("job_id")
        if not isinstance(job_id, int) or job_id not in self.ledger.jobs:
            raise DispatchProtocolError(f"result for unknown job {job_id!r}")
        if worker.current_job == job_id:
            worker.current_job = None
            worker.job_started = None
        if message.get("ok"):
            payload = message.get("payload")
            if not isinstance(payload, dict):
                raise DispatchProtocolError("ok result without a payload block")
            wall_s = float(payload.get("wall_s", 0.0))
            committed = self.ledger.commit(job_id, worker.worker_id, payload, wall_s)
            if committed:
                worker.jobs_done += 1
                worker.consecutive_failures = 0
                worker.wall_total += wall_s
                self._wall_samples.append(wall_s)
                self._emit("commit", job_id=job_id, worker=worker.worker_id,
                           wall_s=wall_s)
                if self.on_commit is not None:
                    self.on_commit(job_id, payload, wall_s)
            else:
                self._emit("duplicate", job_id=job_id, worker=worker.worker_id)
                logger.info(
                    "duplicate result for job %d from %s (already committed)",
                    job_id,
                    worker.worker_id,
                )
            await protocol.send_message(
                writer, type="ack", job_id=job_id, duplicate=not committed
            )
        else:
            error = str(message.get("error", "unknown worker error"))
            worker.failures += 1
            worker.consecutive_failures += 1
            state = self.ledger.report_failure(job_id, worker.worker_id, error)
            self._emit("job-failed", job_id=job_id, worker=worker.worker_id,
                       error=error, terminal=state is JobState.FAILED)
            if (
                not worker.quarantined
                and worker.consecutive_failures >= self.config.quarantine_after
            ):
                worker.quarantined = True
                self.workers_quarantined += 1
                self._emit("quarantine", worker=worker.worker_id,
                           consecutive_failures=worker.consecutive_failures)
                logger.warning(
                    "quarantined worker %s after %d consecutive failures",
                    worker.worker_id,
                    worker.consecutive_failures,
                )
            await protocol.send_message(
                writer, type="ack", job_id=job_id, duplicate=False
            )

    # -- observability -----------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Scalar counters for the ``dispatch.*`` metrics namespace."""
        return {
            **self.ledger.summary(),
            "workers_joined": self.workers_joined,
            "workers_rejected": self.workers_rejected,
            "workers_lost": self.workers_lost,
            "workers_quarantined": self.workers_quarantined,
            "workers_evicted": self.workers_evicted,
            "workers_peak": self.workers_peak,
            "heartbeats": self.heartbeats,
        }

    def summary(self) -> dict:
        """Manifest block: counters plus per-worker health records."""
        return {
            **self.metrics_snapshot(),
            "workers": [w.as_dict() for w in self.workers.values()],
        }
