"""Trace-driven cycle engine (USIMM-style, paper Sec. IV-A).

Core model: in-order, 2-wide retire at 1.6 GHz (paper Table II).  Gap
(non-memory) instructions retire at the trace's calibrated non-memory CPI;
a demand read blocks retirement until its data returns from the memory
controller *plus* the active ECC scheme's decode latency — the mechanism
behind the paper's entire performance story.  Dirty write-backs are posted
to the controller's write queue without blocking.

ECC behaviour is injected via an :class:`repro.core.policy.EccPolicy`;
MECC's downgrade write-backs enter the same write queue and therefore cost
real bandwidth and power.
"""

from __future__ import annotations

from repro.core.policy import EccPolicy, NoEccPolicy
from repro.dram.config import PROC_HZ, DramOrganization, DramTimings
from repro.dram.controller import MemoryController
from repro.power.energy import ActiveEnergyModel, CodecActivity
from repro.types import MemoryOp, SimResult
from repro.workloads.trace import Trace


class SimulationEngine:
    """Run traces against one ECC policy and one memory controller.

    Args:
        policy: the ECC policy under evaluation.
        controller: the memory controller (fresh one by default).
        energy_model: converts utilization + codec events to joules.
    """

    def __init__(
        self,
        policy: EccPolicy | None = None,
        controller: MemoryController | None = None,
        energy_model: ActiveEnergyModel | None = None,
        org: DramOrganization | None = None,
        timings: DramTimings | None = None,
        tracer=None,
        invariants=None,
    ):
        self.policy = policy or NoEccPolicy()
        self.controller = controller or MemoryController(org=org, timings=timings)
        self.energy_model = energy_model or ActiveEnergyModel()
        # Observability (repro.obs): the tracer and invariant suite are
        # propagated to the policy (which forwards them to the MECC core)
        # and the memory controller.  Both default to None — the per-access
        # hot loop below is untouched and emit sites stay dormant.
        self.tracer = tracer
        self.invariants = invariants
        self.policy.attach_observer(tracer, invariants)
        self.controller.tracer = tracer

    def run(self, trace: Trace) -> SimResult:
        """Simulate the whole trace; returns the run summary.

        The engine is reusable: each call starts from a pristine
        controller and policy (per-run stats and per-line ECC state are
        reset), so back-to-back runs of one engine match runs on fresh
        engines instead of accumulating counters across runs.
        """
        policy = self.policy
        controller = self.controller
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "engine",
                "run_start",
                trace=trace.name,
                policy=policy.name,
                records=len(trace.records),
                instructions=trace.instructions,
            )
        controller.reset()
        policy.reset()
        cpi = trace.nonmem_cpi
        retire = 0.0  # retirement clock, processor cycles
        reads = 0
        read_latency_sum = 0
        records = trace.records
        n_records = len(records)
        index = 0
        while index < n_records:
            record = records[index]
            if record.gap:
                retire += record.gap * cpi
            now = int(retire)
            if record.op is MemoryOp.READ:
                action = policy.on_read(record.address, now)
                data_done = controller.read(record.address, now)
                # Cycle accounting is integral: only the retirement clock
                # carries the sub-cycle remainder of gap retirement.
                completion = int(data_done + action.decode_cycles)
                if action.writeback:
                    # ECC-Downgrade re-encode: off the critical path.
                    controller.write(record.address, completion)
                reads += 1
                read_latency_sum += completion - now
                retire = float(completion)
                index += 1
            else:
                # Coalesce the run of consecutive write-backs: writes never
                # move the retirement clock, so the per-record arithmetic
                # below reproduces the scalar loop cycle for cycle while
                # the policy/controller dispatch is paid once per run.
                write_addresses = [record.address]
                write_nows = [now]
                index += 1
                while index < n_records:
                    record = records[index]
                    if record.op is MemoryOp.READ:
                        break
                    if record.gap:
                        retire += record.gap * cpi
                        now = int(retire)
                    write_addresses.append(record.address)
                    write_nows.append(now)
                    index += 1
                policy.on_write_batch(write_addresses, write_nows)
                controller.write_batch(write_addresses, write_nows)
        total_cycles = max(1, int(retire))
        policy.on_run_end(total_cycles)
        if tracer is not None:
            tracer.emit(
                "engine",
                "run_end",
                cycle=total_cycles,
                reads=reads,
                writes=controller.stats.writes,
                downgrades=policy.downgrades,
            )
        return self._summarize(trace, total_cycles, reads, read_latency_sum)

    def _summarize(
        self, trace: Trace, total_cycles: int, reads: int, read_latency_sum: int
    ) -> SimResult:
        policy = self.policy
        stats = self.controller.stats
        util = self.controller.utilization(total_cycles)
        duration_s = total_cycles / PROC_HZ
        codec = CodecActivity(
            weak_decodes=policy.weak_decodes,
            strong_decodes=policy.strong_decodes,
            encodes=stats.writes,
        )
        energy = self.energy_model.energy(util, duration_s, codec)
        # SMD keeps the slow (1 s) refresh while downgrades are disabled:
        # scale the auto-refresh energy for that fraction of time.
        slow_frac = policy.slow_refresh_fraction
        if slow_frac > 0.0:
            factor = (1.0 - slow_frac) + slow_frac / 16.0
            energy.refresh *= factor
        return SimResult(
            instructions=trace.instructions,
            cycles=total_cycles,
            reads=reads,
            writes=stats.writes,
            downgrades=policy.downgrades,
            strong_decodes=policy.strong_decodes,
            weak_decodes=policy.weak_decodes,
            energy=energy,
            read_latency_sum=read_latency_sum,
        )


def simulate(
    trace: Trace,
    policy: EccPolicy | None = None,
    org: DramOrganization | None = None,
    timings: DramTimings | None = None,
    tracer=None,
    invariants=None,
) -> SimResult:
    """Convenience one-shot simulation with fresh engine state."""
    engine = SimulationEngine(
        policy=policy, org=org, timings=timings, tracer=tracer, invariants=invariants
    )
    return engine.run(trace)
