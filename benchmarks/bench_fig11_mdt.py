"""Fig. 11: memory tracked by Memory Downgrade Tracking (1K regions).

Paper: the average footprint (~128 MB) is 8x smaller than the 1 GB
memory, so MDT cuts the ECC-Upgrade pass from ~400 ms to ~50 ms and the
encoder energy by 8x.  A 128-byte table suffices.
"""

import pytest

from repro.analysis.experiments import fig11_mdt_tracking
from repro.analysis.tables import format_table
from repro.core.mdt import MemoryDowngradeTracker
from repro.workloads.spec import ALL_BENCHMARKS


def test_fig11_mdt_tracked_memory(benchmark, show):
    out = benchmark.pedantic(
        fig11_mdt_tracking, kwargs={"coverage_factor": 2.0}, rounds=1, iterations=1
    )
    show(format_table(
        ["benchmark", "footprint MB", "MDT-tracked MB", "upgrade ms"],
        [
            [name, v["footprint_mb"], v["tracked_mb"], v["upgrade_ms"]]
            for name, v in out.items()
        ],
        title="Fig. 11 — MDT-estimated accessed memory (1K x 1MB regions)",
    ))
    # Tracked size tracks the footprint (within region rounding).
    for spec in ALL_BENCHMARKS:
        row = out[spec.name]
        assert row["tracked_mb"] >= 0.8 * min(row["footprint_mb"], 1024)
        assert row["tracked_mb"] <= 1.5 * row["footprint_mb"] + 8
    # The headline: average upgrade cost is far below the 400 ms full scan,
    # in the ~50 ms regime.
    avg = out["ALL"]
    assert avg["upgrade_ms"] < 150.0
    assert avg["tracked_mb"] < 1024 / 3
    # And the table itself is 128 bytes.
    assert MemoryDowngradeTracker().storage_bytes == 128
