"""Tests for statistics helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.stats import arithmetic_mean, geometric_mean, normalize


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_identity(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_below_arithmetic(self):
        values = [0.5, 1.0, 2.0, 4.0]
        assert geometric_mean(values) <= arithmetic_mean(values)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([])

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])


class TestNormalize:
    def test_divides_by_baseline(self):
        out = normalize({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_missing_baseline(self):
        with pytest.raises(ConfigurationError):
            normalize({"a": 1.0}, "z")

    def test_zero_baseline(self):
        with pytest.raises(ConfigurationError):
            normalize({"a": 0.0}, "a")


class TestArithmeticMean:
    def test_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            arithmetic_mean([])


class TestSummarizeHistogram:
    def test_known_values(self):
        from repro.sim.stats import summarize_histogram

        out = summarize_histogram({1: 10, 3: 2})
        assert out["events"] == 12
        assert out["weighted_total"] == 16
        assert out["mean"] == pytest.approx(16 / 12)
        assert out["max"] == 3

    def test_empty_histogram(self):
        from repro.sim.stats import summarize_histogram

        out = summarize_histogram({})
        assert out == {"events": 0, "weighted_total": 0, "mean": 0.0, "max": 0}

    def test_rejects_negative_counts(self):
        from repro.sim.stats import summarize_histogram

        with pytest.raises(ConfigurationError, match="counts must be non-negative"):
            summarize_histogram({2: -1})

    def test_rejects_negative_values(self):
        from repro.sim.stats import summarize_histogram

        with pytest.raises(ConfigurationError, match="values must be non-negative"):
            summarize_histogram({-1: 3})

    def test_max_ignores_zero_count_entries(self):
        from repro.sim.stats import summarize_histogram

        out = summarize_histogram({1: 4, 9: 0})
        assert out["max"] == 1
        assert out["events"] == 4
        assert out["weighted_total"] == 4

    def test_all_zero_counts_summarize_like_empty(self):
        from repro.sim.stats import summarize_histogram

        out = summarize_histogram({0: 0, 5: 0})
        assert out == {"events": 0, "weighted_total": 0, "mean": 0.0, "max": 0}
