"""Sparse functional memory storing real morphable codewords.

Lines are materialized lazily: untouched memory is represented by its
deterministic background pattern (zeros encoded in strong mode), so a
1 GB space costs nothing until written.  Reads decode the stored word
with the real :class:`repro.ecc.layout.LineCodec`, classify the outcome,
and (for MECC) perform the ECC-Downgrade re-encode.

Fault injection happens lazily too: each line remembers when it was last
"touched" (encoded or scrubbed); on the next access, the fault process
samples the flips accumulated over the elapsed simulated time at the
refresh period(s) in force.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ecc.layout import LineCodec
from repro.errors import ConfigurationError, DecodingError, ModeBitError
from repro.functional.faults import FaultProcess, LineFaultState
from repro.types import EccMode


@dataclass
class IntegrityCounters:
    """Outcome counts across all functional accesses."""

    reads: int = 0
    writes: int = 0
    corrected_bits: int = 0
    lines_with_correction: int = 0
    detected_uncorrectable: int = 0
    silent_corruptions: int = 0
    trial_decodes: int = 0
    downgrades: int = 0
    upgrades: int = 0

    @property
    def data_loss_events(self) -> int:
        return self.detected_uncorrectable + self.silent_corruptions


@dataclass
class _StoredLine:
    """One materialized line: its codeword and fault bookkeeping."""

    stored: int
    mode: EccMode
    last_touched_s: float
    expected_data: int  # ground truth for silent-corruption detection
    fault_state: LineFaultState | None = None


class FunctionalMemory:
    """A data-holding memory under a refresh period and a fault process.

    Args:
        codec: the morphable line codec (default: the paper's 64B/ECC-6).
        faults: the fault process; None disables fault injection.
        line_bytes: line granularity.
    """

    def __init__(
        self,
        codec: LineCodec | None = None,
        faults: FaultProcess | None = None,
        line_bytes: int = 64,
    ):
        self.codec = codec or LineCodec(line_bytes=line_bytes)
        self.faults = faults
        self.line_bytes = line_bytes
        self.counters = IntegrityCounters()
        self.refresh_period_s = 0.064
        self._now_s = 0.0
        self._lines: dict[int, _StoredLine] = {}

    # -- time & refresh ---------------------------------------------------------

    @property
    def now_s(self) -> float:
        return self._now_s

    def advance_time(self, seconds: float) -> None:
        """Advance the simulated clock; faults accrue lazily per line."""
        if seconds < 0:
            raise ConfigurationError("cannot advance time backwards")
        self._now_s += seconds

    def set_refresh_period(self, period_s: float) -> None:
        """Change the refresh period; accrued faults are settled first.

        Settling matters: flips that accumulated at the *old* period must
        not be re-evaluated at the new one.
        """
        if period_s <= 0:
            raise ConfigurationError("refresh period must be positive")
        for address in list(self._lines):
            self._settle_faults(address)
        self.refresh_period_s = period_s

    # -- data path -----------------------------------------------------------------

    def write(self, address: int, data: int, mode: EccMode) -> None:
        """Encode and store a line (a write-back from the LLC)."""
        line = self._line_index(address)
        if data < 0 or data >> (8 * self.line_bytes):
            raise ConfigurationError("data does not fit in a line")
        previous = self._lines.get(line)
        fault_state = previous.fault_state if previous is not None else (
            self.faults.line_state() if self.faults is not None else None
        )
        self._lines[line] = _StoredLine(
            stored=self.codec.encode(data, mode),
            mode=mode,
            last_touched_s=self._now_s,
            expected_data=data,
            fault_state=fault_state,
        )
        self.counters.writes += 1

    def read(self, address: int, downgrade: bool = False) -> int | None:
        """Decode a line; optionally ECC-Downgrade it on the way out.

        Returns the data, or ``None`` when the decoder *detected* an
        uncorrectable pattern (data loss, counted).  Silent corruptions
        (decode succeeded with wrong data) are counted via ground truth.
        """
        line = self._line_index(address)
        entry = self._materialize(line)
        self._settle_faults_entry(entry, line)
        self.counters.reads += 1
        try:
            result = self.codec.decode(entry.stored)
        except (DecodingError, ModeBitError) as exc:
            result = exc
        return self._finish_read(entry, result, downgrade)

    def write_batch(self, addresses, datas, mode: EccMode) -> None:
        """Bulk :meth:`write`: one codec ``encode_batch`` for all lines."""
        addresses = list(addresses)
        datas = list(datas)
        if len(addresses) != len(datas):
            raise ConfigurationError("addresses and datas must have equal length")
        stored_words = self.codec.encode_batch(datas, mode)
        for address, data, stored in zip(addresses, datas, stored_words):
            line = self._line_index(address)
            previous = self._lines.get(line)
            fault_state = previous.fault_state if previous is not None else (
                self.faults.line_state() if self.faults is not None else None
            )
            self._lines[line] = _StoredLine(
                stored=stored,
                mode=mode,
                last_touched_s=self._now_s,
                expected_data=data,
                fault_state=fault_state,
            )
        self.counters.writes += len(addresses)

    def read_batch(self, addresses, downgrade: bool = False) -> list[int | None]:
        """Bulk :meth:`read`: settle faults, then one ``decode_batch``.

        The patrol scrubber uses this to sweep every materialized line in
        a single codec pass; per-line outcome accounting is identical to
        :meth:`read`.
        """
        entries = []
        lines = []
        for address in addresses:
            line = self._line_index(address)
            entries.append(self._materialize(line))
            lines.append(line)
        self._settle_faults_batch(entries, lines)
        self.counters.reads += len(entries)
        results = self.codec.decode_batch([entry.stored for entry in entries])
        return [
            self._finish_read(entry, result, downgrade)
            for entry, result in zip(entries, results)
        ]

    def _finish_read(self, entry: _StoredLine, result, downgrade: bool) -> int | None:
        """Shared classification/write-back tail of read and read_batch."""
        if isinstance(result, Exception):
            self.counters.detected_uncorrectable += 1
            return None
        if result.used_trial_decode:
            self.counters.trial_decodes += 1
        if result.errors_corrected:
            self.counters.corrected_bits += result.errors_corrected
            self.counters.lines_with_correction += 1
        if result.data != entry.expected_data:
            self.counters.silent_corruptions += 1
        if result.errors_corrected or (downgrade and result.mode is EccMode.STRONG):
            # Scrub corrected errors back to storage; apply the downgrade.
            new_mode = EccMode.WEAK if downgrade else result.mode
            if downgrade and result.mode is EccMode.STRONG:
                self.counters.downgrades += 1
            entry.stored = self.codec.encode(result.data, new_mode)
            entry.mode = new_mode
            entry.last_touched_s = self._now_s
        return result.data

    def upgrade_line(self, address: int) -> bool:
        """ECC-Upgrade one line (idle-entry scan); False on decode failure."""
        line = self._line_index(address)
        entry = self._materialize(line)
        self._settle_faults_entry(entry, line)
        try:
            result = self.codec.decode(entry.stored)
        except (DecodingError, ModeBitError):
            self.counters.detected_uncorrectable += 1
            return False
        if result.data != entry.expected_data:
            self.counters.silent_corruptions += 1
        if result.mode is EccMode.WEAK:
            self.counters.upgrades += 1
        entry.stored = self.codec.encode(result.data, EccMode.STRONG)
        entry.mode = EccMode.STRONG
        entry.last_touched_s = self._now_s
        return True

    def upgrade_batch(self, addresses) -> list[bool]:
        """Bulk :meth:`upgrade_line`: one settle pass, one decode_batch,
        one encode_batch for every upgradeable line."""
        entries = []
        lines = []
        for address in addresses:
            line = self._line_index(address)
            entries.append(self._materialize(line))
            lines.append(line)
        self._settle_faults_batch(entries, lines)
        results = self.codec.decode_batch([entry.stored for entry in entries])
        out = []
        survivors = []
        datas = []
        for entry, result in zip(entries, results):
            if isinstance(result, Exception):
                self.counters.detected_uncorrectable += 1
                out.append(False)
                continue
            if result.data != entry.expected_data:
                self.counters.silent_corruptions += 1
            if result.mode is EccMode.WEAK:
                self.counters.upgrades += 1
            survivors.append(entry)
            datas.append(result.data)
            out.append(True)
        for entry, stored in zip(
            survivors, self.codec.encode_batch(datas, EccMode.STRONG)
        ):
            entry.stored = stored
            entry.mode = EccMode.STRONG
            entry.last_touched_s = self._now_s
        return out

    def mode_of(self, address: int) -> EccMode:
        line = self._line_index(address)
        if line in self._lines:
            return self._lines[line].mode
        return EccMode.STRONG

    def stored_modes(self) -> dict[int, EccMode]:
        """Line index -> stored ECC mode for every materialized line.

        The data-plane-agreement invariant compares this against the
        controller's :class:`repro.core.line_store.LineEccStore` view.
        """
        return {line: entry.mode for line, entry in self._lines.items()}

    # -- fault injection (chaos harness) ------------------------------------

    def rewrite_mode(self, address: int, mode: EccMode) -> None:
        """Fault-inject: silently re-encode a line under another ECC mode.

        Models the end state of a corrupted conversion: the stored word
        is a *valid* codeword of ``mode``, but nothing else in the system
        was told.  Bypasses all counters by design.
        """
        line = self._line_index(address)
        entry = self._materialize(line)
        self._settle_faults_entry(entry, line)
        entry.stored = self.codec.encode(entry.expected_data, mode)
        entry.mode = mode
        entry.last_touched_s = self._now_s

    def corrupt_stored(self, address: int, positions) -> None:
        """Fault-inject: XOR the given bit positions of the stored word.

        Used by the mode-replica campaigns to flip individual replica
        bits (positions ``[0, mode_bits)`` of the stored layout).
        """
        line = self._line_index(address)
        entry = self._materialize(line)
        for position in positions:
            if not 0 <= position < self.codec.stored_bits:
                raise ConfigurationError(
                    f"bit position {position} outside the stored word"
                )
            entry.stored ^= 1 << position

    @property
    def materialized_lines(self) -> int:
        return len(self._lines)

    def weak_addresses(self) -> list[int]:
        """Byte addresses of all currently weak lines."""
        return [
            line * self.line_bytes
            for line, entry in self._lines.items()
            if entry.mode is EccMode.WEAK
        ]

    # -- internals ---------------------------------------------------------------------

    def _line_index(self, address: int) -> int:
        if address < 0:
            raise ConfigurationError("address must be non-negative")
        return address // self.line_bytes

    def _materialize(self, line: int) -> _StoredLine:
        entry = self._lines.get(line)
        if entry is None:
            entry = _StoredLine(
                stored=self.codec.encode(0, EccMode.STRONG),
                mode=EccMode.STRONG,
                last_touched_s=self._now_s,
                expected_data=0,
            )
            if self.faults is not None:
                entry.fault_state = self.faults.line_state()
            self._lines[line] = entry
        return entry

    def _settle_faults(self, address_line: int) -> None:
        entry = self._lines.get(address_line)
        if entry is not None:
            self._settle_faults_entry(entry, address_line)

    def _settle_faults_entry(self, entry: _StoredLine, line_index: int) -> None:
        """Apply the faults accrued since the line was last touched.

        Retention decay uses the line's *fixed* weak-cell population
        (the same cells decay every slow window, each to its discharge
        value, so unread lines do not accumulate unbounded errors);
        soft-error upsets accumulate with elapsed time.
        """
        if self.faults is None:
            entry.last_touched_s = self._now_s
            return
        elapsed = self._now_s - entry.last_touched_s
        if elapsed <= 0:
            return
        for position in self.faults.sample_soft_error_flips(elapsed):
            entry.stored ^= 1 << position
        if elapsed >= self.refresh_period_s and entry.fault_state is not None:
            f = self.faults.retention_flip_probability(self.refresh_period_s)
            entry.fault_state.extend(f, self.faults.rng_for_line(line_index))
            for position, decay in entry.fault_state.decayed_cells(f):
                if (entry.stored >> position) & 1 != decay:
                    entry.stored ^= 1 << position
        entry.last_touched_s = self._now_s

    def _settle_faults_batch(self, entries, lines) -> None:
        """Batched :meth:`_settle_faults_entry` over many lines.

        The shared soft-error RNG is drawn in entry order (one batched
        call), and per-line weak-cell RNGs are order-independent by
        construction, so a seeded run settles bit-identically to the
        per-line loop.  Timestamps update as each line is collected, so
        duplicate lines in one batch settle once — as sequential calls
        would.
        """
        faults = self.faults
        now = self._now_s
        if faults is None:
            for entry in entries:
                entry.last_touched_s = now
            return
        pending = []
        for entry, line in zip(entries, lines):
            elapsed = now - entry.last_touched_s
            if elapsed <= 0:
                continue
            pending.append((entry, line, elapsed))
            entry.last_touched_s = now
        if not pending:
            return
        flip_lists = faults.sample_soft_error_flips_batch(
            [elapsed for _, _, elapsed in pending]
        )
        period = self.refresh_period_s
        for (entry, line, elapsed), positions in zip(pending, flip_lists):
            for position in positions:
                entry.stored ^= 1 << position
            if elapsed >= period and entry.fault_state is not None:
                f = faults.retention_flip_probability(period)
                entry.fault_state.extend(f, faults.rng_for_line(line))
                for position, decay in entry.fault_state.decayed_cells(f):
                    if (entry.stored >> position) & 1 != decay:
                        entry.stored ^= 1 << position


class NoEccMemory:
    """Raw (ECC-free) functional memory — the strawman comparator.

    Same fault process and clock semantics as :class:`FunctionalMemory`,
    but lines are stored as bare 512-bit values: every flip that lands on
    a stored bit is a silent corruption at the next read.  Quantifies why
    a 1 s refresh period is unusable without ECC.
    """

    def __init__(self, faults: FaultProcess | None = None, line_bytes: int = 64):
        self.faults = faults
        self.line_bytes = line_bytes
        self.counters = IntegrityCounters()
        self.refresh_period_s = 0.064
        self._now_s = 0.0
        self._lines: dict[int, _StoredLine] = {}

    @property
    def now_s(self) -> float:
        return self._now_s

    def advance_time(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigurationError("cannot advance time backwards")
        self._now_s += seconds

    def set_refresh_period(self, period_s: float) -> None:
        if period_s <= 0:
            raise ConfigurationError("refresh period must be positive")
        for line, entry in self._lines.items():
            self._settle(entry, line)
        self.refresh_period_s = period_s

    def write(self, address: int, data: int, mode: EccMode = EccMode.WEAK) -> None:
        if data < 0 or data >> (8 * self.line_bytes):
            raise ConfigurationError("data does not fit in a line")
        line = address // self.line_bytes
        previous = self._lines.get(line)
        fault_state = previous.fault_state if previous is not None else (
            self.faults.line_state() if self.faults is not None else None
        )
        self._lines[line] = _StoredLine(
            stored=data, mode=mode, last_touched_s=self._now_s,
            expected_data=data, fault_state=fault_state,
        )
        self.counters.writes += 1

    def read(self, address: int, downgrade: bool = False) -> int:
        line = address // self.line_bytes
        entry = self._lines.get(line)
        if entry is None:
            entry = _StoredLine(0, EccMode.WEAK, self._now_s, 0)
            if self.faults is not None:
                entry.fault_state = self.faults.line_state()
            self._lines[line] = entry
        self._settle(entry, line)
        self.counters.reads += 1
        if entry.stored != entry.expected_data:
            self.counters.silent_corruptions += 1
        return entry.stored

    def weak_addresses(self) -> list[int]:
        return []

    def upgrade_line(self, address: int) -> bool:
        return True

    def _settle(self, entry: _StoredLine, line_index: int) -> None:
        if self.faults is None:
            entry.last_touched_s = self._now_s
            return
        elapsed = self._now_s - entry.last_touched_s
        if elapsed <= 0:
            return
        data_bits = 8 * self.line_bytes
        for position in self.faults.sample_soft_error_flips(elapsed):
            if position < data_bits:
                entry.stored ^= 1 << position
        if elapsed >= self.refresh_period_s and entry.fault_state is not None:
            f = self.faults.retention_flip_probability(self.refresh_period_s)
            entry.fault_state.extend(f, self.faults.rng_for_line(line_index))
            for position, decay in entry.fault_state.decayed_cells(f):
                if position < data_bits and (entry.stored >> position) & 1 != decay:
                    entry.stored ^= 1 << position
        entry.last_touched_s = self._now_s
