"""DRAM power/energy substrate (Micron TN-46-03 / TN-46-12 style).

* :mod:`repro.power.params` — IDD/VDD parameters (paper Table IV).
* :mod:`repro.power.calculator` — closed-form power model for idle
  (self-refresh) and active (auto-refresh) operation.
* :mod:`repro.power.energy` — energy/EDP accounting over simulation runs
  and device usage sessions.
"""

from repro.power.battery import BatteryModel
from repro.power.calculator import DramPowerCalculator, IdlePowerBreakdown
from repro.power.energy import ActiveEnergyModel, energy_delay_product
from repro.power.params import PowerParams

__all__ = [
    "ActiveEnergyModel",
    "BatteryModel",
    "DramPowerCalculator",
    "IdlePowerBreakdown",
    "PowerParams",
    "energy_delay_product",
]
