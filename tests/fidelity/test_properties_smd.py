"""Hypothesis metamorphic suite: SMD threshold monotonicity.

The paper's Selective Memory Downgrade arms ECC-Downgrade once a
quantum's misses-per-kilo-cycle *exceed* the threshold (heavy-traffic
phases get the fast weak-ECC path).  Raising the threshold therefore
makes enablement strictly harder: it can only delay or prevent
downgrade, never hasten it — i.e. raising MPKC's bar never increases
the downgrade count, and the disabled-time fraction is nondecreasing in
the threshold.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

from repro.fidelity.properties import smd_disabled_fraction, smd_enable_cycle

QUANTUM = 1_000

#: Access traces as positive cycle gaps (cumulative sums give timestamps).
gaps = st.lists(st.integers(min_value=1, max_value=400), min_size=0, max_size=60)
thresholds = st.floats(min_value=0.01, max_value=64.0, allow_nan=False)


def _timestamps(gap_list):
    now, out = 0, []
    for gap in gap_list:
        now += gap
        out.append(now)
    return out


@given(gap_list=gaps, a=thresholds, b=thresholds)
def test_enable_cycle_monotone_in_threshold(gap_list, a, b):
    low, high = min(a, b), max(a, b)
    accesses = _timestamps(gap_list)
    at_low = smd_enable_cycle(accesses, low, QUANTUM)
    at_high = smd_enable_cycle(accesses, high, QUANTUM)
    # A higher bar can only delay (or prevent) enablement.
    if at_low is None:
        assert at_high is None
    elif at_high is not None:
        assert at_low <= at_high


@given(gap_list=gaps, a=thresholds, b=thresholds)
def test_disabled_fraction_nondecreasing_in_threshold(gap_list, a, b):
    low, high = min(a, b), max(a, b)
    accesses = _timestamps(gap_list)
    total = (max(accesses) if accesses else 0) + 4 * QUANTUM
    disabled_low = smd_disabled_fraction(accesses, low, total, QUANTUM)
    disabled_high = smd_disabled_fraction(accesses, high, total, QUANTUM)
    assert 0.0 <= disabled_low <= disabled_high <= 1.0


@given(gap_list=gaps, threshold=thresholds)
def test_disabled_fraction_bounded(gap_list, threshold):
    accesses = _timestamps(gap_list)
    total = (max(accesses) if accesses else 0) + QUANTUM
    fraction = smd_disabled_fraction(accesses, threshold, total, QUANTUM)
    assert 0.0 <= fraction <= 1.0


@given(gap_list=gaps)
def test_threshold_above_peak_traffic_never_enables(gap_list):
    """With <= 60 accesses per 1000-cycle quantum, MPKC never tops 60,
    so a threshold of 64 must leave downgrade disabled forever."""
    accesses = _timestamps(gap_list)
    assert smd_enable_cycle(accesses, 64.0, QUANTUM) is None


@given(burst=st.integers(min_value=3, max_value=50))
def test_dense_burst_enables_at_first_quantum_boundary(burst):
    """A quantum carrying more than (threshold/1000)*quantum accesses
    must arm the gate exactly at that quantum's boundary."""
    accesses = list(range(1, burst + 1))  # all inside the first quantum
    threshold = 1.0  # trips when accesses > 1 per kilo-cycle
    enabled_at = smd_enable_cycle(accesses, threshold, QUANTUM)
    if 1000.0 * burst / QUANTUM > threshold:
        assert enabled_at == QUANTUM
    else:
        assert enabled_at is None
