"""Property-based tests on memory-controller timing invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.config import DramTimings
from repro.dram.controller import MemoryController

T = DramTimings()


@st.composite
def request_sequences(draw):
    """(address, inter-arrival gap) sequences over a small address pool."""
    n = draw(st.integers(min_value=1, max_value=40))
    out = []
    for _ in range(n):
        line = draw(st.integers(min_value=0, max_value=4095))
        gap = draw(st.integers(min_value=0, max_value=3000))
        is_read = draw(st.booleans())
        out.append((line * 64, gap, is_read))
    return out


@given(request_sequences())
@settings(max_examples=60, deadline=None)
def test_read_completions_monotone(seq):
    """Later-issued reads never complete before earlier ones *start*,
    and each read's latency respects the physical floor."""
    ctrl = MemoryController()
    now = 0
    last_done = 0
    for address, gap, is_read in seq:
        now += gap
        if is_read:
            done = ctrl.read(address, now)
            assert done >= now + T.row_hit_latency
            assert done >= last_done - 0  # data bus serializes bursts
            last_done = max(last_done, done)
        else:
            ctrl.write(address, now)


@given(request_sequences())
@settings(max_examples=60, deadline=None)
def test_latency_bounded(seq):
    """Every read completes within a generous bound: its own service plus
    the worst-case backlog of queued writes and one refresh window."""
    ctrl = MemoryController()
    now = 0
    worst_service = T.row_conflict_latency + T.t_rc + T.t_faw + T.t_xp
    backlog_bound = ctrl.write_queue_capacity * (T.row_conflict_latency + T.t_rc)
    for address, gap, is_read in seq:
        now += gap
        if is_read:
            done = ctrl.read(address, now)
            assert done - now <= worst_service + backlog_bound + T.t_rfc
        else:
            ctrl.write(address, now)


@given(request_sequences())
@settings(max_examples=40, deadline=None)
def test_stats_consistent(seq):
    ctrl = MemoryController()
    now = 0
    reads = writes = 0
    for address, gap, is_read in seq:
        now += gap
        if is_read:
            ctrl.read(address, now)
            reads += 1
        else:
            ctrl.write(address, now)
            writes += 1
    ctrl.flush_writes(now + 10_000)
    assert ctrl.stats.reads == reads
    assert ctrl.stats.writes == writes
    assert ctrl.stats.row_hits <= reads + writes
    assert ctrl.stats.activates <= reads + writes
    # Every serviced access either hit the row buffer or activated.
    assert ctrl.stats.row_hits + ctrl.stats.activates >= reads + writes


@given(request_sequences())
@settings(max_examples=40, deadline=None)
def test_utilization_well_formed(seq):
    ctrl = MemoryController()
    now = 10
    for address, gap, is_read in seq:
        now += gap
        if is_read:
            now = max(now, ctrl.read(address, now))
        else:
            ctrl.write(address, now)
    util = ctrl.utilization(now + 1)
    assert 0.0 <= util.frac_active_standby <= 1.0
    assert 0.0 <= util.frac_precharge_powerdown <= 1.0
    assert util.read_bursts_per_second >= 0.0
