"""Policy-advisory index: matching, advice, serialization."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fleet.index import PolicyIndex, TrafficProfile
from repro.fleet.population import PopulationModel
from repro.fleet.simulator import FleetSimulator
from repro.sim.system import ScaledRun

RUN = ScaledRun(instructions=10_000)


@pytest.fixture(scope="module")
def index():
    return PolicyIndex.build(
        FleetSimulator(PopulationModel(seed=9), run=RUN)
    )


class TestTrafficProfile:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrafficProfile(idle_fraction=0.2)  # below IDLE_BOUNDS
        with pytest.raises(ConfigurationError):
            TrafficProfile(idle_fraction=0.9, mpki=-1.0)
        with pytest.raises(ConfigurationError):
            TrafficProfile(idle_fraction=0.9, sessions_per_day=0)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            TrafficProfile.from_dict({"idle_fraction": 0.9, "color": "red"})
        with pytest.raises(ConfigurationError, match="idle_fraction"):
            TrafficProfile.from_dict({"mpki": 1.0})
        with pytest.raises(ConfigurationError):
            TrafficProfile.from_dict({"idle_fraction": "lots"})
        with pytest.raises(ConfigurationError):
            TrafficProfile.from_dict("not a dict")

    def test_from_dict_round_trip(self):
        profile = TrafficProfile.from_dict(
            {"idle_fraction": 0.9, "mpki": 4.5, "sessions_per_day": 30}
        )
        assert profile == TrafficProfile(0.9, 4.5, 30)


class TestAdvise:
    def test_covers_index_personas(self, index):
        assert set(index.personas) == {"light", "moderate", "heavy"}
        assert set(index.schemes) == {"baseline", "secded", "mecc"}

    def test_mpki_matching(self, index):
        light = index.advise(TrafficProfile(idle_fraction=0.98, mpki=0.3))
        heavy = index.advise(TrafficProfile(idle_fraction=0.85, mpki=25.0))
        assert light.matched_persona == "light"
        assert heavy.matched_persona == "heavy"

    def test_idle_matching_without_mpki(self, index):
        adv = index.advise(TrafficProfile(idle_fraction=0.85))
        assert adv.matched_persona == "heavy"

    def test_idle_user_gets_mecc_and_saves(self, index):
        adv = index.advise(TrafficProfile(idle_fraction=0.98, mpki=0.3))
        assert adv.policy == "mecc"
        assert adv.saving_fraction > 0.3
        assert adv.normalized_ipc >= 0.95
        assert set(adv.alternatives) == {"baseline", "secded", "mecc"}
        # The chosen policy really is the cheapest alternative.
        assert adv.energy_j_day == min(adv.alternatives.values())

    def test_mpki_below_every_cohort_clamps_to_lightest(self, index):
        adv = index.advise(TrafficProfile(idle_fraction=0.97, mpki=1e-5))
        assert adv.matched_persona == "light"

    def test_mpki_above_every_cohort_clamps_to_heaviest(self, index):
        adv = index.advise(TrafficProfile(idle_fraction=0.85, mpki=1e6))
        assert adv.matched_persona == "heavy"
        # Still a complete, well-formed advisory.
        assert set(adv.alternatives) == {"baseline", "secded", "mecc"}
        assert adv.energy_j_day > 0.0
        assert 0.0 < adv.normalized_ipc <= 1.0

    def test_advice_scales_with_idle_fraction(self, index):
        lazy = index.advise(TrafficProfile(idle_fraction=0.99, mpki=0.3))
        busy = index.advise(TrafficProfile(idle_fraction=0.60, mpki=0.3))
        # More idle time -> larger share of energy is refresh -> bigger saving.
        assert lazy.saving_fraction > busy.saving_fraction

    def test_as_dict_is_json_native(self, index):
        import json

        payload = index.advise(TrafficProfile(idle_fraction=0.9)).as_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestSerialization:
    def test_round_trip(self, index, tmp_path):
        path = index.save(tmp_path / "index.json")
        loaded = PolicyIndex.load(path)
        for profile in (
            TrafficProfile(idle_fraction=0.98, mpki=0.2),
            TrafficProfile(idle_fraction=0.7, mpki=30.0, sessions_per_day=10),
            TrafficProfile(idle_fraction=0.9),
        ):
            assert loaded.advise(profile) == index.advise(profile)

    def test_bad_schema_rejected(self):
        with pytest.raises(ConfigurationError, match="schema"):
            PolicyIndex.from_dict({"schema": 999, "entries": []})

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            PolicyIndex.load(tmp_path / "nope.json")

    def test_empty_index_rejected(self):
        with pytest.raises(ConfigurationError):
            PolicyIndex([])
