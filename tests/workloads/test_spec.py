"""Tests for the 28-benchmark SPEC2006 model table."""

import pytest

from repro.workloads.spec import (
    ALL_BENCHMARKS,
    BENCHMARKS_BY_NAME,
    DEFAULT_COLD_FRACTION,
    MIN_WORKING_SET_LINES,
    SMD_ALWAYS_DISABLED,
    BenchmarkSpec,
    MpkiClass,
    benchmarks_in_class,
    class_averages,
)


class TestTableIII:
    """The spec table must reproduce paper Table III's class averages."""

    def test_28_benchmarks(self):
        assert len(ALL_BENCHMARKS) == 28
        assert len(BENCHMARKS_BY_NAME) == 28  # names unique

    def test_class_sizes(self):
        assert len(benchmarks_in_class(MpkiClass.LOW)) == 8
        assert len(benchmarks_in_class(MpkiClass.MED)) == 13
        assert len(benchmarks_in_class(MpkiClass.HIGH)) == 7

    def test_low_class_averages(self):
        avg = class_averages()[MpkiClass.LOW]
        assert avg["mpki"] == pytest.approx(0.3, abs=0.02)
        assert avg["ipc"] == pytest.approx(1.514, abs=0.01)
        assert avg["footprint_mb"] == pytest.approx(26, rel=0.03)

    def test_med_class_averages(self):
        avg = class_averages()[MpkiClass.MED]
        assert avg["mpki"] == pytest.approx(4.7, abs=0.1)
        assert avg["ipc"] == pytest.approx(0.887, abs=0.01)
        assert avg["footprint_mb"] == pytest.approx(96.4, rel=0.03)

    def test_high_class_averages(self):
        avg = class_averages()[MpkiClass.HIGH]
        assert avg["mpki"] == pytest.approx(23.5, abs=0.3)
        assert avg["ipc"] == pytest.approx(0.359, abs=0.005)
        assert avg["footprint_mb"] == pytest.approx(259.1, rel=0.03)

    def test_classification_boundaries(self):
        for spec in ALL_BENCHMARKS:
            if spec.mpki < 1:
                assert spec.mpki_class is MpkiClass.LOW
            elif spec.mpki <= 10:
                assert spec.mpki_class is MpkiClass.MED
            else:
                assert spec.mpki_class is MpkiClass.HIGH

    def test_mcf_excluded(self):
        """The paper drops mcf (1.4 GB footprint > 1 GB memory)."""
        assert "mcf" not in BENCHMARKS_BY_NAME
        assert all(b.footprint_mb < 1024 for b in ALL_BENCHMARKS)

    def test_libquantum_is_most_sensitive(self):
        """libq has the highest MPKI-per-IPC-budget — the paper's worst
        case for ECC-6 (21% slowdown)."""
        libq = BENCHMARKS_BY_NAME["libq"]
        sensitivity = {b.name: b.mpki * b.ipc for b in ALL_BENCHMARKS}
        top3 = sorted(sensitivity, key=sensitivity.get, reverse=True)[:3]
        assert "libq" in top3
        assert libq.mpki_class is MpkiClass.HIGH


class TestSmdPrerequisites:
    def test_seven_benchmarks_below_threshold(self):
        """The paper's 7 never-downgrade benchmarks must sit below the
        SMD threshold (MPKC = 2) in every phase."""
        assert len(SMD_ALWAYS_DISABLED) == 7
        for name in SMD_ALWAYS_DISABLED:
            spec = BENCHMARKS_BY_NAME[name]
            peak_intensity = max(p.intensity for p in spec.phases) if spec.phases else 1.0
            peak_mpkc = spec.mpki * peak_intensity * spec.ipc * (1 + spec.write_fraction)
            assert peak_mpkc < 2.0, name

    def test_high_mpki_benchmarks_exceed_threshold(self):
        for spec in benchmarks_in_class(MpkiClass.HIGH):
            mpkc = spec.mpki * spec.ipc * (1 + spec.write_fraction)
            assert mpkc > 2.0, spec.name

    def test_phase_intensities_average_to_one(self):
        for spec in ALL_BENCHMARKS:
            if spec.phases:
                avg = sum(p.weight * p.intensity for p in spec.phases)
                assert avg == pytest.approx(1.0, abs=0.01), spec.name


class TestGenerators:
    def test_working_set_scales_with_instructions(self):
        spec = BENCHMARKS_BY_NAME["libq"]
        small = spec.generator(100_000)
        large = spec.generator(1_000_000)
        assert large.working_set_bytes > small.working_set_bytes

    def test_working_set_floor(self):
        spec = BENCHMARKS_BY_NAME["povray"]
        generator = spec.generator(100_000)
        assert generator.working_set_bytes == MIN_WORKING_SET_LINES * 64

    def test_cold_fraction_sizing(self):
        spec = BENCHMARKS_BY_NAME["lbm"]
        instructions = 1_000_000
        generator = spec.generator(instructions)
        expected_reads = spec.mpki * instructions / 1000
        assert generator.working_set_bytes == pytest.approx(
            DEFAULT_COLD_FRACTION * expected_reads * 64, rel=0.01
        )

    def test_full_footprint_without_instructions(self):
        spec = BENCHMARKS_BY_NAME["libq"]
        generator = spec.generator()
        assert generator.working_set_bytes is None
        assert generator.footprint_bytes == spec.footprint_bytes

    def test_calibrated_trace_hits_target_ipc(self):
        """Calibration keeps measured baseline IPC near Table III."""
        from repro.core.policy import NoEccPolicy
        from repro.sim.engine import simulate

        spec = BENCHMARKS_BY_NAME["sphinx"]
        trace = spec.trace(150_000)
        result = simulate(trace, NoEccPolicy())
        assert result.ipc == pytest.approx(spec.ipc, rel=0.12)

    def test_uncalibrated_trace_skips_simulation(self):
        spec = BENCHMARKS_BY_NAME["sphinx"]
        trace = spec.trace(50_000, calibrate=False)
        assert trace.nonmem_cpi == spec.generator(50_000).nonmem_cpi
