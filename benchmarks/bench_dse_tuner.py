"""DSE tuner exhibit: leave-one-out report card over the personas.

Thin shim over the ``repro.report`` registry (exhibit ``dse-tuner``).
The tuner is a k=1 nearest-neighbour vote, so every in-sample
prediction must be exact; the leave-one-out column is the honest
generalization measure and only its regret is bounded here.
"""

from repro.analysis.tables import format_table
from repro.report.spec import get_exhibit

EXHIBIT_ID = "dse-tuner"


def test_dse_tuner_exhibit(benchmark, run, show):
    spec = get_exhibit(EXHIBIT_ID)
    data = benchmark.pedantic(spec.build, args=(run,), rounds=1, iterations=1)
    show(format_table(
        list(data.columns),
        [list(row) for row in data.rows],
        title=f"DSE tuner report card — {data.meta['samples']} workloads, "
        f"k={data.meta['k']}",
    ))
    assert len(data.rows) == data.meta["samples"] >= 3
    for workload, best, predicted, hit, regret in data.rows:
        # Predictions always land on the grid (regret is defined).
        assert regret >= 0.0
        assert hit == (best == predicted)
        # A wrong LOO guess may cost energy, but never catastrophically
        # (every grid point is a functioning MECC configuration).
        assert regret < 0.5, (workload, predicted, regret)
