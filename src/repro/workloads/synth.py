"""Seeded synthetic post-LLC trace generator.

Produces traces whose statistics match a benchmark description: demand-read
MPKI, dirty-write-back fraction, working-set size, sequential-streaming
share (which controls row-buffer locality), hot-set skew, and optional
multi-phase intensity (which controls when SMD's traffic threshold trips).

Two output paths:

* :meth:`SyntheticTraceGenerator.generate` — full trace for the cycle
  simulator (perf/power experiments), using a *working set* sized to the
  run length so the cold-miss fraction matches the paper's steady state.
* :meth:`SyntheticTraceGenerator.iter_read_addresses` — address-only fast
  path over the benchmark's *full* footprint, for footprint/MDT studies
  (paper Table III, Fig. 11) where no timing is needed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.types import MemoryOp, TraceRecord
from repro.workloads.trace import Trace

#: Byte size of a cache line (fixed across the paper).
LINE_BYTES = 64
#: Mean length (in accesses) of a sequential streaming run.
STREAM_RUN_MEAN = 8
#: Fraction of random accesses that hit the hot subset of the footprint.
HOT_HIT_FRACTION = 0.8
#: Estimated average memory latency (processor cycles) used to calibrate
#: the non-memory CPI against the target baseline IPC.  Split by row-buffer
#: outcome; see DramTimings (hit = 56, conflict = 104, plus queue margin).
_EST_HIT_LATENCY = 60.0
_EST_MISS_LATENCY = 110.0
#: Extra per-read queueing estimate per unit of write traffic (write
#: drains share banks and the data bus with demand reads).
_EST_WRITE_INTERFERENCE = 30.0


@dataclass(frozen=True)
class Phase:
    """A contiguous execution phase with a relative memory intensity.

    Attributes:
        weight: fraction of the run's instructions spent in this phase.
        intensity: multiplier on the benchmark's average MPKI during it.
    """

    weight: float
    intensity: float

    def __post_init__(self) -> None:
        if self.weight <= 0 or self.intensity < 0:
            raise ConfigurationError("phase weight must be > 0, intensity >= 0")


@dataclass
class SyntheticTraceGenerator:
    """Generate deterministic synthetic traces for one benchmark.

    Attributes:
        name: benchmark name.
        mpki: average demand-read misses per kilo-instruction.
        target_ipc: baseline (no-ECC) IPC to calibrate the non-memory CPI.
        footprint_bytes: full-scale memory footprint (Table III).
        working_set_bytes: lines cycled through in perf-run traces; when
            None, defaults to the full footprint.
        write_fraction: write-backs per demand read.
        stream_fraction: share of reads issued from sequential streams.
        segments: number of disjoint address extents (heap/stack/code...).
        base_address: placement of the first extent in physical memory.
        phases: intensity phases; default is one uniform phase.
        seed: RNG seed.
    """

    name: str
    mpki: float
    target_ipc: float
    footprint_bytes: int
    working_set_bytes: int | None = None
    write_fraction: float = 0.3
    stream_fraction: float = 0.6
    segments: int = 3
    base_address: int = 1 << 24
    phases: tuple[Phase, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mpki <= 0:
            raise ConfigurationError("mpki must be positive")
        if not 0 < self.target_ipc <= 2.0:
            raise ConfigurationError("target_ipc must be in (0, 2] for a 2-wide core")
        if self.footprint_bytes < LINE_BYTES:
            raise ConfigurationError("footprint must hold at least one line")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigurationError("write_fraction must be in [0, 1]")
        if not 0.0 <= self.stream_fraction <= 1.0:
            raise ConfigurationError("stream_fraction must be in [0, 1]")
        if self.segments < 1:
            raise ConfigurationError("segments must be >= 1")
        if not self.phases:
            object.__setattr__(self, "phases", (Phase(1.0, 1.0),))
        total = sum(p.weight for p in self.phases)
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(f"phase weights must sum to 1, got {total}")

    # -- address-space layout ----------------------------------------------------

    def _segment_extents(self, total_bytes: int) -> list[tuple[int, int]]:
        """(start_line, line_count) extents, spread across physical memory.

        Segments are placed 64 MB apart so they land in distinct MDT
        regions and across many rows, like separate program mappings.
        """
        total_lines = max(self.segments, total_bytes // LINE_BYTES)
        per_segment = total_lines // self.segments
        extents = []
        base_line = self.base_address // LINE_BYTES
        # Segments must not overlap: space them a gap beyond their own
        # size (large footprints would otherwise alias onto each other).
        gap_lines = (64 << 20) // LINE_BYTES
        spread = per_segment + gap_lines
        for i in range(self.segments):
            count = per_segment if i else total_lines - per_segment * (self.segments - 1)
            extents.append((base_line + i * spread, count))
        return extents

    @property
    def nonmem_cpi(self) -> float:
        """Non-memory CPI calibrated so the baseline run hits target_ipc.

        cycles/kinstr = 1000 * nonmem_cpi + mpki * est_latency; the 2-wide
        retire width floors nonmem_cpi at 0.5.
        """
        hit_rate = self.stream_fraction * (1.0 - 1.0 / STREAM_RUN_MEAN)
        est_latency = (
            hit_rate * _EST_HIT_LATENCY
            + (1 - hit_rate) * _EST_MISS_LATENCY
            + self.write_fraction * _EST_WRITE_INTERFERENCE
        )
        cpi = (1000.0 / self.target_ipc - self.mpki * est_latency) / 1000.0
        return max(0.5, cpi)

    # -- trace generation -----------------------------------------------------------

    def generate(self, instructions: int) -> Trace:
        """Generate a trace covering ``instructions`` retired instructions."""
        if instructions < 1:
            raise ConfigurationError("instructions must be >= 1")
        ws_bytes = self.working_set_bytes or self.footprint_bytes
        ws_bytes = min(ws_bytes, self.footprint_bytes)
        extents = self._segment_extents(ws_bytes)
        rng = random.Random(self.seed)
        records: list[TraceRecord] = []
        recent: list[int] = []
        stream_positions = [start for start, _ in extents]
        stream_segment = 0
        stream_left = 0
        instrs_done = 0
        for phase in self.phases:
            phase_budget = int(round(instructions * phase.weight))
            if phase.intensity <= 0:
                # Pure-compute phase: emit a single idle gap record pair by
                # folding the instructions into the next access's gap.
                instrs_done += phase_budget
                continue
            mean_gap = max(1.0, 1000.0 / (self.mpki * phase.intensity) - 1.0)
            phase_done = 0
            while phase_done < phase_budget:
                gap = min(
                    int(rng.expovariate(1.0 / mean_gap) + 0.5),
                    phase_budget - phase_done,
                )
                phase_done += gap + 1
                # Pick the read address: streaming run or random.
                if stream_left > 0:
                    stream_left -= 1
                    stream_segment_idx = stream_segment
                    start, count = extents[stream_segment_idx]
                    pos = stream_positions[stream_segment_idx]
                    line = start + (pos - start + 1) % count
                    stream_positions[stream_segment_idx] = line
                elif rng.random() < self.stream_fraction:
                    stream_segment = rng.randrange(len(extents))
                    stream_left = max(0, int(rng.expovariate(1.0 / STREAM_RUN_MEAN)) - 1)
                    start, count = extents[stream_segment]
                    pos = stream_positions[stream_segment]
                    line = start + (pos - start + 1) % count
                    stream_positions[stream_segment] = line
                else:
                    start, count = extents[rng.randrange(len(extents))]
                    if rng.random() < HOT_HIT_FRACTION:
                        hot = max(1, count // 5)
                        line = start + rng.randrange(hot)
                    else:
                        line = start + rng.randrange(count)
                records.append(
                    TraceRecord(gap=gap, op=MemoryOp.READ, address=line * LINE_BYTES)
                )
                recent.append(line)
                if len(recent) > 64:
                    recent.pop(0)
                # Dirty write-back of an older line alongside the fill.
                if recent and rng.random() < self.write_fraction:
                    victim = recent[rng.randrange(len(recent))]
                    records.append(
                        TraceRecord(gap=0, op=MemoryOp.WRITE, address=victim * LINE_BYTES)
                    )
            instrs_done += phase_done
        return Trace(name=self.name, records=records, nonmem_cpi=self.nonmem_cpi)

    def iter_read_addresses(self, n_accesses: int):
        """Fast address-only stream over the *full* footprint.

        Yields byte addresses of demand reads; used by footprint and MDT
        experiments (Table III, Fig. 11) that need full-scale coverage
        without cycle simulation.
        """
        if n_accesses < 0:
            raise ConfigurationError("n_accesses must be non-negative")
        extents = self._segment_extents(self.footprint_bytes)
        rng = random.Random(self.seed ^ 0x5EED)
        positions = [start for start, _ in extents]
        current = 0
        left = 0
        for _ in range(n_accesses):
            if left > 0:
                left -= 1
            elif rng.random() < max(self.stream_fraction, 0.5):
                # Footprint coverage relies on streams; floor the share so
                # even random-heavy benchmarks sweep their data (as real
                # applications do over billions of instructions).
                current = rng.randrange(len(extents))
                left = max(0, int(rng.expovariate(1.0 / (4 * STREAM_RUN_MEAN))) - 1)
            else:
                start, count = extents[rng.randrange(len(extents))]
                yield (start + rng.randrange(count)) * LINE_BYTES
                continue
            start, count = extents[current]
            positions[current] = start + (positions[current] - start + 1) % count
            yield positions[current] * LINE_BYTES
