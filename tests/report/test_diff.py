"""Tree diff: identical trees pass; a perturbed cell names exhibit + cell."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.report.diff import CellDiff, diff_exhibit, diff_trees
from repro.report.pipeline import MANIFEST_NAME, ReportPipeline
from repro.sim.system import ScaledRun

RUN = ScaledRun(instructions=10_000)
EXHIBITS = "table1,fig2"


@pytest.fixture(scope="module")
def base(tmp_path_factory):
    out = tmp_path_factory.mktemp("diff-base")
    return ReportPipeline(
        out_dir=out, run_id="base", formats="json", run=RUN
    ).generate(EXHIBITS)


@pytest.fixture(scope="module")
def regenerated(tmp_path_factory):
    out = tmp_path_factory.mktemp("diff-regen")
    return ReportPipeline(
        out_dir=out, run_id="regen", formats="json", run=RUN
    ).generate(EXHIBITS)


def _copy(tree: Path, tmp_path: Path) -> Path:
    cand = tmp_path / "cand"
    shutil.copytree(tree, cand)
    return cand


def _perturb_cell(tree: Path, exhibit: str, column: str, factor: float):
    """Scale one numeric cell; returns (row_key, column)."""
    path = tree / f"{exhibit}.json"
    payload = json.loads(path.read_text(encoding="utf-8"))
    col = payload["columns"].index(column)
    row = payload["rows"][0]
    row[col] = row[col] * factor
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(row[0]), column


class TestCleanDiff:
    def test_independent_regenerations_diff_clean(self, base, regenerated):
        diff = diff_trees(regenerated, base)
        assert diff.exhibits_compared == 2
        assert diff.mismatches == []
        assert diff.clean
        assert "0 mismatch(es)" in diff.render()

    def test_subset_narrows_comparison(self, base, regenerated):
        diff = diff_trees(regenerated, base, exhibits="table1")
        assert diff.exhibits_compared == 1
        assert diff.clean

    def test_nothing_compared_is_not_clean(self, base, regenerated):
        diff = diff_trees(regenerated, base, exhibits=[])
        assert diff.exhibits_compared == 0
        assert not diff.clean


class TestDrift:
    def test_perturbed_cell_names_exhibit_and_cell(self, base, tmp_path):
        cand = _copy(base, tmp_path)
        key, column = _perturb_cell(cand, "table1", "line_failure", 1.01)
        diff = diff_trees(cand, base)
        assert not diff.clean
        assert len(diff.mismatches) == 1
        mismatch = diff.mismatches[0]
        assert mismatch.exhibit == "table1"
        assert mismatch.location == f"{key}.{column}"
        assert f"table1[{key}.{column}]" in diff.render()

    def test_drift_within_rtol_band_passes(self, base, tmp_path):
        cand = _copy(base, tmp_path)
        _perturb_cell(cand, "table1", "line_failure", 1.01)
        # Widen the baseline's band for table1: the 1% nudge is in-band.
        manifest_path = base / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["exhibits"]["table1"]["diff_rtol"] = 0.5
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        try:
            assert diff_trees(cand, base).clean
        finally:
            manifest["exhibits"]["table1"]["diff_rtol"] = 1e-9
            manifest_path.write_text(json.dumps(manifest), encoding="utf-8")

    def test_missing_exhibit_is_a_presence_mismatch(self, base, tmp_path):
        only_table1 = ReportPipeline(
            out_dir=tmp_path, run_id="narrow", formats="json", run=RUN
        ).generate("table1")
        diff = diff_trees(only_table1, base)
        assert not diff.clean
        assert any(
            m.exhibit == "fig2" and m.location == "presence"
            for m in diff.mismatches
        )

    def test_row_count_mismatch_short_circuits(self, base, tmp_path):
        cand = _copy(base, tmp_path)
        path = cand / "fig2.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["rows"] = payload["rows"][:-1]
        path.write_text(json.dumps(payload), encoding="utf-8")
        diff = diff_trees(cand, base)
        assert [m.location for m in diff.mismatches if m.exhibit == "fig2"] == [
            "row count"
        ]

    def test_column_rename_is_structural(self, base, tmp_path):
        cand = _copy(base, tmp_path)
        path = cand / "table1.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["columns"][1] = "renamed"
        path.write_text(json.dumps(payload), encoding="utf-8")
        diff = diff_trees(cand, base)
        assert any(
            m.exhibit == "table1" and m.location == "columns"
            for m in diff.mismatches
        )

    def test_missing_baseline_tree_raises(self, base, tmp_path):
        with pytest.raises(ConfigurationError):
            diff_trees(base, tmp_path / "nope")


class TestDiffExhibit:
    def test_bools_compared_exactly_not_in_band(self):
        baseline = {"columns": ["k", "ok"], "rows": [["a", True]]}
        candidate = {"columns": ["k", "ok"], "rows": [["a", False]]}
        out = diff_exhibit("x", baseline, candidate, rtol=10.0)
        assert len(out) == 1
        assert out[0].location == "a.ok"

    def test_nan_matches_nan(self):
        baseline = {"columns": ["k", "v"], "rows": [["a", float("nan")]]}
        candidate = {"columns": ["k", "v"], "rows": [["a", float("nan")]]}
        assert diff_exhibit("x", baseline, candidate) == []

    def test_render_includes_tolerance(self):
        diff = CellDiff("fig8", "MECC.total_w", 1.0, 2.0, rtol=1e-9)
        assert diff.render() == "fig8[MECC.total_w]: 2.0 != 1.0 (rtol 1e-09)"
