"""CLI surface of the dispatch backend: verbs, flags, campaign routing."""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.analysis.runner import configure_runner, get_runner


@pytest.fixture(autouse=True)
def _restore_runner():
    yield
    configure_runner(jobs=1, cache_dir=None)


class TestParser:
    def test_new_verbs_parse(self):
        parser = cli.build_parser()
        args = parser.parse_args(["workers", "--connect", "127.0.0.1:9999"])
        assert args.exhibit == "workers" and args.connect == "127.0.0.1:9999"
        args = parser.parse_args(["dispatch", "--dispatch-workers", "3"])
        assert args.exhibit == "dispatch" and args.dispatch_workers == 3

    def test_runner_backend_flag(self):
        parser = cli.build_parser()
        args = parser.parse_args(["table1", "--runner-backend", "dispatch"])
        assert args.runner_backend == "dispatch"
        with pytest.raises(SystemExit):
            parser.parse_args(["table1", "--runner-backend", "bogus"])


class TestWorkersVerb:
    def test_requires_connect(self, capsys):
        assert cli.main(["workers"]) == 2
        assert "--connect" in capsys.readouterr().err

    def test_rejects_malformed_address(self, capsys):
        assert cli.main(["workers", "--connect", "nonsense"]) == 2

    def test_worker_exits_4_when_nothing_listens(self, monkeypatch):
        # Point at a port nobody listens on, with a single fast attempt.
        import repro.dispatch.worker as worker_mod

        original = worker_mod.worker_main

        async def fast(host, port, **kwargs):
            kwargs["connect_attempts"] = 1
            kwargs["connect_delay_s"] = 0.0
            return await original(host, port, **kwargs)

        monkeypatch.setattr(worker_mod, "worker_main", fast)
        assert cli.main(["workers", "--connect", "127.0.0.1:1"]) == 4


class TestDispatchVerb:
    def test_verification_sweep_passes(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        status = cli.main([
            "dispatch",
            "--instructions", "3000",
            "--dispatch-workers", "2",
            "--metrics-out", str(metrics),
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "bit-identical to local execution" in out
        snapshot = json.loads(metrics.read_text())
        assert snapshot["dispatch.commits"] == 4
        assert snapshot["dispatch.state_failed"] == 0

    def test_runner_backend_flag_configures_the_runner(self, monkeypatch):
        monkeypatch.setattr(cli, "EXHIBITS", dict(cli.EXHIBITS))
        cli.main(["table1", "--runner-backend", "dispatch"])
        assert get_runner().backend == "dispatch"


class TestChaosRouting:
    def test_named_worker_campaign_routes(self, monkeypatch, capsys):
        """--campaign workers-smoke must reach the worker campaign with
        the registered scenario subset (campaign itself is stubbed —
        the real subprocess run lives in tests/chaos)."""
        import repro.chaos as chaos_mod

        captured = {}

        class FakeReport:
            ok = True

            def render_table(self):
                return "fake worker chaos table"

        class FakeCampaign:
            def __init__(self, scenarios):
                captured["scenarios"] = [s.name for s in scenarios]

            def run(self):
                return FakeReport()

        monkeypatch.setattr(chaos_mod, "WorkerChaosCampaign", FakeCampaign)
        assert cli.main(["chaos", "--campaign", "workers-smoke"]) == 0
        assert captured["scenarios"] == ["kill", "duplicate", "flaky"]
        assert "fake worker chaos table" in capsys.readouterr().out

    def test_scenario_list_routes_to_worker_campaign(self, monkeypatch):
        import repro.chaos as chaos_mod

        class FakeReport:
            ok = False  # violation -> exit 1

            def render_table(self):
                return "table"

        class FakeCampaign:
            def __init__(self, scenarios):
                self.names = [s.name for s in scenarios]

            def run(self):
                return FakeReport()

        monkeypatch.setattr(chaos_mod, "WorkerChaosCampaign", FakeCampaign)
        assert cli.main(["chaos", "--campaign", "kill,duplicate"]) == 1

    def test_control_plane_campaign_still_routes(self, capsys):
        assert cli.main([
            "chaos", "--campaign", "metadata", "--trials", "5",
        ]) == 0
        assert "chaos" in capsys.readouterr().out.lower()

    def test_unknown_campaign_is_an_error(self, capsys):
        assert cli.main(["chaos", "--campaign", "bogus-campaign"]) == 2
