#!/usr/bin/env python3
"""When does Morphable ECC matter? A memory-level-parallelism study.

The paper evaluates on an in-order core (Table II), where every cache
miss exposes its full latency — including the strong-ECC decode.  This
study swaps in an out-of-order core model with a configurable reorder
buffer and shows how the picture changes:

* in-order (ROB = 1): ECC-6 costs ~20-25% on memory-bound code; MECC
  recovers nearly all of it — the paper's headline;
* big-window OoO (ROB = 128): independent misses (and their decodes)
  overlap, ECC-6's penalty nearly vanishes, and MECC's extra write-back
  traffic makes it roughly break-even.

Mobile SoCs' efficiency cores are exactly the low-MLP regime where MECC
pays off.

Usage::

    python examples/mlp_study.py [instructions]
"""

import sys

from repro.sim.ooo import OooSimulationEngine
from repro.sim.system import SystemConfig
from repro.workloads.spec import BENCHMARKS_BY_NAME


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 150_000
    config = SystemConfig()
    benchmarks = ("sphinx", "libq", "lbm")
    traces = {
        name: BENCHMARKS_BY_NAME[name].trace(instructions) for name in benchmarks
    }
    print(f"Memory-bound subset: {', '.join(benchmarks)} "
          f"({instructions:,} instructions each)\n")
    print(f"{'ROB':>5} {'baseline IPC':>13} {'ECC-6':>7} {'MECC':>7} {'MECC advantage':>15}")
    for rob in (1, 8, 32, 64, 128):
        ipcs = {"baseline": [], "ecc6": [], "mecc": []}
        for trace in traces.values():
            for policy_name in ipcs:
                engine = OooSimulationEngine(
                    policy=config.policy_by_name(policy_name), rob_size=rob
                )
                ipcs[policy_name].append(engine.run(trace).ipc)
        base = sum(ipcs["baseline"]) / len(benchmarks)
        ecc6 = sum(e / b for e, b in zip(ipcs["ecc6"], ipcs["baseline"])) / len(benchmarks)
        mecc = sum(m / b for m, b in zip(ipcs["mecc"], ipcs["baseline"])) / len(benchmarks)
        note = "  <- the paper's configuration" if rob == 1 else ""
        print(f"{rob:>5} {base:>13.3f} {ecc6:>7.3f} {mecc:>7.3f} {mecc - ecc6:>+15.3f}{note}")

    print("""
Reading the table: the MECC-vs-ECC-6 advantage is a *latency-sensitivity*
story.  On the in-order core the 30-cycle decode serializes behind every
miss; with a deep reorder buffer the decodes overlap and always-strong
ECC becomes nearly free — at which point MECC's extra downgrade
write-backs make it a wash.  The paper's target (simple low-power mobile
cores) is precisely where morphing wins.""")


if __name__ == "__main__":
    main()
