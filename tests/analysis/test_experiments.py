"""Integration tests for the per-figure experiment runners (small scale)."""

import pytest

from repro.analysis import experiments as X
from repro.sim.system import ScaledRun
from repro.workloads.spec import BENCHMARKS_BY_NAME

RUN = ScaledRun(instructions=80_000)
SUBSET = tuple(
    BENCHMARKS_BY_NAME[n] for n in ("povray", "gobmk", "sphinx", "libq")
)


@pytest.fixture(autouse=True, scope="module")
def _clear_caches():
    X.clear_caches()
    yield
    X.clear_caches()


class TestAnalyticalExhibits:
    def test_fig2_curve(self):
        curve = X.fig2_retention_curve(points=11)
        assert len(curve) == 11
        assert curve[0][1] < curve[-1][1]

    def test_table1(self):
        rows = X.table1_failure()
        assert [r.ecc_t for r in rows] == list(range(7))
        assert rows[6].system_failure < 1e-8


class TestPerformanceExhibits:
    def test_fig7_ordering(self):
        """For memory-intensive benchmarks: baseline > MECC ~ SECDED > ECC-6."""
        perf = X.fig7_performance(RUN, SUBSET)
        for name in ("sphinx", "libq"):
            secded = perf.normalized(name, "secded")
            ecc6 = perf.normalized(name, "ecc6")
            mecc = perf.normalized(name, "mecc")
            assert ecc6 < mecc <= 1.0, name
            assert ecc6 < secded, name

    def test_fig7_geomean_bounds(self):
        perf = X.fig7_performance(RUN, SUBSET)
        assert 0.97 <= perf.geomean("secded") <= 1.0
        assert 0.75 <= perf.geomean("ecc6") <= 0.97
        assert perf.geomean("ecc6") < perf.geomean("mecc")

    def test_fig3_structure(self):
        out = X.fig3_ecc_overhead_by_class(RUN)
        assert "ALL" in out
        assert set(out["ALL"]) == {"secded", "ecc6"}

    def test_fig12_monotone_in_latency(self):
        out = X.fig12_latency_sensitivity((15, 60), RUN, SUBSET)
        assert out[60]["ecc6"] < out[15]["ecc6"]
        # MECC is much less sensitive than ECC-6 (paper Fig. 12).
        ecc6_drop = out[15]["ecc6"] - out[60]["ecc6"]
        mecc_drop = out[15]["mecc"] - out[60]["mecc"]
        assert mecc_drop < ecc6_drop / 2

    def test_fig13_gap_shrinks_with_slice_length(self):
        out = X.fig13_transition((0.25, 1.0), RUN, SUBSET)
        gap_short = out[0.25]["secded"] - out[0.25]["mecc"]
        gap_long = out[1.0]["secded"] - out[1.0]["mecc"]
        assert gap_long < gap_short

    def test_results_are_memoized(self):
        X.run_policy_suite(SUBSET[0], RUN, ("baseline",))
        trace_count = len(X._trace_cache)
        X.run_policy_suite(SUBSET[0], RUN, ("baseline", "secded"))
        assert len(X._trace_cache) == trace_count


class TestPowerExhibits:
    def test_fig8_sixteen_x_refresh(self):
        out = X.fig8_idle_power()
        assert out["MECC"]["refresh_norm"] == pytest.approx(1 / 16)
        assert out["ECC-6"]["refresh_norm"] == pytest.approx(1 / 16)
        assert 0.40 <= out["MECC"]["total_norm"] <= 0.60

    def test_fig9_shape(self):
        out = X.fig9_active_metrics(RUN, SUBSET)
        assert out["baseline"]["power"] == 1.0
        # ECC-6 runs longer -> lower average power, higher EDP.
        assert out["ecc6"]["power"] < 1.0
        assert out["ecc6"]["edp"] > 1.05
        # Energies are in the same ballpark for all schemes.  At this tiny
        # test scale the working-set floor inflates MECC's cold-miss share
        # (and hence its downgrade write-backs) well above the paper's
        # steady state, so the tolerance is loose; the real benches run at
        # 400k+ instructions where MECC's energy is within a few percent.
        for scheme in ("secded", "ecc6", "mecc"):
            assert out[scheme]["energy"] == pytest.approx(1.0, abs=0.25)

    def test_fig10_mecc_saves_total_energy(self):
        out = X.fig10_total_energy(RUN, benchmarks=SUBSET)
        assert out["mecc"]["total_norm"] < 0.9
        assert out["secded"]["total_norm"] == pytest.approx(1.0, abs=0.05)
        for row in out.values():
            assert row["total_j"] == pytest.approx(row["active_j"] + row["idle_j"])

    def test_fig1_timeline(self):
        samples, active_power = X.fig1_usage_timeline(total_s=300.0)
        assert len(samples) >= 3
        powers = {s.power_w for s in samples}
        assert max(powers) == pytest.approx(active_power)
        assert min(powers) < active_power / 5


class TestEnhancementExhibits:
    def test_fig11_tracked_tracks_footprint(self):
        out = X.fig11_mdt_tracking((BENCHMARKS_BY_NAME["libq"],), coverage_factor=2.0)
        row = out["libq"]
        assert row["tracked_mb"] == pytest.approx(row["footprint_mb"], rel=0.25)
        assert row["upgrade_ms"] < 400.0

    def test_fig14_gradient(self):
        out = X.fig14_smd_disabled(RUN, SUBSET)
        assert out["povray"] == 1.0  # never enables
        assert out["libq"] < 0.2  # enables almost immediately
        assert out["libq"] < out["gobmk"] <= out["povray"]

    def test_table3_classes_present(self):
        out = X.table3_characterization(RUN, SUBSET)
        assert "Low-MPKI" in out and "High-MPKI" in out
        assert out["High-MPKI"]["mpki"] > out["Low-MPKI"]["mpki"]
