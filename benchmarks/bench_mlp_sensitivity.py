"""MLP-sensitivity ablation: is the in-order core ECC-6's worst case?

The paper evaluates on an in-order core, where every miss exposes its
full latency — including the 30-cycle ECC-6 decode.  An out-of-order
window overlaps independent misses *and their decodes*, so the case for
MECC weakens as the core grows more latency-tolerant.  This ablation
quantifies that: normalized IPC of ECC-6 and MECC vs. ROB depth.

(Extension — the paper does not study this, but its target — low-power
mobile SoCs with simple cores — is exactly the regime where MECC's
advantage is largest, which this bench demonstrates.)
"""

from repro.analysis.tables import format_table
from repro.sim.ooo import OooSimulationEngine
from repro.sim.system import ScaledRun, SystemConfig
from repro.sim.stats import geometric_mean
from repro.workloads.spec import BENCHMARKS_BY_NAME

SUBSET = ("gobmk", "sphinx", "milc", "libq", "lbm")
ROB_SIZES = (1, 16, 64, 128)


def _sweep(instructions: int):
    config = SystemConfig()
    traces = {n: BENCHMARKS_BY_NAME[n].trace(instructions) for n in SUBSET}
    out = {}
    for rob in ROB_SIZES:
        ratios = {"ecc6": [], "mecc": []}
        for trace in traces.values():
            base = OooSimulationEngine(
                policy=config.baseline_policy(), rob_size=rob
            ).run(trace)
            for name in ("ecc6", "mecc"):
                result = OooSimulationEngine(
                    policy=config.policy_by_name(name), rob_size=rob
                ).run(trace)
                ratios[name].append(result.ipc / base.ipc)
        out[rob] = {k: geometric_mean(v) for k, v in ratios.items()}
    return out


def test_mlp_sensitivity(benchmark, run, show):
    out = benchmark.pedantic(
        _sweep, args=(min(run.instructions, 150_000),), rounds=1, iterations=1
    )
    show(format_table(
        ["ROB size", "ECC-6 (norm IPC)", "MECC (norm IPC)", "MECC advantage"],
        [[rob, v["ecc6"], v["mecc"], v["mecc"] - v["ecc6"]] for rob, v in out.items()],
        title="Ablation — MLP sensitivity (memory-intensive subset)",
    ))
    # ECC-6's penalty shrinks monotonically with the window.
    ecc6 = [out[rob]["ecc6"] for rob in ROB_SIZES]
    assert all(a <= b + 0.005 for a, b in zip(ecc6, ecc6[1:]))
    # On the paper's in-order core, MECC's advantage is large...
    assert out[1]["mecc"] - out[1]["ecc6"] > 0.10
    # ...and it shrinks substantially once a big window hides latency.
    assert out[128]["mecc"] - out[128]["ecc6"] < 0.5 * (
        out[1]["mecc"] - out[1]["ecc6"]
    )
