"""Coordinator behavior with scripted fake workers over real sockets.

Each test binds a real (ephemeral-port) coordinator and drives it with
hand-rolled protocol conversations — no worker subprocesses, so the
tests are fast and each fault is exact.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.dispatch import Coordinator, DispatchConfig, protocol
from repro.errors import ConfigurationError

CODE = "test-code-v1"


def fast_config(**overrides) -> DispatchConfig:
    values = {
        "workers": 0,
        "lease_s": 0.8,
        "heartbeat_s": 0.2,
        "stall_grace_s": 0.4,
        "retries": 1,
        "retry_backoff_s": 0.0,
        "quarantine_after": 2,
    }
    values.update(overrides)
    return DispatchConfig(**values)


def make_coordinator(commits=None, **overrides) -> Coordinator:
    def on_commit(job_id, payload, wall_s):
        if commits is not None:
            commits.append((job_id, payload, wall_s))

    return Coordinator(fast_config(**overrides), CODE, on_commit=on_commit)


def load_jobs(coordinator: Coordinator, n: int) -> None:
    coordinator.load_jobs(
        [(i, f"spec-{i}", f"key-{i}", f"job-{i}") for i in range(n)]
    )


async def connect(coordinator, worker="w1", code=CODE, version=None):
    reader, writer = await asyncio.open_connection(
        coordinator.host, coordinator.port, limit=protocol.STREAM_LIMIT
    )
    await protocol.send_message(
        writer,
        type="hello",
        worker=worker,
        pid=1234,
        protocol=version if version is not None else protocol.PROTOCOL_VERSION,
        code_version=code,
    )
    reply = await protocol.recv_message(reader, timeout=5.0)
    return reader, writer, reply


async def close(writer) -> None:
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, OSError):
        pass


class TestRegistration:
    def test_protocol_mismatch_rejected(self):
        async def run():
            coordinator = make_coordinator()
            await coordinator.bind()
            try:
                _, writer, reply = await connect(coordinator, version=999)
                await close(writer)
                return reply, coordinator.workers_rejected
            finally:
                await coordinator.close()

        reply, rejected = asyncio.run(run())
        assert reply["type"] == "reject" and "protocol" in reply["reason"]
        assert rejected == 1

    def test_code_version_mismatch_rejected(self):
        async def run():
            coordinator = make_coordinator()
            await coordinator.bind()
            try:
                _, writer, reply = await connect(coordinator, code="stale-code")
                await close(writer)
                return reply
            finally:
                await coordinator.close()

        reply = asyncio.run(run())
        assert reply["type"] == "reject"
        assert "wrong keys" in reply["reason"]

    def test_duplicate_worker_id_rejected(self):
        async def run():
            coordinator = make_coordinator()
            await coordinator.bind()
            try:
                _, writer1, reply1 = await connect(coordinator, worker="twin")
                _, writer2, reply2 = await connect(coordinator, worker="twin")
                await close(writer1)
                await close(writer2)
                return reply1, reply2
            finally:
                await coordinator.close()

        reply1, reply2 = asyncio.run(run())
        assert reply1["type"] == "welcome"
        assert reply2["type"] == "reject"
        assert "already connected" in reply2["reason"]

    def test_welcome_carries_the_heartbeat_contract(self):
        async def run():
            coordinator = make_coordinator()
            await coordinator.bind()
            try:
                _, writer, reply = await connect(coordinator)
                await close(writer)
                return reply
            finally:
                await coordinator.close()

        reply = asyncio.run(run())
        assert reply["type"] == "welcome"
        assert reply["heartbeat_s"] == pytest.approx(0.2)
        assert reply["lease_s"] == pytest.approx(0.8)


class TestLeaseFlow:
    def test_lease_result_drain_round_trip(self):
        commits = []

        async def worker_conversation(coordinator):
            reader, writer, _ = await connect(coordinator)
            done = 0
            while True:
                await protocol.send_message(writer, type="request")
                message = await protocol.recv_message(reader, timeout=5.0)
                if message["type"] == "drain":
                    break
                if message["type"] == "idle":
                    await asyncio.sleep(message["wait_s"])
                    continue
                assert message["type"] == "lease"
                assert message["spec"] == f"spec-{message['job_id']}"
                await protocol.send_message(
                    writer,
                    type="result",
                    job_id=message["job_id"],
                    ok=True,
                    payload={"result": {"n": message["job_id"]}, "wall_s": 0.01},
                )
                ack = await protocol.recv_message(reader, timeout=5.0)
                assert ack["type"] == "ack" and not ack["duplicate"]
                done += 1
            await close(writer)
            return done

        async def run():
            coordinator = make_coordinator(commits)
            # Plain-string specs: skip pickling for protocol-level tests.
            coordinator.ledger.register(0, "spec-0", "key-0", "job-0")
            coordinator.ledger.register(1, "spec-1", "key-1", "job-1")
            await coordinator.bind()
            encode = protocol.encode_spec
            protocol.encode_spec = lambda spec: spec
            try:
                runner = asyncio.create_task(coordinator.run())
                done = await worker_conversation(coordinator)
                await asyncio.wait_for(runner, timeout=5.0)
            finally:
                protocol.encode_spec = encode
                await coordinator.close()
            return done, coordinator.metrics_snapshot()

        done, snapshot = asyncio.run(run())
        assert done == 2
        assert [job_id for job_id, _, _ in commits] == [0, 1]
        assert snapshot["commits"] == 2
        assert snapshot["workers_lost"] == 0
        assert snapshot["state_done"] == 2

    def test_duplicate_delivery_acked_but_not_recommitted(self):
        commits = []

        async def run():
            coordinator = make_coordinator(commits)
            coordinator.ledger.register(0, "spec-0", "key-0", "job-0")
            await coordinator.bind()
            encode = protocol.encode_spec
            protocol.encode_spec = lambda spec: spec
            try:
                reader, writer, _ = await connect(coordinator)
                await protocol.send_message(writer, type="request")
                lease = await protocol.recv_message(reader, timeout=5.0)
                for _ in range(2):
                    await protocol.send_message(
                        writer,
                        type="result",
                        job_id=lease["job_id"],
                        ok=True,
                        payload={"result": {}, "wall_s": 0.01},
                    )
                acks = [
                    await protocol.recv_message(reader, timeout=5.0)
                    for _ in range(2)
                ]
                await close(writer)
                return acks, coordinator.metrics_snapshot()
            finally:
                protocol.encode_spec = encode
                await coordinator.close()

        acks, snapshot = asyncio.run(run())
        assert [ack["duplicate"] for ack in acks] == [False, True]
        assert snapshot["commits"] == 1 and snapshot["duplicates"] == 1
        assert len(commits) == 1  # harvest fired exactly once

    def test_consecutive_failures_quarantine_the_worker(self):
        async def run():
            coordinator = make_coordinator(retries=5)
            for i in range(4):
                coordinator.ledger.register(i, f"spec-{i}", f"key-{i}", f"job-{i}")
            await coordinator.bind()
            encode = protocol.encode_spec
            protocol.encode_spec = lambda spec: spec
            try:
                reader, writer, _ = await connect(coordinator, worker="bad")
                # Fail two leases in a row -> quarantine_after=2 trips.
                for _ in range(2):
                    await protocol.send_message(writer, type="request")
                    lease = await protocol.recv_message(reader, timeout=5.0)
                    assert lease["type"] == "lease"
                    await protocol.send_message(
                        writer,
                        type="result",
                        job_id=lease["job_id"],
                        ok=False,
                        error="injected",
                    )
                    await protocol.recv_message(reader, timeout=5.0)  # ack
                # The quarantined worker's next request is a drain.
                await protocol.send_message(writer, type="request")
                reply = await protocol.recv_message(reader, timeout=5.0)
                await close(writer)
                return reply, coordinator.metrics_snapshot()
            finally:
                protocol.encode_spec = encode
                await coordinator.close()

        reply, snapshot = asyncio.run(run())
        assert reply["type"] == "drain"
        assert snapshot["workers_quarantined"] == 1
        # Failed jobs went back to pending for other workers.
        assert snapshot["state_pending"] == 4


class TestRunLoop:
    def test_stall_returns_jobs_for_local_fallback(self):
        async def run():
            coordinator = make_coordinator()
            load_jobs(coordinator, 2)
            await coordinator.bind()
            await asyncio.wait_for(coordinator.run(), timeout=5.0)
            return coordinator.ledger.summary()

        summary = asyncio.run(run())
        # Nothing was lost: both jobs are still pending, not failed.
        assert summary["state_pending"] == 2
        assert summary["state_failed"] == 0

    def test_silent_worker_lease_expires_and_requeues(self):
        async def run():
            coordinator = make_coordinator()
            coordinator.ledger.register(0, "spec-0", "key-0", "job-0")
            await coordinator.bind()
            encode = protocol.encode_spec
            protocol.encode_spec = lambda spec: spec
            try:
                reader, writer, _ = await connect(coordinator, worker="mute")
                await protocol.send_message(writer, type="request")
                lease = await protocol.recv_message(reader, timeout=5.0)
                assert lease["type"] == "lease"
                # Say nothing: no heartbeat, no result.  The reap loop
                # must expire the lease and requeue.
                deadline = asyncio.get_running_loop().time() + 5.0
                while not coordinator.ledger.leases_expired:
                    assert asyncio.get_running_loop().time() < deadline
                    coordinator._reap()
                    await asyncio.sleep(0.05)
                await close(writer)
                return coordinator.ledger.summary()
            finally:
                protocol.encode_spec = encode
                await coordinator.close()

        summary = asyncio.run(run())
        assert summary["leases_expired"] == 1
        assert summary["requeues"] == 1
        assert summary["state_pending"] == 1  # never lost


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DispatchConfig(lease_s=0).validate()
        with pytest.raises(ConfigurationError):
            DispatchConfig(heartbeat_s=10.0, lease_s=5.0).validate()
        with pytest.raises(ConfigurationError):
            DispatchConfig(workers=-1).validate()
        with pytest.raises(ConfigurationError):
            DispatchConfig(quarantine_after=0).validate()
        with pytest.raises(ConfigurationError):
            DispatchConfig(slow_factor=1.0).validate()
        DispatchConfig().validate()

    def test_from_env_reads_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH_WORKERS", "7")
        monkeypatch.setenv("REPRO_DISPATCH_LEASE_S", "3.5")
        monkeypatch.setenv("REPRO_DISPATCH_HEARTBEAT_S", "0.7")
        monkeypatch.setenv("REPRO_DISPATCH_LEDGER", "/tmp/journal.jsonl")
        config = DispatchConfig.from_env()
        assert config.workers == 7
        assert config.lease_s == 3.5
        assert config.heartbeat_s == 0.7
        assert config.ledger_path == "/tmp/journal.jsonl"

    def test_from_env_overrides_win(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH_WORKERS", "7")
        assert DispatchConfig.from_env(workers=2).workers == 2
