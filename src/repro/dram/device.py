"""Device-level DRAM model: capacity, refresh-mode transitions, bulk ECC
conversion timing.

This is the piece the *idle-mode* experiments use: it owns the
self-refresh controller (with the 4-bit frequency divider) and knows how
long bulk ECC-Upgrade/Downgrade scans take.  The paper's arithmetic: a
1 GB memory has 16M lines; converting a line (read, decode, re-encode,
write) costs ~40 processor cycles in steady state, so a full-memory
ECC-Upgrade takes 640M cycles = 400 ms at 1.6 GHz, and MDT's ~8x footprint
reduction brings that to ~50 ms (paper Sec. VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.config import PROC_HZ, DramOrganization
from repro.dram.refresh import SelfRefreshController
from repro.errors import ConfigurationError
from repro.types import RefreshMode

#: Processor cycles to convert one line (read + decode + encode + write),
#: pipelined — calibrated so a full 1 GB scan costs the paper's 400 ms.
LINE_CONVERT_CYCLES = 40


@dataclass
class DramDevice:
    """A rank of LPDDR with refresh-mode and bulk-conversion modeling."""

    org: DramOrganization = field(default_factory=DramOrganization)
    refresh: SelfRefreshController = field(default_factory=SelfRefreshController)

    def enter_self_refresh(self, slow: bool = False) -> None:
        """Enter self-refresh; ``slow`` engages the 16x divider (MECC idle)."""
        self.refresh.enter(RefreshMode.SELF_REFRESH, use_divider=slow)

    def exit_self_refresh(self) -> None:
        """Return to auto refresh at the 64 ms period (active mode)."""
        self.refresh.enter(RefreshMode.AUTO_REFRESH)

    @property
    def refresh_period_s(self) -> float:
        return self.refresh.refresh_period_s

    # -- bulk ECC conversion ---------------------------------------------------

    def bulk_convert_cycles(self, n_lines: int) -> int:
        """Processor cycles to convert ``n_lines`` between ECC modes."""
        if n_lines < 0:
            raise ConfigurationError("n_lines must be non-negative")
        return LINE_CONVERT_CYCLES * n_lines

    def bulk_convert_seconds(self, n_lines: int) -> float:
        return self.bulk_convert_cycles(n_lines) / PROC_HZ

    def full_upgrade_seconds(self) -> float:
        """Time to ECC-Upgrade the entire memory (no MDT): ~400 ms for 1 GB."""
        return self.bulk_convert_seconds(self.org.total_lines)

    def upgrade_seconds_for_regions(self, n_regions: int, region_bytes: int) -> float:
        """Time to upgrade only MDT-marked regions."""
        if n_regions < 0 or region_bytes <= 0:
            raise ConfigurationError("invalid region parameters")
        lines = (n_regions * region_bytes) // self.org.line_bytes
        return self.bulk_convert_seconds(min(lines, self.org.total_lines))
