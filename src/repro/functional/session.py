"""Functional MECC sessions: wake/active/idle cycles over real codewords.

Drives :class:`repro.functional.memory.FunctionalMemory` through the
paper's Fig. 4 state machine for hours of simulated time and verifies —
with the actual BCH/SEC-DED machinery — that MECC's 1 second idle
refresh never loses data, while the same refresh period without strong
ECC does.

Schemes:

* ``mecc`` — idle at 1 s under ECC-6, demand downgrade to SEC-DED when
  active (the paper).
* ``secded`` — SEC-DED everywhere, idle refresh must stay at 64 ms.
* ``ecc6`` — ECC-6 everywhere, idle at 1 s, slow decodes always.
* ``none-slow`` — no correction at a 1 s refresh: the strawman that
  quantifies why ECC is required (expect corrupted lines).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.functional.faults import FaultProcess
from repro.functional.memory import FunctionalMemory, IntegrityCounters, NoEccMemory
from repro.types import EccMode

#: Idle refresh period per scheme (seconds).
_IDLE_PERIODS = {"mecc": 1.024, "secded": 0.064, "ecc6": 1.024, "none-slow": 1.024}


@dataclass(frozen=True)
class SessionReport:
    """Outcome of one functional session."""

    scheme: str
    cycles: int
    simulated_seconds: float
    counters: IntegrityCounters
    verified_lines: int
    verification_failures: int

    @property
    def lost_data(self) -> bool:
        return (
            self.verification_failures > 0
            or self.counters.data_loss_events > 0
        )


class FunctionalMeccSession:
    """Run repeated active/idle cycles against a functional memory.

    Args:
        scheme: one of ``mecc``, ``secded``, ``ecc6``, ``none-slow``.
        working_set_lines: distinct lines the workload touches.
        faults: fault process (a fresh default one if omitted).
        seed: RNG seed for access patterns and data.
        accesses_per_active_phase: reads issued per active burst.
        active_seconds: simulated duration of each active burst.
        idle_seconds: simulated duration of each idle period.
    """

    def __init__(
        self,
        scheme: str = "mecc",
        working_set_lines: int = 64,
        faults: FaultProcess | None = None,
        seed: int = 0,
        accesses_per_active_phase: int = 128,
        active_seconds: float = 5.0,
        idle_seconds: float = 120.0,
    ):
        if scheme not in _IDLE_PERIODS:
            raise ConfigurationError(f"unknown scheme {scheme!r}")
        if working_set_lines < 1 or accesses_per_active_phase < 1:
            raise ConfigurationError("working set and access count must be >= 1")
        if active_seconds <= 0 or idle_seconds <= 0:
            raise ConfigurationError("phase durations must be positive")
        self.scheme = scheme
        self.working_set_lines = working_set_lines
        fault_process = faults or FaultProcess(seed=seed)
        if scheme == "none-slow":
            self.memory = NoEccMemory(faults=fault_process)
        else:
            self.memory = FunctionalMemory(faults=fault_process)
        self.rng = random.Random(seed)
        self.accesses_per_active_phase = accesses_per_active_phase
        self.active_seconds = active_seconds
        self.idle_seconds = idle_seconds
        self._expected: dict[int, int] = {}
        self._cycles = 0
        self._verification_failures = 0
        self._initialize()

    def _initialize(self) -> None:
        """Populate the working set; idle-resident state per scheme."""
        mode = EccMode.WEAK if self.scheme == "secded" else EccMode.STRONG
        for line in range(self.working_set_lines):
            data = self.rng.getrandbits(8 * self.memory.line_bytes)
            self.memory.write(line * self.memory.line_bytes, data, mode)
            self._expected[line] = data
        self.memory.set_refresh_period(_IDLE_PERIODS[self.scheme])

    # -- one activity cycle -------------------------------------------------------

    def run_cycle(self) -> None:
        """One wake -> active burst -> idle-entry -> idle period."""
        self._cycles += 1
        # Wake: MECC and SECDED run at the safe 64 ms while active; the
        # always-slow schemes illustrate what their premise costs/permits.
        if self.scheme in ("mecc", "secded"):
            self.memory.set_refresh_period(0.064)
        # Active burst: reads spread over the burst duration.
        per_access = self.active_seconds / self.accesses_per_active_phase
        for _ in range(self.accesses_per_active_phase):
            self.memory.advance_time(per_access)
            line = self.rng.randrange(self.working_set_lines)
            address = line * self.memory.line_bytes
            data = self.memory.read(address, downgrade=self.scheme == "mecc")
            if data is not None and data != self._expected[line]:
                self._verification_failures += 1
            # Occasionally dirty the line (a store + write-back).
            if self.rng.random() < 0.2:
                new_data = self.rng.getrandbits(8 * self.memory.line_bytes)
                mode = (
                    EccMode.STRONG
                    if self.scheme in ("ecc6", "none-slow")
                    else EccMode.WEAK
                )
                self.memory.write(address, new_data, mode)
                self._expected[line] = new_data
        # Idle entry: MECC upgrades every downgraded line (ECC-Upgrade).
        if self.scheme == "mecc":
            for address in self.memory.weak_addresses():
                self.memory.upgrade_line(address)
        self.memory.set_refresh_period(_IDLE_PERIODS[self.scheme])
        self.memory.advance_time(self.idle_seconds)

    def run(self, cycles: int) -> SessionReport:
        """Run several cycles, then verify the whole working set."""
        if cycles < 1:
            raise ConfigurationError("cycles must be >= 1")
        for _ in range(cycles):
            self.run_cycle()
        verified = 0
        for line, expected in self._expected.items():
            data = self.memory.read(line * self.memory.line_bytes)
            if data is None or data != expected:
                self._verification_failures += 1
            else:
                verified += 1
        return SessionReport(
            scheme=self.scheme,
            cycles=self._cycles,
            simulated_seconds=self.memory.now_s,
            counters=self.memory.counters,
            verified_lines=verified,
            verification_failures=self._verification_failures,
        )
