"""The paper's generalization claim: morphing between arbitrary ECC levels.

Paper Sec. VIII: "While we have used ECC-6 as strong ECC and SECDED for
weak ECC ... the MECC scheme is useful for morphing between arbitrary
levels of ECC, which trades off robustness with performance or power
savings."  These tests exercise the controller and simulator with
non-default scheme pairs and alternative line geometries.
"""

import pytest

from repro.core.mecc import MeccController
from repro.core.policy import MeccPolicy
from repro.dram.device import DramDevice
from repro.ecc.codes import make_scheme
from repro.ecc.layout import EccFieldLayout, LineCodec
from repro.errors import ConfigurationError
from repro.sim.engine import simulate
from repro.types import EccMode
from repro.workloads.spec import BENCHMARKS_BY_NAME


class TestArbitrarySchemePairs:
    @pytest.mark.parametrize("weak_t,strong_t", [(1, 3), (2, 6), (1, 4), (3, 6)])
    def test_controller_accepts_pair(self, weak_t, strong_t):
        controller = MeccController(
            weak=make_scheme(weak_t), strong=make_scheme(strong_t)
        )
        controller.wake()
        cycles, writeback = controller.on_read(0)
        assert cycles == make_scheme(strong_t).decode_cycles
        assert writeback
        cycles, _ = controller.on_read(0)
        assert cycles == make_scheme(weak_t).decode_cycles

    def test_rejects_degenerate_pairs(self):
        with pytest.raises(ConfigurationError):
            MeccController(weak=make_scheme(3), strong=make_scheme(3))
        with pytest.raises(ConfigurationError):
            MeccController(weak=make_scheme(6), strong=make_scheme(2))

    def test_stronger_weak_scheme_trades_performance(self):
        """ECC-2 as the weak code costs more than SECDED in active mode
        but tolerates a longer active-mode refresh stretch — the
        robustness/performance dial the paper describes."""
        trace = BENCHMARKS_BY_NAME["sphinx"].trace(60_000)
        secded_weak = MeccPolicy(controller=MeccController(
            weak=make_scheme(1), strong=make_scheme(6)))
        ecc2_weak = MeccPolicy(controller=MeccController(
            weak=make_scheme(2), strong=make_scheme(6)))
        fast = simulate(trace, secded_weak)
        slow = simulate(trace, ecc2_weak)
        assert slow.cycles > fast.cycles
        # ECC-2 corrects double errors (robustness gained).
        assert make_scheme(2).correctable == 2

    def test_stronger_strong_scheme_allows_longer_refresh(self):
        """An (hypothetical) ECC-8 strong code stretches the safe period
        beyond ECC-6's ~1 s at the cost of more decode latency."""
        from repro.reliability.provisioning import max_refresh_period_for_strength

        assert max_refresh_period_for_strength(8) > max_refresh_period_for_strength(6)
        assert make_scheme(8).decode_cycles > make_scheme(6).decode_cycles


class TestAlternativeGeometries:
    def test_128_byte_lines(self, rng):
        """A 128B line with a proportional ECC budget (128 bits) morphs
        between SEC-DED and ECC-6 over GF(2^11)."""
        codec = LineCodec(
            line_bytes=128, strong_t=6, layout=EccFieldLayout(field_bits=128)
        )
        assert codec.strong_code.m == 11
        data = rng.getrandbits(1024)
        for mode in (EccMode.WEAK, EccMode.STRONG):
            stored = codec.encode(data, mode)
            result = codec.decode(stored)
            assert result.data == data and result.mode is mode
        # Six errors anywhere still correct in strong mode.
        stored = codec.encode(data, EccMode.STRONG)
        for p in rng.sample(range(codec.stored_bits), 6):
            stored ^= 1 << p
        assert codec.decode(stored).data == data

    def test_32_byte_lines(self, rng):
        codec = LineCodec(
            line_bytes=32, strong_t=3, layout=EccFieldLayout(field_bits=32)
        )
        data = rng.getrandbits(256)
        stored = codec.encode(data, EccMode.STRONG)
        for p in rng.sample(range(codec.stored_bits), 3):
            stored ^= 1 << p
        assert codec.decode(stored).data == data

    def test_budget_overflow_rejected(self):
        """ECC-6 over a 32B line needs 54 bits > the 28 available."""
        with pytest.raises(ConfigurationError):
            LineCodec(line_bytes=32, strong_t=6, layout=EccFieldLayout(field_bits=32))

    def test_bigger_memory_device(self):
        """A 4 GB device (the paper's 'next generation') scales the
        upgrade-time arithmetic linearly: ~1.6 s full scan."""
        from repro.dram.config import DramOrganization

        org = DramOrganization(capacity_bytes=4 << 30, rows=64 * 1024)
        device = DramDevice(org=org)
        assert device.full_upgrade_seconds() == pytest.approx(1.6, rel=0.08)
