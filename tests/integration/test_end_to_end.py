"""End-to-end tests of the paper's headline claims at reduced scale.

Each test states the claim from the paper it checks; tolerances are wide
because the runs are scaled down ~10,000x, but every *direction* and
rough magnitude must hold.
"""

import pytest

from repro.analysis import experiments as X
from repro.sim.engine import simulate
from repro.sim.stats import geometric_mean
from repro.sim.system import ScaledRun, SystemConfig
from repro.workloads.spec import BENCHMARKS_BY_NAME

RUN = ScaledRun(instructions=150_000)
NAMES = ("povray", "hmmer", "gobmk", "dealII", "sphinx", "milc", "libq", "lbm")
SUBSET = tuple(BENCHMARKS_BY_NAME[n] for n in NAMES)


@pytest.fixture(scope="module")
def perf():
    X.clear_caches()
    return X.fig7_performance(RUN, SUBSET)


class TestHeadlinePerformanceClaims:
    def test_secded_is_nearly_free(self, perf):
        """Paper: SECDED costs ~0.5% on average."""
        assert perf.geomean("secded") > 0.985

    def test_ecc6_costs_about_ten_percent(self, perf):
        """Paper: ECC-6 costs 10% on average, up to ~21%."""
        geomean = perf.geomean("ecc6")
        assert 0.82 <= geomean <= 0.94
        worst = min(perf.normalized(b, "ecc6") for b in [s.name for s in SUBSET])
        assert worst <= 0.85

    def test_mecc_within_a_few_percent_of_baseline(self, perf):
        """Paper: MECC's average slowdown is ~1.2% (within 2%)."""
        assert perf.geomean("mecc") > 0.95

    def test_mecc_bridges_the_gap(self, perf):
        """MECC sits between SECDED and ECC-6, close to SECDED."""
        secded = perf.geomean("secded")
        ecc6 = perf.geomean("ecc6")
        mecc = perf.geomean("mecc")
        assert ecc6 < mecc < secded
        assert (secded - mecc) < (mecc - ecc6)

    def test_slowdown_grows_with_memory_intensity(self, perf):
        """ECC-6 hurts High-MPKI much more than Low-MPKI (paper Fig. 3)."""
        low = perf.normalized("povray", "ecc6")
        high = perf.normalized("libq", "ecc6")
        assert low > 0.99
        assert high < 0.85


class TestHeadlinePowerClaims:
    def test_refresh_reduced_16x_in_idle(self):
        """Paper abstract: refresh operations in idle mode drop 16x."""
        out = X.fig8_idle_power()
        assert out["MECC"]["refresh_norm"] == pytest.approx(1 / 16)

    def test_idle_power_halved(self):
        """Paper abstract: memory power in idle mode drops ~2x."""
        out = X.fig8_idle_power()
        assert 0.40 <= out["MECC"]["total_norm"] <= 0.60

    def test_total_memory_energy_reduced(self):
        """Paper Fig. 10: MECC cuts total memory energy (~15% at the
        paper's active/idle power ratio; more here because our simulated
        active power is closer to the 9x-idle ratio of Fig. 1)."""
        out = X.fig10_total_energy(RUN, benchmarks=SUBSET)
        assert out["mecc"]["total_norm"] < 0.92
        assert out["mecc"]["idle_j"] < 0.6 * out["baseline"]["idle_j"]


class TestEnhancementClaims:
    def test_mdt_cuts_upgrade_time_8x(self):
        """Paper Sec. VI-A: 400 ms -> ~50 ms for a ~128 MB footprint."""
        from repro.core.mecc import MeccController

        full = MeccController(use_mdt=False)
        full.wake()
        full.on_read(0)
        t_full = full.enter_idle().seconds
        assert t_full == pytest.approx(0.4, rel=0.1)

        mdt_ctrl = MeccController()
        mdt_ctrl.wake()
        for mb in range(128):
            mdt_ctrl.on_read(mb << 20)
        t_mdt = mdt_ctrl.enter_idle().seconds
        assert t_mdt == pytest.approx(0.05, rel=0.1)

    def test_smd_keeps_seven_benchmarks_disabled(self):
        """Paper Sec. VI-B: povray-class workloads never enable
        ECC-Downgrade; memory-bound ones enable quickly."""
        out = X.fig14_smd_disabled(RUN, SUBSET)
        assert out["povray"] == 1.0
        assert out["hmmer"] == 1.0
        assert out["libq"] < 0.15
        assert out["lbm"] < 0.15

    def test_smd_performance_within_two_percent(self):
        """Paper: SMD's average performance is within 2% of baseline...
        at full scale; allow extra scale-artifact slack here."""
        config = SystemConfig()
        ratios = []
        for spec in SUBSET:
            trace = X._trace_for(spec, RUN)
            base = simulate(trace, config.policy_by_name("baseline"))
            smd = simulate(
                trace,
                config.policy_by_name("mecc+smd", quantum_cycles=RUN.quantum_cycles),
            )
            ratios.append(smd.ipc / base.ipc)
        assert geometric_mean(ratios) > 0.94


class TestDataIntegrityEndToEnd:
    def test_idle_wake_cycle_with_real_codec(self, rng):
        """Full MECC story on real codewords: encode strong, corrupt at
        the 1 s BER, wake, decode, downgrade to weak, re-encode, idle,
        upgrade back to strong — data survives every step."""
        from repro.ecc.layout import LineCodec
        from repro.types import EccMode

        codec = LineCodec()
        data = rng.getrandbits(512)
        # Idle: stored strong; a 1 s refresh period flips up to 6 bits.
        stored = codec.encode(data, EccMode.STRONG)
        for pos in rng.sample(range(576), 4):
            stored ^= 1 << pos
        # Wake: first access decodes strong, re-encodes weak (downgrade).
        decoded = codec.decode(stored)
        assert decoded.data == data
        stored = codec.encode(decoded.data, EccMode.WEAK)
        # Active mode: 64 ms refresh, at most a soft-error single flip.
        stored ^= 1 << rng.randrange(512)
        decoded = codec.decode(stored)
        assert decoded.data == data
        assert decoded.mode is EccMode.WEAK
        # Idle entry: ECC-Upgrade back to strong.
        stored = codec.encode(decoded.data, EccMode.STRONG)
        assert codec.decode(stored).data == data
