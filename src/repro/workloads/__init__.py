"""Workload substrate: traces, synthetic generators, SPEC2006 models.

The paper drives USIMM with post-LLC miss traces of 28 SPEC2006
benchmarks.  We reproduce the *statistics* of those traces — per-benchmark
MPKI, baseline IPC, memory footprint, row locality, and phase behaviour
(paper Table III) — with seeded synthetic generators, since the paper's
results depend only on memory access patterns (its own argument in
Sec. IV-B).
"""

from repro.workloads.daemons import DAEMON_WORKLOADS, DaemonSpec
from repro.workloads.spec import (
    ALL_BENCHMARKS,
    BENCHMARKS_BY_NAME,
    BenchmarkSpec,
    MpkiClass,
    benchmarks_in_class,
)
from repro.workloads.synth import SyntheticTraceGenerator
from repro.workloads.trace import Trace, read_trace, write_trace

__all__ = [
    "ALL_BENCHMARKS",
    "BENCHMARKS_BY_NAME",
    "BenchmarkSpec",
    "DAEMON_WORKLOADS",
    "DaemonSpec",
    "MpkiClass",
    "SyntheticTraceGenerator",
    "Trace",
    "benchmarks_in_class",
    "read_trace",
    "write_trace",
]
