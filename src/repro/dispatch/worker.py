"""Dispatch worker process: pull leases, heartbeat, deliver results.

Runnable as ``python -m repro.dispatch.worker --connect HOST:PORT`` (the
``repro workers`` CLI verb spawns exactly this).  The worker

* registers with its code fingerprint (a mismatched worker is rejected
  — its results would land under wrong cache keys),
* pulls one lease at a time, computes it with the same
  :func:`repro.analysis.runner.execute_job` the local pool uses (so
  results are bit-identical to a local run by construction),
* heartbeats every ``heartbeat_s`` while the job runs in a thread, and
* exits cleanly when drained.

Fault injection (``--fault``) exists purely for the chaos campaign in
:mod:`repro.chaos.workers`; a production worker runs with ``none``.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys
import time

from repro.dispatch import protocol
from repro.errors import DispatchProtocolError


class _FaultPlan:
    """Worker-side chaos switchboard (see ``protocol.FAULT_MODES``)."""

    def __init__(self, mode: str = "none", arg: float = 0.0):
        if mode not in protocol.FAULT_MODES:
            raise ValueError(
                f"unknown fault mode {mode!r}; choose from "
                f"{', '.join(protocol.FAULT_MODES)}"
            )
        self.mode = mode
        self.arg = arg
        self.jobs_seen = 0

    @property
    def heartbeats_muted(self) -> bool:
        return self.mode in ("silent", "partition")

    def should_fail(self) -> bool:
        """flaky: fail the first ``arg`` jobs with an exception."""
        return self.mode == "flaky" and self.jobs_seen <= int(self.arg)


async def _heartbeat_loop(writer, job_id: int, interval_s: float) -> None:
    try:
        while True:
            await asyncio.sleep(interval_s)
            await protocol.send_message(writer, type="heartbeat", job_id=job_id)
    except asyncio.CancelledError:
        pass


async def worker_main(
    host: str,
    port: int,
    *,
    worker_id: str | None = None,
    fault: str = "none",
    fault_arg: float = 0.0,
    connect_attempts: int = 20,
    connect_delay_s: float = 0.25,
) -> int:
    """Run one worker until drained; returns a process exit status.

    0 = drained cleanly, 3 = rejected by the coordinator, 4 = could not
    connect, 5 = connection lost mid-run.
    """
    from repro.analysis.runner import code_fingerprint, execute_job

    plan = _FaultPlan(fault, fault_arg)
    worker_id = worker_id or f"w-{os.getpid()}"
    reader = writer = None
    for attempt in range(connect_attempts):
        try:
            reader, writer = await asyncio.open_connection(
                host, port, limit=protocol.STREAM_LIMIT
            )
            break
        except OSError:
            if attempt == connect_attempts - 1:
                print(
                    f"worker {worker_id}: cannot connect to {host}:{port}",
                    file=sys.stderr,
                )
                return 4
            await asyncio.sleep(connect_delay_s)
    try:
        await protocol.send_message(
            writer,
            type="hello",
            worker=worker_id,
            pid=os.getpid(),
            protocol=protocol.PROTOCOL_VERSION,
            code_version=code_fingerprint(),
        )
        welcome = await protocol.recv_message(reader, timeout=30.0)
        if welcome is None or welcome.get("type") == "reject":
            reason = (welcome or {}).get("reason", "connection closed")
            print(f"worker {worker_id}: rejected: {reason}", file=sys.stderr)
            return 3
        if welcome.get("type") != "welcome":
            raise DispatchProtocolError(
                f"expected welcome, got {welcome.get('type')!r}"
            )
        heartbeat_s = float(welcome.get("heartbeat_s", 2.0))

        while True:
            await protocol.send_message(writer, type="request")
            message = await protocol.recv_message(reader, timeout=60.0)
            if message is None:
                return 5
            kind = message.get("type")
            if kind == "drain":
                return 0
            if kind == "idle":
                await asyncio.sleep(float(message.get("wait_s", 0.2)))
                continue
            if kind != "lease":
                raise DispatchProtocolError(f"unexpected message {kind!r}")

            job_id = int(message["job_id"])
            spec = protocol.decode_spec(message["spec"])
            plan.jobs_seen += 1

            if plan.mode == "kill":
                # Die mid-job with no goodbye: the coordinator must
                # requeue off the dropped connection / expired lease.
                await asyncio.sleep(plan.arg or 0.05)
                os.kill(os.getpid(), signal.SIGKILL)
            if plan.mode == "partition":
                # Freeze all socket I/O (keep the connection open) so the
                # coordinator sees pure silence, then exit once the lease
                # is certainly gone.
                await asyncio.sleep(plan.arg or 10.0)
                return 0

            heartbeat = None
            if not plan.heartbeats_muted:
                heartbeat = asyncio.create_task(
                    _heartbeat_loop(writer, job_id, heartbeat_s)
                )
            try:
                if plan.should_fail():
                    raise RuntimeError(
                        f"injected flaky failure #{plan.jobs_seen}"
                    )
                result, disabled, wall_s, backend = await asyncio.to_thread(
                    execute_job, spec
                )
                ok, payload, error = True, {
                    "result": result.to_dict(),
                    "smd_disabled_fraction": disabled,
                    "wall_s": wall_s,
                    "backend": backend,
                }, None
            except Exception as exc:  # job failure, not worker failure
                ok, payload, error = False, None, f"{type(exc).__name__}: {exc}"
            finally:
                if heartbeat is not None:
                    heartbeat.cancel()
                    try:
                        await heartbeat
                    except asyncio.CancelledError:
                        pass

            if plan.mode == "silent":
                # Heartbeats are muted (see heartbeats_muted), so stall
                # past the lease interval before delivering: the
                # coordinator must expire the lease, requeue the job
                # elsewhere, and count this late delivery as a
                # duplicate (or commit it if it still arrives first).
                await asyncio.sleep(plan.arg or 1.0)
            if plan.mode == "slow":
                # Keep heartbeating through the stall so only the
                # slow-worker eviction (not lease expiry) can fire.
                deadline = time.monotonic() + (plan.arg or 1.0)
                while time.monotonic() < deadline:
                    await asyncio.sleep(min(heartbeat_s, 0.1))
                    await protocol.send_message(
                        writer, type="heartbeat", job_id=job_id
                    )

            deliveries = 2 if plan.mode == "duplicate" else 1
            for _ in range(deliveries):
                if ok:
                    await protocol.send_message(
                        writer, type="result", job_id=job_id, ok=True,
                        payload=payload,
                    )
                else:
                    await protocol.send_message(
                        writer, type="result", job_id=job_id, ok=False,
                        error=error,
                    )
                ack = await protocol.recv_message(reader, timeout=30.0)
                if ack is None:
                    return 5
                if ack.get("type") != "ack":
                    raise DispatchProtocolError(
                        f"expected ack, got {ack.get('type')!r}"
                    )
    except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
        return 5
    except (asyncio.TimeoutError, TimeoutError):
        return 5
    finally:
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dispatch-worker",
        description="Dispatch worker: connect to a coordinator and compute jobs.",
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address (from 'repro dispatch' / the runner log)",
    )
    parser.add_argument("--id", default=None, help="worker id (default w-<pid>)")
    parser.add_argument(
        "--fault", default="none", choices=protocol.FAULT_MODES,
        help="chaos fault injection mode (testing only)",
    )
    parser.add_argument(
        "--fault-arg", type=float, default=0.0,
        help="fault parameter: delay seconds (kill/slow/partition) or "
        "failing-job count (flaky)",
    )
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        parser.error("--connect must look like HOST:PORT")
    return asyncio.run(
        worker_main(
            host,
            int(port),
            worker_id=args.id,
            fault=args.fault,
            fault_arg=args.fault_arg,
        )
    )


if __name__ == "__main__":
    sys.exit(main())
