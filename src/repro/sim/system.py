"""System configuration (paper Table II) and scaled-run bookkeeping.

Bundles the pieces a full experiment needs — organization, timings, power
parameters, scheme latencies — and encodes how scaled-down runs map onto
the paper's 4-billion-instruction slices (SMD quantum scaling, transition
analysis).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.core.mecc import MeccController
from repro.core.policy import Ecc6Policy, EccPolicy, MeccPolicy, NoEccPolicy, SecdedPolicy
from repro.core.smd import DEFAULT_THRESHOLD_MPKC, PAPER_QUANTUM_CYCLES, SelectiveMemoryDowngrade
from repro.dram.config import PROC_HZ, DramOrganization, DramTimings
from repro.dram.device import DramDevice
from repro.ecc.codes import make_scheme
from repro.errors import ConfigurationError
from repro.power.params import PowerParams

#: The paper executes 4 billion instructions per benchmark slice.
PAPER_INSTRUCTIONS = 4_000_000_000


@dataclass(frozen=True)
class SystemConfig:
    """The paper's baseline system (Table II + Table IV)."""

    org: DramOrganization = field(default_factory=DramOrganization)
    timings: DramTimings = field(default_factory=DramTimings)
    power: PowerParams = field(default_factory=PowerParams)
    weak_decode_cycles: int = 2
    strong_decode_cycles: int = 30
    strong_t: int = 6

    def weak_scheme(self):
        return make_scheme(1, self.org.line_bytes).with_decode_cycles(
            self.weak_decode_cycles
        )

    def strong_scheme(self):
        return make_scheme(self.strong_t, self.org.line_bytes).with_decode_cycles(
            self.strong_decode_cycles
        )

    # -- policy factories ------------------------------------------------------

    def baseline_policy(self) -> EccPolicy:
        return NoEccPolicy()

    def secded_policy(self) -> EccPolicy:
        return SecdedPolicy(self.weak_scheme())

    def ecc6_policy(self) -> EccPolicy:
        return Ecc6Policy(self.strong_scheme())

    def mecc_policy(
        self,
        with_smd: bool = False,
        quantum_cycles: int = PAPER_QUANTUM_CYCLES,
        threshold_mpkc: float = DEFAULT_THRESHOLD_MPKC,
    ) -> MeccPolicy:
        controller = MeccController(
            device=DramDevice(org=self.org),
            weak=self.weak_scheme(),
            strong=self.strong_scheme(),
        )
        smd = None
        if with_smd:
            smd = SelectiveMemoryDowngrade(
                threshold_mpkc=threshold_mpkc, quantum_cycles=quantum_cycles
            )
        return MeccPolicy(controller=controller, smd=smd)

    def describe(self) -> dict:
        """Nested plain-dict form of the full configuration.

        Feeds the experiment runner's content-hashed cache key (see
        :mod:`repro.analysis.runner`): every field that can change a
        simulation result — organization, timings, power parameters,
        scheme latencies — is included, so two configs hash equal iff
        they would produce identical runs.
        """
        return dataclasses.asdict(self)

    def policy_by_name(self, name: str, **kwargs) -> EccPolicy:
        factories = {
            "baseline": self.baseline_policy,
            "secded": self.secded_policy,
            "ecc6": self.ecc6_policy,
            "mecc": self.mecc_policy,
        }
        if name == "mecc+smd":
            return self.mecc_policy(with_smd=True, **kwargs)
        if name not in factories:
            raise ConfigurationError(f"unknown policy {name!r}")
        return factories[name](**kwargs)

    def observed_policy(
        self, name: str, tracer=None, invariants=None, **kwargs
    ) -> EccPolicy:
        """Build a policy with observability hooks already attached.

        The CLI's ``--trace`` path and tests use this to get a policy
        whose MECC core, MDT, SMD gate, and refresh controller all share
        one :class:`repro.obs.trace.EventTracer` /
        :class:`repro.obs.invariants.InvariantSuite` pair.
        """
        policy = self.policy_by_name(name, **kwargs)
        policy.attach_observer(tracer, invariants)
        return policy


@dataclass(frozen=True)
class ScaledRun:
    """Mapping between a scaled simulation and the paper's full slices.

    The paper simulates 4B instructions per benchmark (~5.5 s of execution
    at its average IPC of 0.72).  Pure-Python cycle simulation runs a few
    million; time-based mechanisms (SMD's 64 ms quantum) must shrink by
    the same factor for their dynamics to be preserved.

    Attributes:
        instructions: instructions per simulated slice.
        paper_instructions: what the slice stands for (4e9 by default).
    """

    instructions: int = 2_000_000
    paper_instructions: int = PAPER_INSTRUCTIONS

    def __post_init__(self) -> None:
        if self.instructions < 1 or self.paper_instructions < self.instructions:
            raise ConfigurationError("need 1 <= instructions <= paper_instructions")

    @property
    def scale_factor(self) -> float:
        """How many paper instructions one simulated instruction stands for."""
        return self.paper_instructions / self.instructions

    @property
    def quantum_cycles(self) -> int:
        """SMD check quantum, scaled from the paper's ~102.4M cycles."""
        return max(1, int(round(PAPER_QUANTUM_CYCLES / self.scale_factor)))

    def to_paper_seconds(self, cycles: int) -> float:
        """Wall-clock the simulated cycles represent at full scale."""
        return cycles * self.scale_factor / PROC_HZ

    def describe(self) -> dict:
        """Plain-dict form (cache-key ingredient; see SystemConfig.describe)."""
        return dataclasses.asdict(self)


#: Shared default configuration (the paper's system).
DEFAULT_SYSTEM = SystemConfig()
