"""Tests for the retention-profiling model."""

import pytest

from repro.errors import ConfigurationError
from repro.reliability.profiling import ProfilingReport, RetentionProfiler

GB_CELLS = 8 << 30


class TestProfiling:
    def test_population_matches_ber(self):
        profiler = RetentionProfiler(seed=1)
        report = profiler.profile(GB_CELLS, test_period_s=1.0)
        # ~271K weak cells per 1 GB at BER 10^-4.5 (paper Sec. II-B).
        assert report.weak_cells == pytest.approx(271_000, rel=0.05)

    def test_single_round_misses_a_quarter(self):
        profiler = RetentionProfiler(seed=2)
        report = profiler.profile(GB_CELLS, 1.0, rounds=1)
        assert report.miss_rate == pytest.approx(0.25, abs=0.02)

    def test_more_rounds_fewer_misses(self):
        profiler = RetentionProfiler(seed=3)
        one = profiler.profile(GB_CELLS, 1.0, rounds=1)
        ten = profiler.profile(GB_CELLS, 1.0, rounds=10)
        assert ten.missed < one.missed / 100
        assert ten.detected > one.detected

    def test_vrt_sleepers_survive_any_rounds(self):
        """No amount of profiling catches cells that degrade later."""
        profiler = RetentionProfiler(seed=4, vrt_fraction=1e-6)
        report = profiler.profile(GB_CELLS, 1.0, rounds=50)
        assert report.vrt_sleepers > 1000
        assert report.unprotected_cells >= report.vrt_sleepers

    def test_report_accounting(self):
        profiler = RetentionProfiler(seed=5)
        report = profiler.profile(GB_CELLS, 1.0, rounds=3)
        assert report.detected + report.missed == report.weak_cells
        assert report.rounds == 3

    def test_zero_cells(self):
        report = RetentionProfiler().profile(0, 1.0)
        assert report.weak_cells == 0
        assert report.miss_rate == 0.0

    def test_rounds_for_miss_rate(self):
        profiler = RetentionProfiler(detection_probability=0.75)
        # (0.25)^r <= 1e-6 -> r = 10.
        assert profiler.rounds_for_miss_rate(1e-6) == 10
        assert profiler.rounds_for_miss_rate(0.25) == 1

    def test_deterministic(self):
        a = RetentionProfiler(seed=7).profile(1 << 20, 1.0, rounds=2)
        b = RetentionProfiler(seed=7).profile(1 << 20, 1.0, rounds=2)
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetentionProfiler(detection_probability=0.0)
        with pytest.raises(ConfigurationError):
            RetentionProfiler(vrt_fraction=2.0)
        profiler = RetentionProfiler()
        with pytest.raises(ConfigurationError):
            profiler.profile(-1, 1.0)
        with pytest.raises(ConfigurationError):
            profiler.profile(100, 0.0)
        with pytest.raises(ConfigurationError):
            profiler.profile(100, 1.0, rounds=0)
        with pytest.raises(ConfigurationError):
            profiler.rounds_for_miss_rate(0.0)


class TestMeccContrast:
    def test_mecc_needs_no_profile(self):
        """The punchline: even a 10-round profile leaves thousands of
        unprotected cells per GB (misses + VRT sleepers), each a data
        loss for RAPID/RAIDR/SECRET; MECC budgets for random failures and
        needs zero profiling rounds."""
        profiler = RetentionProfiler(seed=9, vrt_fraction=1e-7)
        report = profiler.profile(GB_CELLS, 1.0, rounds=10)
        assert report.unprotected_cells > 500
        # MECC's exposure at the same operating point, for reference:
        from repro.baselines.vrt import VrtModel

        mecc = VrtModel(seed=9).mecc_exposure(1e-7)
        assert mecc.uncorrectable_lines < 1e-3
