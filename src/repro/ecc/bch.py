"""Binary BCH codes: the paper's strong multi-bit ECC (ECC-2 .. ECC-6).

The paper (Sec. III-E) uses t-error-correcting BCH over GF(2^m) with
``t*m`` parity bits (plus one for t+1-error detection).  For a 64-byte
line (512 data bits) this means m=10 and, for ECC-6, 60 parity bits —
exactly the budget available in a (72,64)-style ECC DIMM once SECDED is
moved to line granularity (paper Fig. 6).

This module implements the real codec: systematic encoding by polynomial
division, syndrome computation, Berlekamp–Massey, and Chien search.  The
cycle simulator only uses the *latency model* of these codes
(:mod:`repro.ecc.codes`), but fault-injection studies
(:mod:`repro.reliability.faults`) exercise this implementation directly
to validate the paper's correction-strength claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ecc.gf import GF2m, get_field, gf2_poly_degree, gf2_poly_lcm, gf2_poly_mod
from repro.errors import ConfigurationError, EncodingError, UncorrectableError


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of a successful decode.

    Attributes:
        data: the corrected data bits as an int.
        corrected_positions: bit positions (in the codeword) that were
            flipped by the decoder; empty tuple for a clean word.
    """

    data: int
    corrected_positions: tuple[int, ...]

    @property
    def errors_corrected(self) -> int:
        return len(self.corrected_positions)


class BchCode:
    """A shortened, systematic, t-error-correcting binary BCH code.

    Args:
        t: guaranteed correction capability (number of bit errors).
        data_bits: number of data bits per codeword (e.g. 512 for a 64-byte
            line).
        m: Galois-field degree; defaults to the smallest m with
            ``2^m - 1 >= data_bits + t*m``.
        extended: if True, append one overall parity bit, turning the code
            into a (t)EC-(t+1)ED code (the paper's "61 bits if we want
            6-bit correction and 7-bit detection").

    Codeword layout (LSB first): ``[parity | data]`` — data occupies the
    high ``data_bits`` bits, parity the low bits, and the optional extended
    parity bit sits above the data.
    """

    def __init__(self, t: int, data_bits: int, m: int | None = None, extended: bool = False):
        if t < 1:
            raise ConfigurationError(f"BCH needs t >= 1, got t={t}")
        if data_bits < 1:
            raise ConfigurationError(f"BCH needs data_bits >= 1, got {data_bits}")
        if m is None:
            m = 3
            while (1 << m) - 1 < data_bits + t * m:
                m += 1
                if m > 16:
                    raise ConfigurationError(
                        f"no supported field fits data_bits={data_bits}, t={t}"
                    )
        self.field: GF2m = get_field(m)
        self.t = t
        self.m = m
        self.n_full = (1 << m) - 1
        self.data_bits = data_bits
        self.extended = extended
        self.generator = self._build_generator()
        self.parity_bits = gf2_poly_degree(self.generator)
        base_len = data_bits + self.parity_bits
        if base_len > self.n_full:
            raise ConfigurationError(
                f"shortened length {base_len} exceeds n={self.n_full} for m={m}"
            )
        self.codeword_bits = base_len + (1 if extended else 0)
        # Precompute masks.
        self._parity_mask = (1 << self.parity_bits) - 1
        self._data_shift = self.parity_bits
        self._ext_bit = 1 << (base_len) if extended else 0
        self._base_len = base_len

    def _build_generator(self) -> int:
        """g(x) = lcm of minimal polynomials of alpha^1 .. alpha^(2t)."""
        gen = 1
        for j in range(1, 2 * self.t + 1):
            gen = gf2_poly_lcm(gen, self.field.minimal_polynomial(j))
        return gen

    # -- encode -------------------------------------------------------------

    def encode(self, data: int) -> int:
        """Systematically encode ``data`` into a codeword int.

        Raises:
            EncodingError: if data does not fit in ``data_bits``.
        """
        if data < 0 or data >> self.data_bits:
            raise EncodingError(f"data does not fit in {self.data_bits} bits")
        shifted = data << self.parity_bits
        parity = gf2_poly_mod(shifted, self.generator)
        word = shifted | parity
        if self.extended and _parity_of(word):
            word |= self._ext_bit
        return word

    def extract_data(self, codeword: int) -> int:
        """Pull the data bits out of a codeword without decoding."""
        return (codeword & ((1 << self._base_len) - 1)) >> self._data_shift

    # -- decode -------------------------------------------------------------

    def decode(self, received: int) -> DecodeResult:
        """Correct up to t errors in ``received`` and return the data.

        Raises:
            UncorrectableError: when the decoder *detects* more errors than
                it can correct.  Patterns with > t errors that alias onto a
                valid codeword (or a correctable coset) are miscorrected
                silently, as in real hardware.
        """
        if received < 0 or received >> self.codeword_bits:
            raise UncorrectableError("received word has out-of-range bits")
        base = received & ((1 << self._base_len) - 1)
        syndromes = self._syndromes(base)
        if all(s == 0 for s in syndromes):
            if self.extended and _parity_of(received):
                # Clean BCH word but bad overall parity: the error is the
                # extended parity bit itself.
                return DecodeResult(self.extract_data(base), (self._base_len,))
            return DecodeResult(self.extract_data(base), ())

        sigma = self._berlekamp_massey(syndromes)
        n_errors = len(sigma) - 1
        if n_errors > self.t:
            raise UncorrectableError(
                "error locator degree exceeds t", detected_errors=n_errors
            )
        positions = self._chien_search(sigma)
        if len(positions) != n_errors:
            raise UncorrectableError(
                "error locator does not split over valid positions",
                detected_errors=n_errors,
            )
        if self.extended:
            # Total flips must leave the overall parity consistent.
            corrected = received
            for pos in positions:
                corrected ^= 1 << pos
            if _parity_of(corrected):
                # Parity mismatch after correcting n <= t errors means the
                # true error count is n+1 (or more): detected.
                if n_errors >= self.t:
                    raise UncorrectableError(
                        "extended parity indicates t+1 errors",
                        detected_errors=n_errors + 1,
                    )
                # Fewer than t corrections plus the parity bit itself.
                positions = positions + [self._base_len]
                corrected ^= self._ext_bit
            return DecodeResult(self.extract_data(corrected), tuple(sorted(positions)))

        corrected = base
        for pos in positions:
            corrected ^= 1 << pos
        return DecodeResult(self.extract_data(corrected), tuple(sorted(positions)))

    def _syndromes(self, received: int) -> list[int]:
        """S_j = r(alpha^j) for j = 1..2t, iterating over set bits only."""
        field = self.field
        exp = field._exp
        order = field.order
        syndromes = [0] * (2 * self.t)
        bits = []
        word = received
        while word:
            low = word & -word
            bits.append(low.bit_length() - 1)
            word ^= low
        for j in range(1, 2 * self.t + 1):
            acc = 0
            for i in bits:
                acc ^= exp[(j * i) % order]
            syndromes[j - 1] = acc
        return syndromes

    def _berlekamp_massey(self, syndromes: list[int]) -> list[int]:
        """Find the error-locator polynomial sigma(x) (low-to-high coeffs)."""
        field = self.field
        sigma = [1]
        prev_sigma = [1]
        length = 0
        shift = 1
        prev_discrepancy = 1
        for step, s in enumerate(syndromes):
            # discrepancy d = s + sum_{i=1..L} sigma_i * S_{step-i}
            d = s
            for i in range(1, length + 1):
                if i < len(sigma) and sigma[i]:
                    d ^= field.mul(sigma[i], syndromes[step - i])
            if d == 0:
                shift += 1
                continue
            scale = field.div(d, prev_discrepancy)
            candidate = sigma[:]
            # candidate = sigma - scale * x^shift * prev_sigma
            needed = len(prev_sigma) + shift
            if len(candidate) < needed:
                candidate.extend([0] * (needed - len(candidate)))
            for i, coeff in enumerate(prev_sigma):
                if coeff:
                    candidate[i + shift] ^= field.mul(scale, coeff)
            if 2 * length <= step:
                prev_sigma = sigma
                prev_discrepancy = d
                length = step + 1 - length
                shift = 1
            else:
                shift += 1
            sigma = candidate
        # Trim trailing zeros.
        while len(sigma) > 1 and sigma[-1] == 0:
            sigma.pop()
        return sigma

    def _chien_search(self, sigma: list[int]) -> list[int]:
        """Roots of sigma give error positions; keep only in-range ones.

        A root at ``alpha^(-i)`` marks an error at codeword position ``i``.
        For the shortened code, a root mapping outside ``[0, base_len)``
        means the pattern is uncorrectable (handled by the caller via the
        root-count check).
        """
        field = self.field
        positions = []
        degree = len(sigma) - 1
        found = 0
        for i in range(self.n_full):
            value = field.poly_eval(sigma, field.alpha_pow((-i) % field.order))
            if value == 0:
                if i < self._base_len:
                    positions.append(i)
                found += 1
                if found == degree:
                    break
        return positions

    def __repr__(self) -> str:
        kind = "extended " if self.extended else ""
        return (
            f"BchCode({kind}t={self.t}, data_bits={self.data_bits}, m={self.m}, "
            f"parity_bits={self.parity_bits + (1 if self.extended else 0)})"
        )


def _parity_of(word: int) -> int:
    """Overall parity (popcount mod 2) of an int."""
    return bin(word).count("1") & 1
