"""Tests for the retention-time model (paper Fig. 2)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.reliability.retention import (
    BER_AT_1S,
    BER_AT_64MS,
    JEDEC_REFRESH_PERIOD_S,
    RetentionModel,
    SLOW_REFRESH_PERIOD_S,
)

MODEL = RetentionModel()


class TestAnchors:
    def test_jedec_anchor(self):
        """BER at 64 ms is 1e-9 (paper Sec. II-B)."""
        assert MODEL.bit_failure_probability(JEDEC_REFRESH_PERIOD_S) == pytest.approx(
            BER_AT_64MS, rel=1e-9
        )

    def test_one_second_anchor(self):
        """BER at 1 s is 10^-4.5 (the paper's default)."""
        assert MODEL.bit_failure_probability(SLOW_REFRESH_PERIOD_S) == pytest.approx(
            BER_AT_1S, rel=1e-12
        )

    def test_expected_failed_bits_at_1s(self):
        """Paper: ~32K failed bits per 1Gb, ~256K per 1GB at BER 10^-4.5."""
        from repro.reliability.failure import expected_failed_bits

        per_gbit = expected_failed_bits(BER_AT_1S, 1 << 30)
        per_gbyte = expected_failed_bits(BER_AT_1S, 8 << 30)
        assert 30_000 < per_gbit < 36_000
        assert 250_000 < per_gbyte < 280_000


class TestShape:
    def test_monotone_increasing(self):
        times = [0.01, 0.064, 0.2, 1.0, 5.0, 20.0]
        probs = [MODEL.bit_failure_probability(t) for t in times]
        assert probs == sorted(probs)
        assert all(p1 < p2 for p1, p2 in zip(probs, probs[1:]))

    def test_clamped_at_one(self):
        assert MODEL.bit_failure_probability(1e6) == 1.0

    def test_zero_time(self):
        assert MODEL.bit_failure_probability(0) == 0.0
        assert MODEL.bit_failure_probability(-1) == 0.0

    def test_curve_matches_point_queries(self):
        for t, p in MODEL.curve(points=11):
            assert p == pytest.approx(MODEL.bit_failure_probability(t))

    def test_curve_spans_requested_range(self):
        curve = MODEL.curve(t_min_s=0.01, t_max_s=100.0, points=5)
        assert curve[0][0] == pytest.approx(0.01)
        assert curve[-1][0] == pytest.approx(100.0)

    def test_curve_rejects_bad_range(self):
        with pytest.raises(ConfigurationError):
            MODEL.curve(t_min_s=1.0, t_max_s=0.5)


class TestInverse:
    def test_refresh_period_for_ber_roundtrip(self):
        for ber in (1e-9, 1e-6, BER_AT_1S):
            period = MODEL.refresh_period_for_ber(ber)
            assert MODEL.ber_at_refresh_period(period) == pytest.approx(ber, rel=1e-6)

    def test_rejects_bad_ber(self):
        with pytest.raises(ConfigurationError):
            MODEL.refresh_period_for_ber(0.0)
        with pytest.raises(ConfigurationError):
            MODEL.refresh_period_for_ber(1.5)


class TestSampling:
    def test_sample_count(self):
        samples = MODEL.sample_retention_times(100, random.Random(0))
        assert len(samples) == 100
        assert all(s > 0 for s in samples)

    def test_sample_distribution_matches_cdf(self):
        """Empirical P(retention < 1 s) should approximate BER_AT_1S scale.

        BER_AT_1S ~ 3e-5 is too rare for 1e5 samples, so test at a longer
        time where the probability is material.
        """
        rng = random.Random(7)
        samples = MODEL.sample_retention_times(20_000, rng)
        t_test = 30.0
        expected = MODEL.bit_failure_probability(t_test)
        empirical = sum(1 for s in samples if s < t_test) / len(samples)
        assert empirical == pytest.approx(expected, rel=0.15)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            MODEL.sample_retention_times(-1, random.Random(0))


class TestValidation:
    def test_rejects_bad_anchor(self):
        with pytest.raises(ConfigurationError):
            RetentionModel(anchor_time_s=-1)
        with pytest.raises(ConfigurationError):
            RetentionModel(anchor_ber=0.0)
        with pytest.raises(ConfigurationError):
            RetentionModel(slope=-2.0)


@given(st.floats(min_value=0.001, max_value=1000.0),
       st.floats(min_value=0.001, max_value=1000.0))
@settings(max_examples=100)
def test_property_monotonicity(t1, t2):
    p1 = MODEL.bit_failure_probability(t1)
    p2 = MODEL.bit_failure_probability(t2)
    if t1 < t2:
        assert p1 <= p2
    elif t1 > t2:
        assert p1 >= p2


class TestTemperature:
    """Extension: retention halves per +10 C (JEDEC extended-temp basis)."""

    def test_hotter_means_higher_ber(self):
        nominal = RetentionModel()
        hot = nominal.at_temperature_offset(20.0)
        assert hot.ber_at_refresh_period(1.0) > nominal.ber_at_refresh_period(1.0)

    def test_exact_halving_relation(self):
        """+10 C at period P equals nominal at period 2P."""
        nominal = RetentionModel()
        hot = nominal.at_temperature_offset(10.0)
        assert hot.ber_at_refresh_period(0.5) == pytest.approx(
            nominal.ber_at_refresh_period(1.0), rel=1e-9
        )

    def test_cooling_helps(self):
        nominal = RetentionModel()
        cold = nominal.at_temperature_offset(-10.0)
        assert cold.ber_at_refresh_period(1.0) < nominal.ber_at_refresh_period(1.0)

    def test_zero_offset_identity(self):
        nominal = RetentionModel()
        same = nominal.at_temperature_offset(0.0)
        assert same.ber_at_refresh_period(0.7) == pytest.approx(
            nominal.ber_at_refresh_period(0.7)
        )

    def test_temperature_compensated_divider(self):
        """At +20 C, keeping the paper's BER budget requires shrinking the
        slow period 4x (1.024 s -> 0.256 s): the 4-bit divider drops to
        2 effective bits, and the refresh saving falls from 16x to 4x."""
        from repro.reliability.provisioning import required_strength_for_refresh_period

        hot = RetentionModel().at_temperature_offset(20.0)
        assert required_strength_for_refresh_period(1.024, hot) > 6
        # 0.25 s at +20 C is exactly nominal 1.0 s: ECC-6 suffices.
        assert required_strength_for_refresh_period(0.25, hot) == 6


class TestMonteCarloLineFailure:
    """The batched-codec Monte-Carlo cross-checks the binomial tail."""

    @pytest.mark.slow
    def test_matches_analytic_binomial_tail(self):
        from repro.reliability.failure import line_failure_probability
        from repro.reliability.retention import monte_carlo_line_failure

        model = RetentionModel(anchor_ber=0.02)
        period = 1.024
        estimate = monte_carlo_line_failure(
            model, period, ecc_t=2, trials=6000, seed=7, data_bits=64
        )
        from repro.ecc.bch import BchCode

        ber = model.bit_failure_probability(period)
        # Same stored size the campaign used: 64 data + 14 parity bits
        # (t=2 over GF(2^7)).
        line_bits = BchCode(t=2, data_bits=64).codeword_bits
        analytic = line_failure_probability(ber, 2, line_bits=line_bits)
        sigma = math.sqrt(analytic * (1 - analytic) / estimate.trials)
        assert abs(estimate.failure_probability - analytic) < 4 * sigma

    def test_deterministic_with_seed(self):
        from repro.reliability.retention import monte_carlo_line_failure

        a = monte_carlo_line_failure(MODEL, 1.0, ecc_t=2, trials=50, seed=3)
        b = monte_carlo_line_failure(MODEL, 1.0, ecc_t=2, trials=50, seed=3)
        assert a == b

    def test_fast_refresh_never_fails(self):
        from repro.reliability.retention import monte_carlo_line_failure

        estimate = monte_carlo_line_failure(
            MODEL, JEDEC_REFRESH_PERIOD_S, ecc_t=6, trials=200, seed=1
        )
        assert estimate.failures == 0
        assert estimate.failure_probability == 0.0

    def test_rejects_bad_arguments(self):
        from repro.reliability.retention import monte_carlo_line_failure

        with pytest.raises(ConfigurationError):
            monte_carlo_line_failure(MODEL, 1.0, ecc_t=2, trials=0)
        with pytest.raises(ConfigurationError):
            monte_carlo_line_failure(MODEL, 0.0, ecc_t=2, trials=1)


class TestSparseFlipSampler:
    def test_edge_probabilities(self):
        from repro.reliability.retention import _sample_sparse_flips

        rng = random.Random(0)
        assert _sample_sparse_flips(rng, 100, 0.0) == []
        assert _sample_sparse_flips(rng, 5, 1.0) == [0, 1, 2, 3, 4]

    def test_matches_dense_bernoulli_rate(self):
        from repro.reliability.retention import _sample_sparse_flips

        rng = random.Random(42)
        p, n_bits, rounds = 0.01, 1000, 200
        total = sum(len(_sample_sparse_flips(rng, n_bits, p)) for _ in range(rounds))
        expected = p * n_bits * rounds
        assert abs(total - expected) < 5 * math.sqrt(expected)

    def test_positions_strictly_increasing_in_range(self):
        from repro.reliability.retention import _sample_sparse_flips

        rng = random.Random(9)
        for _ in range(50):
            flips = _sample_sparse_flips(rng, 64, 0.1)
            assert flips == sorted(set(flips))
            assert all(0 <= f < 64 for f in flips)
