"""Premise validation on the real data path (extension).

The paper's evaluation takes the codes' correctness as given and models
only latency/power.  This bench closes that loop: it runs full
wake → access/downgrade → upgrade → idle cycles on a functional memory
whose lines are real (72,64)-layout codewords, with retention faults
sampled at each scheme's refresh period, and verifies data integrity.

Expected: MECC and ECC-6 survive the 1 s refresh with zero loss (errors
corrected by the real BCH decoder); SEC-DED survives only because it
keeps the 64 ms refresh; no-ECC at 1 s silently corrupts.
"""

from repro.analysis.tables import format_table
from repro.functional.faults import FaultProcess, SoftErrorModel
from repro.functional.session import FunctionalMeccSession
from repro.reliability.retention import RetentionModel

#: Accelerated retention BER (paper default is 10^-4.5; this keeps the
#: expected flips-per-line-per-idle-period near 0.6 so correction events
#: are frequent while staying far inside ECC-6's budget).
ACCELERATED_BER = 1e-3


def _run_all_schemes():
    reports = {}
    for scheme in ("mecc", "secded", "ecc6", "none-slow"):
        faults = FaultProcess(
            retention=RetentionModel(anchor_ber=ACCELERATED_BER),
            soft_errors=SoftErrorModel(rate_per_bit_s=0.0),
            seed=17,
        )
        session = FunctionalMeccSession(
            scheme=scheme,
            working_set_lines=48,
            faults=faults,
            seed=17,
            accesses_per_active_phase=64,
            idle_seconds=180.0,
        )
        reports[scheme] = session.run(cycles=12)
    return reports


def test_functional_integrity_across_schemes(benchmark, show):
    reports = benchmark.pedantic(_run_all_schemes, rounds=1, iterations=1)
    show(format_table(
        ["scheme", "sim hours", "reads", "bits corrected", "detected",
         "silent", "lost data?"],
        [
            [name, r.simulated_seconds / 3600, r.counters.reads,
             r.counters.corrected_bits, r.counters.detected_uncorrectable,
             r.counters.silent_corruptions, "YES" if r.lost_data else "no"]
            for name, r in reports.items()
        ],
        title=(
            "Functional integrity — real codewords, accelerated retention "
            f"faults (BER {ACCELERATED_BER:g} at 1 s)"
        ),
    ))
    # MECC and ECC-6 at the 1 s refresh: real corrections, zero loss.
    for scheme in ("mecc", "ecc6"):
        assert not reports[scheme].lost_data, scheme
        assert reports[scheme].counters.corrected_bits > 0, scheme
    # SEC-DED stays at 64 ms: safe, but pays full refresh (no corrections
    # needed because nothing fails at 64 ms).
    assert not reports["secded"].lost_data
    assert reports["secded"].counters.corrected_bits == 0
    # No-ECC at 1 s: silent corruption, every time.
    assert reports["none-slow"].lost_data
    assert reports["none-slow"].counters.silent_corruptions > 0
    # MECC actually morphed: downgrades during bursts, upgrades at idle.
    assert reports["mecc"].counters.downgrades > 0
    assert reports["mecc"].counters.upgrades > 0
