"""Persona study (extension): who benefits from MECC, and by how much?

Simulates a day of light / moderate / heavy usage and reports each
persona's memory-energy saving and performance cost under MECC.  The
shape: lighter users (more idle) save a larger *fraction* of memory
energy at near-zero performance cost; heavy users still save, but pay a
few percent of IPC during their longer sessions.
"""

from repro.analysis.tables import format_table
from repro.sim.system import ScaledRun
from repro.workloads.personas import PERSONAS, Persona, persona_savings


def test_persona_day_study(benchmark, run, show):
    study_run = ScaledRun(instructions=min(run.instructions, 150_000))

    def compute():
        out = {}
        for persona in PERSONAS:
            # Scale session counts down 4x to keep the bench quick; duty
            # cycle (idle_fraction) is what matters, and it is preserved.
            scaled = Persona(
                persona.name,
                persona.app_mix,
                max(3, persona.sessions_per_day // 8),
                persona.idle_fraction,
            )
            out[persona.name] = persona_savings(scaled, study_run)
        return out

    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(format_table(
        ["persona", "baseline J/day", "MECC J/day", "saving", "idle share",
         "MECC norm. IPC"],
        [[name, v["baseline_j"], v["mecc_j"], f"{v['saving_fraction']:.1%}",
          f"{v['idle_share_of_energy']:.1%}", v["mecc_normalized_ipc"]]
         for name, v in out.items()],
        title="Persona study — one simulated day per usage profile",
    ))
    # Everyone saves; lighter personas save a larger fraction.
    for name, row in out.items():
        assert row["saving_fraction"] > 0.1, name
    assert out["light"]["saving_fraction"] >= out["heavy"]["saving_fraction"]
    # Performance cost ordering follows memory intensity.
    assert out["light"]["mecc_normalized_ipc"] >= out["heavy"]["mecc_normalized_ipc"]
    assert out["light"]["mecc_normalized_ipc"] > 0.98
