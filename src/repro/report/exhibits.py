"""Builders for every registered exhibit (Figs. 1-3/7-14, Tables I/III,
related work, and the reproduction extensions).

Each builder regenerates one exhibit as a tidy :class:`ExhibitData`
table by delegating to :mod:`repro.analysis.experiments` (which routes
all simulation through the cached experiment runner), so a ``repro
report`` replay, a bench shim, and an interactive ``repro fig7`` all
share the same jobs and produce the same numbers.
"""

from __future__ import annotations

from repro.analysis import experiments as X
from repro.report.spec import ExhibitData, register_exhibit
from repro.sim.system import ScaledRun
from repro.workloads.spec import ALL_BENCHMARKS, MpkiClass

# ---------------------------------------------------------------------------
# Figures 1-3: motivation and ECC overhead
# ---------------------------------------------------------------------------


@register_exhibit(
    "fig1",
    title="Fig. 1 — memory power over a usage session",
    paper_anchor="Fig. 1",
    kind="figure",
    paper_note="Paper: active memory power ~9x idle; refresh is ~half of "
    "idle power; idle dominates the time budget.",
    params={"total_s": 600.0, "seed": 7},
)
def _fig1(run: ScaledRun, total_s: float = 600.0, seed: int = 7) -> ExhibitData:
    samples, active_power = X.fig1_usage_timeline(total_s=total_s, seed=seed)
    rows = []
    t = 0.0
    for i, s in enumerate(samples):
        rows.append((
            i,
            round(t, 3),
            s.phase.state.value,
            round(s.phase.duration_s, 3),
            s.power_w / active_power,
            s.refresh_w / s.power_w,
        ))
        t += s.phase.duration_s
    return ExhibitData(
        "fig1",
        ("phase", "start_s", "state", "duration_s", "power_norm", "refresh_share"),
        tuple(rows),
        meta={"total_s": total_s, "seed": seed, "active_power_w": active_power},
    )


@register_exhibit(
    "fig2",
    title="Fig. 2 — retention-time failure curve",
    paper_anchor="Fig. 2",
    kind="figure",
    paper_note="Paper anchors: BER 1e-9 at 64 ms, 10^-4.5 at 1 s.",
    params={"points": 41},
)
def _fig2(run: ScaledRun, points: int = 41) -> ExhibitData:
    curve = X.fig2_retention_curve(points=points)
    return ExhibitData(
        "fig2",
        ("retention_time_s", "bit_failure_probability"),
        tuple((t, p) for t, p in curve),
    )


@register_exhibit(
    "fig3",
    title="Fig. 3 — ECC overhead by MPKI class",
    paper_anchor="Fig. 3",
    kind="figure",
    paper_note="Paper: SECDED <1%; ECC-6 ~2%/~9%/~16% by class, 10% overall.",
    simulated=True,
)
def _fig3(run: ScaledRun) -> ExhibitData:
    out = X.fig3_ecc_overhead_by_class(run)
    return ExhibitData(
        "fig3",
        ("class", "secded", "ecc6"),
        tuple((cls, v["secded"], v["ecc6"]) for cls, v in out.items()),
    )


# ---------------------------------------------------------------------------
# Figures 7-10: performance and power/energy
# ---------------------------------------------------------------------------


@register_exhibit(
    "fig7",
    title="Fig. 7 — per-benchmark performance",
    paper_anchor="Fig. 7",
    kind="figure",
    paper_note="Paper geomeans: SECDED 0.995, ECC-6 0.90 (libq ~0.79), "
    "MECC 0.988.",
    simulated=True,
)
def _fig7(run: ScaledRun) -> ExhibitData:
    perf = X.fig7_performance(run)
    rows = [
        (
            spec.name,
            spec.mpki_class.value,
            perf.normalized(spec.name, "secded"),
            perf.normalized(spec.name, "ecc6"),
            perf.normalized(spec.name, "mecc"),
        )
        for spec in ALL_BENCHMARKS
    ]
    for cls in MpkiClass:
        rows.append((
            f"GEOMEAN:{cls.value}",
            cls.value,
            perf.class_geomean("secded", cls),
            perf.class_geomean("ecc6", cls),
            perf.class_geomean("mecc", cls),
        ))
    rows.append((
        "ALL",
        "(geomean)",
        perf.geomean("secded"),
        perf.geomean("ecc6"),
        perf.geomean("mecc"),
    ))
    return ExhibitData(
        "fig7", ("benchmark", "class", "secded", "ecc6", "mecc"), tuple(rows)
    )


@register_exhibit(
    "fig8",
    title="Fig. 8 — idle power",
    paper_anchor="Fig. 8",
    kind="figure",
    paper_note="Paper: refresh 1/16; total idle power ~0.57 of baseline.",
)
def _fig8(run: ScaledRun) -> ExhibitData:
    out = X.fig8_idle_power()
    return ExhibitData(
        "fig8",
        ("scheme", "refresh_w", "background_w", "total_w", "refresh_norm",
         "total_norm"),
        tuple(
            (name, v["refresh_w"], v["background_w"], v["total_w"],
             v["refresh_norm"], v["total_norm"])
            for name, v in out.items()
        ),
    )


@register_exhibit(
    "fig9",
    title="Fig. 9 — active power/energy/EDP",
    paper_anchor="Fig. 9",
    kind="figure",
    paper_note="Paper: MECC power ~+1%; ECC-6 EDP ~+12%; energies similar.",
    simulated=True,
)
def _fig9(run: ScaledRun) -> ExhibitData:
    out = X.fig9_active_metrics(run)
    return ExhibitData(
        "fig9",
        ("scheme", "power", "energy", "edp"),
        tuple((n, v["power"], v["energy"], v["edp"]) for n, v in out.items()),
    )


@register_exhibit(
    "fig10",
    title="Fig. 10 — total energy split",
    paper_anchor="Fig. 10",
    kind="figure",
    paper_note="Paper: ~15% total-energy saving at 95% idle (see "
    "EXPERIMENTS.md on the active/idle power-ratio discussion).",
    simulated=True,
)
def _fig10(run: ScaledRun) -> ExhibitData:
    out = X.fig10_total_energy(run)
    return ExhibitData(
        "fig10",
        ("scheme", "active_j", "idle_j", "total_j", "total_norm"),
        tuple(
            (n, v["active_j"], v["idle_j"], v["total_j"], v["total_norm"])
            for n, v in out.items()
        ),
    )


# ---------------------------------------------------------------------------
# Figures 11-14: MECC enhancements
# ---------------------------------------------------------------------------


@register_exhibit(
    "fig11",
    title="Fig. 11 — MDT tracking",
    paper_anchor="Fig. 11",
    kind="figure",
    paper_note="Paper: ~128 MB average footprint -> 8x less upgrade work; "
    "400 ms -> 50 ms.",
    params={"coverage_factor": 2.0},
)
def _fig11(run: ScaledRun, coverage_factor: float = 2.0) -> ExhibitData:
    out = X.fig11_mdt_tracking(coverage_factor=coverage_factor)
    return ExhibitData(
        "fig11",
        ("benchmark", "footprint_mb", "tracked_mb", "upgrade_ms"),
        tuple(
            (n, v["footprint_mb"], v["tracked_mb"], v["upgrade_ms"])
            for n, v in out.items()
        ),
        meta={"coverage_factor": coverage_factor},
    )


@register_exhibit(
    "fig12",
    title="Fig. 12 — decode-latency sensitivity",
    paper_anchor="Fig. 12",
    kind="figure",
    paper_note="Paper: ECC-6 drops to 0.82 at 60 cycles; MECC stays "
    "within ~2%.",
    params={"latencies": (15, 30, 45, 60)},
    simulated=True,
)
def _fig12(run: ScaledRun, latencies=(15, 30, 45, 60)) -> ExhibitData:
    out = X.fig12_latency_sensitivity(latencies=tuple(latencies), run=run)
    return ExhibitData(
        "fig12",
        ("decode_cycles", "ecc6", "mecc"),
        tuple((lat, v["ecc6"], v["mecc"]) for lat, v in out.items()),
    )


@register_exhibit(
    "fig13",
    title="Fig. 13 — transition time",
    paper_anchor="Fig. 13",
    kind="figure",
    paper_note="Paper: MECC converges from ~2% (<=1B instr) to 1.2% (4B).",
    simulated=True,
)
def _fig13(run: ScaledRun) -> ExhibitData:
    out = X.fig13_transition(run=run)
    rows = []
    for fraction in sorted(out):
        v = out[fraction]
        rows.append((
            fraction,
            v["paper_instructions"] / 1e9,
            v["secded"],
            v["mecc"],
            v["secded"] - v["mecc"],
        ))
    return ExhibitData(
        "fig13",
        ("slice_fraction", "paper_billions", "secded", "mecc", "gap"),
        tuple(rows),
    )


@register_exhibit(
    "fig14",
    title="Fig. 14 — SMD disabled time",
    paper_anchor="Fig. 14",
    kind="figure",
    paper_note="Paper: povray, tonto, wrf, gamess, hmmer, sjeng, h264ref "
    "never enable ECC-Downgrade; average within 2% of baseline.",
    simulated=True,
)
def _fig14(run: ScaledRun) -> ExhibitData:
    out = X.fig14_smd_disabled(run)
    return ExhibitData(
        "fig14",
        ("benchmark", "disabled_fraction"),
        tuple(sorted(out.items(), key=lambda kv: (-kv[1], kv[0]))),
    )


# ---------------------------------------------------------------------------
# Tables I and III
# ---------------------------------------------------------------------------


@register_exhibit(
    "table1",
    title="Table I — ECC strength vs. failure probability",
    paper_anchor="Table I",
    kind="table",
    paper_note="Paper: ECC-5 meets the 1e-6 system target at BER 10^-4.5; "
    "ECC-6 adds the soft-error margin.",
)
def _table1(run: ScaledRun) -> ExhibitData:
    rows = X.table1_failure()
    return ExhibitData(
        "table1",
        ("ecc_t", "label", "line_failure", "system_failure"),
        tuple((r.ecc_t, r.label, r.line_failure, r.system_failure) for r in rows),
    )


@register_exhibit(
    "table3",
    title="Table III — workload characterization",
    paper_anchor="Table III",
    kind="table",
    paper_note="Paper: Low 1.514/0.3/26; Med 0.887/4.7/96.4; "
    "High 0.359/23.5/259.1 (IPC/MPKI/MB).",
    simulated=True,
)
def _table3(run: ScaledRun) -> ExhibitData:
    out = X.table3_characterization(run)
    return ExhibitData(
        "table3",
        ("class", "ipc", "mpki", "footprint_mb"),
        tuple(
            (cls, v["ipc"], v["mpki"], v["footprint_mb"])
            for cls, v in out.items()
        ),
    )


# ---------------------------------------------------------------------------
# Related work (Sec. VII) and the persona study
# ---------------------------------------------------------------------------


@register_exhibit(
    "related-work",
    title="Sec. VII — baseline comparison",
    paper_anchor="Sec. VII",
    kind="table",
    paper_note="Paper Sec. VII: Flikker ~1/3 effective rate; profile-based "
    "schemes are VRT-fragile; RAIDR orthogonal.",
    params={"vrt_flip_probability": 1e-7},
)
def _related_work(
    run: ScaledRun, vrt_flip_probability: float = 1e-7
) -> ExhibitData:
    from repro.baselines import (
        FlikkerModel,
        RaidrModel,
        RapidModel,
        SecretModel,
        VrtModel,
    )

    flikker = FlikkerModel(critical_fraction=0.25)
    raidr = RaidrModel(rows=8192, seed=5)
    rapid = RapidModel(capacity_bytes=64 << 20, seed=3)
    rates = {
        "Baseline (64 ms)": 1.0,
        "Flikker (1/4 critical)": flikker.effective_refresh_rate,
        "RAPID (50% utilization)": rapid.refresh_rate_relative(0.5),
        "RAIDR (3 bins)": raidr.refresh_rate_relative(),
        "SECRET (1 s)": SecretModel(target_period_s=1.024).refresh_rate_relative,
        "MECC (idle, 1 s)": 1 / 16,
        "RAIDR + MECC (naive)": raidr.combined_with_ecc_rate(16),
        "RAIDR + MECC (honest)": raidr.safe_combined_rate(1.024),
    }
    rows = [
        ("refresh_rate", scheme, value) for scheme, value in rates.items()
    ]
    for result in VrtModel(seed=9).compare(vrt_flip_probability):
        rows.append(
            ("vrt_uncorrectable_lines", result.scheme, result.uncorrectable_lines)
        )
    return ExhibitData(
        "related-work",
        ("metric", "scheme", "value"),
        tuple(rows),
        meta={"vrt_flip_probability": vrt_flip_probability},
    )


@register_exhibit(
    "personas",
    title="Extension — persona day study",
    paper_anchor="Extension",
    kind="extension",
    paper_note="Extension: lighter (more idle) personas save a larger "
    "fraction of memory energy under MECC at near-zero IPC cost.",
    params={"sessions_divisor": 8, "max_instructions": 150_000},
    simulated=True,
)
def _personas(
    run: ScaledRun,
    sessions_divisor: int = 8,
    max_instructions: int = 150_000,
) -> ExhibitData:
    from repro.workloads.personas import PERSONAS, Persona, persona_savings

    study_run = ScaledRun(instructions=min(run.instructions, max_instructions))
    rows = []
    for persona in PERSONAS:
        # Session counts scale down to keep regeneration quick; the duty
        # cycle (idle_fraction) is what drives the savings and is kept.
        scaled = Persona(
            persona.name,
            persona.app_mix,
            max(3, persona.sessions_per_day // max(1, sessions_divisor)),
            persona.idle_fraction,
        )
        v = persona_savings(scaled, study_run)
        rows.append((
            persona.name,
            v["baseline_j"],
            v["mecc_j"],
            v["saving_fraction"],
            v["idle_share_of_energy"],
            v["mecc_normalized_ipc"],
        ))
    return ExhibitData(
        "personas",
        ("persona", "baseline_j", "mecc_j", "saving_fraction",
         "idle_share_of_energy", "mecc_normalized_ipc"),
        tuple(rows),
        meta={
            "sessions_divisor": sessions_divisor,
            "max_instructions": max_instructions,
        },
    )


# ---------------------------------------------------------------------------
# Reproduction extensions: functional integrity and device sessions
# ---------------------------------------------------------------------------


@register_exhibit(
    "functional",
    title="Extension — data-path integrity validation",
    paper_anchor="Extension",
    kind="extension",
    paper_note="Extension: real codewords survive the 1 s refresh under "
    "MECC/ECC-6; no-ECC corrupts silently.",
    params={"cycles": 12, "working_set_lines": 48, "seed": 17},
    simulated=True,
)
def _functional(
    run: ScaledRun,
    cycles: int = 12,
    working_set_lines: int = 48,
    seed: int = 17,
) -> ExhibitData:
    from repro.functional.faults import FaultProcess, SoftErrorModel
    from repro.functional.session import FunctionalMeccSession
    from repro.reliability.retention import RetentionModel

    rows = []
    for scheme in ("mecc", "secded", "ecc6", "none-slow"):
        faults = FaultProcess(
            retention=RetentionModel(anchor_ber=1e-3),
            soft_errors=SoftErrorModel(rate_per_bit_s=0.0),
            seed=seed,
        )
        session = FunctionalMeccSession(
            scheme=scheme,
            working_set_lines=working_set_lines,
            faults=faults,
            seed=seed,
            accesses_per_active_phase=64,
            idle_seconds=180.0,
        )
        report = session.run(cycles=cycles)
        c = report.counters
        rows.append((
            scheme,
            c.reads,
            c.corrected_bits,
            c.detected_uncorrectable,
            c.silent_corruptions,
            not report.lost_data,
        ))
    return ExhibitData(
        "functional",
        ("scheme", "reads", "corrected_bits", "detected_uncorrectable",
         "silent_corruptions", "data_intact"),
        tuple(rows),
        meta={"cycles": cycles, "working_set_lines": working_set_lines,
              "seed": seed},
    )


@register_exhibit(
    "device",
    title="Extension — whole-device session energy",
    paper_anchor="Extension",
    kind="extension",
    paper_note="Extension: device-scale energy ledger with upgrade costs.",
    params={"mix": ("h264ref", "sphinx", "libq"), "cycles": 2},
    simulated=True,
)
def _device(
    run: ScaledRun, mix=("h264ref", "sphinx", "libq"), cycles: int = 2
) -> ExhibitData:
    from repro.sim.device import DeviceSimulator
    from repro.workloads.spec import BENCHMARKS_BY_NAME

    specs = [BENCHMARKS_BY_NAME[n] for n in mix]
    rows = []
    baseline_total = None
    for scheme in ("baseline", "secded", "ecc6", "mecc"):
        sim = DeviceSimulator(scheme=scheme, run=run)
        report = sim.run_session(specs, cycles=cycles)
        if baseline_total is None:
            baseline_total = report.total_energy_j
        rows.append((
            scheme,
            report.active_energy_j,
            report.idle_energy_j,
            report.total_energy_j,
            report.total_energy_j / baseline_total,
            report.average_ipc,
        ))
    return ExhibitData(
        "device",
        ("scheme", "active_j", "idle_j", "total_j", "normalized", "avg_ipc"),
        tuple(rows),
        meta={"mix": list(mix), "cycles": cycles},
    )


@register_exhibit(
    "dse-frontier",
    title="Extension — operating-point Pareto frontier",
    paper_anchor="Extension",
    kind="extension",
    paper_note="Extension: energy/slowdown/failure frontier around the "
    "paper's ECC-6 / 1.024 s / 1 MPKC operating point.",
    params={
        "grid": "ecc=4,6;period=0.256,1.024;threshold=1,2;mdt=1024",
        "benchmarks": ("povray", "libq"),
    },
    simulated=True,
)
def _dse_frontier(
    run: ScaledRun,
    grid: str = "ecc=4,6;period=0.256,1.024;threshold=1,2;mdt=1024",
    benchmarks=("povray", "libq"),
) -> ExhibitData:
    from repro.dse import DesignSpaceExplorer, parse_grid

    report = DesignSpaceExplorer(
        grid=parse_grid(grid), benchmarks=tuple(benchmarks), run=run
    ).explore()
    frontier = set(report.frontier_keys)
    rows = tuple(
        (
            r.point.key(),
            r.energy_j_day,
            r.slowdown,
            r.failure_prob_day,
            r.point.key() in frontier,
            r.point.key() == report.knee_key,
        )
        for r in report.results
    )
    return ExhibitData(
        "dse-frontier",
        ("point", "energy_j_day", "slowdown", "failure_prob_day",
         "on_frontier", "knee"),
        rows,
        meta={
            "grid": report.grid,
            "workload": report.workload,
            "knee": report.knee_key,
            "sim_jobs": report.sim_jobs,
        },
    )


@register_exhibit(
    "dse-tuner",
    title="Extension — per-workload tuner report card",
    paper_anchor="Extension",
    kind="extension",
    paper_note="Extension: learned per-workload operating points with "
    "leave-one-out regret.",
    params={
        "grid": "ecc=4,6;period=0.256,1.024;threshold=2;mdt=1024",
        "personas": ("light", "moderate", "heavy"),
    },
    simulated=True,
)
def _dse_tuner(
    run: ScaledRun,
    grid: str = "ecc=4,6;period=0.256,1.024;threshold=2;mdt=1024",
    personas=("light", "moderate", "heavy"),
) -> ExhibitData:
    from repro.dse import parse_grid, train_tuner
    from repro.workloads.personas import ALL_PERSONAS_BY_NAME

    tuner, _ = train_tuner(
        grid=parse_grid(grid),
        personas=tuple(ALL_PERSONAS_BY_NAME[name] for name in personas),
        run=run,
    )
    rows = tuple(
        (
            row["workload"],
            row["best"],
            row["predicted"],
            row["hit"],
            row["regret"],
        )
        for row in tuner.report_card()
    )
    return ExhibitData(
        "dse-tuner",
        ("workload", "best_point", "loo_prediction", "hit", "regret"),
        rows,
        meta={"grid": grid, "k": tuner.k, "samples": len(tuner.samples)},
    )
