"""Tests for the analytic-vs-Monte-Carlo validation battery."""

import pytest

from repro.analysis.validation import (
    ValidationResult,
    run_all_validations,
    validate_line_failure,
    validate_refresh_linearity,
    validate_retention_inverse,
)
from repro.errors import ConfigurationError


class TestValidationResult:
    def test_relative_error(self):
        result = ValidationResult("x", analytic=0.1, empirical=0.11, trials=100)
        assert result.relative_error == pytest.approx(0.1)

    def test_agrees_within_tolerance(self):
        result = ValidationResult("x", analytic=0.1, empirical=0.105, trials=10_000)
        assert result.agrees(0.1)

    def test_agrees_via_counting_noise(self):
        """A rare event measured with few expected counts passes on the
        4-sigma band even when the relative error is large."""
        result = ValidationResult("x", analytic=1e-4, empirical=2e-4, trials=10_000)
        assert result.relative_error == pytest.approx(1.0)
        assert result.agrees(0.1)

    def test_disagreement_detected(self):
        result = ValidationResult("x", analytic=0.5, empirical=0.9, trials=10_000)
        assert not result.agrees(0.1)


class TestBattery:
    def test_line_failure_validates(self):
        result = validate_line_failure(trials=15_000, seed=3)
        assert result.agrees(0.25)
        assert result.analytic > 0

    def test_retention_inverse_validates(self):
        result = validate_retention_inverse(samples=30_000)
        assert result.agrees(0.15)

    def test_refresh_linearity_is_exact(self):
        result = validate_refresh_linearity()
        assert result.empirical == pytest.approx(1.0, rel=1e-9)

    def test_run_all(self):
        results = run_all_validations()
        assert len(results) == 3
        for result in results:
            assert result.agrees(0.25), result.what

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            validate_line_failure(trials=0)
        with pytest.raises(ConfigurationError):
            validate_retention_inverse(samples=0)
        with pytest.raises(ConfigurationError):
            validate_refresh_linearity(periods_s=(0.064,))
