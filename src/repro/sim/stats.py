"""Small statistics helpers shared by the analysis harness."""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.errors import ConfigurationError


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's 'ALL' bar in Fig. 7)."""
    values = list(values)
    if not values:
        raise ConfigurationError("geometric mean of zero values")
    if any(v <= 0 for v in values):
        raise ConfigurationError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize(values: Mapping[str, float], baseline_key: str) -> dict[str, float]:
    """Divide every value by the baseline entry's value."""
    if baseline_key not in values:
        raise ConfigurationError(f"baseline key {baseline_key!r} missing")
    base = values[baseline_key]
    if base == 0:
        raise ConfigurationError("baseline value is zero")
    return {k: v / base for k, v in values.items()}


def arithmetic_mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        raise ConfigurationError("mean of zero values")
    return sum(values) / len(values)


def summarize_histogram(histogram: Mapping[int, int]) -> dict[str, float]:
    """Condense an integer-valued histogram (value -> count).

    Used for the codecs' corrected-bit histograms
    (:class:`repro.ecc.counters.CodecCounters`): returns the event count,
    the weighted total (e.g. total corrected bits), the mean value per
    event, and the largest observed value.  An empty histogram summarizes
    to all zeros.
    """
    events = sum(histogram.values())
    if any(count < 0 for count in histogram.values()):
        raise ConfigurationError("histogram counts must be non-negative")
    if any(value < 0 for value in histogram):
        raise ConfigurationError("histogram values must be non-negative")
    weighted = sum(value * count for value, count in histogram.items())
    return {
        "events": events,
        "weighted_total": weighted,
        "mean": weighted / events if events else 0.0,
        "max": max((v for v, c in histogram.items() if c), default=0),
    }
