#!/usr/bin/env python3
"""A day in the life of a smartphone's memory system.

Simulates 24 hours of bursty usage (95% idle, as in the smartphone usage
studies the paper cites) and compares the memory system's battery draw
under the baseline (64 ms self-refresh) and MECC (1 s self-refresh with
MDT-accelerated ECC-Upgrade at each idle entry).

Reproduces the paper's motivation figure (Fig. 1) as a text timeline and
its total-energy story (Fig. 10) at device scale.

Usage::

    python examples/smartphone_day.py
"""

from repro.core.mecc import MeccController
from repro.power import DramPowerCalculator
from repro.sim.usage import SessionEvaluator, UsageModel
from repro.types import SystemState

HOURS = 24.0
ACTIVE_POWER_W = 0.150  # memory power while in use (high-MPKI-ish mix)


def main() -> None:
    calc = DramPowerCalculator()
    model = UsageModel(active_burst_s=5.5, idle_fraction=0.95, seed=11)
    phases = model.phases(HOURS * 3600.0)
    bursts = sum(1 for p in phases if p.state is SystemState.ACTIVE)
    print(f"Simulated day: {len(phases)} phases, {bursts} active bursts, "
          f"{sum(p.duration_s for p in phases if p.state is SystemState.IDLE) / 3600:.1f} h idle")

    # MECC's per-idle-entry upgrade cost, with MDT over a ~128 MB footprint.
    mecc = MeccController()
    mecc.wake()
    for mb in range(128):
        mecc.on_read(mb << 20)
    report = mecc.enter_idle()
    print(f"\nECC-Upgrade at idle entry: scans {report.lines_scanned / 2**14:.0f} MB "
          f"in {1000 * report.seconds:.0f} ms (MDT) vs "
          f"{1000 * mecc.device.full_upgrade_seconds():.0f} ms without MDT")

    schemes = {
        "baseline": SessionEvaluator(calc, ACTIVE_POWER_W, idle_refresh_period_s=0.064),
        "MECC": SessionEvaluator(
            calc,
            ACTIVE_POWER_W,
            idle_refresh_period_s=1.024,
            upgrade_seconds=report.seconds,
            upgrade_energy_j=report.encode_energy_j,
        ),
    }

    print(f"\n{'scheme':10} {'active J':>10} {'idle J':>10} {'total J':>10} {'vs baseline':>12}")
    totals = {}
    for name, evaluator in schemes.items():
        active_j, idle_j = evaluator.total_energy(phases)
        totals[name] = active_j + idle_j
        print(f"{name:10} {active_j:10.1f} {idle_j:10.1f} {totals[name]:10.1f} "
              f"{totals[name] / totals['baseline']:12.3f}")

    saved = totals["baseline"] - totals["MECC"]
    print(f"\nMECC saves {saved:.1f} J of memory energy per day "
          f"({100 * saved / totals['baseline']:.1f}%).")
    print("At a typical 10 Wh (36 kJ) phone battery, memory refresh alone "
          f"accounted for {100 * saved / 36_000:.2f}% of the battery per day.")

    # Fig. 1-style timeline of the first minutes.
    print("\n-- Normalized power timeline (first 8 phases, baseline) --")
    samples = schemes["baseline"].evaluate(phases[:8])
    t = 0.0
    for s in samples:
        bar = "#" * max(1, int(40 * s.power_w / ACTIVE_POWER_W))
        print(f"  t={t:7.1f}s {s.phase.state.value:6} {1000 * s.power_w:7.2f} mW {bar}")
        t += s.phase.duration_s


if __name__ == "__main__":
    main()
