"""Dispatch execution backend for :class:`repro.analysis.runner.ExperimentRunner`.

The runner calls :meth:`DispatchBackend.execute` with the same contract
its process-pool path uses — ``(pending, harvest)`` in, ``(failed,
leftover)`` out — so dispatch slots in as a peer of the local pool:

* results are harvested (cached + checkpointed) as they commit, in the
  coordinator's event loop, via the runner's own harvest closure and
  the job's content-hash cache key, making commits idempotent end to
  end;
* jobs the ledger marks ``failed`` (after its bounded retries) come
  back as final errors;
* jobs left ``pending`` when every worker died come back as *leftover*
  and run locally — graceful degradation, not data loss.

Total infrastructure unavailability (cannot bind, no worker ever
connected) raises :class:`repro.errors.DispatchUnavailableError`, which
the runner turns into a single warning plus a counted fallback to the
local pool.  Never a crash.
"""

from __future__ import annotations

import asyncio
import logging
import os
import subprocess
import sys
import time

from repro.dispatch.coordinator import Coordinator, DispatchConfig
from repro.dispatch.ledger import JobState
from repro.ecc import backend as codec_backend
from repro.errors import DispatchJobError, DispatchUnavailableError

logger = logging.getLogger("repro.dispatch")


def spawn_local_worker(
    host: str,
    port: int,
    index: int = 0,
    fault: tuple[str, float] = ("none", 0.0),
    worker_id: str | None = None,
) -> subprocess.Popen:
    """Start one worker subprocess attached to ``host:port``.

    The parent's codec-backend request is propagated through the
    environment (the same fix the pool initializer applies), so a forced
    ``--codec-backend`` sweep stays forced on remote workers too.  The
    directory containing the ``repro`` package is prepended to the
    child's ``PYTHONPATH`` so workers import the *same* code the
    coordinator fingerprinted, even when the parent runs from a source
    tree rather than an installed package.
    """
    env = os.environ.copy()
    requested = codec_backend.requested_backend()
    if requested is not None:
        env[codec_backend.ENV_VAR] = requested
    package_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing
        else os.pathsep.join([package_root, existing])
    )
    command = [
        sys.executable,
        "-m",
        "repro.dispatch.worker",
        "--connect",
        f"{host}:{port}",
        "--id",
        worker_id or f"local-{index}",
    ]
    mode, arg = fault
    if mode != "none":
        command += ["--fault", mode, "--fault-arg", str(arg)]
    return subprocess.Popen(command, env=env)


class DispatchBackend:
    """One sweep's dispatch session: coordinator + spawned local workers."""

    def __init__(self, config: DispatchConfig | None = None, tracer=None):
        self.config = config or DispatchConfig.from_env()
        self.config.validate()
        self.tracer = tracer
        #: Coordinator summary of the last ``execute`` call (for the
        #: runner manifest and ``dispatch.*`` metrics).
        self.summary: dict | None = None

    def execute(self, pending, harvest):
        """Run ``(index, spec)`` pairs remotely; returns (failed, leftover).

        ``failed`` entries are ``(index, spec, exception)`` for jobs the
        ledger exhausted; ``leftover`` entries are ``(index, spec)``
        pairs that never completed because workers ran out — the caller
        executes those locally.
        """
        return asyncio.run(self._run(list(pending), harvest))

    async def _run(self, pending, harvest):
        from repro.analysis.runner import code_fingerprint
        from repro.types import SimResult

        code = code_fingerprint()
        failures: dict[int, Exception] = {}

        def on_commit(job_id: int, payload: dict, wall_s: float) -> None:
            index, spec = pending[job_id]
            try:
                triple = (
                    SimResult.from_dict(payload["result"]),
                    payload.get("smd_disabled_fraction"),
                    float(payload.get("wall_s", wall_s)),
                    payload.get("backend"),
                )
                harvest(index, triple)
            except Exception as exc:  # cache/checkpoint failure
                failures[index] = exc

        coordinator = Coordinator(
            self.config, code, on_commit=on_commit, tracer=self.tracer
        )
        try:
            host, port = await coordinator.bind()
        except OSError as exc:
            raise DispatchUnavailableError(
                f"cannot bind dispatch coordinator on "
                f"{self.config.host}:{self.config.port}: {exc}"
            ) from exc

        coordinator.load_jobs(
            [
                (job_id, spec, spec.key(code), spec.label())
                for job_id, (_, spec) in enumerate(pending)
            ]
        )

        spawned: list[subprocess.Popen] = []
        try:
            faults = list(self.config.worker_faults)
            for i in range(self.config.workers):
                fault = faults[i] if i < len(faults) else ("none", 0.0)
                spawned.append(spawn_local_worker(host, port, i, fault=tuple(fault)))
            await self._await_first_worker(coordinator, spawned)
            await coordinator.run()
        finally:
            self.summary = coordinator.summary()
            await coordinator.close()
            self._terminate(spawned)

        failed = []
        leftover = []
        for job_id, (index, spec) in enumerate(pending):
            job = coordinator.ledger.jobs[job_id]
            if index in failures:
                failed.append((index, spec, failures[index]))
            elif job.state is JobState.FAILED:
                failed.append(
                    (index, spec, DispatchJobError(job.error or "job failed"))
                )
            elif job.state is not JobState.DONE:
                leftover.append((index, spec))
        return failed, leftover

    async def _await_first_worker(self, coordinator, spawned) -> None:
        """Block until a worker registers; unavailable if none ever does."""
        deadline = time.monotonic() + self.config.worker_wait_s
        while time.monotonic() < deadline:
            if coordinator.workers_joined > 0:
                return
            if spawned and all(proc.poll() is not None for proc in spawned):
                raise DispatchUnavailableError(
                    "every spawned dispatch worker exited before registering "
                    f"(exit codes {[proc.returncode for proc in spawned]})"
                )
            await asyncio.sleep(0.05)
        raise DispatchUnavailableError(
            f"no dispatch worker connected within {self.config.worker_wait_s:g} s"
        )

    @staticmethod
    def _terminate(spawned: list[subprocess.Popen]) -> None:
        for proc in spawned:
            if proc.poll() is None:
                proc.terminate()
        for proc in spawned:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
