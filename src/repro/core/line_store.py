"""Sparse per-line ECC-mode bookkeeping for a whole memory.

Physically the ECC mode lives in each line's mode bits
(:mod:`repro.ecc.layout`); the simulator only needs to know *which* mode
each line is in.  Since idle entry leaves every line strong, and active
periods downgrade a working set that is small relative to 1 GB, the store
keeps only the set of weak (downgraded) line indices.
"""

from __future__ import annotations

from repro.dram.config import DramOrganization
from repro.errors import ConfigurationError
from repro.types import EccMode


class LineEccStore:
    """Tracks each line's ECC mode; all lines start strong (post-idle)."""

    def __init__(self, org: DramOrganization | None = None):
        self.org = org or DramOrganization()
        self._weak_lines: set[int] = set()

    def _check(self, line: int) -> None:
        if not 0 <= line < self.org.total_lines:
            raise ConfigurationError(
                f"line {line} out of range [0, {self.org.total_lines})"
            )

    def mode_of(self, line: int) -> EccMode:
        self._check(line)
        return EccMode.WEAK if line in self._weak_lines else EccMode.STRONG

    def downgrade(self, line: int) -> bool:
        """Mark a line weak; returns True if it was strong (a real downgrade)."""
        self._check(line)
        if line in self._weak_lines:
            return False
        self._weak_lines.add(line)
        return True

    def upgrade(self, line: int) -> bool:
        """Mark a line strong; returns True if it was weak (a real upgrade)."""
        self._check(line)
        if line in self._weak_lines:
            self._weak_lines.remove(line)
            return True
        return False

    def upgrade_all(self) -> int:
        """ECC-Upgrade every downgraded line; returns how many converted."""
        return len(self.drain_all())

    def upgrade_region(self, start_line: int, line_count: int) -> int:
        """Upgrade all weak lines within ``[start_line, start_line + count)``."""
        return len(self.drain_region(start_line, line_count))

    def drain_all(self) -> frozenset[int]:
        """Upgrade every weak line; returns the set of lines converted.

        The set-returning form exists for callers that must mirror the
        conversion onto a data plane (e.g. the chaos harness upgrading
        the corresponding functional-memory lines).
        """
        converted = frozenset(self._weak_lines)
        self._weak_lines.clear()
        return converted

    def drain_region(self, start_line: int, line_count: int) -> frozenset[int]:
        """Upgrade the weak lines of one region; returns the converted set."""
        if line_count < 0:
            raise ConfigurationError("line_count must be non-negative")
        end = start_line + line_count
        converted = frozenset(
            l for l in self._weak_lines if start_line <= l < end
        )
        self._weak_lines -= converted
        return converted

    @property
    def weak_count(self) -> int:
        return len(self._weak_lines)

    @property
    def weak_lines(self) -> frozenset[int]:
        return frozenset(self._weak_lines)

    def all_strong(self) -> bool:
        return not self._weak_lines
