"""Chaos harness: seeded fault-injection campaigns for the control plane.

The reliability layer (:mod:`repro.reliability.faults`) injects faults
into *stored codewords*; this package injects them into the *modeled
control plane* — the MDT bit table, per-line mode state, stored mode
replicas, SMD registers, and the refresh-mode machinery — while a
functional data plane holds real morphable codewords underneath.  Each
trial is classified differentially against a fault-free reference run
of the same seed into {masked, detected-recovered, detected-unrecovered,
silent-degradation, silent-corruption}.

Graceful-degradation mitigations under test:

* the controller's **conservative MDT fallback** (rescan everything when
  the table provably lied), and
* **patrol-scrub mode repair** (re-encode lines whose stored mode
  disagrees with the idle-state expectation).

With both enabled, the default ``metadata`` campaign must classify zero
trials as silent-corruption — the CI chaos smoke enforces exactly that.
"""

from repro.chaos.campaign import (
    ChaosCampaign,
    ChaosOutcome,
    OUTCOME_ORDER,
    classify_trial,
)
from repro.chaos.injectors import (
    CAMPAIGNS,
    FAULT_CLASSES,
    FaultClass,
    METADATA_CAMPAIGN,
    resolve_classes,
)
from repro.chaos.report import ChaosReport, OUTCOME_NAMES, TrialRecord
from repro.chaos.system import (
    ChaosParams,
    ChaosSystem,
    INJECTION_POINTS,
    TrialSnapshot,
)
from repro.chaos.workers import (
    WORKER_CAMPAIGNS,
    WORKER_SCENARIOS,
    WorkerChaosCampaign,
    WorkerChaosReport,
    WorkerChaosScenario,
    WorkerScenarioRecord,
    resolve_worker_scenarios,
)

__all__ = [
    "CAMPAIGNS",
    "ChaosCampaign",
    "ChaosOutcome",
    "ChaosParams",
    "ChaosReport",
    "ChaosSystem",
    "FAULT_CLASSES",
    "FaultClass",
    "INJECTION_POINTS",
    "METADATA_CAMPAIGN",
    "OUTCOME_NAMES",
    "OUTCOME_ORDER",
    "TrialRecord",
    "TrialSnapshot",
    "WORKER_CAMPAIGNS",
    "WORKER_SCENARIOS",
    "WorkerChaosCampaign",
    "WorkerChaosReport",
    "WorkerChaosScenario",
    "WorkerScenarioRecord",
    "classify_trial",
    "resolve_worker_scenarios",
    "resolve_classes",
]
