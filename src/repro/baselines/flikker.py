"""Flikker (Liu et al., ASPLOS 2011): critical-data partitioning.

Flikker splits memory into a critical region refreshed at the normal
rate and a non-critical region refreshed much slower, trading data
integrity in the non-critical region for refresh power.  The paper's
Sec. VII-A critique, which this model quantifies:

1. the critical fraction bounds the saving (Amdahl): one quarter
   critical at rate 1 plus three quarters at 1/16 still refreshes at an
   effective ~1/3 of baseline, vs. MECC's full-memory 1/16;
2. non-critical data *does* corrupt (no correction), so only
   error-tolerant applications qualify;
3. programmers must annotate allocations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.reliability.retention import RetentionModel


@dataclass(frozen=True)
class FlikkerModel:
    """Analytical model of a Flikker partition.

    Attributes:
        critical_fraction: share of memory the programmer marks critical
            (the paper's example uses 1/4).
        noncritical_refresh_divisor: refresh-rate division for the
            non-critical region (Flikker's hardware supports up to ~20x;
            use 16 to align with MECC's divider).
    """

    critical_fraction: float = 0.25
    noncritical_refresh_divisor: int = 16

    def __post_init__(self) -> None:
        if not 0.0 <= self.critical_fraction <= 1.0:
            raise ConfigurationError("critical_fraction must be in [0, 1]")
        if self.noncritical_refresh_divisor < 1:
            raise ConfigurationError("refresh divisor must be >= 1")

    @property
    def effective_refresh_rate(self) -> float:
        """Refresh operations relative to an all-normal-rate baseline.

        The paper: "if one-fourth of memory is refreshed at a rate of 1
        and three-fourth at a rate of 1/16, the effective rate is still
        approximately 1/3."
        """
        return self.critical_fraction + (
            (1.0 - self.critical_fraction) / self.noncritical_refresh_divisor
        )

    def refresh_power_ratio(self) -> float:
        """Idle refresh power vs. baseline (proportional to refresh rate)."""
        return self.effective_refresh_rate

    def expected_noncritical_corrupt_bits(
        self,
        capacity_bytes: int,
        model: RetentionModel | None = None,
        base_period_s: float = 0.064,
    ) -> float:
        """Expected corrupted bits in the non-critical region per period.

        Flikker has no correction, so every retention failure in the
        non-critical region is a real data error the application must
        tolerate.  MECC's equivalent number is ~0 (ECC-6 corrects them).
        """
        if capacity_bytes < 0:
            raise ConfigurationError("capacity must be non-negative")
        model = model or RetentionModel()
        slow_period = base_period_s * self.noncritical_refresh_divisor
        ber = model.ber_at_refresh_period(slow_period)
        noncritical_bits = 8 * capacity_bytes * (1.0 - self.critical_fraction)
        return ber * noncritical_bits

    def requires_source_changes(self) -> bool:
        """Flikker needs programmer annotations; MECC is hardware-only."""
        return True
