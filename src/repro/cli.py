"""Command-line interface: regenerate any paper exhibit.

Usage::

    python -m repro list
    python -m repro table1
    python -m repro fig7 --instructions 400000 --jobs 4
    python -m repro all --instructions 200000 --cache-dir ~/.cache/repro
    python -m repro report --exhibits fig7,fig10 --format csv,json --out report
    python -m repro report --exhibits table1,fig2,fig8 --diff report/baseline

Simulation-backed exhibits route through the parallel cached experiment
runner (:mod:`repro.analysis.runner`): ``--jobs N`` fans independent
simulations out over N worker processes, ``--cache-dir`` persists
results across invocations (``--no-cache`` disables it), and
``--manifest PATH`` writes the per-job timing/cache manifest as JSON.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable

from repro.analysis.tables import format_table
from repro.ecc.backend import BACKEND_NAMES, ENV_VAR, set_backend
from repro.report.spec import ExhibitSpec, all_exhibits
from repro.sim.system import ScaledRun


def _exhibit_renderer(spec: ExhibitSpec) -> Callable[[ScaledRun], str]:
    def render_fn(run: ScaledRun) -> str:
        data = spec.build(run)
        return format_table(
            list(data.columns),
            [list(row) for row in data.rows],
            title=spec.title,
        )

    return render_fn


#: Exhibit verbs, derived from the repro.report registry: one entry per
#: registered exhibit, rendered as an aligned terminal table.
EXHIBITS: dict[str, tuple[str, Callable[[ScaledRun], str]]] = {
    spec.id: (spec.title, _exhibit_renderer(spec)) for spec in all_exhibits()
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures from the Morphable ECC paper (DSN 2015).",
    )
    parser.add_argument(
        "exhibit",
        choices=sorted(EXHIBITS)
        + [
            "all",
            "list",
            "report",
            "csv",
            "trace-gen",
            "trace-sim",
            "fault-inject",
            "chaos",
            "fidelity",
            "validate",
            "fleet",
            "serve",
            "workers",
            "dispatch",
            "dse",
            "tune",
        ],
        help="exhibit to regenerate ('list' to enumerate, 'all' for everything, "
        "'report' for a markdown report via --output), a trace tool "
        "(trace-gen / trace-sim), a codec fault-injection campaign "
        "(fault-inject), a control-plane or worker-fault chaos campaign "
        "(chaos), the paper-claim conformance gate (fidelity), the "
        "analytic-vs-Monte-Carlo cross-checks (validate), a fleet-scale "
        "population study (fleet), the policy-advisory service (serve), "
        "a dispatch worker attached to a coordinator (workers), a "
        "distributed-dispatch verification sweep (dispatch), a "
        "design-space exploration producing a Pareto frontier + knee "
        "report (dse), or the learned per-workload operating-point "
        "tuner with its golden drift check (tune)",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=400_000,
        help="instructions per benchmark slice for simulation-backed exhibits "
        "(default 400000; the paper uses 4e9 — see DESIGN.md on scaling)",
    )
    parser.add_argument(
        "--benchmark",
        default="libq",
        help="benchmark name for trace-gen (see repro.workloads.spec)",
    )
    parser.add_argument(
        "--output", "-o", default=None, help="output trace file for trace-gen"
    )
    parser.add_argument(
        "--input", "-i", default=None, help="input trace file for trace-sim"
    )
    parser.add_argument(
        "--policy",
        default="mecc",
        choices=("baseline", "secded", "ecc6", "mecc", "mecc+smd"),
        help="ECC policy for trace-sim",
    )
    parser.add_argument(
        "--codec-backend",
        default=None,
        choices=BACKEND_NAMES,
        help="codec batch backend for this invocation (overrides "
        f"${ENV_VAR}; 'auto' picks the fastest available lane engine, "
        "'matrix' forces the scalar fast path; results are bit-identical "
        "across backends)",
    )
    parser.add_argument(
        "--exhibits",
        default=None,
        help="comma-separated exhibit subset for 'report' (default: all)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_exhibits",
        help="report: enumerate the registered exhibits (id, kind, paper "
        "anchor, cost class) and exit",
    )
    parser.add_argument(
        "--format",
        default=None,
        metavar="FMT,FMT,...",
        help="report: artifact formats to render — any of csv,json,md,tex "
        "(default: all four)",
    )
    parser.add_argument(
        "--out",
        default="report",
        metavar="DIR",
        help="report: root output directory; the artifact tree lands in "
        "DIR/<run-id>/ (default: report)",
    )
    parser.add_argument(
        "--run-id",
        default=None,
        help="report: artifact-tree name under --out "
        "(default: a UTC timestamp)",
    )
    parser.add_argument(
        "--diff",
        default=None,
        metavar="BASELINE",
        help="report: after generating, compare the fresh tree against the "
        "artifact tree at BASELINE with per-cell tolerance bands; exits "
        "nonzero on drift (JSON artifacts required in both trees)",
    )
    parser.add_argument(
        "--fidelity-summary",
        action="store_true",
        help="report: also evaluate the reduced fidelity claim set and "
        "stamp the digest into the tree manifest",
    )
    parser.add_argument(
        "--mode",
        default="strong",
        choices=("strong", "weak"),
        help="ECC mode under test for fault-inject",
    )
    parser.add_argument(
        "--errors",
        type=int,
        default=None,
        help="fixed bit-flip count per trial for fault-inject "
        "(default: sample at the paper's 1 s BER instead)",
    )
    parser.add_argument(
        "--trials", type=int, default=None,
        help="trial count for fault-inject and chaos (default 200) or "
        "Monte-Carlo samples for validate (default 40000)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="RNG seed for fault-inject and chaos"
    )
    parser.add_argument(
        "--campaign",
        default="metadata",
        help="chaos campaign: a named control-plane campaign (metadata, "
        "all) or comma-separated fault-class names (see "
        "repro.chaos.FAULT_CLASSES), or a worker-fault campaign "
        "(workers, workers-smoke) or comma-separated dispatch fault "
        "scenarios (see repro.chaos.WORKER_SCENARIOS)",
    )
    parser.add_argument(
        "--no-scrub",
        action="store_true",
        help="chaos: disable the patrol-scrub mode-repair mitigation",
    )
    parser.add_argument(
        "--no-fallback",
        action="store_true",
        help="chaos: disable the conservative MDT idle-fallback mitigation",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for simulation-backed exhibits "
        "(default: $REPRO_JOBS or 1; results are identical at any value)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk result-cache directory (default: $REPRO_CACHE_DIR, "
        "else no persistence); keyed by a content hash of trace spec, "
        "policy config, org/timings, and code version",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this invocation",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        help="write the run manifest (per-job wall times, cache hit/miss "
        "counters) to this JSON file",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock deadline for simulation jobs; on expiry "
        "the worker pool is killed and the job retried "
        "(default: $REPRO_JOB_TIMEOUT_S, else unlimited)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        help="extra attempts for failed or timed-out simulation jobs, "
        "with exponential backoff (default: $REPRO_RETRIES, else 0)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="rewrite the run manifest atomically after every job so an "
        "interrupted sweep can be resumed with --resume",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="resume an interrupted sweep from its checkpoint manifest "
        "(requires the same --cache-dir; completed jobs are served "
        "from the cache and only unfinished jobs run)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="for trace-sim: run with the structured event tracer and "
        "runtime invariant checkers attached, exporting the event "
        "stream as JSONL to PATH (see repro.obs)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a unified metrics snapshot (sim/dram/ecc/runner/obs "
        "namespaces, see repro.obs.metrics) as JSON to PATH",
    )
    parser.add_argument(
        "--claims",
        default=None,
        metavar="ID,ID,...",
        help="fidelity: evaluate only these claim IDs "
        "(see 'repro fidelity --list-claims')",
    )
    parser.add_argument(
        "--claim-set",
        default="full",
        choices=("reduced", "full"),
        help="fidelity: named claim set — 'reduced' is the analytic-only "
        "CI merge gate, 'full' adds the simulation-backed claims",
    )
    parser.add_argument(
        "--list-claims",
        action="store_true",
        help="fidelity: list the registered paper claims and exit",
    )
    parser.add_argument(
        "--report-json",
        default=None,
        metavar="PATH",
        help="fidelity: write the conformance report (per-claim measured "
        "value, relative error, verdict) as JSON to PATH",
    )
    parser.add_argument(
        "--golden",
        default=None,
        metavar="PATH",
        help="fidelity/tune: compare the golden fixture at PATH against "
        "a fresh computation (default fixtures: "
        "tests/fidelity/golden_figures.json / tests/dse/"
        "golden_frontier.json)",
    )
    parser.add_argument(
        "--update-golden",
        action="store_true",
        help="fidelity/tune: regenerate the golden fixture (at --golden "
        "PATH, or the checked-in default) instead of comparing",
    )
    parser.add_argument(
        "--devices",
        type=int,
        default=100_000,
        help="fleet: population size to simulate (default 100000; the "
        "sharded streaming aggregation makes 1M+ routine)",
    )
    parser.add_argument(
        "--mix",
        default=None,
        metavar="NAME:W,...",
        help="fleet: persona mix like 'light:0.45,moderate:0.35,heavy:0.2' "
        "(default: the built-in mix; see repro.fleet.population)",
    )
    parser.add_argument(
        "--fleet-seed",
        type=int,
        default=0,
        help="fleet: population sampling seed (same seed, same fleet, "
        "at any shard size)",
    )
    parser.add_argument(
        "--shard-size",
        type=int,
        default=100_000,
        help="fleet: devices per aggregation shard (default 100000; "
        "aggregates are invariant to this)",
    )
    parser.add_argument(
        "--schemes",
        default=None,
        metavar="S,S,...",
        help="fleet: comma-separated policy schemes to evaluate per device "
        "(default baseline,secded,mecc)",
    )
    parser.add_argument(
        "--index-out",
        default=None,
        metavar="PATH",
        help="fleet: also write the policy-advisory index (for 'repro "
        "serve --index') as JSON to PATH",
    )
    parser.add_argument(
        "--index",
        default=None,
        metavar="PATH",
        help="serve: load the policy index from PATH (from 'repro fleet "
        "--index-out'); default: build one in-process first",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve: listen on this TCP port (JSON lines; 0 picks a free "
        "port); without --port, --self-test is required",
    )
    parser.add_argument(
        "--self-test",
        type=int,
        default=None,
        metavar="N",
        help="serve: fire N concurrent in-process requests through the "
        "service, print the latency/disposition report, and exit "
        "nonzero if any request is lost (CI smoke mode)",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=200,
        help="serve --self-test: in-flight request cap (default 200)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        help="serve: bounded request-queue capacity; submissions beyond "
        "it are rejected immediately with an overload error "
        "(default 256)",
    )
    parser.add_argument(
        "--service-workers",
        type=int,
        default=4,
        help="serve: concurrent worker tasks draining the request queue "
        "(default 4)",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="serve: per-request deadline including queue wait (default 1.0)",
    )
    parser.add_argument(
        "--runner-backend",
        default=None,
        choices=("local", "dispatch"),
        help="execution backend for simulation jobs (default: "
        "$REPRO_RUNNER_BACKEND or local); 'dispatch' fans jobs out to "
        "worker processes over TCP with lease-based fault tolerance "
        "and degrades to the local pool if no worker ever connects",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="workers: coordinator address to attach to (printed by the "
        "dispatch coordinator at bind time)",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="workers: stable worker identity (default: w-<pid>)",
    )
    parser.add_argument(
        "--dispatch-workers",
        type=int,
        default=None,
        help="dispatch: local worker processes to spawn for the "
        "verification sweep (default: $REPRO_DISPATCH_WORKERS or 2)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="validate: relative-error tolerance for agreement (default 0.05)",
    )
    parser.add_argument(
        "--sigma",
        type=float,
        default=4.0,
        help="validate: counting-noise fallback width in sigmas; 0 disables "
        "the fallback so only --tolerance decides (default 4.0)",
    )
    parser.add_argument(
        "--grid",
        default=None,
        metavar="AXIS=V,V;...",
        help="dse/tune: sweep grid shorthand like "
        "'ecc=4,6;period=0.256,1.024;threshold=1,2;mdt=512,1024' "
        "(axes: ecc/period/threshold/mdt/policy; default: the built-in "
        "64-point grid — see repro.dse.GridSpec)",
    )
    parser.add_argument(
        "--benchmarks",
        default=None,
        metavar="NAME,NAME,...",
        help="dse: workload mix scored at every operating point "
        "(default povray,libq)",
    )
    parser.add_argument(
        "--idle-fraction",
        type=float,
        default=None,
        help="dse: fraction of the device-day spent idle (default 0.95)",
    )
    parser.add_argument(
        "--sessions",
        type=int,
        default=None,
        help="dse: active bursts per device-day (default 60)",
    )
    parser.add_argument(
        "--frontier-out",
        default=None,
        metavar="PATH",
        help="dse: write the full frontier report as canonical JSON "
        "(byte-identical across --jobs values and runner backends)",
    )
    parser.add_argument(
        "--slowdown-cap",
        type=float,
        default=0.05,
        help="dse/tune: max slowdown an operating point may impose to be "
        "eligible as a workload's best (default 0.05, the fleet "
        "ipc_floor)",
    )
    parser.add_argument(
        "--personas",
        default=None,
        metavar="NAME,NAME,...",
        help="tune: personas to sweep as training workloads "
        "(default: every registered persona; see repro.workloads.personas)",
    )
    parser.add_argument(
        "--tuner-out",
        default=None,
        metavar="PATH",
        help="tune: write the fitted tuner (samples + feature bounds) as "
        "JSON to PATH",
    )
    parser.add_argument(
        "--knn",
        type=int,
        default=1,
        help="tune: nearest-neighbour count for the operating-point vote "
        "(default 1 — exact on the training set)",
    )
    parser.add_argument(
        "--drift-check",
        action="store_true",
        help="tune: recompute the golden mini-sweep fresh and exit 1 when "
        "the predicted best point moved or energies drifted past "
        "--drift-tolerance (fixture: tests/dse/golden_frontier.json, "
        "override with --golden; regenerate with --update-golden)",
    )
    parser.add_argument(
        "--drift-tolerance",
        type=float,
        default=0.02,
        help="tune --drift-check: relative energy drift tolerated before "
        "the check trips (default 0.02)",
    )
    return parser


def _trace_gen(args) -> int:
    from repro.workloads.spec import BENCHMARKS_BY_NAME
    from repro.workloads.trace import write_trace

    if args.benchmark not in BENCHMARKS_BY_NAME:
        print(f"unknown benchmark {args.benchmark!r}; choose from "
              f"{', '.join(sorted(BENCHMARKS_BY_NAME))}", file=sys.stderr)
        return 2
    if not args.output:
        print("trace-gen requires --output FILE", file=sys.stderr)
        return 2
    spec = BENCHMARKS_BY_NAME[args.benchmark]
    trace = spec.trace(args.instructions)
    with open(args.output, "w", encoding="ascii") as stream:
        write_trace(trace, stream)
    print(f"wrote {len(trace)} records ({trace.instructions} instructions, "
          f"MPKI {trace.mpki:.2f}) to {args.output}")
    return 0


def _trace_sim(args) -> int:
    from repro.sim.engine import SimulationEngine
    from repro.sim.system import SystemConfig
    from repro.workloads.trace import read_trace

    if not args.input:
        print("trace-sim requires --input FILE", file=sys.stderr)
        return 2
    with open(args.input, encoding="ascii") as stream:
        trace = read_trace(stream)
    config = SystemConfig()
    tracer = invariants = None
    if args.trace or args.metrics_out:
        from repro.obs import EventTracer, default_invariant_suite

        tracer = EventTracer()
        invariants = default_invariant_suite(tolerant=True)
    engine = SimulationEngine(
        policy=config.policy_by_name(args.policy),
        tracer=tracer,
        invariants=invariants,
    )
    result = engine.run(trace)
    print(format_table(
        ["metric", "value"],
        [
            ["trace", trace.name],
            ["policy", args.policy],
            ["instructions", result.instructions],
            ["cycles", result.cycles],
            ["IPC", result.ipc],
            ["MPKI", result.mpki],
            ["avg read latency (cycles)", result.avg_read_latency],
            ["downgrades", result.downgrades],
            ["energy (J)", result.energy.total],
        ],
        title=f"trace-sim: {args.input}",
    ))
    if args.trace:
        count = tracer.export_jsonl(args.trace)
        print(f"wrote {count} trace events to {args.trace} "
              f"({tracer.dropped} dropped by the ring buffer)")
    if invariants is not None:
        summary = invariants.summary()
        print(f"invariants: {summary['evaluations']} evaluations, "
              f"{summary['violations']} violations")
    if args.metrics_out:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.record_sim_result(result)
        registry.record_controller_stats(engine.controller.stats)
        registry.record_tracer(tracer)
        registry.record_invariants(invariants)
        registry.record_codec_backend()
        registry.write_json(args.metrics_out)
        print(f"wrote {len(registry)} metrics to {args.metrics_out}")
    return 0


def _fault_inject(args) -> int:
    from repro.reliability.faults import FaultInjectionCampaign
    from repro.reliability.retention import BER_AT_1S
    from repro.types import EccMode

    mode = EccMode.STRONG if args.mode == "strong" else EccMode.WEAK
    trials = args.trials if args.trials is not None else 200
    campaign = FaultInjectionCampaign(seed=args.seed)
    if args.errors is not None:
        stats = campaign.run_fixed_errors(mode, args.errors, trials)
        what = f"{args.errors} fixed errors"
    else:
        stats = campaign.run_ber(mode, BER_AT_1S, trials)
        what = f"BER {BER_AT_1S:.2e} (the paper's 1 s operating point)"
    print(format_table(
        ["outcome", "count"],
        sorted(((k.value, v) for k, v in stats.outcomes.items())),
        title=(
            f"fault-inject: {trials} trials, {args.mode} mode, {what}; "
            f"silent-corruption rate {stats.silent_corruption_rate:.4f}"
        ),
    ))
    return 0


def _worker_chaos(names) -> int:
    """Run the dispatch worker-fault campaign; nonzero on any violation."""
    from repro.chaos import WorkerChaosCampaign, resolve_worker_scenarios
    from repro.errors import ConfigurationError

    try:
        campaign = WorkerChaosCampaign(resolve_worker_scenarios(names))
    except ConfigurationError as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2
    report = campaign.run()
    print(report.render_table())
    return 0 if report.ok else 1


def _chaos(args) -> int:
    from repro.chaos import (
        CAMPAIGNS,
        ChaosCampaign,
        WORKER_CAMPAIGNS,
        WORKER_SCENARIOS,
        resolve_classes,
    )
    from repro.errors import ConfigurationError

    worker_names = WORKER_CAMPAIGNS.get(args.campaign)
    if worker_names is not None:
        return _worker_chaos(worker_names)
    names = CAMPAIGNS.get(args.campaign)
    if names is None:
        names = tuple(n.strip() for n in args.campaign.split(",") if n.strip())
        if names and all(name in WORKER_SCENARIOS for name in names):
            return _worker_chaos(names)
    try:
        classes = resolve_classes(names)
        campaign = ChaosCampaign(
            classes=classes,
            trials=args.trials if args.trials is not None else 200,
            seed=args.seed,
            scrub=not args.no_scrub,
            conservative=not args.no_fallback,
        )
    except ConfigurationError as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2
    report = campaign.run()
    print(report.render_table())
    if args.metrics_out:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.record_chaos(report)
        registry.write_json(args.metrics_out)
        print(f"wrote {len(registry)} metrics to {args.metrics_out}")
    return 0


def _workers(args) -> int:
    """Attach one dispatch worker to a running coordinator."""
    import asyncio

    from repro.dispatch.worker import worker_main

    if not args.connect:
        print("workers requires --connect HOST:PORT", file=sys.stderr)
        return 2
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print("--connect must look like HOST:PORT", file=sys.stderr)
        return 2
    try:
        return asyncio.run(
            worker_main(host, int(port), worker_id=args.worker_id)
        )
    except KeyboardInterrupt:
        return 0


def _dispatch(args) -> int:
    """Distributed-dispatch verification sweep.

    Runs a small benchmark x policy grid through the dispatch backend
    with spawned local workers, then recomputes every job in-process
    and diffs the results — exit 1 on any lost job, failed job, or
    payload that is not bit-identical to local execution.
    """
    from repro.analysis.runner import JobSpec, execute_job
    from repro.dispatch import DispatchBackend, DispatchConfig
    from repro.errors import DispatchUnavailableError
    from repro.workloads.spec import BENCHMARKS_BY_NAME

    overrides = {}
    if args.dispatch_workers is not None:
        overrides["workers"] = max(1, args.dispatch_workers)
    config = DispatchConfig.from_env(**overrides)
    specs = [
        JobSpec(
            benchmark=BENCHMARKS_BY_NAME[name],
            instructions=args.instructions,
            policy=policy,
        )
        for name in ("libq", "milc")
        for policy in ("mecc", "secded")
    ]
    pending = list(enumerate(specs))
    harvested: dict[int, dict] = {}

    def harvest(index, triple):
        harvested[index] = triple[0].to_dict()

    backend = DispatchBackend(config)
    try:
        failed, leftover = backend.execute(pending, harvest)
    except DispatchUnavailableError as exc:
        print(f"dispatch: {exc}", file=sys.stderr)
        return 1
    mismatches = sum(
        1
        for index, payload in harvested.items()
        if payload != execute_job(specs[index])[0].to_dict()
    )
    summary = backend.summary or {}
    print(format_table(
        ["metric", "value"],
        [[k, v] for k, v in sorted(summary.items()) if not isinstance(v, list)],
        title=(
            f"dispatch verification: {len(specs)} jobs, "
            f"{config.workers} worker(s)"
        ),
    ))
    if args.metrics_out:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.record_dispatch(summary)
        registry.write_json(args.metrics_out)
        print(f"wrote {len(registry)} metrics to {args.metrics_out}")
    problems = []
    if failed:
        problems.append(f"{len(failed)} job(s) failed")
    if leftover:
        problems.append(f"{len(leftover)} job(s) never completed")
    if mismatches:
        problems.append(f"{mismatches} result(s) differ from local execution")
    if problems:
        for problem in problems:
            print(f"DISPATCH VIOLATION: {problem}", file=sys.stderr)
        return 1
    print(f"all {len(specs)} dispatched results bit-identical to local execution")
    return 0


def _validate(args) -> int:
    """Run the analytic-vs-Monte-Carlo cross-checks; nonzero on disagreement."""
    from repro.analysis.validation import run_all_validations

    trials = args.trials if args.trials is not None else 40_000
    samples = args.trials if args.trials is not None else 50_000
    results = run_all_validations(trials=trials, samples=samples)
    failed = []
    rows = []
    for result in results:
        ok = result.agrees(args.tolerance, sigmas=args.sigma)
        rows.append([
            result.what, result.analytic, result.empirical,
            result.relative_error, "PASS" if ok else "FAIL",
        ])
        if not ok:
            failed.append(result.what)
    print(format_table(
        ["check", "analytic", "empirical", "rel err", "verdict"],
        rows,
        title=(
            f"model validation (tolerance {args.tolerance:g}, "
            f"sigma {args.sigma:g})"
        ),
    ))
    for what in failed:
        print(f"DISAGREEMENT: {what}", file=sys.stderr)
    return 1 if failed else 0


def _fidelity(args, runner) -> int:
    """Evaluate registered paper claims; nonzero when any band is exceeded."""
    import json as _json

    from repro.errors import ConfigurationError
    from repro.fidelity import (
        CLAIMS,
        FidelityContext,
        check_golden_file,
        claims_in_set,
        default_golden_path,
        evaluate_claims,
        resolve_claims,
        write_golden,
    )

    if args.list_claims:
        print(format_table(
            ["id", "kind", "source", "expected", "band"],
            [[c.id, c.kind, c.source, c.expected, f"[{c.low:g}, {c.high:g}]"]
             for c in CLAIMS.values()],
            title=f"registered paper claims ({len(CLAIMS)})",
        ))
        return 0
    try:
        if args.claims:
            ids = [part.strip() for part in args.claims.split(",") if part.strip()]
            claims = resolve_claims(ids)
        else:
            claims = claims_in_set(args.claim_set)
    except ConfigurationError as exc:
        print(f"fidelity: {exc}", file=sys.stderr)
        return 2
    context = FidelityContext(run=ScaledRun(instructions=args.instructions))
    report = evaluate_claims([c.id for c in claims], context)
    print(report.render_table())
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as stream:
            _json.dump(report.as_dict(), stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"wrote conformance report to {args.report_json}")
    golden_ok = True
    if args.update_golden:
        path = args.golden or str(default_golden_path())
        write_golden(path)
        print(f"wrote golden figures to {path}")
    elif args.golden:
        mismatches = check_golden_file(args.golden)
        if mismatches:
            golden_ok = False
            for mismatch in mismatches:
                print(f"GOLDEN MISMATCH {mismatch}", file=sys.stderr)
        else:
            print(f"golden figures match {args.golden}")
    if args.manifest:
        runner.write_manifest(args.manifest)
        print(f"wrote run manifest to {args.manifest}")
    if args.metrics_out:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.record_fidelity(report)
        registry.record_runner(runner)
        registry.write_json(args.metrics_out)
        print(f"wrote {len(registry)} metrics to {args.metrics_out}")
    return 0 if report.passed and golden_ok else 1


def _build_fleet_simulator(args):
    from repro.fleet import FleetSimulator, PopulationModel, parse_mix

    mix = parse_mix(args.mix) if args.mix else None
    schemes = (
        tuple(s.strip() for s in args.schemes.split(",") if s.strip())
        if args.schemes
        else None
    )
    population = PopulationModel(mix=mix, seed=args.fleet_seed)
    kwargs = {"run": ScaledRun(instructions=args.instructions)}
    if schemes:
        kwargs["schemes"] = schemes
    return FleetSimulator(
        population, shard_size=max(1, args.shard_size), **kwargs
    )


def _fleet(args, runner) -> int:
    """Simulate a persona-mixed device fleet; print the summary table."""
    from repro.errors import ConfigurationError
    from repro.fleet import PolicyIndex

    try:
        simulator = _build_fleet_simulator(args)
        report = simulator.simulate(max(1, args.devices))
    except ConfigurationError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 2
    summary = report.summary()
    print(format_table(
        ["metric", "value"],
        [[k, v] for k, v in summary.items()],
        title=(
            f"fleet: {report.devices} devices, {report.shards} shard(s), "
            f"seed {simulator.population.seed}"
        ),
    ))
    if args.output:
        import json as _json

        with open(args.output, "w", encoding="utf-8") as stream:
            _json.dump(report.as_dict(), stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"wrote fleet report to {args.output}")
    if args.index_out:
        path = PolicyIndex.build(simulator).save(args.index_out)
        print(f"wrote policy index to {path}")
    from repro.analysis.report import render_runner_summary

    if args.manifest:
        runner.write_manifest(args.manifest)
        print(f"wrote run manifest to {args.manifest}")
    if args.metrics_out:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.record_fleet(report)
        registry.record_runner(runner)
        registry.record_codec_backend()
        registry.write_json(args.metrics_out)
        print(f"wrote {len(registry)} metrics to {args.metrics_out}")
    runner_summary = render_runner_summary(runner)
    if runner_summary:
        print(runner_summary)
    return 0


def _serve(args, runner) -> int:
    """Run the advisory service: TCP listener and/or in-process self-test."""
    import asyncio

    from repro.errors import ConfigurationError
    from repro.fleet import AdvisoryService, PolicyIndex, run_request_storm

    if args.port is None and args.self_test is None:
        print("serve requires --port and/or --self-test N", file=sys.stderr)
        return 2
    try:
        if args.index:
            index = PolicyIndex.load(args.index)
        else:
            index = PolicyIndex.build(_build_fleet_simulator(args))
        service = AdvisoryService(
            index,
            max_queue=args.queue_limit,
            workers=args.service_workers,
            request_timeout_s=args.request_timeout,
        )
    except ConfigurationError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2

    async def _run() -> int:
        status = 0
        await service.start()
        if args.self_test is not None:
            n = max(1, args.self_test)
            # Deterministic profile sweep across the idle-fraction band.
            profiles = [
                {"idle_fraction": 0.55 + 0.44 * (i % 89) / 88.0}
                for i in range(n)
            ]
            outcomes = await run_request_storm(
                service, profiles, concurrency=max(1, args.concurrency)
            )
            accounted = sum(outcomes.values())
            print(format_table(
                ["disposition", "count"],
                sorted(outcomes.items()),
                title=f"serve self-test: {n} requests, "
                f"concurrency {args.concurrency}",
            ))
            if accounted != n or outcomes["error"]:
                status = 1
        if args.port is not None and status == 0:
            server = await service.serve_tcp(port=args.port)
            host, port = server.sockets[0].getsockname()[:2]
            print(f"advisory service listening on {host}:{port} "
                  "(JSON lines; Ctrl-C to stop)", flush=True)
            try:
                await server.serve_forever()
            except asyncio.CancelledError:
                pass
        await service.stop()
        return status

    try:
        status = asyncio.run(_run())
    except KeyboardInterrupt:
        status = 0
    snapshot = service.metrics_snapshot()
    print(format_table(
        ["metric", "value"],
        [[k, v] for k, v in sorted(snapshot.items())],
        title="advisory-service request metrics",
    ))
    if args.metrics_out:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.record_service(service)
        registry.record_runner(runner)
        registry.write_json(args.metrics_out)
        print(f"wrote {len(registry)} metrics to {args.metrics_out}")
    return status


def _report(args, runner) -> int:
    """The publication pipeline verb.

    ``--list`` enumerates the registry; ``-o FILE`` keeps the legacy
    single-file markdown report; otherwise a manifest-stamped artifact
    tree is generated under ``--out/<run-id>/`` and, with ``--diff``,
    compared against a baseline tree (nonzero exit on drift).
    """
    from repro.errors import ConfigurationError
    from repro.report import ReportPipeline, diff_trees, resolve_exhibits

    if args.list_exhibits:
        try:
            specs = resolve_exhibits(args.exhibits)
        except ConfigurationError as exc:
            print(f"report: {exc}", file=sys.stderr)
            return 2
        print(format_table(
            ["id", "kind", "anchor", "cost", "title"],
            [[s.id, s.kind, s.paper_anchor,
              "simulated" if s.simulated else "analytic", s.title]
             for s in specs],
            title=f"registered exhibits ({len(specs)})",
        ))
        return 0

    run = ScaledRun(instructions=args.instructions)
    if args.output:
        # Legacy single-file markdown report (kept for scripting compat).
        from repro.analysis.report import write_report

        include = args.exhibits.split(",") if args.exhibits else None
        try:
            write_report(args.output, run, include)
        except ConfigurationError as exc:
            print(f"report: {exc}", file=sys.stderr)
            return 2
        print(f"wrote report to {args.output}")
        _finish_runner(args, runner)
        return 0

    try:
        pipeline = ReportPipeline(
            out_dir=args.out,
            run_id=args.run_id,
            formats=args.format,
            run=run,
            fidelity=args.fidelity_summary,
        )
        tree = pipeline.generate(args.exhibits)
    except ConfigurationError as exc:
        print(f"report: {exc}", file=sys.stderr)
        return 2
    print(f"wrote artifact tree to {tree}")
    _finish_runner(args, runner)
    if args.diff:
        result = diff_trees(tree, args.diff, exhibits=args.exhibits)
        print(result.render())
        if not result.clean:
            return 1
    return 0


def _build_grid(args):
    """The sweep grid from --grid shorthand (or the built-in default)."""
    from repro.dse import GridSpec, parse_grid

    return parse_grid(args.grid) if args.grid else GridSpec()


def _dse(args, runner) -> int:
    """Design-space exploration: score a grid, print frontier + knee."""
    from repro.dse import DesignSpaceExplorer, PAPER_POINT
    from repro.errors import ConfigurationError

    try:
        grid = _build_grid(args)
        kwargs = {}
        if args.benchmarks:
            kwargs["benchmarks"] = tuple(
                b.strip() for b in args.benchmarks.split(",") if b.strip()
            )
        if args.idle_fraction is not None:
            kwargs["idle_fraction"] = args.idle_fraction
        if args.sessions is not None:
            kwargs["sessions_per_day"] = args.sessions
        explorer = DesignSpaceExplorer(
            grid=grid,
            run=ScaledRun(instructions=args.instructions),
            **kwargs,
        )
        report = explorer.explore()
    except ConfigurationError as exc:
        print(f"dse: {exc}", file=sys.stderr)
        return 2
    frontier = set(report.frontier_keys)
    rows = [
        [
            r.point.key(),
            f"{r.energy_j_day:.2f}",
            f"{r.slowdown:.4f}",
            f"{r.failure_prob_day:.3e}",
            ("knee" if r.point.key() == report.knee_key
             else "frontier" if r.point.key() in frontier else ""),
        ]
        for r in report.results
    ]
    print(format_table(
        ["operating point", "energy J/day", "slowdown", "p(fail)/day", ""],
        rows,
        title=(
            f"dse: {len(report.results)}-point grid, "
            f"{len(frontier)} on frontier, {report.sim_jobs} sim jobs"
        ),
    ))
    summary = report.summary()
    print(format_table(
        ["metric", "value"],
        [[k, v] for k, v in summary.items()],
        title=f"knee: {report.knee_key} "
        f"(paper point {PAPER_POINT.key()})",
    ))
    if args.frontier_out:
        with open(args.frontier_out, "w", encoding="utf-8") as stream:
            stream.write(report.to_json())
        print(f"wrote frontier report to {args.frontier_out}")
    if args.manifest:
        runner.write_manifest(args.manifest)
        print(f"wrote run manifest to {args.manifest}")
    if args.metrics_out:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.record_dse(report)
        registry.record_runner(runner)
        registry.record_codec_backend()
        registry.write_json(args.metrics_out)
        print(f"wrote {len(registry)} metrics to {args.metrics_out}")
    from repro.analysis.report import render_runner_summary

    runner_summary = render_runner_summary(runner)
    if runner_summary:
        print(runner_summary)
    return 0


def _tune(args, runner) -> int:
    """Train/evaluate the per-workload tuner, or run the drift check."""
    from repro.dse import golden as dse_golden
    from repro.dse import train_tuner
    from repro.dse.tuner import WorkloadFeatures
    from repro.errors import ConfigurationError
    from repro.workloads.personas import ALL_PERSONAS, ALL_PERSONAS_BY_NAME

    if args.drift_check:
        path = args.golden or dse_golden.default_golden_path()
        try:
            if args.update_golden:
                payload = dse_golden.compute_golden()
                written = dse_golden.write_golden(path, payload)
                print(f"wrote golden DSE fixture to {written}")
                return 0
            golden = dse_golden.load_golden(path)
            report = dse_golden.drift_check(
                golden, tolerance=args.drift_tolerance
            )
        except ConfigurationError as exc:
            print(f"tune: {exc}", file=sys.stderr)
            return 2
        print(report.render())
        return 0 if report.ok else 1

    try:
        grid = _build_grid(args)
        if args.personas:
            names = [p.strip() for p in args.personas.split(",") if p.strip()]
            unknown = sorted(set(names) - set(ALL_PERSONAS_BY_NAME))
            if unknown:
                raise ConfigurationError(
                    f"unknown personas: {', '.join(unknown)}; choose from "
                    f"{', '.join(sorted(ALL_PERSONAS_BY_NAME))}"
                )
            personas = tuple(ALL_PERSONAS_BY_NAME[n] for n in names)
        else:
            personas = ALL_PERSONAS
        tuner, reports = train_tuner(
            grid=grid,
            personas=personas,
            run=ScaledRun(instructions=args.instructions),
            k=args.knn,
            slowdown_cap=args.slowdown_cap,
        )
    except ConfigurationError as exc:
        print(f"tune: {exc}", file=sys.stderr)
        return 2
    card = tuner.report_card()
    print(format_table(
        ["workload", "best point", "LOO prediction", "hit", "regret"],
        [
            [row["workload"], row["best"], row["predicted"],
             "yes" if row["hit"] else "no", f"{row['regret']:.4f}"]
            for row in card
        ],
        title=(
            f"tuner report card: {len(tuner.samples)} workloads, "
            f"k={tuner.k}, grid {grid.size} points"
        ),
    ))
    hits = sum(1 for row in card if row["hit"])
    mean_regret = sum(row["regret"] for row in card) / len(card)
    print(f"leave-one-out: {hits}/{len(card)} exact, "
          f"mean regret {mean_regret:.4f}")
    for persona in sorted(personas, key=lambda p: p.name):
        predicted = tuner.predict(WorkloadFeatures.from_persona(persona))
        print(f"  {persona.name}: {predicted}")
    if args.tuner_out:
        print(f"wrote tuner to {tuner.save(args.tuner_out)}")
    if args.manifest:
        runner.write_manifest(args.manifest)
        print(f"wrote run manifest to {args.manifest}")
    if args.metrics_out:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.record_tuner(tuner)
        registry.record_runner(runner)
        registry.write_json(args.metrics_out)
        print(f"wrote {len(registry)} metrics to {args.metrics_out}")
    return 0


def _configure_runner(args):
    """Install the process-wide experiment runner from CLI flags/env."""
    from repro.analysis.runner import configure_runner

    jobs = args.jobs
    if jobs is None:
        jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or None
    timeout_s = args.timeout
    if timeout_s is None:
        env = os.environ.get("REPRO_JOB_TIMEOUT_S") or None
        timeout_s = float(env) if env else None
    retries = args.retries
    if retries is None:
        retries = int(os.environ.get("REPRO_RETRIES", "0") or "0")
    backend = args.runner_backend
    if backend is None:
        backend = os.environ.get("REPRO_RUNNER_BACKEND") or "local"
    # A resumed sweep keeps checkpointing to the same manifest unless
    # the user redirects it explicitly.
    checkpoint = args.checkpoint or args.resume or None
    runner = configure_runner(
        jobs=max(1, jobs),
        cache_dir=cache_dir,
        timeout_s=timeout_s,
        retries=max(0, retries),
        checkpoint_path=checkpoint,
        start_method=os.environ.get("REPRO_POOL_START_METHOD") or None,
        backend=backend,
    )
    if args.resume:
        if cache_dir is None:
            print(
                "warning: --resume without --cache-dir; completed jobs have "
                "no cache to be served from and will re-run",
                file=sys.stderr,
            )
        completed = runner.resume_from(args.resume)
        print(f"resuming from {args.resume}: {completed} job(s) already complete")
    return runner


def _finish_runner(args, runner) -> None:
    """Emit the runner's observability outputs (summary, manifest, metrics)."""
    from repro.analysis.report import render_runner_summary

    if args.manifest:
        runner.write_manifest(args.manifest)
        print(f"wrote run manifest to {args.manifest}")
    if args.metrics_out:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.record_runner(runner)
        registry.record_codec_backend()
        if runner.dispatch_summary is not None:
            registry.record_dispatch(runner.dispatch_summary)
        registry.write_json(args.metrics_out)
        print(f"wrote {len(registry)} metrics to {args.metrics_out}")
    summary = render_runner_summary(runner)
    if summary:
        print(summary)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.codec_backend is not None:
        set_backend(args.codec_backend)
    if args.exhibit == "list":
        print(format_table(
            ["name", "exhibit"], [[k, v[0]] for k, v in EXHIBITS.items()]
        ))
        return 0
    if args.exhibit == "trace-gen":
        return _trace_gen(args)
    if args.exhibit == "trace-sim":
        return _trace_sim(args)
    if args.exhibit == "fault-inject":
        return _fault_inject(args)
    if args.exhibit == "chaos":
        return _chaos(args)
    if args.exhibit == "validate":
        return _validate(args)
    if args.exhibit == "workers":
        return _workers(args)
    if args.exhibit == "dispatch":
        return _dispatch(args)
    runner = _configure_runner(args)
    if args.exhibit == "fidelity":
        return _fidelity(args, runner)
    if args.exhibit == "fleet":
        return _fleet(args, runner)
    if args.exhibit == "serve":
        return _serve(args, runner)
    if args.exhibit == "dse":
        return _dse(args, runner)
    if args.exhibit == "tune":
        return _tune(args, runner)
    if args.exhibit == "csv":
        from repro.analysis.export import export_all

        if not args.output:
            print("csv requires --output DIRECTORY", file=sys.stderr)
            return 2
        paths = export_all(args.output, ScaledRun(instructions=args.instructions))
        print(f"wrote {len(paths)} CSV files to {args.output}")
        _finish_runner(args, runner)
        return 0
    if args.exhibit == "report":
        return _report(args, runner)
    run = ScaledRun(instructions=args.instructions)
    names = sorted(EXHIBITS) if args.exhibit == "all" else [args.exhibit]
    for name in names:
        print(EXHIBITS[name][1](run))
        print()
    _finish_runner(args, runner)
    return 0


if __name__ == "__main__":
    sys.exit(main())
