"""Chaos-campaign results: records, aggregation, deterministic rendering.

The report is a plain value object: same records in, byte-identical
table out.  No wall-clock timestamps, no unordered iteration — the
acceptance bar for the chaos exhibit is that two runs with the same seed
produce the same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Outcome names in rendering order (mirrors campaign.OUTCOME_ORDER;
#: kept as strings here so the report module stays import-light).
OUTCOME_NAMES: tuple[str, ...] = (
    "masked",
    "detected-recovered",
    "detected-unrecovered",
    "silent-degradation",
    "silent-corruption",
)

_COLUMN_LABELS = {
    "masked": "masked",
    "detected-recovered": "det+rec",
    "detected-unrecovered": "det+unrec",
    "silent-degradation": "degraded",
    "silent-corruption": "SILENT",
}


@dataclass(frozen=True)
class TrialRecord:
    """One classified trial."""

    fault_class: str
    trial: int
    seed: int
    outcome: str
    detection: tuple[str, ...] = ()


@dataclass
class ChaosReport:
    """All records of one campaign plus its configuration."""

    campaign: str
    trials: int
    seed: int
    scrub: bool
    conservative: bool
    records: list[TrialRecord] = field(default_factory=list)

    # -- aggregation ----------------------------------------------------------

    def outcome_totals(self) -> dict[str, int]:
        """Total count per outcome class (zero-filled, stable order)."""
        totals = {name: 0 for name in OUTCOME_NAMES}
        for record in self.records:
            totals[record.outcome] = totals.get(record.outcome, 0) + 1
        return totals

    def by_class(self) -> dict[str, dict[str, int]]:
        """Per-fault-class outcome counts, classes in first-seen order."""
        table: dict[str, dict[str, int]] = {}
        for record in self.records:
            row = table.setdefault(
                record.fault_class, {name: 0 for name in OUTCOME_NAMES}
            )
            row[record.outcome] = row.get(record.outcome, 0) + 1
        return table

    @property
    def silent_corruption_count(self) -> int:
        return self.outcome_totals()["silent-corruption"]

    @property
    def detection_rate(self) -> float:
        """Fraction of trials where at least one detector fired."""
        if not self.records:
            return 0.0
        fired = sum(1 for record in self.records if record.detection)
        return fired / len(self.records)

    def as_dict(self) -> dict:
        """JSON/metrics-safe summary (scalars + one-level mappings)."""
        return {
            "campaign": self.campaign,
            "trials": self.trials,
            "seed": self.seed,
            "scrub": self.scrub,
            "conservative": self.conservative,
            "silent_corruptions": self.silent_corruption_count,
            "detection_rate": self.detection_rate,
            "outcomes": self.outcome_totals(),
        }

    # -- rendering ------------------------------------------------------------

    def render_table(self) -> str:
        """The campaign outcome table; byte-identical for equal inputs."""
        mitigations = (
            f"scrub={'on' if self.scrub else 'off'}, "
            f"fallback={'conservative' if self.conservative else 'none'}"
        )
        lines = [
            f"chaos campaign {self.campaign!r} — {self.trials} trials, "
            f"seed {self.seed}, {mitigations}",
            "",
        ]
        header = f"{'fault class':<24}{'trials':>8}" + "".join(
            f"{_COLUMN_LABELS[name]:>11}" for name in OUTCOME_NAMES
        )
        lines.append(header)
        lines.append("-" * len(header))
        table = self.by_class()
        for fault_class in sorted(table):
            row = table[fault_class]
            count = sum(row.values())
            lines.append(
                f"{fault_class:<24}{count:>8}"
                + "".join(f"{row[name]:>11}" for name in OUTCOME_NAMES)
            )
        totals = self.outcome_totals()
        lines.append("-" * len(header))
        lines.append(
            f"{'total':<24}{len(self.records):>8}"
            + "".join(f"{totals[name]:>11}" for name in OUTCOME_NAMES)
        )
        silent = totals["silent-corruption"]
        lines.append("")
        lines.append(
            f"silent corruptions: {silent}  "
            f"(detection rate {self.detection_rate:.2%})"
        )
        return "\n".join(lines)
