"""Tests for the ECC scheme registry (cost models)."""

import pytest

from repro.ecc.codes import ECC6, NO_ECC, SECDED, EccScheme, SchemeKind, make_scheme
from repro.errors import ConfigurationError


class TestPaperSchemes:
    def test_no_ecc_is_free(self):
        assert NO_ECC.decode_cycles == 0
        assert NO_ECC.storage_bits == 0
        assert NO_ECC.kind is SchemeKind.NONE

    def test_secded_matches_paper(self):
        """SECDED: 2-cycle decode, 11 storage bits for a 64B line, ~3K gates."""
        assert SECDED.decode_cycles == 2
        assert SECDED.storage_bits == 11
        assert SECDED.correctable == 1
        assert SECDED.detectable == 2
        assert SECDED.gate_count == 3_000

    def test_ecc6_matches_paper(self):
        """ECC-6: 30-cycle decode, 61 bits (6EC-7ED), 100K-200K gates, ~40 pJ."""
        assert ECC6.decode_cycles == 30
        assert ECC6.storage_bits == 61
        assert ECC6.correctable == 6
        assert ECC6.detectable == 7
        assert 100_000 <= ECC6.gate_count <= 200_000
        assert ECC6.decode_energy_pj == pytest.approx(40.0)

    def test_decode_energy_much_below_line_read(self):
        """Paper Sec. IV-C: 40 pJ decode vs ~12 nJ line read."""
        from repro.power.calculator import DramPowerCalculator

        read_energy_pj = DramPowerCalculator().line_read_energy_j() * 1e12
        assert ECC6.decode_energy_pj < read_energy_pj / 100


class TestMakeScheme:
    def test_rejects_negative_strength(self):
        with pytest.raises(ConfigurationError):
            make_scheme(-1)

    @pytest.mark.parametrize("t", range(2, 7))
    def test_bch_storage_is_tm_plus_one(self, t):
        scheme = make_scheme(t)
        assert scheme.storage_bits == 10 * t + 1

    @pytest.mark.parametrize("t", range(2, 7))
    def test_bch_latency_linear_in_t(self, t):
        assert make_scheme(t).decode_cycles == 5 * t

    def test_without_extended_detection(self):
        scheme = make_scheme(6, extended_detection=False)
        assert scheme.storage_bits == 60
        assert scheme.detectable == 6

    def test_fits_in_72_64_budget(self):
        """Paper Fig. 6: SECDED and ECC-6 both fit in 60 usable bits."""
        usable = 64 - 4  # 64-bit field minus the 4 mode-replica bits
        assert SECDED.storage_bits <= usable
        assert make_scheme(6, extended_detection=False).storage_bits <= usable

    def test_larger_lines(self):
        scheme = make_scheme(6, line_bytes=128)
        assert scheme.kind is SchemeKind.BCH
        assert scheme.storage_bits == 6 * 11 + 1  # needs GF(2^11)


class TestLatencyOverride:
    def test_with_decode_cycles(self):
        slow = ECC6.with_decode_cycles(60)
        assert slow.decode_cycles == 60
        assert slow.storage_bits == ECC6.storage_bits
        assert ECC6.decode_cycles == 30  # original untouched

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ECC6.with_decode_cycles(-1)

    def test_scheme_is_frozen(self):
        with pytest.raises(AttributeError):
            ECC6.decode_cycles = 5
