"""Tests for ECC-mode-bit replication helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mode_bits import (
    encode_replicas,
    flips_to_misresolve,
    majority_vote,
    misresolve_probability,
    tie_probability,
)
from repro.errors import ConfigurationError
from repro.types import EccMode


class TestEncodeAndVote:
    def test_patterns(self):
        assert encode_replicas(EccMode.WEAK) == 0b0000
        assert encode_replicas(EccMode.STRONG) == 0b1111
        assert encode_replicas(EccMode.STRONG, replicas=8) == 0xFF

    def test_majority(self):
        assert majority_vote(0b1111) is EccMode.STRONG
        assert majority_vote(0b0111) is EccMode.STRONG
        assert majority_vote(0b0001) is EccMode.WEAK
        assert majority_vote(0b0000) is EccMode.WEAK

    def test_tie_returns_none(self):
        assert majority_vote(0b0011) is None
        assert majority_vote(0b0101) is None

    def test_odd_replicas_never_tie(self):
        for pattern in range(8):
            assert majority_vote(pattern, replicas=3) is not None

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            encode_replicas(EccMode.WEAK, replicas=0)
        with pytest.raises(ConfigurationError):
            majority_vote(0, replicas=0)


class TestMisresolveAnalysis:
    def test_flip_thresholds(self):
        assert flips_to_misresolve(1) == 1
        assert flips_to_misresolve(4) == 3
        assert flips_to_misresolve(8) == 5

    def test_four_way_is_very_safe_at_paper_ber(self):
        """At BER 10^-4.5, 3-of-4 replica flips are ~1e-13 per line."""
        p = misresolve_probability(10 ** -4.5, replicas=4)
        assert p < 1e-12

    def test_single_bit_is_fragile(self):
        assert misresolve_probability(10 ** -4.5, replicas=1) == pytest.approx(
            10 ** -4.5
        )

    def test_more_replicas_safer(self):
        ber = 1e-3
        probs = [misresolve_probability(ber, r) for r in (1, 2, 4, 8)]
        # Note r=2 ties rather than misresolves at 1 flip; misresolve
        # probability is monotone non-increasing in replica count.
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_tie_probability_even_only(self):
        assert tie_probability(1e-3, replicas=3) == 0.0
        assert tie_probability(1e-3, replicas=4) > 0.0

    def test_tie_probability_formula(self):
        ber = 0.01
        expected = 6 * ber ** 2 * (1 - ber) ** 2
        assert tie_probability(ber, 4) == pytest.approx(expected)

    def test_rejects_bad_ber(self):
        with pytest.raises(ConfigurationError):
            misresolve_probability(1.5)
        with pytest.raises(ConfigurationError):
            tie_probability(-0.1)


@given(st.floats(min_value=0.0, max_value=0.49),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=100)
def test_property_probability_in_bounds(ber, replicas):
    assert 0.0 <= misresolve_probability(ber, replicas) <= 1.0
    assert 0.0 <= tie_probability(ber, replicas) <= 1.0
