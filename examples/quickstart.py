#!/usr/bin/env python3
"""Quickstart: evaluate Morphable ECC on one workload.

Runs libquantum (the paper's worst case for always-on strong ECC) under
four ECC policies and prints the performance/power story in ~10 seconds:

* ECC-6 everywhere saves refresh power but costs ~20-25% performance;
* MECC saves the same refresh power at a few percent cost.

Usage::

    python examples/quickstart.py [instructions]
"""

import sys

from repro import DramPowerCalculator, SystemConfig, simulate
from repro.workloads import BENCHMARKS_BY_NAME


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 300_000
    config = SystemConfig()
    spec = BENCHMARKS_BY_NAME["libq"]
    print(f"Generating a {instructions:,}-instruction libquantum-like trace "
          f"(MPKI ~{spec.mpki}, calibrating baseline IPC to {spec.ipc})...")
    trace = spec.trace(instructions)

    print("\n-- Active-mode performance (normalized IPC) --")
    results = {}
    for name in ("baseline", "secded", "ecc6", "mecc"):
        results[name] = simulate(trace, config.policy_by_name(name))
    base_ipc = results["baseline"].ipc
    from repro.analysis.charts import normalized_ipc_chart

    print(normalized_ipc_chart(
        {name: result.ipc / base_ipc for name, result in results.items()}
    ))
    print("  (ecc6: always-strong ECC pays the decode on every miss;"
          "\n   mecc: strong decode only on each line's first touch)")
    mecc = results["mecc"]
    print(f"  MECC downgraded {mecc.downgrades} lines "
          f"({mecc.strong_decodes} strong decodes out of {mecc.reads} reads)")

    print("\n-- Idle-mode power (self-refresh) --")
    calc = DramPowerCalculator(config.power)
    base_idle = calc.idle_power(0.064)
    mecc_idle = calc.idle_power(1.024)
    print(f"  baseline (64 ms refresh): {1000 * base_idle.total:.2f} mW "
          f"(refresh {1000 * base_idle.refresh:.2f} mW)")
    print(f"  MECC     (1 s refresh):   {1000 * mecc_idle.total:.2f} mW "
          f"(refresh {1000 * mecc_idle.refresh:.2f} mW)")
    print(f"  refresh operations reduced {base_idle.refresh / mecc_idle.refresh:.0f}x, "
          f"idle power reduced {base_idle.total / mecc_idle.total:.2f}x")


if __name__ == "__main__":
    main()
