"""Model cross-validation (extension): closed forms vs. Monte-Carlo.

Every analytic model the reproduction leans on is checked against
independent sampling in one battery — a disagreement here would mean
some paper exhibit upstream is built on a modeling bug.
"""

from repro.analysis.tables import format_table
from repro.analysis.validation import run_all_validations


def test_model_validation_battery(benchmark, show):
    results = benchmark.pedantic(run_all_validations, rounds=1, iterations=1)
    show(format_table(
        ["model", "analytic", "empirical", "trials", "relative error"],
        [[r.what, r.analytic, r.empirical, r.trials, r.relative_error]
         for r in results],
        title="Model validation — closed forms vs. Monte-Carlo",
    ))
    for result in results:
        assert result.agrees(0.25), result.what
