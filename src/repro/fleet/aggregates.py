"""Mergeable streaming aggregates for fleet-scale sweeps.

A million-device population must never materialize per-device records:
each shard streams its devices through a :class:`MetricAggregate`
(count/mean/variance by Welford's recurrence, a fixed-bin histogram,
and histogram-backed percentile estimates), and shard aggregates merge
pairwise into the fleet total.  Merging uses Chan's parallel update for
the moments and plain integer addition for the bins, so

* merge order changes results only at float rounding scale (the tests
  pin this at relative 1e-9), and
* bin counts — and therefore percentile estimates — are *exactly*
  independent of sharding and merge order.

Everything serializes to JSON-native dicts (:meth:`as_dict`) for run
artifacts and the advisory index.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


class StreamingMoments:
    """Count / mean / variance / min / max over a stream, mergeable."""

    __slots__ = ("count", "mean", "m2", "min", "max")

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "StreamingMoments") -> None:
        """Fold ``other`` in (Chan et al. parallel variance update)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * (self.count * other.count / total)
        self.mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def variance(self) -> float:
        """Population variance (0.0 below two samples)."""
        return self.m2 / self.count if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(max(0.0, self.variance))

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean if self.count else None,
            "stddev": self.stddev if self.count else None,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class FixedBinHistogram:
    """Equal-width bins over ``[lo, hi)`` with under/overflow gutters.

    Integer counts make merges exact: a fleet histogram is identical no
    matter how the devices were sharded.  Percentiles interpolate
    linearly inside the holding bin — a bounded-memory sketch whose
    error is at most one bin width.
    """

    __slots__ = ("lo", "hi", "bins", "counts", "underflow", "overflow")

    def __init__(self, lo: float, hi: float, bins: int = 64):
        if not lo < hi:
            raise ConfigurationError("histogram needs lo < hi")
        if bins < 1:
            raise ConfigurationError("histogram needs >= 1 bin")
        self.lo = lo
        self.hi = hi
        self.bins = bins
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0

    def add(self, value: float) -> None:
        if value < self.lo:
            self.underflow += 1
        elif value >= self.hi:
            self.overflow += 1
        else:
            index = int((value - self.lo) * self.bins / (self.hi - self.lo))
            # Float rounding at the upper edge can land exactly on bins.
            self.counts[min(index, self.bins - 1)] += 1

    def merge(self, other: "FixedBinHistogram") -> None:
        if (other.lo, other.hi, other.bins) != (self.lo, self.hi, self.bins):
            raise ConfigurationError(
                "cannot merge histograms with different binning: "
                f"({self.lo}, {self.hi}, {self.bins}) vs "
                f"({other.lo}, {other.hi}, {other.bins})"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.underflow += other.underflow
        self.overflow += other.overflow

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow

    def percentile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1], interpolated within its bin.

        Gutter mass clamps to the range edges (the sketch cannot see
        past them).
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile must be in [0, 1]")
        total = self.total
        if total == 0:
            raise ConfigurationError("percentile of an empty histogram")
        target = q * total
        seen = float(self.underflow)
        if target <= seen:
            return self.lo
        width = (self.hi - self.lo) / self.bins
        for i, count in enumerate(self.counts):
            if count and target <= seen + count:
                inside = (target - seen) / count
                return self.lo + (i + inside) * width
            seen += count
        return self.hi

    def as_dict(self) -> dict:
        return {
            "lo": self.lo,
            "hi": self.hi,
            "bins": self.bins,
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
        }


#: Percentiles exported in every aggregate snapshot.
EXPORT_PERCENTILES = (0.50, 0.90, 0.95, 0.99)


class MetricAggregate:
    """Moments + histogram for one per-device metric."""

    __slots__ = ("name", "moments", "histogram")

    def __init__(self, name: str, lo: float, hi: float, bins: int = 64):
        self.name = name
        self.moments = StreamingMoments()
        self.histogram = FixedBinHistogram(lo, hi, bins)

    def add(self, value: float) -> None:
        self.moments.add(value)
        self.histogram.add(value)

    def merge(self, other: "MetricAggregate") -> None:
        if other.name != self.name:
            raise ConfigurationError(
                f"cannot merge metric {other.name!r} into {self.name!r}"
            )
        self.moments.merge(other.moments)
        self.histogram.merge(other.histogram)

    def percentile(self, q: float) -> float:
        return self.histogram.percentile(q)

    def as_dict(self) -> dict:
        out = self.moments.as_dict()
        if self.moments.count:
            out["percentiles"] = {
                f"p{int(q * 100)}": self.percentile(q) for q in EXPORT_PERCENTILES
            }
        out["histogram"] = self.histogram.as_dict()
        return out


@dataclass
class FleetAggregate:
    """All streamed statistics for one (shard of a) fleet simulation.

    Holds per-scheme metric aggregates plus exact integer counters
    (devices, per-persona population, per-device best-policy votes).
    Two shard aggregates merge into one with :meth:`merge`; the fleet
    total is a fold over shards in any order.
    """

    metrics: dict[str, MetricAggregate] = field(default_factory=dict)
    devices: int = 0
    persona_counts: dict[str, int] = field(default_factory=dict)
    best_policy_counts: dict[str, int] = field(default_factory=dict)

    def metric(self, name: str, lo: float, hi: float, bins: int = 64) -> MetricAggregate:
        """Fetch-or-create the named metric aggregate.

        Re-requesting an existing metric with different binning is a
        bug in the caller (the shards would no longer merge) and raises.
        """
        agg = self.metrics.get(name)
        if agg is None:
            agg = self.metrics[name] = MetricAggregate(name, lo, hi, bins)
        elif (agg.histogram.lo, agg.histogram.hi, agg.histogram.bins) != (
            lo, hi, bins,
        ):
            raise ConfigurationError(
                f"metric {name!r} already registered with different binning"
            )
        return agg

    def count_device(self, persona: str) -> None:
        self.devices += 1
        self.persona_counts[persona] = self.persona_counts.get(persona, 0) + 1

    def count_best_policy(self, scheme: str) -> None:
        self.best_policy_counts[scheme] = self.best_policy_counts.get(scheme, 0) + 1

    def merge(self, other: "FleetAggregate") -> "FleetAggregate":
        """Fold ``other`` in; returns self for chaining."""
        for name, agg in other.metrics.items():
            mine = self.metrics.get(name)
            if mine is None:
                # Adopt a same-shape empty twin, then merge for exactness.
                mine = self.metrics[name] = MetricAggregate(
                    name, agg.histogram.lo, agg.histogram.hi, agg.histogram.bins
                )
            mine.merge(agg)
        self.devices += other.devices
        for persona, count in other.persona_counts.items():
            self.persona_counts[persona] = (
                self.persona_counts.get(persona, 0) + count
            )
        for scheme, count in other.best_policy_counts.items():
            self.best_policy_counts[scheme] = (
                self.best_policy_counts.get(scheme, 0) + count
            )
        return self

    def as_dict(self) -> dict:
        return {
            "devices": self.devices,
            "persona_counts": dict(sorted(self.persona_counts.items())),
            "best_policy_counts": dict(sorted(self.best_policy_counts.items())),
            "metrics": {
                name: agg.as_dict() for name, agg in sorted(self.metrics.items())
            },
        }


def merge_aggregates(aggregates) -> FleetAggregate:
    """Fold an iterable of shard aggregates into one fleet total."""
    total = FleetAggregate()
    for aggregate in aggregates:
        total.merge(aggregate)
    return total
