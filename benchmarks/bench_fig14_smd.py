"""Fig. 14: fraction of execution time with ECC-Downgrade disabled (SMD).

Paper: with an MPKC threshold of 2, seven benchmarks (povray, tonto, wrf,
gamess, hmmer, sjeng, h264ref) never enable ECC-Downgrade — refresh stays
at 1 s even while active — while memory-intensive benchmarks enable it in
the first quanta.  Average performance stays within 2% of baseline.

The disabled-fraction table is a thin shim over the ``repro.report``
registry (exhibit ``fig14``); the performance companion drives the
simulator directly.
"""

from repro.analysis.experiments import run_policy_suite
from repro.analysis.tables import format_table
from repro.ecc.backend import selected_backend
from repro.report.spec import get_exhibit
from repro.sim.engine import simulate
from repro.sim.stats import geometric_mean
from repro.sim.system import SystemConfig
from repro.workloads.spec import ALL_BENCHMARKS, SMD_ALWAYS_DISABLED

EXHIBIT_ID = "fig14"


def test_fig14_smd_disabled_fraction(benchmark, run, show):
    spec = get_exhibit(EXHIBIT_ID)
    data = benchmark.pedantic(spec.build, args=(run,), rounds=1, iterations=1)
    show(format_table(
        ["benchmark", "disabled fraction", "paper: never enables?"],
        [[name, data.cell(name, "disabled_fraction"),
          "yes" if name in SMD_ALWAYS_DISABLED else ""]
         for name in data.row_keys()],
        title=(
            "Fig. 14 — time with ECC-Downgrade disabled (threshold "
            f"MPKC=2) [codec backend: {selected_backend()}]"
        ),
    ))
    # The paper's seven stay disabled for the entire run.
    for name in SMD_ALWAYS_DISABLED:
        assert data.cell(name, "disabled_fraction") == 1.0, name
    # Memory-intensive benchmarks enable almost immediately.
    for name in ("libq", "lbm", "bwaves", "milc"):
        assert data.cell(name, "disabled_fraction") < 0.15, name
    # Mid-intensity benchmarks show the gradient.
    assert 0.1 < data.cell("gobmk", "disabled_fraction") < 0.9
    assert 0.1 < data.cell("namd", "disabled_fraction") < 0.9


def test_fig14_smd_performance_within_two_percent(benchmark, run, show):
    """Paper: 'The average performance with SMD is within 2% of a baseline
    that does not perform error correction.'"""

    def measure():
        config = SystemConfig()
        ratios = {}
        for spec in ALL_BENCHMARKS:
            base = run_policy_suite(spec, run, policies=("baseline",))["baseline"]
            from repro.analysis.experiments import _trace_for

            policy = config.policy_by_name(
                "mecc+smd", quantum_cycles=run.quantum_cycles
            )
            result = simulate(_trace_for(spec, run), policy)
            ratios[spec.name] = result.ipc / base.ipc
        return ratios

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    geomean = geometric_mean(list(ratios.values()))
    show(format_table(
        ["benchmark", "MECC+SMD normalized IPC"],
        sorted(ratios.items()) + [["GEOMEAN", geomean]],
        title="Fig. 14 companion — MECC+SMD performance (paper: within 2%)",
    ))
    assert geomean > 0.96
