"""Decorrelated-jitter retry backoff (shared by the runner and dispatch).

Deterministic exponential doubling synchronizes retry storms: when many
jobs fail together (a dead worker pool, a partitioned coordinator), they
all come back at exactly ``base * 2**k`` and hammer the recovering
resource in lockstep.  The decorrelated-jitter scheme breaks that
alignment — each delay is drawn uniformly from ``[base, 3 * previous]``
and capped — so a thundering herd spreads itself out while the expected
delay still grows geometrically.

Everything is injectable (RNG and sleep) so tests stay deterministic:
pass ``rng=random.Random(seed)`` for reproducible delays and a recording
``sleep`` hook to assert on them without waiting.
"""

from __future__ import annotations

import random
import time
from typing import Callable

from repro.errors import ConfigurationError


class DecorrelatedJitter:
    """Stateful delay sequence: ``delay = min(cap, U(base, 3 * last))``.

    Args:
        base_s: minimum (and first-draw lower bound) delay; 0 disables
            backoff entirely (every delay is 0.0, handy in tests).
        cap_s: upper bound on any single delay.
        rng: random source exposing ``uniform``; defaults to a private
            unseeded :class:`random.Random` so concurrent sweeps do not
            share (and thus correlate through) the global RNG state.
    """

    def __init__(
        self,
        base_s: float = 0.25,
        cap_s: float = 30.0,
        rng: random.Random | None = None,
    ):
        if base_s < 0:
            raise ConfigurationError("base_s must be >= 0")
        if cap_s < base_s:
            raise ConfigurationError("cap_s must be >= base_s")
        self.base_s = base_s
        self.cap_s = cap_s
        self._rng = rng if rng is not None else random.Random()
        self._last = base_s

    def reset(self) -> None:
        """Start the sequence over (call after a success)."""
        self._last = self.base_s

    def next_delay(self) -> float:
        """Draw the next delay and advance the sequence."""
        if self.base_s == 0:
            return 0.0
        self._last = min(self.cap_s, self._rng.uniform(self.base_s, self._last * 3))
        return self._last


def sleep_with_backoff(
    backoff: DecorrelatedJitter,
    sleep: Callable[[float], None] = time.sleep,
) -> float:
    """Draw one delay, sleep it (if nonzero), and return it."""
    delay = backoff.next_delay()
    if delay:
        sleep(delay)
    return delay
