"""Refresh machinery: modes, self-refresh divider, upgrade-time helpers.

Covers the paper's Sec. II-A refresh modes and the Sec. III-B device hook:
a small internal counter that divides the refresh pulse rate so the
self-refresh period can be stretched from 64 ms to 1 s (a 4-bit counter
gives the 16x division).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.types import RefreshMode

#: JEDEC base refresh period, seconds.
BASE_REFRESH_PERIOD_S = 0.064
#: Refresh commands per refresh period (JEDEC 8K refresh cycles).
REFRESH_COMMANDS_PER_PERIOD = 8192


@dataclass
class RefreshDivider:
    """The paper's in-device refresh frequency divider (Sec. III-B).

    An internal counter increments on every incoming refresh pulse and
    forwards a pulse to the array only on overflow, so an n-bit counter
    divides the refresh rate by 2^n.  A 4-bit counter turns 64 ms into
    1.024 s (the paper rounds to "1 second" / "16x").
    """

    counter_bits: int = 4
    _count: int = field(default=0, repr=False)
    pulses_in: int = field(default=0, repr=False)
    pulses_out: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.counter_bits <= 16:
            raise ConfigurationError("counter_bits must be in [0, 16]")

    @property
    def division_factor(self) -> int:
        return 1 << self.counter_bits

    @property
    def effective_period_s(self) -> float:
        return BASE_REFRESH_PERIOD_S * self.division_factor

    def pulse(self) -> bool:
        """Feed one refresh pulse; returns True if forwarded to the array."""
        self.pulses_in += 1
        self._count = (self._count + 1) % self.division_factor
        if self._count == 0:
            self.pulses_out += 1
            return True
        return False

    def reset(self) -> None:
        self._count = 0


@dataclass
class SelfRefreshController:
    """Mode bookkeeping for the device's refresh state (Sec. II-A).

    Tracks which refresh mode the device is in, which fraction of the
    array is retained, and the effective refresh period — the inputs the
    idle-power model needs.  PASR retains only ``pasr_fraction`` of the
    array; DPD retains nothing.
    """

    mode: RefreshMode = RefreshMode.AUTO_REFRESH
    divider: RefreshDivider = field(default_factory=RefreshDivider)
    divider_enabled: bool = False
    pasr_fraction: float = 0.5
    #: Fault-injection latch: when True, mode-transition requests are
    #: ignored (a stuck refresh-mode fault, see repro.chaos).
    stuck: bool = field(default=False, repr=False, compare=False)
    #: Optional :class:`repro.obs.trace.EventTracer`; None = no tracing.
    tracer: object = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.pasr_fraction <= 1.0:
            raise ConfigurationError("pasr_fraction must be in (0, 1]")

    def inject_stuck(self) -> None:
        """Fault-inject: freeze the refresh machinery in its current mode."""
        self.stuck = True
        if self.tracer is not None:
            self.tracer.emit("refresh", "fault-stuck", mode=self.mode.value)

    def release_stuck(self) -> None:
        """Clear the stuck-mode fault latch."""
        self.stuck = False

    def enter(self, mode: RefreshMode, use_divider: bool = False) -> None:
        """Transition to a refresh mode; the divider only applies in SR."""
        if use_divider and mode is not RefreshMode.SELF_REFRESH:
            raise ConfigurationError("the refresh divider only applies in self refresh")
        if self.stuck:
            if self.tracer is not None:
                self.tracer.emit(
                    "refresh",
                    "stuck-ignored",
                    requested=mode.value,
                    mode=self.mode.value,
                )
            return
        previous = self.mode
        self.mode = mode
        self.divider_enabled = use_divider
        if use_divider:
            self.divider.reset()
        if self.tracer is not None:
            self.tracer.emit(
                "refresh",
                "mode",
                mode=mode.value,
                previous=previous.value,
                divided=use_divider,
                period_s=self.refresh_period_s,
            )

    @property
    def refresh_period_s(self) -> float:
        """Effective refresh period of the retained array, or inf if none."""
        if self.mode is RefreshMode.DEEP_POWER_DOWN:
            return float("inf")
        if self.mode is RefreshMode.SELF_REFRESH and self.divider_enabled:
            return self.divider.effective_period_s
        return BASE_REFRESH_PERIOD_S

    @property
    def retained_fraction(self) -> float:
        """Fraction of memory contents preserved in this mode."""
        if self.mode is RefreshMode.DEEP_POWER_DOWN:
            return 0.0
        if self.mode is RefreshMode.PARTIAL_ARRAY_SELF_REFRESH:
            return self.pasr_fraction
        return 1.0

    @property
    def refresh_rate_relative(self) -> float:
        """Refresh operations relative to baseline AR at 64 ms.

        Accounts for both the period stretch and (for PASR) the reduced
        refreshed fraction.
        """
        if self.mode is RefreshMode.DEEP_POWER_DOWN:
            return 0.0
        rate = BASE_REFRESH_PERIOD_S / self.refresh_period_s
        return rate * self.retained_fraction
