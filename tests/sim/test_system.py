"""Tests for the system configuration and scaled-run bookkeeping."""

import pytest

from repro.core.policy import Ecc6Policy, MeccPolicy, NoEccPolicy, SecdedPolicy
from repro.core.smd import PAPER_QUANTUM_CYCLES
from repro.errors import ConfigurationError
from repro.sim.system import PAPER_INSTRUCTIONS, ScaledRun, SystemConfig


class TestSystemConfig:
    def test_paper_latencies(self):
        config = SystemConfig()
        assert config.weak_scheme().decode_cycles == 2
        assert config.strong_scheme().decode_cycles == 30
        assert config.strong_scheme().correctable == 6

    def test_policy_factories(self):
        config = SystemConfig()
        assert isinstance(config.baseline_policy(), NoEccPolicy)
        assert isinstance(config.secded_policy(), SecdedPolicy)
        assert isinstance(config.ecc6_policy(), Ecc6Policy)
        assert isinstance(config.mecc_policy(), MeccPolicy)

    def test_policy_by_name(self):
        config = SystemConfig()
        assert config.policy_by_name("baseline").name == "Baseline"
        assert config.policy_by_name("secded").name == "SECDED"
        assert config.policy_by_name("ecc6").name == "ECC-6"
        assert config.policy_by_name("mecc").name == "MECC"
        assert config.policy_by_name("mecc+smd").name == "MECC+SMD"

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            SystemConfig().policy_by_name("parity")

    def test_custom_decode_latency(self):
        config = SystemConfig(strong_decode_cycles=60)
        assert config.strong_scheme().decode_cycles == 60
        policy = config.mecc_policy()
        action = policy.on_read(0, 0)
        assert action.decode_cycles == 60


class TestScaledRun:
    def test_paper_scale(self):
        run = ScaledRun(instructions=2_000_000)
        assert run.scale_factor == PAPER_INSTRUCTIONS / 2_000_000
        assert run.quantum_cycles == pytest.approx(
            PAPER_QUANTUM_CYCLES / run.scale_factor, abs=1
        )

    def test_full_scale_identity(self):
        run = ScaledRun(instructions=PAPER_INSTRUCTIONS)
        assert run.scale_factor == 1.0
        assert run.quantum_cycles == PAPER_QUANTUM_CYCLES

    def test_to_paper_seconds(self):
        run = ScaledRun(instructions=4_000_000)  # 1000x scale
        # 1.6M simulated cycles stand for 1.6B cycles = 1 second.
        assert run.to_paper_seconds(1_600_000) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScaledRun(instructions=0)
        with pytest.raises(ConfigurationError):
            ScaledRun(instructions=10, paper_instructions=5)
