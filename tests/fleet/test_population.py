"""Persona-mix population sampling: determinism and validation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fleet.population import (
    DEFAULT_MIX,
    IDLE_BOUNDS,
    PopulationModel,
    parse_mix,
)
from repro.workloads.personas import ALL_PERSONAS_BY_NAME


class TestDeterminism:
    def test_same_seed_same_fleet(self):
        a = PopulationModel(seed=7)
        b = PopulationModel(seed=7)
        assert list(a.devices(0, 500)) == list(b.devices(0, 500))

    def test_different_seed_different_fleet(self):
        a = list(PopulationModel(seed=7).devices(0, 500))
        b = list(PopulationModel(seed=8).devices(0, 500))
        assert a != b

    def test_device_is_pure_function_of_index(self):
        """Chunking cannot change a device: index i is index i, always."""
        model = PopulationModel(seed=3)
        whole = list(model.devices(0, 1_000))
        for chunk_size in (1, 13, 250):
            chunked = [
                device
                for start in range(0, 1_000, chunk_size)
                for device in model.devices(
                    start, min(start + chunk_size, 1_000)
                )
            ]
            assert chunked == whole

    def test_mix_shares_converge(self):
        model = PopulationModel(seed=11)
        counts: dict[str, int] = {}
        n = 20_000
        for device in model.devices(0, n):
            name = device.persona.name
            counts[name] = counts.get(name, 0) + 1
        for name, weight in DEFAULT_MIX.items():
            assert counts[name] / n == pytest.approx(weight, abs=0.02)

    def test_jitter_respects_bounds(self):
        model = PopulationModel(seed=5, idle_jitter=0.2)
        lo, hi = IDLE_BOUNDS
        for device in model.devices(0, 2_000):
            assert lo <= device.idle_fraction <= hi
            assert device.sessions_per_day >= 1


class TestValidation:
    def test_empty_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            PopulationModel(mix={})

    def test_unknown_persona_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown personas"):
            PopulationModel(mix={"light": 1.0, "nosuch": 1.0})

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            PopulationModel(mix={"light": -0.5, "heavy": 1.5})

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            PopulationModel(mix={"light": 0.0, "heavy": 0.0})

    def test_jitter_ranges_enforced(self):
        with pytest.raises(ConfigurationError):
            PopulationModel(idle_jitter=0.5)
        with pytest.raises(ConfigurationError):
            PopulationModel(session_jitter=1.5)

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            PopulationModel().device(-1)
        with pytest.raises(ConfigurationError):
            list(PopulationModel().devices(-1, 5))

    def test_extended_personas_usable(self):
        model = PopulationModel(mix={"minimal": 1.0, "gamer": 1.0}, seed=1)
        names = {d.persona.name for d in model.devices(0, 200)}
        assert names == {"minimal", "gamer"}
        assert all(name in ALL_PERSONAS_BY_NAME for name in names)

    def test_weights_normalized(self):
        model = PopulationModel(mix={"light": 3.0, "heavy": 1.0})
        assert model.mix["light"] == pytest.approx(0.75)
        assert model.mix["heavy"] == pytest.approx(0.25)


class TestParseMix:
    def test_parses_weighted_list(self):
        assert parse_mix("light:0.5, moderate:0.3,heavy:0.2") == {
            "light": 0.5, "moderate": 0.3, "heavy": 0.2,
        }

    def test_bare_name_defaults_to_one(self):
        assert parse_mix("light,heavy") == {"light": 1.0, "heavy": 1.0}

    def test_bad_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_mix("light:abc")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_mix("  , ,")
