"""Tests for the parallel, cached experiment runner."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.analysis.runner import (
    CACHE_SCHEMA,
    ExperimentRunner,
    JobSpec,
    ResultCache,
    code_fingerprint,
)
from repro.sim.system import ScaledRun, SystemConfig
from repro.workloads.spec import BENCHMARKS_BY_NAME

RUN = ScaledRun(instructions=20_000)
POVRAY = BENCHMARKS_BY_NAME["povray"]
LIBQ = BENCHMARKS_BY_NAME["libq"]


def spec_for(policy: str, benchmark=POVRAY, config=None) -> JobSpec:
    return JobSpec.build(benchmark, RUN, policy, config=config)


class TestJobSpec:
    def test_specs_are_hashable_and_equal_by_value(self):
        assert spec_for("mecc") == spec_for("mecc")
        assert {spec_for("mecc"), spec_for("mecc")} == {spec_for("mecc")}

    def test_key_is_stable(self):
        assert spec_for("baseline").key("abc") == spec_for("baseline").key("abc")

    def test_key_varies_with_job_and_code(self):
        base = spec_for("baseline")
        keys = {
            base.key("abc"),
            base.key("xyz"),  # code change
            spec_for("mecc").key("abc"),  # policy change
            spec_for("baseline", benchmark=LIBQ).key("abc"),  # benchmark change
            spec_for(
                "baseline", config=SystemConfig(weak_decode_cycles=7)
            ).key("abc"),  # config change
            dataclasses.replace(base, instructions=40_000).key("abc"),
        }
        assert len(keys) == 6

    def test_smd_spec_carries_scaling_parameters(self):
        spec = spec_for("mecc+smd")
        assert spec.threshold_mpkc is not None
        assert spec.quantum_cycles == RUN.quantum_cycles

    def test_code_fingerprint_is_memoized_hex(self):
        tag = code_fingerprint()
        assert tag == code_fingerprint()
        int(tag, 16)


class TestResultCache:
    def test_cold_miss_then_bit_identical_hit(self, tmp_path):
        spec = spec_for("mecc")
        cold = ExperimentRunner(jobs=1, cache=ResultCache(tmp_path))
        first = cold.run([spec])[spec]
        assert not first.cached
        assert cold.cache_misses == 1

        warm = ExperimentRunner(jobs=1, cache=ResultCache(tmp_path))
        second = warm.run([spec])[spec]
        assert second.cached
        assert warm.cache_hits == 1
        # Bit-identical round trip, floats included.
        assert second.result.to_dict() == first.result.to_dict()
        assert second.result.energy.total == first.result.energy.total

    def test_config_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ExperimentRunner(jobs=1, cache=cache)
        runner.run([spec_for("baseline")])
        changed = spec_for("baseline", config=SystemConfig(weak_decode_cycles=9))
        outcome = runner.run([changed])[changed]
        assert not outcome.cached
        assert cache.hits == 0 and cache.misses == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = spec_for("baseline")
        cache = ResultCache(tmp_path)
        ExperimentRunner(jobs=1, cache=cache).run([spec])
        key = spec.key()
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text("{not json")
        rerun = ExperimentRunner(jobs=1, cache=ResultCache(tmp_path))
        assert not rerun.run([spec])[spec].cached

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        spec = spec_for("baseline")
        cache = ResultCache(tmp_path)
        ExperimentRunner(jobs=1, cache=cache).run([spec])
        key = spec.key()
        path = tmp_path / key[:2] / f"{key}.json"
        payload = json.loads(path.read_text())
        payload["schema"] = CACHE_SCHEMA + 1
        path.write_text(json.dumps(payload))
        miss_cache = ResultCache(tmp_path)
        assert miss_cache.load(key) is None
        assert miss_cache.misses == 1


class TestRunner:
    def test_rejects_bad_jobs(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ExperimentRunner(jobs=0)

    def test_deduplicates_specs(self):
        runner = ExperimentRunner(jobs=1)
        spec = spec_for("baseline")
        outcomes = runner.run([spec, spec, spec])
        assert len(outcomes) == 1
        assert len(runner.records) == 1

    def test_parallel_matches_serial(self):
        """jobs=2 must produce bit-identical results to jobs=1."""
        specs = [
            spec_for("baseline"),
            spec_for("mecc"),
            spec_for("mecc+smd", benchmark=LIBQ),
        ]
        serial = ExperimentRunner(jobs=1).run(specs)
        parallel = ExperimentRunner(jobs=2).run(specs)
        for spec in specs:
            assert parallel[spec].result.to_dict() == serial[spec].result.to_dict()
            assert (
                parallel[spec].smd_disabled_fraction
                == serial[spec].smd_disabled_fraction
            )

    def test_smd_outcome_reports_disabled_fraction(self):
        runner = ExperimentRunner(jobs=1)
        plain = spec_for("mecc")
        smd = spec_for("mecc+smd")
        outcomes = runner.run([plain, smd])
        assert outcomes[plain].smd_disabled_fraction is None
        assert 0.0 <= outcomes[smd].smd_disabled_fraction <= 1.0


class TestManifest:
    def test_manifest_counts_and_records(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ExperimentRunner(jobs=1, cache=cache)
        specs = [spec_for("baseline"), spec_for("mecc")]
        runner.run(specs)
        runner.run(specs)  # second pass: all hits
        manifest = runner.manifest()
        assert manifest["schema"] == CACHE_SCHEMA
        assert manifest["code_version"] == code_fingerprint()
        assert manifest["parallelism"]["jobs"] == 1
        assert manifest["totals"]["job_count"] == 4
        assert manifest["cache"]["hits"] == 2
        assert manifest["cache"]["misses"] == 2
        assert manifest["cache"]["hit_rate"] == 0.5
        assert len(manifest["jobs"]) == 4
        record = manifest["jobs"][0]
        assert record["benchmark"] == "povray"
        assert record["source"] == "run"
        assert record["wall_s"] >= 0.0

    def test_write_manifest_round_trips(self, tmp_path):
        runner = ExperimentRunner(jobs=1)
        runner.run([spec_for("baseline")])
        path = tmp_path / "manifest.json"
        runner.write_manifest(path)
        payload = json.loads(path.read_text())
        assert payload["totals"]["job_count"] == 1
        assert "created" in payload

    def test_runner_summary_renders(self):
        from repro.analysis.report import render_runner_summary

        runner = ExperimentRunner(jobs=1)
        assert render_runner_summary(runner) == ""
        runner.run([spec_for("baseline"), spec_for("mecc")])
        text = render_runner_summary(runner)
        assert "baseline" in text and "mecc" in text and "TOTAL" in text
