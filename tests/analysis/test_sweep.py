"""Tests for the ablation sweeps."""

import pytest

from repro.analysis import sweep
from repro.sim.system import ScaledRun
from repro.workloads.spec import BENCHMARKS_BY_NAME


class TestMdtSweep:
    def test_storage_and_granularity_tradeoff(self):
        out = sweep.mdt_entry_sweep(
            BENCHMARKS_BY_NAME["libq"], entry_counts=(128, 1024), coverage_factor=1.0
        )
        assert out[128]["storage_bytes"] == 16
        assert out[1024]["storage_bytes"] == 128
        # Coarser regions never track less memory than finer ones.
        assert out[128]["tracked_mb"] >= out[1024]["tracked_mb"]

    def test_upgrade_time_tracks_tracked_mb(self):
        out = sweep.mdt_entry_sweep(
            BENCHMARKS_BY_NAME["sphinx"], entry_counts=(256, 2048), coverage_factor=1.0
        )
        for row in out.values():
            expected_ms = row["tracked_mb"] / 1024 * 400.0
            assert row["upgrade_ms"] == pytest.approx(expected_ms, rel=0.1)


class TestModeBitSweep:
    def test_redundancy_monotone(self):
        out = sweep.mode_bit_redundancy_sweep(ber=1e-3)
        probs = [out[r]["misresolve_p"] for r in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_paper_choice_is_safe(self):
        out = sweep.mode_bit_redundancy_sweep()
        assert out[4]["misresolve_p"] < 1e-12


class TestStrengthSweeps:
    def test_stronger_ecc_longer_period(self):
        out = sweep.ecc_strength_refresh_sweep((2, 6))
        assert out[6] > out[2]
        assert 0.9 <= out[6] <= 1.6  # ECC-6 sustains ~1 second

    def test_refresh_period_power_sweep(self):
        # 1.0 s is the paper's nominal slow period; at 1.024 s the power-law
        # BER is ~9% higher, which tips ECC-5 just past the 1e-6 target and
        # would demand one more level.
        out = sweep.refresh_period_power_sweep((0.064, 1.0))
        assert out[0.064]["idle_power_norm"] == pytest.approx(1.0)
        assert out[1.0]["idle_power_norm"] < 0.6
        assert out[0.064]["required_ecc_t"] < out[1.0]["required_ecc_t"]
        assert out[1.0]["required_ecc_t"] == 6


class TestSmdThresholdSweep:
    def test_higher_threshold_more_disabled_time(self):
        run = ScaledRun(instructions=60_000)
        subset = tuple(BENCHMARKS_BY_NAME[n] for n in ("povray", "sphinx"))
        out = sweep.smd_threshold_sweep((0.5, 8.0), run, subset)
        assert (
            out[8.0]["mean_disabled_fraction"]
            >= out[0.5]["mean_disabled_fraction"]
        )
        assert out[8.0]["never_enabled_count"] >= out[0.5]["never_enabled_count"]
