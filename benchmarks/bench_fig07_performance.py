"""Fig. 7: per-benchmark normalized IPC of SECDED, ECC-6 and MECC.

Paper headline numbers: SECDED ~0.5% average slowdown, ECC-6 ~10%
(libquantum worst at ~21%), MECC ~1.2% — within 1% of SECDED.
"""

from repro.analysis.experiments import fig7_performance
from repro.analysis.tables import format_table
from repro.ecc.backend import selected_backend
from repro.workloads.spec import ALL_BENCHMARKS, MpkiClass


def test_fig07_per_benchmark_performance(benchmark, run, show):
    perf = benchmark.pedantic(fig7_performance, args=(run,), rounds=1, iterations=1)
    rows = []
    for spec in ALL_BENCHMARKS:
        rows.append([
            spec.name,
            spec.mpki_class.value,
            perf.normalized(spec.name, "secded"),
            perf.normalized(spec.name, "ecc6"),
            perf.normalized(spec.name, "mecc"),
        ])
    rows.append([
        "ALL", "(geomean)",
        perf.geomean("secded"), perf.geomean("ecc6"), perf.geomean("mecc"),
    ])
    show(format_table(
        ["benchmark", "class", "SECDED", "ECC-6", "MECC"],
        rows,
        title=(
            "Fig. 7 — normalized IPC (paper ALL: SECDED 0.995, "
            "ECC-6 0.90, MECC 0.988) "
            f"[codec backend: {selected_backend()}]"
        ),
    ))
    # Headline shape assertions.
    assert perf.geomean("secded") > 0.985
    assert 0.85 <= perf.geomean("ecc6") <= 0.94
    assert perf.geomean("mecc") > 0.96
    # libquantum is the worst case for ECC-6 at roughly 20-28% slowdown.
    libq_ecc6 = perf.normalized("libq", "ecc6")
    assert 0.70 <= libq_ecc6 <= 0.85
    # MECC recovers most of that loss.
    assert perf.normalized("libq", "mecc") > libq_ecc6 + 0.15
    # Every benchmark: ECC-6 <= MECC (demand downgrades can only help).
    for spec in ALL_BENCHMARKS:
        assert perf.normalized(spec.name, "ecc6") <= perf.normalized(
            spec.name, "mecc"
        ) + 0.01, spec.name
    # Class ordering as in the paper's grouping.
    assert (
        perf.class_geomean("ecc6", MpkiClass.LOW)
        > perf.class_geomean("ecc6", MpkiClass.MED)
        > perf.class_geomean("ecc6", MpkiClass.HIGH)
    )
