"""The fault classes a chaos campaign can inject.

Each :class:`FaultClass` corrupts one piece of the modeled control plane
at one of the trial's injection points (see
:data:`repro.chaos.system.INJECTION_POINTS`):

* ``active-1`` — after the heavy burst of cycle 1, while downgraded
  lines and marked MDT regions exist, before the idle-entry upgrade
  that consumes them.
* ``idle-1`` — deep in the first idle period, before the cycle-2 wake
  (the only point where the device is in divided self-refresh, so
  stuck-at faults can freeze the *slow* mode).
* ``active-2`` — right after the cycle-2 wake re-arms the SMD gate,
  before the light burst (so counter/threshold corruption is not wiped
  by the wake-up reset and a spurious enable is observable).

The default **metadata** campaign contains only faults the mitigated
system (patrol scrub + conservative MDT fallback) is expected to keep
free of silent corruption.  ``mode-replica-majority`` — an outright
majority flip of the stored mode replicas, which can mis-decode before
any patrol pass — is deliberately excluded; select it explicitly via
``--classes`` to see the harness catch real silent corruption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.mode_bits import corrupt_replicas, flips_to_misresolve
from repro.errors import ConfigurationError
from repro.types import EccMode


@dataclass(frozen=True)
class FaultClass:
    """One injectable control-plane fault.

    Attributes:
        name: stable identifier used in reports and ``--classes``.
        point: injection point in the trial script.
        summary: one-line description for the report.
        inject: ``(system, rng) -> None`` performing the corruption.
    """

    name: str
    point: str
    summary: str
    inject: Callable


def _pick(rng, items):
    """Deterministic choice from an already-ordered sequence."""
    return items[rng.randrange(len(items))]


# -- MDT table faults ---------------------------------------------------------


def _mdt_false_set(system, rng) -> None:
    mdt = system.mdt
    unmarked = sorted(set(range(mdt.entries)) - mdt.marked_regions)
    if not unmarked:
        return
    mdt.inject_set(_pick(rng, unmarked))


def _mdt_false_clear(system, rng) -> None:
    marked = sorted(system.mdt.marked_regions)
    if not marked:
        return
    system.mdt.inject_clear(_pick(rng, marked))


# -- per-line mode-state faults ----------------------------------------------


def _mode_false_weak(system, rng) -> None:
    """Control plane believes a line is SECDED; the codeword is ECC-6."""
    store = system.controller.line_store
    strong = [
        line
        for line in system.working_lines
        if store.mode_of(line) is EccMode.STRONG
    ]
    if not strong:
        return
    store.downgrade(_pick(rng, strong))  # no MDT record, no data change


def _mode_false_strong(system, rng) -> None:
    """Control plane believes a line is ECC-6; the codeword is SECDED.

    The dangerous direction: the line silently rides the 1 s refresh
    period under single-error correction only.
    """
    weak = sorted(system.controller.line_store.weak_lines)
    if weak:
        system.controller.line_store.upgrade(_pick(rng, weak))
        return
    line = _pick(rng, system.working_lines)
    system.memory.rewrite_mode(line * system.params.line_bytes, EccMode.WEAK)


# -- stored mode-replica faults -----------------------------------------------


def _flip_replicas(system, rng, flips: int) -> None:
    mode_bits = system.memory.codec.layout.mode_bits
    strong_stored = sorted(
        line
        for line, mode in system.memory.stored_modes().items()
        if mode is EccMode.STRONG
    )
    if not strong_stored:
        return
    line = _pick(rng, strong_stored)
    mask = corrupt_replicas(0, flips, rng, replicas=mode_bits)
    positions = [bit for bit in range(mode_bits) if (mask >> bit) & 1]
    system.memory.corrupt_stored(line * system.params.line_bytes, positions)


def _mode_replica_tie(system, rng) -> None:
    """Flip half the replicas: vote ties, the trial-decode path must run."""
    _flip_replicas(system, rng, system.memory.codec.layout.mode_bits // 2)


def _mode_replica_majority(system, rng) -> None:
    """Flip a majority of replicas: the vote resolves to the wrong mode."""
    _flip_replicas(
        system, rng, flips_to_misresolve(system.memory.codec.layout.mode_bits)
    )


# -- SMD register faults ------------------------------------------------------


def _smd_counter(system, rng) -> None:
    system.smd.inject_accesses(1_000_000)


def _smd_threshold(system, rng) -> None:
    system.smd.inject_threshold(1e-3)


def _smd_stuck_enable(system, rng) -> None:
    system.smd.inject_enable(True, record_cycle=None)


# -- refresh-mode faults ------------------------------------------------------


def _refresh_stuck(system, rng) -> None:
    system.device.refresh.inject_stuck()


FAULT_CLASSES: dict[str, FaultClass] = {
    fc.name: fc
    for fc in (
        FaultClass(
            "mdt-false-set",
            "active-1",
            "spurious MDT region bit set (SRAM flip, benign direction)",
            _mdt_false_set,
        ),
        FaultClass(
            "mdt-false-clear",
            "active-1",
            "MDT region bit cleared under live downgrades (lossy direction)",
            _mdt_false_clear,
        ),
        FaultClass(
            "mode-false-weak",
            "active-1",
            "line tracked SECDED while stored ECC-6",
            _mode_false_weak,
        ),
        FaultClass(
            "mode-false-strong",
            "active-1",
            "line tracked ECC-6 while stored SECDED",
            _mode_false_strong,
        ),
        FaultClass(
            "mode-replica-tie",
            "active-1",
            "stored mode replicas flipped to a voting tie",
            _mode_replica_tie,
        ),
        FaultClass(
            "mode-replica-majority",
            "active-1",
            "stored mode replicas flipped past the voting majority",
            _mode_replica_majority,
        ),
        FaultClass(
            "smd-counter",
            "active-2",
            "SMD access-counter register corrupted (spurious enable)",
            _smd_counter,
        ),
        FaultClass(
            "smd-threshold",
            "active-2",
            "SMD threshold register corrupted to near zero",
            _smd_threshold,
        ),
        FaultClass(
            "smd-stuck-enable",
            "active-2",
            "SMD enable latch forced without bookkeeping",
            _smd_stuck_enable,
        ),
        FaultClass(
            "refresh-stuck-fast",
            "active-1",
            "refresh machinery stuck in the fast 64 ms mode",
            _refresh_stuck,
        ),
        FaultClass(
            "refresh-stuck-slow",
            "idle-1",
            "refresh machinery stuck in divided self-refresh",
            _refresh_stuck,
        ),
    )
}

#: The default campaign: every class the mitigated system must keep
#: free of silent corruption (see the module docstring).
METADATA_CAMPAIGN: tuple[str, ...] = (
    "mdt-false-set",
    "mdt-false-clear",
    "mode-false-weak",
    "mode-false-strong",
    "mode-replica-tie",
    "smd-counter",
    "smd-threshold",
    "smd-stuck-enable",
    "refresh-stuck-fast",
    "refresh-stuck-slow",
)

#: Named campaigns selectable from the CLI.
CAMPAIGNS: dict[str, tuple[str, ...]] = {
    "metadata": METADATA_CAMPAIGN,
    "all": tuple(sorted(FAULT_CLASSES)),
}


def resolve_classes(names) -> list[FaultClass]:
    """Map fault-class names to :class:`FaultClass` objects, validating."""
    classes = []
    for name in names:
        if name not in FAULT_CLASSES:
            known = ", ".join(sorted(FAULT_CLASSES))
            raise ConfigurationError(
                f"unknown fault class {name!r} (known: {known})"
            )
        classes.append(FAULT_CLASSES[name])
    if not classes:
        raise ConfigurationError("at least one fault class is required")
    return classes
