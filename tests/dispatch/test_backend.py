"""DispatchBackend end-to-end: real coordinator, real worker subprocesses.

These are the slowest dispatch tests (each spawns Python workers), so
they stay few and small: a happy-path sweep, graceful unavailability,
and the runner-level fallback contract.
"""

from __future__ import annotations

import pytest

from repro.analysis.runner import (
    ExperimentRunner,
    JobSpec,
    configure_runner,
    execute_job,
)
from repro.dispatch import DispatchBackend, DispatchConfig
from repro.errors import ConfigurationError, DispatchUnavailableError
from repro.sim.system import ScaledRun
from repro.workloads.spec import BENCHMARKS_BY_NAME

RUN = ScaledRun(instructions=3000)


@pytest.fixture(autouse=True)
def _restore_runner():
    yield
    configure_runner(jobs=1, cache_dir=None)


def specs(n: int = 4) -> list[JobSpec]:
    grid = [
        (bench, policy)
        for bench in ("libq", "milc")
        for policy in ("mecc", "secded")
    ]
    return [
        JobSpec.build(BENCHMARKS_BY_NAME[bench], RUN, policy)
        for bench, policy in grid[:n]
    ]


def fast_config(**overrides) -> DispatchConfig:
    values = {
        "workers": 2,
        "lease_s": 2.0,
        "heartbeat_s": 0.5,
        "worker_wait_s": 30.0,
    }
    values.update(overrides)
    return DispatchConfig(**values)


class TestExecute:
    def test_sweep_commits_every_job_bit_identically(self):
        jobs = specs()
        pending = list(enumerate(jobs))
        harvested = {}

        def harvest(index, triple):
            harvested[index] = triple

        backend = DispatchBackend(fast_config())
        failed, leftover = backend.execute(pending, harvest)
        assert failed == [] and leftover == []
        assert sorted(harvested) == [0, 1, 2, 3]
        # Payloads match an in-process run of the same spec exactly.
        for index, spec in enumerate(jobs):
            local_result, local_disabled, _, _ = execute_job(spec)
            result, disabled, wall_s, _ = harvested[index]
            assert result.to_dict() == local_result.to_dict()
            assert disabled == local_disabled
            assert wall_s > 0
        summary = backend.summary
        assert summary["commits"] == 4
        assert summary["state_done"] == 4
        assert summary["workers_joined"] >= 1
        assert summary["workers_lost"] == 0

    def test_unbindable_address_is_unavailable_not_a_crash(self):
        backend = DispatchBackend(
            fast_config(host="203.0.113.1", port=1, worker_wait_s=2.0)
        )
        with pytest.raises(DispatchUnavailableError):
            backend.execute(list(enumerate(specs(1))), lambda i, t: None)

    def test_no_worker_ever_connecting_is_unavailable(self):
        # workers=0 spawns nothing; nothing external connects either.
        backend = DispatchBackend(fast_config(workers=0, worker_wait_s=0.5))
        with pytest.raises(DispatchUnavailableError):
            backend.execute(list(enumerate(specs(1))), lambda i, t: None)


class TestRunnerIntegration:
    def test_runner_dispatch_backend_end_to_end(self):
        jobs = specs(2)
        runner = ExperimentRunner(
            jobs=1, backend="dispatch", dispatch=fast_config()
        )
        outcomes = runner.run(jobs)
        assert all(spec in outcomes for spec in jobs)
        local = ExperimentRunner(jobs=1).run(jobs)
        for spec in jobs:
            assert (
                outcomes[spec].result.to_dict() == local[spec].result.to_dict()
            )
        manifest = runner.manifest()
        assert manifest["parallelism"]["backend"] == "dispatch"
        assert manifest["dispatch"]["fallbacks"] == 0
        assert manifest["dispatch"]["summary"]["commits"] == 2

    def test_unavailable_dispatch_falls_back_to_local_once(self):
        jobs = specs(2)
        runner = ExperimentRunner(
            jobs=1,
            backend="dispatch",
            dispatch=fast_config(workers=0, worker_wait_s=0.2),
        )
        outcomes = runner.run(jobs)
        # Every job still completed — locally.
        assert all(spec in outcomes for spec in jobs)
        assert runner.dispatch_fallbacks == 1
        assert runner.manifest()["dispatch"]["fallbacks"] == 1
        # A second sweep doesn't retry the dead infrastructure.
        more = specs(3)[2:]
        runner.run(more)
        assert runner.dispatch_fallbacks == 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(backend="carrier-pigeon")

    def test_env_selects_the_backend(self, monkeypatch):
        import repro.analysis.runner as runner_mod

        monkeypatch.setenv("REPRO_RUNNER_BACKEND", "dispatch")
        monkeypatch.setattr(runner_mod, "_default_runner", None)
        runner = runner_mod.get_runner()
        assert runner.backend == "dispatch"
