"""Tests for the markdown report generator."""

import pytest

from repro.analysis.report import PAPER_NOTES, generate_report, write_report
from repro.errors import ConfigurationError
from repro.sim.system import ScaledRun

FAST = ("table1", "fig2", "fig8", "related-work")


class TestGenerateReport:
    def test_structure(self):
        text = generate_report(ScaledRun(instructions=30_000), include=FAST)
        assert text.startswith("# Morphable ECC reproduction report")
        for name in FAST:
            assert f"> {PAPER_NOTES[name]}" in text
        assert text.count("```") == 2 * len(FAST)

    def test_scale_recorded(self):
        text = generate_report(ScaledRun(instructions=30_000), include=("table1",))
        assert "30,000 instructions" in text

    def test_unknown_exhibit_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_report(include=("fig99",))

    def test_write_report(self, tmp_path):
        path = tmp_path / "report.md"
        text = write_report(str(path), ScaledRun(instructions=30_000), include=("fig8",))
        assert path.read_text() == text
        assert "Fig. 8" in text

    def test_notes_cover_all_exhibits(self):
        from repro.cli import EXHIBITS

        assert set(PAPER_NOTES) == set(EXHIBITS)


class TestCliReport:
    def test_report_to_file(self, tmp_path, capsys):
        from repro.analysis.experiments import clear_caches
        from repro.cli import main

        clear_caches()
        path = tmp_path / "r.md"
        assert main([
            "report", "--instructions", "20000", "-o", str(path),
            "--exhibits", "table1,fig7,fig14,related-work",
        ]) == 0
        text = path.read_text()
        assert "# Morphable ECC reproduction report" in text
        for heading in ("Table I", "Fig. 7", "Fig. 14", "Sec. VII"):
            assert heading in text

    def test_report_rejects_unknown_exhibit(self, capsys):
        from repro.cli import main

        # Unified CLI error contract: exit 2 + "choose from", no traceback.
        assert main(["report", "--exhibits", "fig99"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("report: ")
        assert "choose from" in err


class TestCodecCountersTable:
    def test_renders_counters_and_cache_rate(self):
        from repro.analysis.report import render_codec_counters
        from repro.ecc.layout import LineCodec
        from repro.types import EccMode

        codec = LineCodec()
        for data in (0, 1, (1 << 512) - 1):
            codec.decode(codec.encode(data, EccMode.STRONG))
        text = render_codec_counters(codec.codec_counters())
        assert "Codec fast-path counters" in text
        assert "table cache:" in text
        for name in ("weak", "strong", "line"):
            assert name in text

    def test_empty_mapping_renders_header_only(self):
        from repro.analysis.report import render_codec_counters

        text = render_codec_counters({})
        assert "encodes" in text
