"""Closed-form DRAM power model (Micron TN-46-03 / TN-46-12 equations).

Two operating regimes matter for the paper:

* **Idle (self-refresh)** — power is background self-refresh current plus
  the internal refresh bursts.  The refresh component scales inversely
  with the refresh period, which is how MECC's 64 ms → 1 s change cuts
  refresh power 16x and total idle power ~2x (paper Fig. 8).
* **Active (auto-refresh)** — background (standby/power-down mix),
  activate/precharge, read/write burst, and auto-refresh components,
  driven by utilization statistics from the cycle simulator (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.power.params import PowerParams
from repro.types import PowerBreakdown

#: JEDEC refresh period the parameters are specified at.
BASE_REFRESH_PERIOD_S = 0.064


@dataclass(frozen=True)
class IdlePowerBreakdown:
    """Idle-mode (self-refresh) power in watts."""

    background: float
    refresh: float

    @property
    def total(self) -> float:
        return self.background + self.refresh


@dataclass(frozen=True)
class BankUtilization:
    """Time/utilization statistics the active-mode model consumes.

    All fractions are of wall-clock time and must sum to <= 1 for the
    standby states.

    Attributes:
        frac_active_standby: any bank open, chip not powered down.
        frac_precharge_standby: all banks closed, chip not powered down.
        frac_active_powerdown: any bank open, chip powered down.
        frac_precharge_powerdown: all banks closed, chip powered down.
        activates_per_second: row activate(+precharge) rate.
        read_bursts_per_second: 64B read-burst rate.
        write_bursts_per_second: 64B write-burst rate.
    """

    frac_active_standby: float
    frac_precharge_standby: float
    frac_active_powerdown: float
    frac_precharge_powerdown: float
    activates_per_second: float
    read_bursts_per_second: float
    write_bursts_per_second: float

    def __post_init__(self) -> None:
        fracs = (
            self.frac_active_standby,
            self.frac_precharge_standby,
            self.frac_active_powerdown,
            self.frac_precharge_powerdown,
        )
        if any(f < -1e-9 for f in fracs):
            raise ConfigurationError("time fractions must be non-negative")
        if sum(fracs) > 1.0 + 1e-6:
            raise ConfigurationError("time fractions must sum to <= 1")
        if min(
            self.activates_per_second,
            self.read_bursts_per_second,
            self.write_bursts_per_second,
        ) < 0:
            raise ConfigurationError("rates must be non-negative")


class DramPowerCalculator:
    """Evaluate idle and active DRAM power from IDD parameters."""

    def __init__(self, params: PowerParams | None = None):
        self.params = params or PowerParams()

    # -- idle (self-refresh) mode --------------------------------------------

    def refresh_power_idle(self, refresh_period_s: float = BASE_REFRESH_PERIOD_S) -> float:
        """Average power of the internal refresh bursts in self-refresh.

        Every ``t_refi * (period / 64 ms)`` the device spends ``t_rfc`` at
        the refresh current; refresh power is therefore linear in refresh
        *rate* — a 1 s period cuts it exactly 16x vs. 64 ms (paper Fig. 8
        left).
        """
        if refresh_period_s <= 0:
            raise ConfigurationError("refresh_period_s must be positive")
        p = self.params
        effective_refi = p.t_refi * (refresh_period_s / BASE_REFRESH_PERIOD_S)
        duty = p.t_rfc / effective_refi
        return p.vdd * (p.idd5 - p.idd8) * duty

    def idle_power(self, refresh_period_s: float = BASE_REFRESH_PERIOD_S) -> IdlePowerBreakdown:
        """Total self-refresh-mode power: background + refresh (Fig. 8 right)."""
        p = self.params
        return IdlePowerBreakdown(
            background=p.vdd * p.idd8,
            refresh=self.refresh_power_idle(refresh_period_s),
        )

    # -- active (auto-refresh) mode --------------------------------------------

    def active_power(
        self,
        util: BankUtilization,
        refresh_period_s: float = BASE_REFRESH_PERIOD_S,
    ) -> PowerBreakdown:
        """Average active-mode power from utilization statistics."""
        p = self.params
        background = p.vdd * (
            p.idd3n * util.frac_active_standby
            + p.idd2n * util.frac_precharge_standby
            + p.idd3p * util.frac_active_powerdown
            + p.idd2p * util.frac_precharge_powerdown
        )
        # Activate/precharge: IDD0 is measured cycling one bank every t_rc
        # with background IDD3N during t_ras and IDD2N during t_rc - t_ras.
        act_energy = p.vdd * (
            p.idd0 * p.t_rc - p.idd3n * p.t_ras - p.idd2n * (p.t_rc - p.t_ras)
        )
        activate = max(0.0, act_energy) * util.activates_per_second
        # Read/write bursts: incremental current above active standby.
        burst_rate = util.read_bursts_per_second + util.write_bursts_per_second
        read_write = p.vdd * (p.idd4 - p.idd3n) * p.burst_time * burst_rate
        # Auto refresh: one REF command per effective tREFI.
        effective_refi = p.t_refi * (refresh_period_s / BASE_REFRESH_PERIOD_S)
        refresh = p.vdd * (p.idd5 - p.idd2n) * (p.t_rfc / effective_refi)
        return PowerBreakdown(
            background=background,
            activate_precharge=activate,
            read_write=read_write,
            refresh=max(0.0, refresh),
        )

    # -- convenience energies ---------------------------------------------------

    def line_read_energy_j(self) -> float:
        """Approximate energy to read one 64B line (ACT + burst).

        The paper quotes ~12 nJ per line read as the yardstick against the
        ~40 pJ ECC-6 decode energy.
        """
        p = self.params
        act_energy = p.vdd * (
            p.idd0 * p.t_rc - p.idd3n * p.t_ras - p.idd2n * (p.t_rc - p.t_ras)
        )
        burst_energy = p.vdd * p.idd4 * p.burst_time
        return max(0.0, act_energy) + burst_energy
