"""Learned per-workload operating-point tuner (stdlib k-NN).

Per-workload tuning (traffic-aware ECC, arXiv 2112.12667) beats a
single global operating point: a heavy gamer persona wants a different
(strength, period, threshold) cell than a mostly-idle minimal persona.
The tuner is deliberately tiny — a k-nearest-neighbour vote over
normalized workload features, trained on :class:`TunerSample` rows
produced by sweeping each fleet persona's app mix through the
:class:`repro.dse.engine.DesignSpaceExplorer`.

Each sample keeps its full ``point key -> energy`` surface, so the
leave-one-out report card can price a wrong prediction (regret =
relative energy excess of the predicted point over the true optimum)
without re-simulating anything.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from repro.dse.engine import DesignSpaceExplorer, FrontierReport, round_floats
from repro.dse.grid import GridSpec
from repro.errors import ConfigurationError
from repro.sim.system import ScaledRun, SystemConfig
from repro.workloads.personas import ALL_PERSONAS, Persona

TUNER_SCHEMA = 1
TUNER_KIND = "dse-tuner"

#: Feature names, in vector order.
FEATURES = ("log_mpki", "idle_fraction", "sessions_per_day", "log_footprint_mb")


@dataclass(frozen=True)
class WorkloadFeatures:
    """Normalizable workload descriptors (the tuner's input space)."""

    mean_mpki: float
    idle_fraction: float
    sessions_per_day: float
    footprint_mb: float

    def __post_init__(self) -> None:
        if self.mean_mpki <= 0.0 or self.footprint_mb <= 0.0:
            raise ConfigurationError(
                "mean_mpki and footprint_mb must be positive"
            )
        if not 0.0 < self.idle_fraction <= 1.0:
            raise ConfigurationError("idle_fraction must be in (0, 1]")
        if self.sessions_per_day < 1:
            raise ConfigurationError("sessions_per_day must be >= 1")

    @classmethod
    def from_persona(cls, persona: Persona) -> "WorkloadFeatures":
        return cls(
            mean_mpki=persona.mean_mpki,
            idle_fraction=persona.idle_fraction,
            sessions_per_day=float(persona.sessions_per_day),
            footprint_mb=persona.total_footprint_mb,
        )

    def vector(self) -> tuple[float, ...]:
        """Log-compress the heavy-tailed dimensions (MPKI, footprint)."""
        return (
            math.log10(self.mean_mpki),
            self.idle_fraction,
            self.sessions_per_day,
            math.log10(self.footprint_mb),
        )

    def as_dict(self) -> dict:
        return {
            "mean_mpki": self.mean_mpki,
            "idle_fraction": self.idle_fraction,
            "sessions_per_day": self.sessions_per_day,
            "footprint_mb": self.footprint_mb,
        }


@dataclass(frozen=True)
class TunerSample:
    """One training row: a workload, its optimum, its energy surface."""

    name: str
    features: WorkloadFeatures
    best_key: str
    energies: dict[str, float]

    def __post_init__(self) -> None:
        if self.best_key not in self.energies:
            raise ConfigurationError(
                f"sample {self.name!r}: best point {self.best_key!r} is not "
                f"on its energy surface"
            )

    def regret(self, predicted_key: str) -> float:
        """Relative energy excess of a prediction over the optimum."""
        if predicted_key not in self.energies:
            raise ConfigurationError(
                f"sample {self.name!r}: predicted point {predicted_key!r} is "
                f"not on its energy surface"
            )
        return self.energies[predicted_key] / self.energies[self.best_key] - 1.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "features": self.features.as_dict(),
            "best_key": self.best_key,
            "energies": dict(sorted(self.energies.items())),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TunerSample":
        return cls(
            name=payload["name"],
            features=WorkloadFeatures(**payload["features"]),
            best_key=payload["best_key"],
            energies=dict(payload["energies"]),
        )


class PolicyTuner:
    """k-NN operating-point predictor over normalized workload features.

    With ``k=1`` (the default) the tuner is an exact oracle on its own
    training set: a workload whose features match a sample recovers
    that sample's best point — the oracle tests pin this.
    """

    def __init__(self, k: int = 1):
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        self.k = k
        self.samples: tuple[TunerSample, ...] = ()
        self._lows: tuple[float, ...] = ()
        self._spans: tuple[float, ...] = ()

    # -- training --------------------------------------------------------------

    def fit(self, samples) -> "PolicyTuner":
        samples = tuple(sorted(samples, key=lambda s: s.name))
        if not samples:
            raise ConfigurationError("need at least one training sample")
        names = [s.name for s in samples]
        if len(set(names)) != len(names):
            raise ConfigurationError("training sample names must be unique")
        vectors = [s.features.vector() for s in samples]
        dims = len(FEATURES)
        lows = tuple(min(v[d] for v in vectors) for d in range(dims))
        highs = tuple(max(v[d] for v in vectors) for d in range(dims))
        self.samples = samples
        self._lows = lows
        self._spans = tuple(hi - lo for lo, hi in zip(lows, highs))
        return self

    def _normalize(self, features: WorkloadFeatures) -> tuple[float, ...]:
        if not self.samples:
            raise ConfigurationError("tuner is not fitted")
        vector = features.vector()
        return tuple(
            0.0 if span == 0.0 else (value - low) / span
            for value, low, span in zip(vector, self._lows, self._spans)
        )

    # -- prediction ------------------------------------------------------------

    def neighbours(
        self, features: WorkloadFeatures
    ) -> list[tuple[float, TunerSample]]:
        """All samples by ascending feature distance (name-tiebroken)."""
        probe = self._normalize(features)
        ranked = sorted(
            (
                (math.dist(probe, self._normalize(sample.features)), sample)
                for sample in self.samples
            ),
            key=lambda pair: (pair[0], pair[1].name),
        )
        return ranked

    def predict(self, features: WorkloadFeatures) -> str:
        """Majority vote over the k nearest samples' best points."""
        nearest = self.neighbours(features)[: self.k]
        votes: dict[str, int] = {}
        for _, sample in nearest:
            votes[sample.best_key] = votes.get(sample.best_key, 0) + 1
        top = max(votes.values())
        # Tie break toward the closest voting sample (then its name).
        for _, sample in nearest:
            if votes[sample.best_key] == top:
                return sample.best_key
        raise AssertionError("unreachable: nearest is non-empty")

    # -- evaluation ------------------------------------------------------------

    def report_card(self) -> list[dict]:
        """Leave-one-out evaluation: regret of each held-out prediction.

        With fewer than two samples LOO is undefined; the card then
        reports in-sample predictions (regret 0 by construction).
        """
        rows = []
        for held_out in self.samples:
            rest = [s for s in self.samples if s.name != held_out.name]
            if rest:
                predicted = PolicyTuner(k=self.k).fit(rest).predict(
                    held_out.features
                )
            else:
                predicted = self.predict(held_out.features)
            rows.append(
                {
                    "workload": held_out.name,
                    "best": held_out.best_key,
                    "predicted": predicted,
                    "hit": predicted == held_out.best_key,
                    "regret": held_out.regret(predicted),
                }
            )
        return rows

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        return round_floats(
            {
                "schema": TUNER_SCHEMA,
                "kind": TUNER_KIND,
                "k": self.k,
                "features": list(FEATURES),
                "samples": [s.as_dict() for s in self.samples],
            }
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "PolicyTuner":
        if payload.get("kind") != TUNER_KIND or payload.get("schema") != TUNER_SCHEMA:
            raise ConfigurationError(
                "not a dse-tuner artifact (bad kind/schema); retrain with "
                "`repro tune`"
            )
        tuner = cls(k=int(payload.get("k", 1)))
        return tuner.fit(TunerSample.from_dict(s) for s in payload["samples"])

    def save(self, path) -> str:
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(self.to_dict(), stream, indent=2, sort_keys=True)
            stream.write("\n")
        return str(path)

    @classmethod
    def load(cls, path) -> "PolicyTuner":
        with open(path, encoding="utf-8") as stream:
            return cls.from_dict(json.load(stream))


def persona_frontiers(
    grid: GridSpec | None = None,
    personas: tuple[Persona, ...] | None = None,
    run: ScaledRun | None = None,
    config: SystemConfig | None = None,
) -> dict[str, FrontierReport]:
    """One frontier sweep per persona (the tuner's raw training data).

    Sweeps share the process-wide runner, so overlapping (benchmark,
    policy, strength, threshold) jobs across personas simulate once.
    """
    personas = tuple(personas) if personas is not None else ALL_PERSONAS
    if not personas:
        raise ConfigurationError("need at least one persona")
    reports: dict[str, FrontierReport] = {}
    for persona in sorted(personas, key=lambda p: p.name):
        explorer = DesignSpaceExplorer(
            grid=grid,
            benchmarks=persona.app_mix,
            run=run,
            config=config,
            idle_fraction=persona.idle_fraction,
            sessions_per_day=persona.sessions_per_day,
        )
        reports[persona.name] = explorer.explore()
    return reports


def build_training_set(
    reports: dict[str, FrontierReport],
    personas: tuple[Persona, ...] | None = None,
    slowdown_cap: float = 0.05,
) -> list[TunerSample]:
    """Turn per-persona frontier reports into tuner training samples."""
    personas = tuple(personas) if personas is not None else ALL_PERSONAS
    by_name = {p.name: p for p in personas}
    unknown = sorted(set(reports) - set(by_name))
    if unknown:
        raise ConfigurationError(
            f"unknown personas: {', '.join(unknown)}; choose from "
            f"{', '.join(sorted(by_name))}"
        )
    return [
        TunerSample(
            name=name,
            features=WorkloadFeatures.from_persona(by_name[name]),
            best_key=report.best_key(slowdown_cap=slowdown_cap),
            energies=report.energies(),
        )
        for name, report in sorted(reports.items())
    ]


def train_tuner(
    grid: GridSpec | None = None,
    personas: tuple[Persona, ...] | None = None,
    run: ScaledRun | None = None,
    config: SystemConfig | None = None,
    k: int = 1,
    slowdown_cap: float = 0.05,
) -> tuple[PolicyTuner, dict[str, FrontierReport]]:
    """Sweep personas, build samples, fit the tuner."""
    personas = tuple(personas) if personas is not None else ALL_PERSONAS
    reports = persona_frontiers(grid, personas, run, config)
    samples = build_training_set(reports, personas, slowdown_cap)
    return PolicyTuner(k=k).fit(samples), reports
