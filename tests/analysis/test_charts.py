"""Tests for the terminal chart helpers."""

import pytest

from repro.analysis.charts import bar_chart, normalized_ipc_chart, series_sparkline
from repro.errors import ConfigurationError


class TestBarChart:
    def test_scales_to_max(self):
        text = bar_chart({"a": 1.0, "b": 0.5}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_explicit_ceiling(self):
        text = bar_chart({"a": 0.5}, width=10, max_value=1.0)
        assert text.count("#") == 5

    def test_values_shown(self):
        assert "0.500" in bar_chart({"a": 0.5})
        assert "0.500" not in bar_chart({"a": 0.5}, show_value=False)

    def test_labels_aligned(self):
        text = bar_chart({"x": 1.0, "longer": 1.0})
        lines = text.splitlines()
        assert lines[0].index("#") == lines[1].index("#")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bar_chart({})
        with pytest.raises(ConfigurationError):
            bar_chart({"a": -1.0})
        with pytest.raises(ConfigurationError):
            bar_chart({"a": 1.0}, width=0)

    def test_all_zero_values(self):
        text = bar_chart({"a": 0.0})
        assert "#" not in text


class TestNormalizedIpcChart:
    def test_full_bar_at_baseline(self):
        text = normalized_ipc_chart({"baseline": 1.0}, width=10)
        assert "#" * 10 + "|" in text

    def test_gap_below_baseline(self):
        text = normalized_ipc_chart({"ecc6": 0.9}, width=10)
        assert "#" * 9 + ".|" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            normalized_ipc_chart({})


class TestSparkline:
    def test_length_preserved(self):
        assert len(series_sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_levels(self):
        line = series_sparkline([0, 1, 2, 3, 4])
        levels = " .:-=+*#%@"
        indices = [levels.index(c) for c in line]
        assert indices == sorted(indices)

    def test_flat_series(self):
        assert len(set(series_sparkline([5, 5, 5]))) == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            series_sparkline([])
