"""Record engine memory traffic as arrival-timed request streams.

Bridges the closed-loop engines (core model drives the controller) and
the open-loop scheduler framework: run any trace/policy combination with
a recording controller, collect the (op, address, arrival-cycle) stream,
and replay it under different scheduling policies or organizations.
"""

from __future__ import annotations

from repro.core.policy import EccPolicy
from repro.dram.config import DramOrganization, DramTimings
from repro.dram.controller import MemoryController
from repro.dram.scheduler import Request
from repro.errors import ConfigurationError
from repro.sim.engine import SimulationEngine
from repro.types import MemoryOp
from repro.workloads.trace import Trace


class RecordingController(MemoryController):
    """A memory controller that logs every transaction's arrival."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.recorded: list[Request] = []

    def read(self, address: int, now: int) -> int:
        self.recorded.append(Request(
            op=MemoryOp.READ, address=address, arrival=now,
            request_id=len(self.recorded),
        ))
        return super().read(address, now)

    def write(self, address: int, now: int) -> None:
        self.recorded.append(Request(
            op=MemoryOp.WRITE, address=address, arrival=now,
            request_id=len(self.recorded),
        ))
        super().write(address, now)

    def write_batch(self, addresses, nows) -> None:
        # The engine coalesces write runs; log each arrival individually.
        recorded = self.recorded
        for address, now in zip(addresses, nows):
            recorded.append(Request(
                op=MemoryOp.WRITE, address=address, arrival=now,
                request_id=len(recorded),
            ))
        super().write_batch(addresses, nows)


def record_requests(
    trace: Trace,
    policy: EccPolicy,
    org: DramOrganization | None = None,
    timings: DramTimings | None = None,
) -> list[Request]:
    """Run a trace through the in-order engine and capture its traffic.

    The returned requests carry fresh ``completion=None`` state, ready
    to be replayed by :class:`repro.dram.scheduler.OpenLoopMemorySystem`
    (including the ECC-Downgrade write-backs MECC injects).
    """
    if not trace.records:
        raise ConfigurationError("cannot record an empty trace")
    controller = RecordingController(org=org, timings=timings)
    engine = SimulationEngine(policy=policy, controller=controller)
    engine.run(trace)
    return [
        Request(op=r.op, address=r.address, arrival=r.arrival, request_id=r.request_id)
        for r in controller.recorded
    ]
