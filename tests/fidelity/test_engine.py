"""Conformance-engine behavior: verdicts, violations, error capture."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.fidelity import (
    ClaimResult,
    FidelityContext,
    claims_in_set,
    evaluate_claim,
    evaluate_claims,
)
from repro.fidelity.claims import CLAIMS, EVALUATORS


REDUCED_IDS = [c.id for c in claims_in_set("reduced")]


class TestReducedSetConformance:
    def test_all_analytic_claims_in_band(self):
        report = evaluate_claims(REDUCED_IDS)
        assert report.passed, report.render_table()
        assert len(report.results) == len(REDUCED_IDS)
        assert report.violations == []

    def test_report_is_deterministic(self):
        first = evaluate_claims(REDUCED_IDS[:5])
        second = evaluate_claims(REDUCED_IDS[:5])
        strip = lambda d: {k: v for k, v in d.items() if k != "wall_s"}
        assert strip(first.as_dict()) == strip(second.as_dict())

    def test_relative_error_reported_per_claim(self):
        report = evaluate_claims(["T1-LINE-FAILURE-ECC6"])
        (result,) = report.results
        assert result.relative_error is not None
        assert 0.0 <= result.relative_error < 0.25

    def test_as_dict_schema(self):
        report = evaluate_claims(REDUCED_IDS[:3])
        payload = report.as_dict()
        assert payload["schema"] == 1
        assert payload["evaluated"] == 3
        assert payload["failed"] == 0
        assert payload["violated_ids"] == []
        for entry in payload["claims"]:
            assert set(entry) >= {
                "id", "source", "expected", "band", "measured",
                "relative_error", "passed",
            }


class TestViolations:
    def test_out_of_band_claim_fails_and_is_named(self, monkeypatch):
        claim_id = "F8-REFRESH-16X"
        impossible = dataclasses.replace(
            CLAIMS[claim_id], low=0.9, high=1.0, expected=0.95
        )
        monkeypatch.setitem(CLAIMS, claim_id, impossible)
        report = evaluate_claims([claim_id, "MDT-STORAGE-128B"])
        assert not report.passed
        assert [r.claim.id for r in report.violations] == [claim_id]
        assert claim_id in report.as_dict()["violated_ids"]
        rendered = report.render_table()
        assert f"VIOLATION {claim_id}" in rendered
        assert "FAIL" in rendered

    def test_evaluator_exception_is_captured_not_raised(self, monkeypatch):
        claim_id = "MDT-STORAGE-128B"

        def explode(ctx):
            raise RuntimeError("synthetic evaluator failure")

        monkeypatch.setitem(EVALUATORS, claim_id, explode)
        report = evaluate_claims([claim_id, "E6-PARITY-60-BITS"])
        assert not report.passed
        (violation,) = report.violations
        assert violation.claim.id == claim_id
        assert violation.measured is None
        assert "synthetic evaluator failure" in violation.error
        # The healthy claim still evaluated.
        other = [r for r in report.results if r.claim.id != claim_id]
        assert other[0].passed

    def test_empty_report_does_not_pass(self):
        from repro.fidelity.engine import ConformanceReport

        assert not ConformanceReport(results=[]).passed


class TestSingleClaim:
    def test_evaluate_claim_returns_result(self):
        result = evaluate_claim("MDT-STORAGE-128B")
        assert isinstance(result, ClaimResult)
        assert result.passed
        assert result.measured == 128.0

    def test_unknown_claim_rejected(self):
        with pytest.raises(ConfigurationError):
            evaluate_claim("F99-NOT-A-CLAIM")


class TestContextMemoization:
    def test_warmup_only_simulates_for_simulation_claims(self):
        context = FidelityContext()
        context.warmup(claims_in_set("reduced"))
        # Analytic-only warmup must not have touched the simulators.
        assert context._performance is None
        assert context._smd_outcomes is None

    def test_products_are_memoized(self, monkeypatch):
        context = FidelityContext()
        calls = []

        def fake_fig7(run, benchmarks):
            calls.append(1)
            return "sentinel"

        import repro.analysis.experiments as experiments

        monkeypatch.setattr(experiments, "fig7_performance", fake_fig7)
        assert context.performance() == "sentinel"
        assert context.performance() == "sentinel"
        assert len(calls) == 1
