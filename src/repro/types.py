"""Common value types shared across the library.

These are deliberately small, dependency-free dataclasses and enums so that
every subpackage (ECC, DRAM, simulator, MECC controller) can exchange data
without import cycles.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field


class MemoryOp(enum.Enum):
    """Kind of memory transaction issued by the core model."""

    READ = "read"
    WRITE = "write"


class EccMode(enum.Enum):
    """Per-line ECC mode stored in the ECC-mode bits (paper Sec. III-B).

    ``WEAK`` is SECDED (or no-ECC) used in active mode; ``STRONG`` is the
    multi-bit code (ECC-6 by default) used in idle mode.
    """

    WEAK = 0
    STRONG = 1


class SystemState(enum.Enum):
    """Coarse device activity state (paper Fig. 1 / Fig. 4)."""

    ACTIVE = "active"
    IDLE = "idle"


class RefreshMode(enum.Enum):
    """DRAM refresh implementations described in paper Sec. II-A."""

    AUTO_REFRESH = "auto"
    SELF_REFRESH = "self"
    PARTIAL_ARRAY_SELF_REFRESH = "pasr"
    DEEP_POWER_DOWN = "dpd"


@dataclass(frozen=True)
class TraceRecord:
    """One post-LLC memory access in a workload trace.

    Attributes:
        gap: number of non-memory instructions retired since the previous
            record (USIMM trace convention).
        op: read (demand miss) or write (dirty writeback).
        address: physical byte address of the 64B line (line-aligned).
    """

    gap: int
    op: MemoryOp
    address: int

    def __post_init__(self) -> None:
        if self.gap < 0:
            raise ValueError(f"trace gap must be non-negative, got {self.gap}")
        if self.address < 0:
            raise ValueError("trace address must be non-negative")


@dataclass
class MemoryRequest:
    """A transaction inside the memory controller.

    Times are in *processor* cycles (1.6 GHz domain) unless noted.
    """

    op: MemoryOp
    address: int
    arrival_cycle: int
    completion_cycle: int | None = None
    ecc_decode_cycles: int = 0
    caused_downgrade: bool = False

    @property
    def latency(self) -> int:
        """Total latency in processor cycles (arrival to completion)."""
        if self.completion_cycle is None:
            raise ValueError("request has not completed")
        return self.completion_cycle - self.arrival_cycle


@dataclass
class EnergyBreakdown:
    """Energy accounting in joules, split by component."""

    background: float = 0.0
    activate_precharge: float = 0.0
    read_write: float = 0.0
    refresh: float = 0.0
    ecc_codec: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.background
            + self.activate_precharge
            + self.read_write
            + self.refresh
            + self.ecc_codec
        )

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            background=self.background + other.background,
            activate_precharge=self.activate_precharge + other.activate_precharge,
            read_write=self.read_write + other.read_write,
            refresh=self.refresh + other.refresh,
            ecc_codec=self.ecc_codec + other.ecc_codec,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            background=self.background * factor,
            activate_precharge=self.activate_precharge * factor,
            read_write=self.read_write * factor,
            refresh=self.refresh * factor,
            ecc_codec=self.ecc_codec * factor,
        )

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe; exact float round-trip)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyBreakdown":
        return cls(**data)


@dataclass
class PowerBreakdown:
    """Average power in watts, split by component."""

    background: float = 0.0
    activate_precharge: float = 0.0
    read_write: float = 0.0
    refresh: float = 0.0

    @property
    def total(self) -> float:
        return self.background + self.activate_precharge + self.read_write + self.refresh


@dataclass
class SimResult:
    """Summary statistics of one active-mode simulation run."""

    instructions: int
    cycles: int
    reads: int
    writes: int
    downgrades: int = 0
    upgrades: int = 0
    strong_decodes: int = 0
    weak_decodes: int = 0
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    read_latency_sum: int = 0

    @property
    def ipc(self) -> float:
        """Instructions per processor cycle."""
        if self.cycles == 0:
            raise ValueError("no cycles simulated")
        return self.instructions / self.cycles

    @property
    def mpki(self) -> float:
        """Demand misses (reads) per kilo-instruction."""
        if self.instructions == 0:
            raise ValueError("no instructions simulated")
        return 1000.0 * self.reads / self.instructions

    @property
    def mpkc(self) -> float:
        """Demand misses (reads) per kilo-cycle — SMD's traffic metric."""
        if self.cycles == 0:
            raise ValueError("no cycles simulated")
        return 1000.0 * self.reads / self.cycles

    @property
    def avg_read_latency(self) -> float:
        """Average demand read latency in processor cycles."""
        if self.reads == 0:
            return 0.0
        return self.read_latency_sum / self.reads

    def to_dict(self) -> dict:
        """Plain-dict form for the on-disk result cache (JSON-safe).

        Round-trips exactly through JSON: every field is an int or a
        float, and ``json`` preserves both bit-for-bit.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        data = dict(data)
        data["energy"] = EnergyBreakdown.from_dict(data.get("energy", {}))
        return cls(**data)
