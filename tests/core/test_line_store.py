"""Tests for the per-line ECC-mode store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.line_store import LineEccStore
from repro.dram.config import DramOrganization
from repro.errors import ConfigurationError
from repro.types import EccMode


@pytest.fixture
def store():
    return LineEccStore(DramOrganization(capacity_bytes=1 << 20, rows=64))  # 1 MB, 16K lines


class TestBasics:
    def test_all_strong_initially(self, store):
        assert store.all_strong()
        assert store.mode_of(0) is EccMode.STRONG
        assert store.weak_count == 0

    def test_downgrade(self, store):
        assert store.downgrade(5) is True
        assert store.mode_of(5) is EccMode.WEAK
        assert store.downgrade(5) is False  # already weak
        assert store.weak_count == 1

    def test_upgrade(self, store):
        store.downgrade(5)
        assert store.upgrade(5) is True
        assert store.mode_of(5) is EccMode.STRONG
        assert store.upgrade(5) is False

    def test_bounds_checked(self, store):
        with pytest.raises(ConfigurationError):
            store.mode_of(-1)
        with pytest.raises(ConfigurationError):
            store.downgrade(1 << 20)


class TestBulkOps:
    def test_upgrade_all(self, store):
        for line in (1, 100, 9999):
            store.downgrade(line)
        assert store.upgrade_all() == 3
        assert store.all_strong()

    def test_upgrade_region(self, store):
        for line in (10, 20, 500):
            store.downgrade(line)
        converted = store.upgrade_region(0, 100)
        assert converted == 2
        assert store.mode_of(500) is EccMode.WEAK
        assert store.mode_of(10) is EccMode.STRONG

    def test_upgrade_empty_region(self, store):
        assert store.upgrade_region(0, 100) == 0

    def test_upgrade_region_rejects_negative(self, store):
        with pytest.raises(ConfigurationError):
            store.upgrade_region(0, -1)

    def test_weak_lines_snapshot(self, store):
        store.downgrade(7)
        snapshot = store.weak_lines
        store.downgrade(8)
        assert snapshot == frozenset({7})


@given(st.sets(st.integers(min_value=0, max_value=16383), max_size=50))
@settings(max_examples=50)
def test_property_downgrade_upgrade_inverse(lines):
    store = LineEccStore(DramOrganization(capacity_bytes=1 << 20, rows=64))
    for line in lines:
        store.downgrade(line)
    assert store.weak_count == len(lines)
    assert store.upgrade_all() == len(lines)
    assert store.all_strong()
