"""Exhibit registry round-trip: every id listable, spec-complete, unique."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.report.spec import (
    DEFAULT_FORMATS,
    KINDS,
    ExhibitData,
    ExhibitSpec,
    all_exhibits,
    exhibit_ids,
    get_exhibit,
    register_exhibit,
    resolve_exhibits,
)
from repro.sim.system import ScaledRun


class TestRegistryRoundTrip:
    def test_every_id_listable_unique_and_resolvable(self):
        ids = exhibit_ids()
        assert len(ids) == len(set(ids))
        assert len(ids) >= 14
        for exhibit_id in ids:
            assert get_exhibit(exhibit_id).id == exhibit_id

    def test_expected_exhibits_present(self):
        assert set(exhibit_ids()) >= {
            "fig1", "fig2", "fig3", "fig7", "fig8", "fig9", "fig10",
            "fig11", "fig12", "fig13", "fig14", "table1", "table3",
            "related-work", "personas", "functional", "device",
        }

    def test_every_spec_is_complete_and_manifest_ready(self):
        for spec in all_exhibits():
            described = spec.describe()
            assert described["id"] == spec.id
            assert described["title"]
            assert described["paper_anchor"]
            assert described["kind"] in KINDS
            assert described["paper_note"]
            assert set(described["formats"]) <= set(DEFAULT_FORMATS)
            assert described["diff_rtol"] > 0
            json.dumps(described)  # no callables or exotic types

    def test_duplicate_id_rejected_without_clobbering(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            @register_exhibit(
                "fig7", title="imposter", paper_anchor="Fig. 7", kind="figure"
            )
            def _imposter(run):
                raise AssertionError("never built")

        assert get_exhibit("fig7").title != "imposter"

    def test_unknown_exhibit_names_the_choices(self):
        with pytest.raises(ConfigurationError, match="choose from"):
            get_exhibit("fig99")

    def test_resolve_preserves_order_and_dedups(self):
        specs = resolve_exhibits("fig10, fig7,fig10")
        assert [spec.id for spec in specs] == ["fig10", "fig7"]

    def test_resolve_none_or_empty_means_all(self):
        everything = [spec.id for spec in all_exhibits()]
        assert [s.id for s in resolve_exhibits(None)] == everything
        assert [s.id for s in resolve_exhibits("")] == everything

    def test_resolve_rejects_unknown_ids(self):
        with pytest.raises(ConfigurationError, match="unknown exhibits"):
            resolve_exhibits("fig7,bogus")

    def test_analytic_builder_round_trips(self):
        data = get_exhibit("table1").build(ScaledRun(instructions=10_000))
        assert data.exhibit_id == "table1"
        assert data.columns[0] == "ecc_t"
        assert data.rows


class TestSpecValidation:
    def _spec(self, **overrides):
        fields = dict(
            id="x-test",
            title="t",
            paper_anchor="a",
            kind="figure",
            builder=lambda run, **p: ExhibitData("x-test", ("k",), ((1,),)),
        )
        fields.update(overrides)
        return ExhibitSpec(**fields)

    def test_bad_ids_rejected(self):
        for bad in ("", "has space", "has,comma"):
            with pytest.raises(ConfigurationError):
                self._spec(id=bad)

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            self._spec(kind="poster")

    def test_bad_formats_rejected(self):
        with pytest.raises(ConfigurationError):
            self._spec(formats=("csv", "pdf"))
        with pytest.raises(ConfigurationError):
            self._spec(formats=())

    def test_negative_rtol_rejected(self):
        with pytest.raises(ConfigurationError, match="diff_rtol"):
            self._spec(diff_rtol=-1e-9)

    def test_mislabeled_builder_output_rejected(self):
        spec = self._spec(
            builder=lambda run, **p: ExhibitData("wrong-id", ("k",), ((1,),))
        )
        with pytest.raises(ConfigurationError, match="labeled"):
            spec.build()

    def test_build_merges_params_with_overrides(self):
        seen = {}

        def builder(run, a=0, b=0):
            seen.update(a=a, b=b)
            return ExhibitData("x-test", ("k",), ((1,),))

        spec = self._spec(builder=builder, params={"a": 1, "b": 2})
        spec.build(b=7)
        assert seen == {"a": 1, "b": 7}


class TestExhibitData:
    DATA = ExhibitData(
        "x-test",
        ("scheme", "value", "ok"),
        (("mecc", 1.5, True), ("secded", 2.5, False)),
    )

    def test_lookups(self):
        assert self.DATA.row_keys() == ["mecc", "secded"]
        assert self.DATA.cell("mecc", "value") == 1.5
        assert self.DATA.row("secded") == {
            "scheme": "secded", "value": 2.5, "ok": False,
        }
        assert self.DATA.column("value") == [1.5, 2.5]

    def test_unknown_row_and_column_name_the_exhibit(self):
        with pytest.raises(ConfigurationError, match="x-test"):
            self.DATA.row("bogus")
        with pytest.raises(ConfigurationError, match="columns"):
            self.DATA.column("bogus")

    def test_ragged_rows_rejected(self):
        with pytest.raises(ConfigurationError, match="cells"):
            ExhibitData("x-test", ("a", "b"), ((1,),))

    def test_non_scalar_cells_rejected(self):
        with pytest.raises(ConfigurationError, match="non-scalar"):
            ExhibitData("x-test", ("a",), (([1, 2],),))

    def test_as_dict_is_json_native(self):
        payload = self.DATA.as_dict()
        json.dumps(payload)
        assert payload["exhibit"] == "x-test"
        assert payload["columns"] == ["scheme", "value", "ok"]
        assert payload["rows"][0] == ["mecc", 1.5, True]
