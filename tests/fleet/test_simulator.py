"""Fleet simulator: cohort decomposition, shard invariance, reporting."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fleet.population import PopulationModel
from repro.fleet.simulator import DEFAULT_SCHEMES, FleetSimulator
from repro.sim.system import ScaledRun

#: Tiny cohort simulations: this file tests the fleet layer, not the sim.
RUN = ScaledRun(instructions=10_000)


@pytest.fixture(scope="module")
def simulator():
    return FleetSimulator(
        PopulationModel(seed=42), run=RUN, shard_size=1_000
    )


@pytest.fixture(scope="module")
def report(simulator):
    return simulator.simulate(2_500)


class TestCohortPass:
    def test_job_count_is_benchmarks_times_policies(self, simulator):
        benchmarks = {
            name
            for persona in simulator.population.personas
            for name in persona.app_mix
        }
        assert len(simulator.cohort_jobs()) == len(benchmarks) * len(
            dict.fromkeys(("baseline",) + simulator.schemes)
        )

    def test_profiles_cover_every_persona_scheme(self, simulator):
        profiles = simulator.build_profiles()
        for persona in simulator.population.personas:
            for scheme in simulator.schemes:
                profile = profiles[(persona.name, scheme)]
                assert profile.burst_energy_j > 0
                assert profile.idle_power_w > 0
                assert 0.0 <= profile.failure_prob_day <= 1.0

    def test_mecc_cuts_idle_power(self, simulator):
        profiles = simulator.build_profiles()
        for persona in simulator.population.personas:
            mecc = profiles[(persona.name, "mecc")]
            base = profiles[(persona.name, "baseline")]
            assert mecc.idle_power_w < base.idle_power_w
            assert mecc.failure_prob_day < base.failure_prob_day

    def test_upgrade_energy_only_for_mecc(self, simulator):
        profiles = simulator.build_profiles()
        for (name, scheme), profile in profiles.items():
            if scheme.startswith("mecc"):
                assert profile.upgrade_energy_j > 0, (name, scheme)
            else:
                assert profile.upgrade_energy_j == 0.0, (name, scheme)


class TestDevicePass:
    def test_report_accounting(self, report):
        assert report.devices == 2_500
        assert report.shards == 3  # 1000 + 1000 + 500
        assert report.aggregate.devices == 2_500
        assert sum(report.aggregate.persona_counts.values()) == 2_500
        assert sum(report.aggregate.best_policy_counts.values()) == 2_500

    def test_energy_orders_as_the_paper(self, report):
        metrics = report.aggregate.metrics
        baseline = metrics["energy_j.baseline"].moments.mean
        mecc = metrics["energy_j.mecc"].moments.mean
        assert mecc < baseline
        saving = metrics["saving_fraction"].moments.mean
        assert 0.2 < saving < 0.7

    def test_seeded_determinism(self, simulator, report):
        again = FleetSimulator(
            PopulationModel(seed=42), run=RUN, shard_size=1_000
        ).simulate(2_500)
        assert again.as_dict()["aggregate"] == report.as_dict()["aggregate"]

    def test_shard_size_invariance(self, report):
        fine = FleetSimulator(
            PopulationModel(seed=42), run=RUN, shard_size=137
        ).simulate(2_500)
        assert fine.shards == 19
        a, b = fine.aggregate, report.aggregate
        assert a.persona_counts == b.persona_counts
        assert a.best_policy_counts == b.best_policy_counts
        for name, metric in a.metrics.items():
            assert metric.histogram.counts == b.metrics[name].histogram.counts
            assert metric.moments.mean == pytest.approx(
                b.metrics[name].moments.mean, rel=1e-12
            )

    def test_summary_and_metrics_registry(self, report):
        from repro.obs.metrics import MetricsRegistry

        summary = report.summary()
        assert summary["devices"] == 2_500
        assert "saving_fraction.mean" in summary
        registry = MetricsRegistry()
        registry.record_fleet(report)
        snapshot = registry.snapshot()
        assert snapshot["fleet.devices"] == 2_500
        assert "fleet.saving_fraction.mean" in snapshot


class TestValidation:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown schemes"):
            FleetSimulator(schemes=("baseline", "raid5"))

    def test_empty_schemes_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetSimulator(schemes=())

    def test_bad_shard_size_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetSimulator(shard_size=0)

    def test_bad_device_count_rejected(self, simulator):
        with pytest.raises(ConfigurationError):
            simulator.simulate(0)

    def test_default_schemes_include_baseline(self):
        assert "baseline" in DEFAULT_SCHEMES
